"""Scenario-engine cell kind for partial-view cluster experiments.

Importing this module registers the ``cluster`` cell kind with
:mod:`repro.scenarios.cells` (the engine lazy-loads it on first use, so
specs and cached cells can name the kind without importing the cluster
subsystem — including inside spawned worker processes).

One ``cluster`` cell is one partial-view attack: a (dataset, scheme)
workload from the memoised canonical registry, a router built from
``(nodes, routing)``, and one paper attack run over the compromised
node's shard of the target backup (:mod:`repro.cluster.partial`).
:func:`cluster_grid_cells` expands the ``nodes × routing × defense``
grid the cluster bench sweeps; the cells run — parallel, cached,
byte-identical at any job count — through the standard
:class:`~repro.scenarios.runner.Runner` like every other kind.
"""

from __future__ import annotations

from repro.cluster.partial import partial_view_report
from repro.scenarios.cells import build_attack, register_cell_kind
from repro.scenarios.spec import Cell, Tags

# Row fields every `cluster` cell computes, in report-table order.
CLUSTER_GRID_COLUMNS = (
    "dataset",
    "scheme",
    "attack",
    "nodes",
    "routing",
    "compromised_node",
    "shard_chunks",
    "shard_fraction",
    "inference_rate",
    "precision",
)


def _run_cluster(params: dict) -> tuple[Tags, ...]:
    """Execute one partial-view cell (runnable in any worker process)."""
    from repro.analysis.workloads import encrypted_series
    from repro.defenses.pipeline import DefenseScheme

    encrypted = encrypted_series(
        params["dataset"], DefenseScheme(params["scheme"])
    )
    attack = build_attack(
        params["attack"], params["u"], params["v"], params["w"]
    )
    view = partial_view_report(
        attack,
        encrypted[params["target"]],
        encrypted.plaintext[params["auxiliary"]],
        nodes=params["nodes"],
        routing=params["routing"],
        compromised_node=params["compromised_node"],
        scheme=params["scheme"],
        leakage_rate=params.get("leakage_rate", 0.0),
        seed=params.get("seed", 0),
    )
    report = view.report
    return (
        (
            ("auxiliary", report.auxiliary_label),
            ("target", report.target_label),
            ("shard_chunks", view.shard_chunks),
            ("shard_unique_chunks", view.shard_unique_chunks),
            ("shard_fraction", round(view.shard_fraction, 5)),
            ("inference_rate", round(report.inference_rate, 5)),
            ("precision", round(report.precision, 5)),
            ("correct_pairs", report.correct_pairs),
            ("inferred_pairs", report.inferred_pairs),
            ("unique_ciphertext_chunks", report.unique_ciphertext_chunks),
        ),
    )


def cluster_grid_cells(
    dataset: str = "fsl",
    schemes: tuple[str, ...] = ("mle",),
    attacks: tuple[str, ...] = ("locality",),
    nodes: tuple[int, ...] = (1, 2, 4, 8),
    routings: tuple[str, ...] = ("ring",),
    compromised_node: int = 0,
    u: int = 1,
    v: int = 15,
    w: int = 200_000,
    auxiliary: int = -2,
    target: int = -1,
    leakage_rate: float = 0.0,
    seed: int = 0,
) -> tuple[Cell, ...]:
    """Expand the ``nodes × routing × defense`` partial-view grid.

    One ``cluster`` cell per (scheme × attack × routing × node count)
    combination, anchored on one (auxiliary, target) backup pair; row
    columns are :data:`CLUSTER_GRID_COLUMNS`.  Negative anchor indices
    count from the end of the series, like
    :class:`~repro.scenarios.spec.Anchor`.

    Args:
        dataset: canonical workload name (``"fsl"``, ``"vm"``, …).
        schemes: defense schemes to sweep (the grid's defense axis).
        attacks: paper attacks to sweep.
        nodes: cluster sizes to sweep.
        routings: routing policies to sweep (``"ring"`` / ``"modulo"``).
        compromised_node: which node's shard the adversary observes.
        u / v / w: locality-attack parameters.
        auxiliary / target: anchor backup indices.
        leakage_rate: known-plaintext leakage over the full target.
        seed: determinises the leakage sample.
    """
    from repro.analysis.workloads import series_length
    from repro.scenarios.spec import _resolve_index

    length = series_length(dataset)
    auxiliary = _resolve_index(auxiliary, length)
    target = _resolve_index(target, length)
    cells = []
    for scheme in schemes:
        for attack in attacks:
            for routing in routings:
                for num_nodes in nodes:
                    params = {
                        "dataset": dataset,
                        "scheme": scheme,
                        "attack": attack,
                        "u": u,
                        "v": v,
                        "w": w,
                        "auxiliary": auxiliary,
                        "target": target,
                        "nodes": num_nodes,
                        "routing": routing,
                        "compromised_node": compromised_node,
                        "leakage_rate": leakage_rate,
                        # The seed only feeds the leakage sample; at rate 0
                        # nothing is sampled, so normalize it out of the
                        # cache identity (same rule as attack cells).
                        "seed": seed if leakage_rate else 0,
                    }
                    cells.append(
                        Cell(
                            kind="cluster",
                            params=tuple(sorted(params.items())),
                            tags=(
                                ("dataset", dataset),
                                ("scheme", scheme),
                                ("attack", attack),
                                ("nodes", num_nodes),
                                ("routing", routing),
                                ("compromised_node", compromised_node),
                            ),
                        )
                    )
    return tuple(cells)


register_cell_kind("cluster", _run_cluster)
