"""Fingerprint routing policies for the multi-node storage tier.

A scale-out dedup store places each chunk on exactly one node, decided by
its (ciphertext) fingerprint alone — routing must be a pure function of
the key so every front-end resolves the same owner without coordination.
Two policies are provided:

* :class:`HashRing` — consistent hashing.  Every node projects ``vnodes``
  virtual points onto a 64-bit ring (BLAKE2b of ``node:<id>:<replica>``);
  a fingerprint is owned by the first node point clockwise from its own
  hash.  Adding a node steals only the ranges its new points land in, so
  an expected ``K/N`` of ``K`` stored keys move — the bound
  :meth:`repro.cluster.cluster.DedupCluster.add_node` asserts — and every
  *surviving* node's shard only shrinks (shard nesting), which is what
  makes the partial-view leakage sweep monotone in cluster size.
* :class:`ModuloRouter` — the naive baseline: ``crc32(fp) % N``.  Uniform
  placement, but resizing from N to N+1 remaps an expected ``N/(N+1)`` of
  all keys; the rebalance bench quantifies the gap against the ring.

Both are deterministic across processes and reruns (no dependence on
``PYTHONHASHSEED``), which the routing-determinism tests pin down.

Use :func:`open_router` to build one from a CLI-friendly policy name
(``"ring"`` or ``"modulo"``).
"""

from __future__ import annotations

import hashlib
import zlib
from bisect import bisect_right
from typing import Iterable, Protocol, runtime_checkable

from repro.common.errors import ConfigurationError

ROUTING_POLICIES = ("ring", "modulo")
DEFAULT_VNODES = 64


@runtime_checkable
class Router(Protocol):
    """Pure fingerprint → node-id placement function.

    Contract (what the conformance tests in ``tests/unit/test_cluster.py``
    assert): :meth:`node_of` depends only on the key and the current node
    set; :meth:`add_node` / :meth:`remove_node` keep all other node ids
    valid; :attr:`node_ids` lists members in ascending order.
    """

    policy: str

    @property
    def node_ids(self) -> tuple[int, ...]: ...

    def node_of(self, key: bytes) -> int: ...

    def successors(self, key: bytes): ...

    def add_node(self, node_id: int) -> None: ...

    def remove_node(self, node_id: int) -> None: ...


def _check_new_node(node_ids: Iterable[int], node_id: int) -> None:
    if node_id in node_ids:
        raise ConfigurationError(f"node {node_id} is already in the router")


def _check_member(node_ids: Iterable[int], node_id: int) -> None:
    if node_id not in node_ids:
        raise ConfigurationError(f"node {node_id} is not in the router")


def _hash64(data: bytes) -> int:
    """64-bit position on the ring (BLAKE2b — stable across processes)."""
    return int.from_bytes(
        hashlib.blake2b(data, digest_size=8).digest(), "big"
    )


class HashRing:
    """Consistent-hash ring over chunk fingerprints.

    Args:
        node_ids: initial members (any iterable of ints).
        vnodes: virtual points per node.  More points flatten per-node
            load skew (the placement variance shrinks like ``1/vnodes``)
            at the cost of a larger token table; 64 keeps the max/mean
            load imbalance within ~1.3× at realistic shard counts.
    """

    policy = "ring"

    def __init__(self, node_ids: Iterable[int] = (), vnodes: int = DEFAULT_VNODES):
        if vnodes < 1:
            raise ConfigurationError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._members: set[int] = set()
        self._tokens: list[int] = []
        self._owners: list[int] = []
        for node_id in node_ids:
            self.add_node(node_id)
        # Token collisions across nodes are possible in principle (64-bit
        # hashes), but would silently merge ranges; refuse loudly instead.
        if len(set(self._tokens)) != len(self._tokens):
            raise ConfigurationError(
                "hash-ring token collision; change vnodes or node ids"
            )

    @property
    def node_ids(self) -> tuple[int, ...]:
        return tuple(sorted(self._members))

    def _points(self, node_id: int) -> list[int]:
        return [
            _hash64(b"node:%d:%d" % (node_id, replica))
            for replica in range(self.vnodes)
        ]

    def add_node(self, node_id: int) -> None:
        """Project the node's virtual points onto the ring."""
        _check_new_node(self._members, node_id)
        self._members.add(node_id)
        for token in self._points(node_id):
            index = bisect_right(self._tokens, token)
            self._tokens.insert(index, token)
            self._owners.insert(index, node_id)

    def remove_node(self, node_id: int) -> None:
        """Drop the node's virtual points; its ranges fall to successors."""
        _check_member(self._members, node_id)
        if len(self._members) == 1:
            raise ConfigurationError("cannot remove the last node")
        self._members.remove(node_id)
        kept = [
            (token, owner)
            for token, owner in zip(self._tokens, self._owners)
            if owner != node_id
        ]
        self._tokens = [token for token, _ in kept]
        self._owners = [owner for _, owner in kept]

    def node_of(self, key: bytes) -> int:
        """Owner of ``key``: first node point clockwise from its hash."""
        if not self._tokens:
            raise ConfigurationError("the ring has no nodes")
        index = bisect_right(self._tokens, _hash64(key))
        if index == len(self._tokens):
            index = 0  # wrap: past the last token the ring restarts
        return self._owners[index]

    def successors(self, key: bytes):
        """Distinct owners clockwise from ``key``'s position.

        The first yielded node is :meth:`node_of`; the rest are the
        ring-order failover sequence — the nodes whose ranges would
        absorb the key if the ones before them were down.  Every member
        appears exactly once.
        """
        if not self._tokens:
            raise ConfigurationError("the ring has no nodes")
        start = bisect_right(self._tokens, _hash64(key))
        count = len(self._tokens)
        seen: set[int] = set()
        for step in range(count):
            owner = self._owners[(start + step) % count]
            if owner not in seen:
                seen.add(owner)
                yield owner


class ModuloRouter:
    """The modulo-routing baseline: ``crc32(fp) % N``.

    Placement is uniform, but the mapping depends on the *count and order*
    of members: resizing remaps almost every key, which is exactly the
    behaviour the rebalance accounting contrasts with the ring.
    """

    policy = "modulo"

    def __init__(self, node_ids: Iterable[int] = ()):
        self._node_ids: list[int] = []
        for node_id in node_ids:
            self.add_node(node_id)

    @property
    def node_ids(self) -> tuple[int, ...]:
        return tuple(self._node_ids)

    def add_node(self, node_id: int) -> None:
        _check_new_node(self._node_ids, node_id)
        self._node_ids.append(node_id)
        self._node_ids.sort()

    def remove_node(self, node_id: int) -> None:
        _check_member(self._node_ids, node_id)
        if len(self._node_ids) == 1:
            raise ConfigurationError("cannot remove the last node")
        self._node_ids.remove(node_id)

    def node_of(self, key: bytes) -> int:
        if not self._node_ids:
            raise ConfigurationError("the router has no nodes")
        return self._node_ids[zlib.crc32(key) % len(self._node_ids)]

    def successors(self, key: bytes):
        """Members starting at the owner, cycling in ascending-id order.

        Modulo routing has no ring geometry, so the failover sequence is
        simply the sorted member list rotated to start at the owner.
        """
        if not self._node_ids:
            raise ConfigurationError("the router has no nodes")
        start = zlib.crc32(key) % len(self._node_ids)
        for step in range(len(self._node_ids)):
            yield self._node_ids[(start + step) % len(self._node_ids)]


def open_router(
    policy: str, num_nodes: int, vnodes: int = DEFAULT_VNODES
) -> Router:
    """Build a router over nodes ``0 .. num_nodes-1`` by policy name.

    Args:
        policy: ``"ring"`` (consistent hashing) or ``"modulo"``.
        num_nodes: cluster size; node ids are ``range(num_nodes)``.
        vnodes: virtual points per node (ring only).
    """
    if num_nodes < 1:
        raise ConfigurationError("num_nodes must be >= 1")
    if policy == "ring":
        return HashRing(range(num_nodes), vnodes=vnodes)
    if policy == "modulo":
        return ModuloRouter(range(num_nodes))
    raise ConfigurationError(
        f"unknown routing policy {policy!r}; choose from {ROUTING_POLICIES}"
    )
