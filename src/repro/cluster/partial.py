"""The partial-view adversary: frequency analysis over one node's shard.

The paper's adversary taps the *whole* shared store; in a scale-out
deployment a realistic compromise exposes one storage node — the slice of
the ciphertext stream whose fingerprints route to it.  The journal
version of the source paper (arXiv:1904.05736) frames leakage as a
function of what slice of the frequency distribution the adversary
observes; a per-shard COUNT is exactly that experiment.

:func:`shard_view` projects a backup onto one node's shard (preserving
arrival order — the compromised node sees its own chunks in the order
they arrived, so *within-shard* adjacency survives and the locality
attacks still have structure to traverse).  :func:`evaluate_partial_view`
then runs any paper attack over the projected ciphertext with the
adversary's **full** auxiliary knowledge (the prior backup is the
adversary's own plaintext — nothing shards it), and scores against the
whole target:

* the inference-rate denominator stays the *full* target's unique
  ciphertext chunk count, so the rate reads as "fraction of the backup
  the shard betrayed" and is comparable across cluster sizes;
* under ring routing a node's shard only shrinks as the cluster grows
  (shard nesting, see :mod:`repro.cluster.ring`), which is why the
  pinned-seed sweep in ``benchmarks/bench_cluster_scale.py`` is
  monotonically non-increasing in node count.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.attacks.base import Attack
from repro.attacks.evaluation import InferenceReport, sample_leakage
from repro.cluster.ring import DEFAULT_VNODES, Router, open_router
from repro.common.errors import ConfigurationError
from repro.datasets.model import Backup
from repro.defenses.pipeline import EncryptedBackup


@dataclass(frozen=True)
class PartialViewReport:
    """One partial-view attack outcome: the standard report plus shard
    accounting.

    Attributes:
        report: the :class:`~repro.attacks.evaluation.InferenceReport`
            scored with the full-target denominator (see module docs).
        nodes: cluster size the routing was computed over.
        routing: routing policy name (``"ring"`` / ``"modulo"``).
        compromised_node: the node whose shard the adversary observed.
        shard_chunks: ciphertext chunk *occurrences* routed to the node.
        shard_unique_chunks: unique ciphertext fingerprints in the shard.
        shard_fraction: shard unique chunks over the full target's unique
            chunks — the observed slice of the frequency distribution.
    """

    report: InferenceReport
    nodes: int
    routing: str
    compromised_node: int
    shard_chunks: int
    shard_unique_chunks: int
    shard_fraction: float

    def __str__(self) -> str:
        return (
            f"partial-view node {self.compromised_node}/{self.nodes} "
            f"({self.routing}): shard {self.shard_unique_chunks} unique "
            f"chunks ({self.shard_fraction:.2%} of target) -> {self.report}"
        )


def shard_view(backup: Backup, router: Router, node_id: int) -> Backup:
    """Project ``backup`` onto the shard node ``node_id`` owns.

    Returns the sub-stream of chunk occurrences whose fingerprints route
    to the node, in original arrival order.

    Args:
        backup: the full (ciphertext) chunk stream.
        router: the cluster's placement function.
        node_id: the compromised node.
    """
    fingerprints: list[bytes] = []
    sizes: list[int] = []
    node_of = router.node_of
    for fingerprint, size in zip(backup.fingerprints, backup.sizes):
        if node_of(fingerprint) == node_id:
            fingerprints.append(fingerprint)
            sizes.append(size)
    return Backup(
        label=f"{backup.label}@node{node_id}",
        fingerprints=fingerprints,
        sizes=sizes,
    )


def evaluate_partial_view(
    attack: Attack,
    target: EncryptedBackup,
    auxiliary: Backup,
    router: Router,
    compromised_node: int,
    scheme: str = "mle",
    leakage_rate: float = 0.0,
    seed: int = 0,
) -> PartialViewReport:
    """Run ``attack`` over one compromised node's shard of ``target``.

    The attack sees the shard's ciphertext sub-stream and the full
    auxiliary plaintext; leaked known-plaintext pairs (if any) are
    sampled from the full target and then restricted to pairs whose
    ciphertext chunk actually lives on the compromised node — a node
    compromise cannot leak pairs it does not store.

    Args:
        attack: any paper attack (basic / locality / advanced).
        target: the encrypted target backup (carries ground truth).
        auxiliary: the adversary's plaintext prior (full stream).
        router: the cluster's placement function.
        compromised_node: which node's shard the adversary observed.
        scheme: defense scheme label for the report.
        leakage_rate: known-plaintext leakage over the *full* target.
        seed: determinises the leakage sample.

    Returns:
        A :class:`PartialViewReport`; a shard with zero observed chunks
        scores an all-zero report instead of failing, so sweeps over
        large clusters stay total.
    """
    if compromised_node not in router.node_ids:
        raise ConfigurationError(
            f"compromised node {compromised_node} is not in the cluster "
            f"(nodes: {list(router.node_ids)})"
        )
    shard = shard_view(target.ciphertext, router, compromised_node)
    full_unique = target.unique_ciphertext_chunks
    shard_unique = len(set(shard.fingerprints))
    shard_fraction = shard_unique / full_unique if full_unique else 0.0
    nodes = len(router.node_ids)
    routing = getattr(router, "policy", "ring")

    leaked = sample_leakage(target, leakage_rate, seed)
    if leaked:
        visible = set(shard.fingerprints)
        leaked = {
            cipher_fp: plain_fp
            for cipher_fp, plain_fp in leaked.items()
            if cipher_fp in visible
        }

    if len(shard) == 0:
        report = InferenceReport(
            attack=attack.name,
            scheme=scheme,
            auxiliary_label=auxiliary.label,
            target_label=target.label,
            unique_ciphertext_chunks=full_unique,
            inferred_pairs=0,
            correct_pairs=0,
            leakage_rate=leakage_rate,
            leaked_pairs=0,
            iterations=0,
        )
        return PartialViewReport(
            report=report,
            nodes=nodes,
            routing=routing,
            compromised_node=compromised_node,
            shard_chunks=0,
            shard_unique_chunks=0,
            shard_fraction=0.0,
        )

    result = attack.run(shard, auxiliary, leaked or None)
    truth = target.truth
    correct = sum(
        1
        for cipher_fp, plain_fp in result.pairs.items()
        if truth.get(cipher_fp) == plain_fp
    )
    report = InferenceReport(
        attack=result.attack_name,
        scheme=scheme,
        auxiliary_label=auxiliary.label,
        target_label=target.label,
        # Full-target denominator: the rate reads as "fraction of the
        # whole backup the compromised shard betrayed".
        unique_ciphertext_chunks=full_unique,
        inferred_pairs=len(result.pairs),
        correct_pairs=correct,
        leakage_rate=leakage_rate,
        leaked_pairs=len(leaked),
        iterations=result.iterations,
    )
    return PartialViewReport(
        report=report,
        nodes=nodes,
        routing=routing,
        compromised_node=compromised_node,
        shard_chunks=len(shard),
        shard_unique_chunks=shard_unique,
        shard_fraction=round(shard_fraction, 6),
    )


def partial_view_report(
    attack: Attack,
    target: EncryptedBackup,
    auxiliary: Backup,
    nodes: int,
    routing: str = "ring",
    compromised_node: int = 0,
    vnodes: int = DEFAULT_VNODES,
    scheme: str = "mle",
    leakage_rate: float = 0.0,
    seed: int = 0,
) -> PartialViewReport:
    """Convenience wrapper building the router from ``(nodes, routing)``."""
    router = open_router(routing, nodes, vnodes=vnodes)
    return evaluate_partial_view(
        attack,
        target,
        auxiliary,
        router,
        compromised_node,
        scheme=scheme,
        leakage_rate=leakage_rate,
        seed=seed,
    )
