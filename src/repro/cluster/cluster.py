"""Multi-node dedup storage tier: N engines behind one router.

:class:`DedupCluster` fronts N independent :class:`~repro.storage.ddfs.DDFSEngine`
nodes — each with its own fingerprint cache, Bloom filter, container
store and on-disk index (any :class:`~repro.index.backends.KVBackend`) —
behind a :class:`~repro.cluster.ring.Router`.  A chunk lives on exactly
the node its ciphertext fingerprint routes to, so the node set *shards
the fingerprint space*: compromising one node exposes one shard of the
frequency distribution, the partial-view adversary of
:mod:`repro.cluster.partial`.

The cluster implements the same storage-tier operations
:class:`~repro.service.server.DedupService` drives against a single
engine (dedup response → batched per-node index probes → per-node
unique-chunk ingest), plus what only a cluster has:

* **per-node metering** — chunks/bytes stored, index probes served and
  ingest bandwidth received per node (:meth:`load_report`), with the
  skew summary (max/mean imbalance, coefficient of variation) that
  shows consistent hashing's placement quality;
* **elastic membership** — :meth:`add_node` / :meth:`remove_node` with
  incremental rebalancing: only keys whose route changed move, and the
  returned :class:`RebalanceReport` accounts every moved key and byte
  against the theoretical bound (``K/N`` of ``K`` keys for a ring of N
  nodes; nearly everything for modulo routing);
* **failure and failover** — :meth:`kill_node` / :meth:`restart_node`
  (driven by the ``node.kill`` / ``node.restart`` fault sites during
  :meth:`ingest`) take a node through ``up → down → degraded → up``.
  The *metadata plane* — index probes, engine ingest, the authoritative
  per-node chunk maps and bandwidth meters — is modeled as replicated
  and stays live while a node is down, so every leakage observable and
  :meth:`load_report` is byte-identical to a fault-free run.  Only the
  *data plane* fails over: chunks owned by a down node are physically
  parked on the next healthy ring successor (shadow
  ``failover_chunks``), accounted in a :class:`DegradedReport`, and
  re-homed on rejoin — with the rejoin move asserted against the same
  ``K/N``-style bound as rebalancing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import faults, obs
from repro.common.errors import ConfigurationError, StorageError
from repro.common.units import KiB, MiB
from repro.storage.ddfs import DDFSEngine
from repro.cluster.ring import DEFAULT_VNODES, Router, open_router


@dataclass
class ClusterNode:
    """One storage node: an engine plus the shard it owns.

    ``chunks`` is the node's authoritative shard content (fingerprint →
    chunk size): it is what rebalancing enumerates and what the load
    report measures.  ``received_bytes`` counts ingest bandwidth into
    the node (client transfers plus rebalance traffic);
    ``index_probes`` counts dedup-response probes served.

    ``health`` is the failure state (``"up"``, ``"degraded"`` while a
    rejoin re-homes parked data, ``"down"``).  ``failover_chunks`` is
    the *shadow* data plane: chunks this node physically holds on
    behalf of a down owner.  Shadow state never leaks into ``chunks``
    or the meters, which is what keeps :meth:`DedupCluster.load_report`
    byte-identical under injected node kills.
    """

    node_id: int
    engine: DDFSEngine
    chunks: dict[bytes, int] = field(default_factory=dict)
    received_bytes: int = 0
    rebalance_bytes: int = 0
    index_probes: int = 0
    health: str = "up"
    failover_chunks: dict[bytes, int] = field(default_factory=dict)

    @property
    def stored_bytes(self) -> int:
        return sum(self.chunks.values())


@dataclass(frozen=True)
class RebalanceReport:
    """Moved-key accounting for one membership change.

    ``theoretical_fraction`` is the expected moved fraction for the
    routing policy: ``1/N`` (ring, N nodes after an add; the removed
    node's share on a remove) versus ``(N-1)/N`` for modulo resizing.
    """

    action: str
    node_id: int
    routing: str
    nodes_before: int
    nodes_after: int
    total_keys: int
    moved_keys: int
    moved_bytes: int
    per_node_moves: tuple[tuple[int, int], ...]

    @property
    def moved_fraction(self) -> float:
        if self.total_keys == 0:
            return 0.0
        return self.moved_keys / self.total_keys

    @property
    def theoretical_fraction(self) -> float:
        if self.routing == "ring":
            return 1.0 / self.nodes_after if self.action == "add" else (
                1.0 / self.nodes_before
            )
        # Modulo resizing remaps everything that lands on a different
        # residue — all but 1/max(N_before, N_after) in expectation.
        return 1.0 - 1.0 / max(self.nodes_before, self.nodes_after)

    def within_bound(self, slack: float = 1.5, absolute: int = 16) -> bool:
        """Whether the move stayed within ``theoretical × slack + absolute``
        keys — the acceptance check the cluster bench and tests assert
        for ring routing (vnode placement has variance, hence the slack)."""
        bound = self.theoretical_fraction * self.total_keys * slack + absolute
        return self.moved_keys <= bound


@dataclass(frozen=True)
class DegradedReport:
    """Accounting for one node's down → rejoined excursion.

    ``unreachable_keys`` is the size of the node's shard at kill time
    (the keys a client could not physically reach, even though the
    replicated metadata plane kept answering for them).
    ``failover_keys`` / ``failover_bytes`` is the data-plane traffic
    parked on ring successors while the node was down, and
    ``failover_probes`` the extra placement probes spent skipping
    unhealthy nodes to find each chunk a home.  ``rejoin_moved_keys`` /
    ``rejoin_moved_bytes`` is the re-homing move at restart.
    ``killed_after_ingests`` / ``rejoined_after_ingests`` anchor the
    outage window in ingest-call time (deterministic, not wall-clock).
    """

    node_id: int
    killed_after_ingests: int
    rejoined_after_ingests: int
    unreachable_keys: int
    failover_keys: int
    failover_bytes: int
    failover_probes: int
    rejoin_moved_keys: int
    rejoin_moved_bytes: int

    def within_bound(
        self,
        total_keys: int,
        nodes: int,
        slack: float = 1.5,
        absolute: int = 16,
    ) -> bool:
        """Whether the rejoin move stayed within the ``K/N`` bound.

        ``total_keys`` is the number of keys ingested during the outage
        window; the down node owns an expected ``1/nodes`` of them, so
        the re-homed shadow data must fit ``total_keys / nodes × slack
        + absolute`` — the same shape as
        :meth:`RebalanceReport.within_bound`.
        """
        if nodes < 1:
            raise ConfigurationError("nodes must be >= 1")
        bound = total_keys / nodes * slack + absolute
        return self.rejoin_moved_keys <= bound

    def to_dict(self) -> dict[str, int]:
        return {
            "node": self.node_id,
            "killed_after_ingests": self.killed_after_ingests,
            "rejoined_after_ingests": self.rejoined_after_ingests,
            "unreachable_keys": self.unreachable_keys,
            "failover_keys": self.failover_keys,
            "failover_bytes": self.failover_bytes,
            "failover_probes": self.failover_probes,
            "rejoin_moved_keys": self.rejoin_moved_keys,
            "rejoin_moved_bytes": self.rejoin_moved_bytes,
        }


class DedupCluster:
    """N dedup engines behind a consistent-hash (or modulo) router.

    Args:
        nodes: initial cluster size; node ids are ``range(nodes)``.
        routing: placement policy — ``"ring"`` or ``"modulo"``
            (:func:`~repro.cluster.ring.open_router`).
        vnodes: virtual points per ring node.
        index_backend: per-node index backend spec (``"memory"``,
            ``"sqlite"``, ``"sharded[:N]"``, …) or ``None`` for the
            default in-process store.
        index_path: base path for file-backed node indexes; node *i*
            persists under ``<index_path>/node-<i>``.
        cache_budget_bytes / bloom_capacity / container_size /
        entry_bytes: per-node engine knobs (service-scale defaults).
    """

    def __init__(
        self,
        nodes: int = 2,
        routing: str = "ring",
        vnodes: int = DEFAULT_VNODES,
        index_backend=None,
        index_path=None,
        cache_budget_bytes: int = 256 * KiB,
        bloom_capacity: int = 1_000_000,
        container_size: int = 1 * MiB,
        entry_bytes: int = 32,
    ):
        if nodes < 1:
            raise ConfigurationError("a cluster needs at least one node")
        if index_path is not None and index_backend is None:
            raise ConfigurationError(
                "index_path requires an index_backend spec string"
            )
        self.routing = routing
        self.router: Router = open_router(routing, nodes, vnodes=vnodes)
        self._engine_kwargs = dict(
            cache_budget_bytes=cache_budget_bytes,
            bloom_capacity=bloom_capacity,
            container_size=container_size,
            entry_bytes=entry_bytes,
        )
        self._index_backend = index_backend
        self._index_path = index_path
        self.entry_bytes = entry_bytes
        self.nodes: dict[int, ClusterNode] = {
            node_id: self._new_node(node_id) for node_id in range(nodes)
        }
        self.rebalances: list[RebalanceReport] = []
        self.degraded_reports: list[DegradedReport] = []
        self._degraded: dict[int, dict[str, int]] = {}
        self._ingest_calls = 0

    def _new_node(self, node_id: int) -> ClusterNode:
        path = None
        if self._index_path is not None:
            from pathlib import Path

            path = str(Path(self._index_path) / f"node-{node_id:02d}")
        engine = DDFSEngine(
            index_backend=self._index_backend,
            index_path=path,
            **self._engine_kwargs,
        )
        return ClusterNode(node_id=node_id, engine=engine)

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def node_of(self, fingerprint: bytes) -> int:
        """The node id owning ``fingerprint`` under the current routing."""
        return self.router.node_of(fingerprint)

    # -- the service storage-tier operations --------------------------------

    def dedup_response(self, unique: dict[bytes, int]) -> set[bytes]:
        """Resolve an upload's unique fingerprints to the needed-set.

        Mirrors the single-engine dedup response per owning node: the
        node's in-memory state first (fingerprint cache, open container
        buffer), then one batched probe of the node's on-disk index, and
        step-S4 container prefetch for confirmed duplicates.  Nodes are
        probed in ascending id order, so the response is deterministic
        regardless of dict iteration oddities upstream.
        """
        per_node: dict[int, list[bytes]] = {}
        for fingerprint in unique:
            node = self.nodes[self.router.node_of(fingerprint)]
            if node.engine.cache.lookup(fingerprint) is not None:
                continue
            if node.engine.containers.in_open_buffer(fingerprint):
                continue
            per_node.setdefault(node.node_id, []).append(fingerprint)
        needed: set[bytes] = set()
        for node_id in sorted(per_node):
            node = self.nodes[node_id]
            candidates = per_node[node_id]
            node.index_probes += len(candidates)
            known = node.engine.index.lookup_batch(candidates)
            needed.update(fp for fp in candidates if fp not in known)
            prefetched: set[int] = set()
            for fingerprint in candidates:
                container_id = known.get(fingerprint)
                if container_id is not None and container_id not in prefetched:
                    prefetched.add(container_id)
                    node.engine.prefetch_container(container_id)
        return needed

    def ingest(self, fingerprints: list[bytes], sizes: list[int]) -> None:
        """Store a batch of resolved-unique chunks on their owning nodes.

        The batch is split per node preserving stream order, so each
        node's containers fill in the order its chunks arrived — chunk
        locality survives sharding *within* a shard.

        Each call is one tick of the ``node.kill`` / ``node.restart``
        fault sites, so an installed :class:`~repro.faults.FaultPlan`
        can fail a node after exactly N ingests and rejoin it M ingests
        later.  The metadata plane below runs unchanged either way;
        only the shadow data-plane placement differs for down owners.
        """
        self._ingest_calls += 1
        kill = faults.fire("node.kill", ingest=self._ingest_calls)
        if kill is not None:
            self.kill_node(int(kill.get("node", 0)))
        restart = faults.fire("node.restart", ingest=self._ingest_calls)
        if restart is not None:
            self.restart_node(int(restart.get("node", 0)))
        per_node: dict[int, tuple[list[bytes], list[int]]] = {}
        for fingerprint, size in zip(fingerprints, sizes):
            node_id = self.router.node_of(fingerprint)
            batch = per_node.get(node_id)
            if batch is None:
                batch = per_node[node_id] = ([], [])
            batch[0].append(fingerprint)
            batch[1].append(size)
        for node_id in sorted(per_node):
            node = self.nodes[node_id]
            node_fps, node_sizes = per_node[node_id]
            node.engine.ingest_unique_batch(node_fps, node_sizes)
            for fingerprint, size in zip(node_fps, node_sizes):
                node.chunks[fingerprint] = size
            node.received_bytes += sum(node_sizes)
            if node.health == "down":
                self._park_failover(node, node_fps, node_sizes)

    def store_stream(self, fingerprints, sizes) -> int:
        """Deduplicate-and-store a raw chunk stream (bench/test path).

        Runs the full dedup response + ingest for the stream's unique
        fingerprints; returns how many chunks were actually stored.
        """
        unique: dict[bytes, int] = {}
        for fingerprint, size in zip(fingerprints, sizes):
            if fingerprint not in unique:
                unique[fingerprint] = size
        needed = self.dedup_response(unique)
        batch_fps = [fp for fp in unique if fp in needed]
        batch_sizes = [unique[fp] for fp in batch_fps]
        self.ingest(batch_fps, batch_sizes)
        return len(batch_fps)

    @property
    def metadata_bytes(self) -> int:
        """Metadata bytes moved across all node indexes (running total)."""
        return sum(
            node.engine.index.stats.total_bytes for node in self.nodes.values()
        )

    @property
    def stored_bytes(self) -> int:
        """Physical bytes across every node's shard contents.

        Counted from the authoritative per-node chunk maps rather than
        container stores: a rebalance re-homes a chunk logically without
        rewriting the source node's sealed containers (space there is
        reclaimed by GC, out of scope for the simulation's accounting).
        """
        return sum(node.stored_bytes for node in self.nodes.values())

    def unique_chunks_stored(self) -> int:
        """Unique chunks the cluster holds (shard contents summed)."""
        return sum(len(node.chunks) for node in self.nodes.values())

    def finish_backup(self) -> None:
        """Seal every node's open container (backup boundary)."""
        for node_id in sorted(self.nodes):
            self.nodes[node_id].engine.finish_backup()

    def close(self) -> None:
        """Seal open containers and release every node's index backend."""
        for node_id in sorted(self.nodes):
            node = self.nodes[node_id]
            node.engine.finish_backup()
            node.engine.index.close()

    # -- failure and failover ------------------------------------------------

    def kill_node(self, node_id: int) -> None:
        """Mark a node down and open its :class:`DegradedReport` window.

        Idempotent — killing an already-down node is a no-op.  The node
        stays a router member (its metadata is replicated), but until
        :meth:`restart_node` every chunk routed to it is physically
        parked on the next healthy successor.
        """
        if node_id not in self.nodes:
            raise ConfigurationError(f"node {node_id} does not exist")
        node = self.nodes[node_id]
        if node.health == "down":
            return
        node.health = "down"
        self._degraded[node_id] = {
            "killed_after_ingests": self._ingest_calls,
            "unreachable_keys": len(node.chunks),
            "failover_keys": 0,
            "failover_bytes": 0,
            "failover_probes": 0,
        }

    def restart_node(self, node_id: int) -> DegradedReport | None:
        """Rejoin a down node: re-home its parked shadow data.

        The node passes through ``degraded`` while every
        ``failover_chunks`` entry it owns is pulled back from its
        holders (the authoritative ``chunks`` map never left, so the
        move is pure data-plane traffic), then returns to ``up``.
        Returns the completed :class:`DegradedReport`, or ``None`` if
        the node was not down.
        """
        if node_id not in self.nodes:
            raise ConfigurationError(f"node {node_id} does not exist")
        node = self.nodes[node_id]
        if node.health != "down":
            return None
        node.health = "degraded"
        moved_keys = 0
        moved_bytes = 0
        for holder_id in sorted(self.nodes):
            holder = self.nodes[holder_id]
            if holder_id == node_id or not holder.failover_chunks:
                continue
            returning = [
                (fingerprint, size)
                for fingerprint, size in holder.failover_chunks.items()
                if self.router.node_of(fingerprint) == node_id
            ]
            for fingerprint, size in returning:
                del holder.failover_chunks[fingerprint]
                moved_keys += 1
                moved_bytes += size
        node.health = "up"
        record = self._degraded.pop(node_id)
        report = DegradedReport(
            node_id=node_id,
            killed_after_ingests=record["killed_after_ingests"],
            rejoined_after_ingests=self._ingest_calls,
            unreachable_keys=record["unreachable_keys"],
            failover_keys=record["failover_keys"],
            failover_bytes=record["failover_bytes"],
            failover_probes=record["failover_probes"],
            rejoin_moved_keys=moved_keys,
            rejoin_moved_bytes=moved_bytes,
        )
        self.degraded_reports.append(report)
        return report

    def _park_failover(
        self, owner: ClusterNode, fingerprints: list[bytes], sizes: list[int]
    ) -> None:
        """Physically park a down owner's chunks on healthy successors."""
        record = self._degraded[owner.node_id]
        for fingerprint, size in zip(fingerprints, sizes):
            holder, probes = self._pick_failover(fingerprint, owner.node_id)
            holder.failover_chunks[fingerprint] = size
            record["failover_keys"] += 1
            record["failover_bytes"] += size
            record["failover_probes"] += probes
            obs.counter("faults.failovers", node=str(owner.node_id))

    def _pick_failover(
        self, fingerprint: bytes, owner_id: int
    ) -> tuple[ClusterNode, int]:
        """The first healthy node clockwise past the owner, plus how
        many placement probes it took to find (each unhealthy candidate
        examined costs one probe — the bandwidth price of failover)."""
        probes = 0
        for candidate_id in self.router.successors(fingerprint):
            if candidate_id == owner_id:
                continue
            probes += 1
            candidate = self.nodes[candidate_id]
            if candidate.health != "down":
                return candidate, probes
        raise StorageError(
            f"no healthy node to fail over to for owner {owner_id}"
        )

    def health_report(self) -> dict[str, object]:
        """Node health plus degradation accounting (JSON-serializable).

        Separate from :meth:`load_report` by design: the load report's
        shape is pinned by goldens and must stay byte-identical under
        injected faults, while this report only exists to *show* them.
        """
        active = [
            {"node": node_id, **dict(record)}
            for node_id, record in sorted(self._degraded.items())
        ]
        return {
            "health": {
                str(node_id): self.nodes[node_id].health
                for node_id in sorted(self.nodes)
            },
            "parked_chunks": sum(
                len(node.failover_chunks) for node in self.nodes.values()
            ),
            "active": active,
            "degraded": [
                report.to_dict() for report in self.degraded_reports
            ],
        }

    # -- elastic membership --------------------------------------------------

    def add_node(self, node_id: int | None = None) -> RebalanceReport:
        """Join a new node and incrementally rebalance onto it.

        Only keys whose route changed move — for ring routing that is
        exactly the keys the new node's virtual points stole, an
        expected ``K/N`` of ``K`` stored keys (asserted against
        :meth:`RebalanceReport.within_bound` by the cluster bench).
        """
        if node_id is None:
            node_id = max(self.nodes) + 1
        if node_id in self.nodes:
            raise ConfigurationError(f"node {node_id} already exists")
        before = self.num_nodes
        self.nodes[node_id] = self._new_node(node_id)
        self.router.add_node(node_id)
        report = self._rebalance("add", node_id, before)
        self.rebalances.append(report)
        return report

    def remove_node(self, node_id: int) -> RebalanceReport:
        """Drain a node and retire it.

        The drained shard re-homes onto the survivors, and — like
        :meth:`add_node` — *every* surviving key whose route changed
        moves too: under ring routing that is nobody (the removed
        node's ranges fall to its successors), but modulo routing
        remaps residues across all nodes on resize, and placement must
        stay consistent with the router either way.
        """
        if node_id not in self.nodes:
            raise ConfigurationError(f"node {node_id} does not exist")
        if self.num_nodes == 1:
            raise ConfigurationError("cannot remove the last node")
        before = self.num_nodes
        self.router.remove_node(node_id)
        drained = self.nodes.pop(node_id)
        drained.engine.finish_backup()
        drained.engine.index.close()
        report = self._rebalance(
            "remove", node_id, before, homeless=drained.chunks
        )
        self.rebalances.append(report)
        return report

    def _rebalance(
        self,
        action: str,
        node_id: int,
        nodes_before: int,
        homeless: dict[bytes, int] | None = None,
    ) -> RebalanceReport:
        """Move every stored key whose route changed to its new owner.

        ``homeless`` chunks (a just-drained node's shard) no longer have
        an owner at all; each one moves by definition.
        """
        total_keys = self.unique_chunks_stored() + len(homeless or ())
        moved: dict[int, tuple[list[bytes], list[int]]] = {}
        moved_keys = 0
        moved_bytes = 0
        for fingerprint, size in (homeless or {}).items():
            target = self.router.node_of(fingerprint)
            batch = moved.setdefault(target, ([], []))
            batch[0].append(fingerprint)
            batch[1].append(size)
            moved_keys += 1
            moved_bytes += size
        for source_id in sorted(self.nodes):
            source = self.nodes[source_id]
            relocating = [
                (fingerprint, size)
                for fingerprint, size in source.chunks.items()
                if self.router.node_of(fingerprint) != source_id
            ]
            for fingerprint, size in relocating:
                del source.chunks[fingerprint]
                source.engine.index.remove(fingerprint)
                target = self.router.node_of(fingerprint)
                batch = moved.setdefault(target, ([], []))
                batch[0].append(fingerprint)
                batch[1].append(size)
                moved_keys += 1
                moved_bytes += size
        per_node = self._apply_moves(moved)
        return RebalanceReport(
            action=action,
            node_id=node_id,
            routing=self.routing,
            nodes_before=nodes_before,
            nodes_after=self.num_nodes,
            total_keys=total_keys,
            moved_keys=moved_keys,
            moved_bytes=moved_bytes,
            per_node_moves=per_node,
        )

    def _apply_moves(
        self, moved: dict[int, tuple[list[bytes], list[int]]]
    ) -> tuple[tuple[int, int], ...]:
        """Ingest relocated chunks on their new owners; returns
        ``(node_id, keys_received)`` pairs in node order."""
        per_node: list[tuple[int, int]] = []
        for target_id in sorted(moved):
            target = self.nodes[target_id]
            batch_fps, batch_sizes = moved[target_id]
            target.engine.ingest_unique_batch(batch_fps, batch_sizes)
            for fingerprint, size in zip(batch_fps, batch_sizes):
                target.chunks[fingerprint] = size
            transferred = sum(batch_sizes)
            target.received_bytes += transferred
            target.rebalance_bytes += transferred
            per_node.append((target_id, len(batch_fps)))
        return tuple(per_node)

    # -- metering ------------------------------------------------------------

    def load_report(self) -> dict[str, object]:
        """Per-node load plus the skew summary (JSON-serializable).

        ``imbalance`` is max/mean chunks per node (1.0 = perfectly even);
        ``cv`` is the coefficient of variation of per-node chunk counts.
        """
        per_node = [
            {
                "node": node_id,
                "chunks": len(self.nodes[node_id].chunks),
                "stored_bytes": self.nodes[node_id].stored_bytes,
                "received_bytes": self.nodes[node_id].received_bytes,
                "rebalance_bytes": self.nodes[node_id].rebalance_bytes,
                "index_probes": self.nodes[node_id].index_probes,
                "metadata_bytes": self.nodes[
                    node_id
                ].engine.index.stats.total_bytes,
            }
            for node_id in sorted(self.nodes)
        ]
        counts = [entry["chunks"] for entry in per_node]
        mean = sum(counts) / len(counts) if counts else 0.0
        if mean > 0:
            variance = sum((count - mean) ** 2 for count in counts) / len(counts)
            cv = (variance**0.5) / mean
            imbalance = max(counts) / mean
        else:
            cv = 0.0
            imbalance = 1.0
        return {
            "nodes": self.num_nodes,
            "routing": self.routing,
            "total_chunks": sum(counts),
            "skew": {
                "mean_chunks": round(mean, 2),
                "max_chunks": max(counts) if counts else 0,
                "min_chunks": min(counts) if counts else 0,
                "imbalance": round(imbalance, 4),
                "cv": round(cv, 4),
            },
            "per_node": per_node,
            "rebalances": [
                {
                    "action": report.action,
                    "node": report.node_id,
                    "moved_keys": report.moved_keys,
                    "moved_bytes": report.moved_bytes,
                    "total_keys": report.total_keys,
                    "moved_fraction": round(report.moved_fraction, 4),
                    "theoretical_fraction": round(
                        report.theoretical_fraction, 4
                    ),
                }
                for report in self.rebalances
            ],
        }
