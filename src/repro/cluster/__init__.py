"""Multi-node dedup cluster: routing, rebalancing, partial-view leakage.

The ROADMAP north-star is a service carrying millions of users, which in
practice is a scale-out cluster of storage nodes — and a realistic
compromise then exposes only *one node's shard* of the fingerprint
space.  This package provides that setting:

* :mod:`repro.cluster.ring` — deterministic fingerprint routing: a
  consistent-hash ring (virtual nodes, ``K/N`` moved keys on resize)
  plus the modulo baseline that remaps nearly everything;
* :mod:`repro.cluster.cluster` — ``DedupCluster``, N independent
  :class:`~repro.storage.ddfs.DDFSEngine` nodes behind a router, with
  per-node load/bandwidth metering, skew reporting, and elastic
  add/remove-node rebalancing with moved-key accounting;
* :mod:`repro.cluster.partial` — the partial-view adversary: any paper
  attack run over one compromised node's shard, scored against the full
  target so inference rates compare across cluster sizes;
* :mod:`repro.cluster.cells` — the ``cluster`` scenario cell kind and
  the ``nodes × routing × defense`` grid the cluster bench sweeps.

``DedupService`` runs on top of this tier when configured with
``nodes > 1`` (see :mod:`repro.service.server`); ``freqdedup serve-sim
--nodes N --routing ring|modulo`` and ``freqdedup attack
--nodes N --compromised-node K`` expose it from the CLI.
"""

from repro.cluster.cluster import ClusterNode, DedupCluster, RebalanceReport
from repro.cluster.partial import (
    PartialViewReport,
    evaluate_partial_view,
    partial_view_report,
    shard_view,
)
from repro.cluster.ring import (
    DEFAULT_VNODES,
    ROUTING_POLICIES,
    HashRing,
    ModuloRouter,
    Router,
    open_router,
)

__all__ = [
    "ClusterNode",
    "DEFAULT_VNODES",
    "DedupCluster",
    "HashRing",
    "ModuloRouter",
    "PartialViewReport",
    "ROUTING_POLICIES",
    "RebalanceReport",
    "Router",
    "evaluate_partial_view",
    "open_router",
    "partial_view_report",
    "shard_view",
]
