"""Synthetic snapshot chain (§5.1, Lillibridge et al.'s approach [44]).

The paper builds this dataset from a public Ubuntu 14.04 image: starting
from the initial snapshot, each subsequent snapshot randomly picks 2 % of
files, modifies 2.5 % of their content, and adds 10 MB of new data, for ten
snapshots (storage saving ≈ 90 %). The *initial* snapshot is publicly
available, which the paper uses to study attacks with public auxiliary
information (the zeroth auxiliary backup in Figs. 5b/6b).

We reproduce the construction at reduced scale with the same mutation
schedule expressed as fractions. Scan order is shuffled per snapshot —
image re-packaging does not preserve a stable file traversal — which keeps
cross-file adjacency noisy and inference rates in the paper's modest range
despite the tiny per-snapshot churn.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.common.rng import rng_from
from repro.datasets.chunkspace import ChunkSpace, PopularPool, SizeModel
from repro.datasets.filesim import (
    FileMutator,
    SimFileSystem,
    TemplateLibrary,
    snapshot,
)
from repro.datasets.model import BackupSeries


@dataclass
class SyntheticConfig:
    """Knobs for the synthetic generator (defaults target bench scale).

    ``modify_file_fraction`` / ``content_churn`` / ``new_data_fraction``
    follow the paper's 2 % / 2.5 % / (10 MB ≈ 1 % of the image) schedule.
    """

    num_files: int = 320
    mean_file_chunks: int = 40
    num_snapshots: int = 10
    modify_file_fraction: float = 0.02
    content_churn: float = 0.025
    new_data_fraction: float = 0.009
    num_templates: int = 70
    template_zipf_exponent: float = 1.35
    common_file_probability: float = 0.10
    popular_pool_size: int = 120
    popular_zipf_exponent: float = 1.3
    popular_rate: float = 0.015
    shuffle_scan_order: bool = False
    scan_disorder: float = 0.12
    min_chunk_size: int = 2048
    avg_chunk_size: int = 8192
    max_chunk_size: int = 65536
    size_quantum: int = 2048
    fingerprint_bytes: int = 20

    def __post_init__(self) -> None:
        if self.num_files <= 0 or self.num_snapshots <= 0:
            raise ConfigurationError(
                "num_files and num_snapshots must be positive"
            )


class SyntheticDatasetGenerator:
    """Generates the synthetic :class:`~repro.datasets.model.BackupSeries`.

    The series contains ``num_snapshots + 1`` backups: index 0 is the
    *initial* (publicly available) snapshot, indices 1..n are the derived
    snapshots, matching the paper's numbering where the zeroth auxiliary
    backup is the public image.
    """

    def __init__(self, seed: int = 1404, config: SyntheticConfig | None = None):
        self.seed = seed
        self.config = config or SyntheticConfig()

    def generate(self) -> BackupSeries:
        cfg = self.config
        chunk_space = ChunkSpace(
            namespace=f"synthetic-{self.seed}",
            fingerprint_bytes=cfg.fingerprint_bytes,
            size_model=SizeModel(
                kind="variable",
                min_size=cfg.min_chunk_size,
                avg_size=cfg.avg_chunk_size,
                max_size=cfg.max_chunk_size,
                size_quantum=cfg.size_quantum,
            ),
        )
        pool = PopularPool.build(
            chunk_space,
            rng_from(self.seed, "synthetic-pool"),
            num_runs=cfg.popular_pool_size,
            exponent=cfg.popular_zipf_exponent,
        )
        mutator = FileMutator(chunk_space, pool, cfg.popular_rate)
        library = TemplateLibrary(
            mutator,
            rng_from(self.seed, "synthetic-templates"),
            num_templates=cfg.num_templates,
            mean_chunks=cfg.mean_file_chunks,
            exponent=cfg.template_zipf_exponent,
        )

        filesystem = self._initial_image(mutator, library)
        initial_chunks = filesystem.total_chunks()

        series = BackupSeries(name="synthetic", chunking="variable")
        for index in range(cfg.num_snapshots + 1):
            if index > 0:
                self._evolve(filesystem, index, initial_chunks, mutator)
            rng = rng_from(self.seed, "synthetic-scan", index)
            series.backups.append(
                snapshot(
                    filesystem,
                    chunk_space,
                    label=f"snapshot-{index:02d}",
                    rng=rng,
                    shuffle_order=cfg.shuffle_scan_order,
                    scan_disorder=cfg.scan_disorder,
                )
            )
        return series

    def generate_columnar(self, directory):
        """Materialize the series into the columnar on-disk layout at
        ``directory`` (generate once, mmap thereafter): a completed trace
        with matching seed/scale is reopened instead of regenerated."""
        from repro.datasets.columnar import ensure_series_columnar

        cfg = self.config
        return ensure_series_columnar(
            directory,
            self.generate,
            params={
                "source": "synthetic",
                "seed": self.seed,
                "num_snapshots": cfg.num_snapshots,
                "fingerprint_bytes": cfg.fingerprint_bytes,
            },
        )

    # -- internals ----------------------------------------------------------

    def _file_length(self, rng) -> int:
        mean = self.config.mean_file_chunks
        length = int(rng.lognormvariate(0.0, 0.7) * mean * 0.8)
        return max(2, min(length, mean * 6))

    def _initial_image(
        self, mutator: FileMutator, library: TemplateLibrary
    ) -> SimFileSystem:
        """Build the initial image; like real OS images it contains some
        internally duplicated files (locales, timezone copies, firmware
        variants), modelled by the template library."""
        cfg = self.config
        rng = rng_from(self.seed, "synthetic-init")
        filesystem = SimFileSystem()
        for index in range(cfg.num_files):
            path = f"image/f{index:05d}"
            if rng.random() < cfg.common_file_probability:
                filesystem.add(library.instantiate(path, rng))
            else:
                filesystem.add(
                    mutator.create_file(path, rng, self._file_length(rng))
                )
        return filesystem

    def _evolve(
        self,
        filesystem: SimFileSystem,
        index: int,
        initial_chunks: int,
        mutator: FileMutator,
    ) -> None:
        cfg = self.config
        rng = rng_from(self.seed, "synthetic-evolve", index)
        paths = filesystem.paths()
        num_modified = max(1, int(len(paths) * cfg.modify_file_fraction))
        for path in rng.sample(paths, num_modified):
            mutator.modify_file(
                filesystem.get(path), rng, churn=cfg.content_churn
            )
        new_chunks = max(1, int(initial_chunks * cfg.new_data_fraction))
        added = 0
        file_index = 0
        while added < new_chunks:
            length = min(self._file_length(rng), new_chunks - added)
            path = f"image/s{index:02d}-n{file_index:04d}"
            filesystem.add(mutator.create_file(path, rng, max(1, length)))
            added += max(1, length)
            file_index += 1
