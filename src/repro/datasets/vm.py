"""VM-like backup workload (§5.1, substitution 2 in DESIGN.md).

Models the paper's private course dataset: student VM image snapshots taken
weekly for 13 weeks, 4 KB *fixed-size* chunks (so the advanced attack
reduces to the plain locality-based attack), zero-filled chunks already
removed. The defining properties reproduced here:

* **very high cross-user redundancy** — every image derives from the same
  base OS image, giving the dataset its large dedup ratio;
* **a heavy-churn window** — the paper observes that backups in the middle
  of the term (weeks ~5–8) have low content redundancy with the final
  backup ("users have heavy activities during these weeks"), which makes
  the inference rate collapse when those weeks serve as auxiliary
  information (Fig. 5c) or target (Fig. 6c) and fluctuate across the
  sliding window (Fig. 7c);
* **fixed chunk size** — all chunks are ``chunk_size`` bytes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.common.rng import rng_from
from repro.datasets.chunkspace import ChunkSpace, PopularPool, SizeModel
from repro.datasets.filesim import FileMutator, SimFile
from repro.datasets.model import Backup, BackupSeries


@dataclass
class VMConfig:
    """Knobs for the VM-like generator (defaults target bench scale)."""

    num_vms: int = 16
    num_backups: int = 13
    base_image_chunks: int = 2600
    user_region_chunks: int = 1100
    base_patch_fraction: float = 0.02
    quiet_churn: float = 0.12
    weekly_churn: float = 0.34
    heavy_churn: float = 0.62
    quiet_weeks: tuple[int, ...] = (0, 1, 2)
    heavy_weeks: tuple[int, ...] = (4, 5, 6, 7)
    popular_pool_size: int = 150
    popular_zipf_exponent: float = 1.3
    popular_rate: float = 0.03
    chunk_size: int = 4096
    fingerprint_bytes: int = 20

    def __post_init__(self) -> None:
        if self.num_vms <= 0 or self.num_backups <= 0:
            raise ConfigurationError("num_vms and num_backups must be positive")
        if any(week < 0 or week >= self.num_backups for week in self.heavy_weeks):
            raise ConfigurationError("heavy_weeks must index valid backups")

    def churn_for_transition(self, from_week: int) -> float:
        """User-region churn applied when evolving week ``from_week`` into
        week ``from_week + 1``. The term's shape (§5.1 substitution 2):
        quiet start, heavy mid-term project weeks, moderate tail."""
        if from_week in self.heavy_weeks:
            return self.heavy_churn
        if from_week in self.quiet_weeks:
            return self.quiet_churn
        return self.weekly_churn


class VMDatasetGenerator:
    """Generates the VM-like :class:`~repro.datasets.model.BackupSeries`.

    ``heavy_weeks`` are the backup indices whose *transition into the next
    week* applies ``heavy_churn`` to each VM's user region; other transitions
    apply ``weekly_churn``.
    """

    def __init__(self, seed: int = 20140901, config: VMConfig | None = None):
        self.seed = seed
        self.config = config or VMConfig()

    def generate(self) -> BackupSeries:
        cfg = self.config
        chunk_space = ChunkSpace(
            namespace=f"vm-{self.seed}",
            fingerprint_bytes=cfg.fingerprint_bytes,
            size_model=SizeModel(kind="fixed", fixed_size=cfg.chunk_size),
        )
        pool = PopularPool.build(
            chunk_space,
            rng_from(self.seed, "vm-pool"),
            num_runs=cfg.popular_pool_size,
            exponent=cfg.popular_zipf_exponent,
        )
        mutator = FileMutator(chunk_space, pool, cfg.popular_rate)

        base_rng = rng_from(self.seed, "vm-base")
        base_image = mutator.make_chunks(base_rng, cfg.base_image_chunks)
        images = [
            self._initial_image(vm, base_image, mutator)
            for vm in range(cfg.num_vms)
        ]

        series = BackupSeries(name="vm", chunking="fixed")
        for week in range(cfg.num_backups):
            if week > 0:
                churn = cfg.churn_for_transition(week - 1)
                for vm, image in enumerate(images):
                    self._evolve_image(image, vm, week, churn, mutator)
            series.backups.append(
                self._weekly_backup(images, chunk_space, week)
            )
        return series

    # -- internals ----------------------------------------------------------

    def _initial_image(
        self, vm: int, base_image: list[int], mutator: FileMutator
    ) -> SimFile:
        """A VM image: the shared base plus a per-VM sparse patch and a
        user-data region appended at the end."""
        cfg = self.config
        rng = rng_from(self.seed, "vm-init", vm)
        chunks = list(base_image)
        num_patches = int(len(chunks) * cfg.base_patch_fraction)
        for _ in range(num_patches):
            position = rng.randrange(len(chunks))
            chunks[position] = mutator.new_chunk(rng)
        user_len = int(cfg.user_region_chunks * rng.uniform(0.7, 1.3))
        chunks.extend(mutator.make_chunks(rng, user_len))
        return SimFile(path=f"vm{vm:03d}.img", chunks=chunks)

    def _evolve_image(
        self,
        image: SimFile,
        vm: int,
        week: int,
        churn: float,
        mutator: FileMutator,
    ) -> None:
        """Apply a week of student activity to the user region (and, in
        heavy weeks, a little base-region damage too)."""
        cfg = self.config
        rng = rng_from(self.seed, "vm-evolve", vm, week)
        user_start = cfg.base_image_chunks
        user_region = SimFile(
            path=image.path, chunks=image.chunks[user_start:]
        )
        mutator.modify_file(
            user_region, rng, churn=churn, max_regions=5
        )
        # Students occasionally grow their data.
        if rng.random() < 0.5:
            mutator.append_to_file(
                user_region, rng, rng.randint(5, 40)
            )
        image.chunks[user_start:] = user_region.chunks
        if churn >= 0.5:
            base_region = SimFile(
                path=image.path, chunks=image.chunks[:user_start]
            )
            mutator.modify_file(base_region, rng, churn=0.05, max_regions=4)
            image.chunks[:user_start] = base_region.chunks

    def _weekly_backup(
        self,
        images: list[SimFile],
        chunk_space: ChunkSpace,
        week: int,
    ) -> Backup:
        backup = Backup(label=f"week-{week + 1:02d}")
        fingerprint_of = chunk_space.fingerprint
        size = self.config.chunk_size
        for image in images:
            for chunk_id in image.chunks:
                backup.fingerprints.append(fingerprint_of(chunk_id))
                backup.sizes.append(size)
        return backup
