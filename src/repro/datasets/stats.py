"""Trace statistics: dedup ratios, storage savings, frequency skew, locality.

These are the measurements behind Figure 1 (frequency distribution of
chunks), Figure 11 (storage saving per backup) and the workload sanity
checks quoted in §5.1 (overall dedup ratios of 7.6× / ~10× / 47.6×).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from itertools import pairwise

from repro.datasets.model import Backup, BackupSeries


def chunk_frequencies(backup: Backup) -> Counter:
    """Frequency of each unique chunk (by fingerprint) within ``backup``."""
    return Counter(backup.fingerprints)


def series_frequencies(series: BackupSeries) -> Counter:
    """Frequencies aggregated over every backup in the series (Figure 1
    counts chunk occurrences across the whole dataset)."""
    counts: Counter = Counter()
    for backup in series.backups:
        counts.update(backup.fingerprints)
    return counts


@dataclass(frozen=True)
class FrequencyCDF:
    """The Figure 1 curve: frequency of each unique chunk vs its quantile.

    ``frequencies[i]`` is the i-th smallest unique-chunk frequency and
    ``quantiles[i]`` the fraction of unique chunks with rank ≤ i.
    """

    frequencies: list[int]
    quantiles: list[float]

    def fraction_below(self, frequency: int) -> float:
        """Fraction of unique chunks with frequency < ``frequency``."""
        count = 0
        for value in self.frequencies:
            if value >= frequency:
                break
            count += 1
        return count / len(self.frequencies) if self.frequencies else 0.0

    @property
    def max_frequency(self) -> int:
        return self.frequencies[-1] if self.frequencies else 0

    @property
    def median_frequency(self) -> int:
        if not self.frequencies:
            return 0
        return self.frequencies[len(self.frequencies) // 2]


def frequency_cdf(counts: Counter) -> FrequencyCDF:
    """Build the Figure 1 CDF from a frequency table."""
    frequencies = sorted(counts.values())
    total = len(frequencies)
    quantiles = [(index + 1) / total for index in range(total)]
    return FrequencyCDF(frequencies=frequencies, quantiles=quantiles)


def storage_savings(
    backups: list[Backup],
) -> list[float]:
    """Cumulative storage saving after storing each backup in order.

    Saving = 1 − (stored unique bytes) / (logical bytes), the metric of
    Figure 11. Chunk-exact deduplication: a chunk is stored once globally.
    """
    seen: set[bytes] = set()
    logical = 0
    stored = 0
    savings: list[float] = []
    for backup in backups:
        for fingerprint, size in zip(backup.fingerprints, backup.sizes):
            logical += size
            if fingerprint not in seen:
                seen.add(fingerprint)
                stored += size
        savings.append(1.0 - stored / logical if logical else 0.0)
    return savings


def content_overlap(auxiliary: Backup, target: Backup) -> float:
    """Fraction of the target's unique chunks also present in the auxiliary
    backup — an upper bound on any inference attack's rate."""
    target_unique = target.unique_fingerprints()
    if not target_unique:
        return 0.0
    auxiliary_unique = auxiliary.unique_fingerprints()
    return len(target_unique & auxiliary_unique) / len(target_unique)


def adjacency_preservation(auxiliary: Backup, target: Backup) -> float:
    """Chunk-locality measure: fraction of the target's adjacent ordered
    fingerprint pairs that also occur adjacently in the auxiliary backup.

    High values are what the locality-based attack exploits (§4.2).
    """
    def ordered_pairs(backup: Backup) -> set[tuple[bytes, bytes]]:
        return set(pairwise(backup.fingerprints))

    target_pairs = ordered_pairs(target)
    if not target_pairs:
        return 0.0
    auxiliary_pairs = ordered_pairs(auxiliary)
    return len(target_pairs & auxiliary_pairs) / len(target_pairs)
