"""Content-level mutation: evolve a :class:`ContentTree` between backups.

Mirrors the fingerprint-level mutation model at byte granularity: edits are
clustered overwrites/insertions within a few regions of a file, so
content-defined chunking keeps the untouched remainder's chunks identical —
the chunk-locality property the attacks exploit.
"""

from __future__ import annotations

import random

from repro.common.errors import ConfigurationError
from repro.common.rng import rng_from
from repro.datasets.filesystem import ContentFile, ContentTree, deterministic_bytes


def mutate_file(
    file: ContentFile,
    rng: random.Random,
    churn: float = 0.05,
    max_regions: int = 2,
    insert_probability: float = 0.3,
) -> ContentFile:
    """Return an edited copy of ``file`` with clustered byte-level changes.

    Roughly ``churn`` of the bytes are overwritten in ``max_regions`` or
    fewer contiguous regions; with ``insert_probability`` a region also
    grows by a few bytes (shifting content, which content-defined chunking
    must absorb locally).
    """
    if not 0.0 <= churn <= 1.0:
        raise ConfigurationError("churn must be in [0, 1]")
    data = bytearray(file.data)
    if not data or churn == 0.0:
        return ContentFile(path=file.path, data=bytes(data))
    total = max(1, int(len(data) * churn))
    regions = rng.randint(1, max(1, max_regions))
    per_region = max(1, total // regions)
    for region in range(regions):
        start = rng.randrange(len(data))
        length = min(per_region, len(data) - start)
        replacement = deterministic_bytes(
            rng.getrandbits(48), f"edit-{file.path}-{region}", length
        )
        if rng.random() < insert_probability:
            grow = rng.randint(1, 64)
            extra = deterministic_bytes(
                rng.getrandbits(48), f"ins-{file.path}-{region}", grow
            )
            data[start : start + length] = replacement + extra
        else:
            data[start : start + length] = replacement
    return ContentFile(path=file.path, data=bytes(data))


def evolve_tree(
    tree: ContentTree,
    seed: int,
    generation: int,
    modify_fraction: float = 0.2,
    churn: float = 0.05,
    add_files: int = 1,
    mean_new_file_size: int = 64 * 1024,
) -> ContentTree:
    """Produce the next backup generation of ``tree`` (the input tree is
    not modified)."""
    rng = rng_from(seed, "evolve-tree", generation)
    next_tree = ContentTree()
    paths = tree.paths()
    modified = set(
        rng.sample(paths, max(1, int(len(paths) * modify_fraction)))
    )
    for path in paths:
        file = tree.get(path)
        if path in modified:
            next_tree.add(mutate_file(file, rng, churn=churn))
        else:
            next_tree.add(ContentFile(path=file.path, data=file.data))
    for index in range(add_files):
        path = f"tree/g{generation:03d}-new{index:03d}.bin"
        size = max(1024, int(rng.lognormvariate(0.0, 0.5) * mean_new_file_size))
        next_tree.add(
            ContentFile(
                path=path,
                data=deterministic_bytes(seed, f"{path}@{generation}", size),
            )
        )
    return next_tree
