"""Backup trace model.

The paper's evaluation is trace-driven: each backup is the *logical* sequence
of chunks (identified by fingerprint, with sizes) as the storage system would
observe them before deduplication. Identical chunks may repeat, both within a
backup (intra-backup duplicates) and across backups (temporal redundancy).

:class:`Backup` stores the sequence as parallel ``fingerprints``/``sizes``
lists — compact enough for the 10⁴–10⁵-chunk backups the reproduction uses,
while still letting the attacks iterate ``(fingerprint, size)`` records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.common.errors import ConfigurationError


@dataclass(frozen=True)
class ChunkRecord:
    """One logical chunk occurrence: its fingerprint and plaintext size."""

    fingerprint: bytes
    size: int


@dataclass
class Backup:
    """One full backup: the logical (pre-deduplication) chunk sequence.

    Attributes:
        label: human-readable backup name (e.g. ``"Mar 22"`` or ``"week-07"``).
        fingerprints: chunk fingerprints in logical order.
        sizes: chunk sizes, parallel to ``fingerprints``.
    """

    label: str
    fingerprints: list[bytes] = field(default_factory=list)
    sizes: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.fingerprints) != len(self.sizes):
            raise ConfigurationError(
                "fingerprints and sizes must have equal length"
            )

    def append(self, fingerprint: bytes, size: int) -> None:
        self.fingerprints.append(fingerprint)
        self.sizes.append(size)

    def __len__(self) -> int:
        return len(self.fingerprints)

    def records(self) -> Iterator[ChunkRecord]:
        """Iterate the logical sequence as :class:`ChunkRecord` objects."""
        for fingerprint, size in zip(self.fingerprints, self.sizes):
            yield ChunkRecord(fingerprint, size)

    @property
    def logical_bytes(self) -> int:
        """Total bytes before deduplication."""
        return sum(self.sizes)

    def unique_fingerprints(self) -> set[bytes]:
        return set(self.fingerprints)

    def unique_bytes(self) -> int:
        """Bytes after intra-backup deduplication."""
        seen: set[bytes] = set()
        total = 0
        for fingerprint, size in zip(self.fingerprints, self.sizes):
            if fingerprint not in seen:
                seen.add(fingerprint)
                total += size
        return total

    def size_of(self, fingerprint: bytes) -> int:
        """Size of the first occurrence of ``fingerprint`` (all occurrences
        of a fingerprint share one size; used by tests)."""
        index = self.fingerprints.index(fingerprint)
        return self.sizes[index]


@dataclass
class BackupSeries:
    """An ordered series of full backups from one primary data source.

    Attributes:
        name: dataset name (``fsl``, ``vm``, ``synthetic``, ...).
        backups: backups ordered by creation time (oldest first).
        chunking: ``"variable"`` or ``"fixed"`` — fixed-size chunking makes
            the advanced locality-based attack equivalent to the plain
            locality-based attack (§5.3).
    """

    name: str
    backups: list[Backup] = field(default_factory=list)
    chunking: str = "variable"

    def __post_init__(self) -> None:
        if self.chunking not in ("variable", "fixed"):
            raise ConfigurationError("chunking must be 'variable' or 'fixed'")

    def __len__(self) -> int:
        return len(self.backups)

    def __getitem__(self, index: int) -> Backup:
        return self.backups[index]

    def labels(self) -> list[str]:
        return [backup.label for backup in self.backups]

    @property
    def logical_bytes(self) -> int:
        return sum(backup.logical_bytes for backup in self.backups)

    def unique_bytes(self) -> int:
        """Bytes after global (cross-backup) deduplication."""
        seen: set[bytes] = set()
        total = 0
        for backup in self.backups:
            for fingerprint, size in zip(backup.fingerprints, backup.sizes):
                if fingerprint not in seen:
                    seen.add(fingerprint)
                    total += size
        return total

    def dedup_ratio(self) -> float:
        """Logical bytes over physically stored bytes (paper §5.1)."""
        unique = self.unique_bytes()
        if unique == 0:
            return 0.0
        return self.logical_bytes / unique
