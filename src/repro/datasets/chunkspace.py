"""Chunk identity space for fingerprint-level workload generation.

The FSL traces represent chunks as (48-bit fingerprint, size) pairs without
content; our generators work in the same space. A :class:`ChunkSpace` maps
abstract integer chunk ids to stable fingerprints and sizes:

* the fingerprint is a truncated keyed hash of the id (48-bit by default,
  like FSL), so the same logical chunk has the same fingerprint in every
  backup it appears in;
* for variable chunking, the size is drawn deterministically from the id via
  a truncated-exponential model matching content-defined chunking's size
  distribution (mean ``avg_size``, clamped to [min, max]);
* for fixed chunking, every chunk has the same size.

Popular-chunk pools model the skewed frequency distributions of Figure 1:
a small set of chunk ids is reused across many positions/files with
Zipf-distributed popularity.
"""

from __future__ import annotations

import hashlib
import math
import random

from repro.common.errors import ConfigurationError


class SizeModel:
    """Deterministic chunk-size assignment for a chunk id.

    ``size_quantum`` snaps variable sizes to a grid. This keeps the
    *occupancy* of the advanced attack's 16-byte-block size classes
    comparable to the paper's: their backups have ~10⁷ unique chunks spread
    over ~4 000 block-count classes (thousands per class); ours have ~10⁴–
    10⁵, so without coarsening every class would hold a handful of chunks
    and the size side channel would be unrealistically discriminating.
    """

    def __init__(
        self,
        kind: str = "variable",
        min_size: int = 2048,
        avg_size: int = 8192,
        max_size: int = 65536,
        fixed_size: int = 4096,
        size_quantum: int = 512,
    ):
        if kind not in ("variable", "fixed"):
            raise ConfigurationError("size model kind must be variable|fixed")
        if kind == "variable" and not min_size <= avg_size <= max_size:
            raise ConfigurationError("require min <= avg <= max chunk size")
        if size_quantum <= 0:
            raise ConfigurationError("size_quantum must be positive")
        self.kind = kind
        self.min_size = min_size
        self.avg_size = avg_size
        self.max_size = max_size
        self.fixed_size = fixed_size
        self.size_quantum = size_quantum
        # Truncated exponential: size = min + Exp(scale) clamped at max.
        self._scale = max(1.0, float(avg_size - min_size))
        span = max_size - min_size
        self._truncation = 1.0 - math.exp(-span / self._scale)

    def size_for(self, uniform: float) -> int:
        """Map a uniform draw in [0, 1) to a chunk size."""
        if self.kind == "fixed":
            return self.fixed_size
        draw = -self._scale * math.log1p(-uniform * self._truncation)
        size = self.min_size + int(draw)
        return max(
            self.min_size, (size // self.size_quantum) * self.size_quantum
        )


class ChunkSpace:
    """Maps integer chunk ids to (fingerprint, size) deterministically."""

    def __init__(
        self,
        namespace: str,
        fingerprint_bytes: int = 6,
        size_model: SizeModel | None = None,
    ):
        if not 4 <= fingerprint_bytes <= 32:
            raise ConfigurationError("fingerprint_bytes must be in [4, 32]")
        self.namespace = namespace.encode()
        self.fingerprint_bytes = fingerprint_bytes
        self.size_model = size_model or SizeModel()
        self._next_id = 0
        self._size_cache: dict[int, int] = {}

    def allocate(self) -> int:
        """Return a fresh, never-before-used chunk id."""
        chunk_id = self._next_id
        self._next_id += 1
        return chunk_id

    def allocate_many(self, count: int) -> list[int]:
        return [self.allocate() for _ in range(count)]

    @property
    def allocated(self) -> int:
        return self._next_id

    def fingerprint(self, chunk_id: int) -> bytes:
        digest = hashlib.blake2b(
            chunk_id.to_bytes(8, "big"),
            key=self.namespace[:64],
            digest_size=max(self.fingerprint_bytes, 8),
        ).digest()
        return digest[: self.fingerprint_bytes]

    def size(self, chunk_id: int) -> int:
        cached = self._size_cache.get(chunk_id)
        if cached is not None:
            return cached
        digest = hashlib.blake2b(
            chunk_id.to_bytes(8, "big") + b"size",
            key=self.namespace[:64],
            digest_size=8,
        ).digest()
        uniform = int.from_bytes(digest, "big") / float(1 << 64)
        value = self.size_model.size_for(uniform)
        self._size_cache[chunk_id] = value
        return value


class ZipfSampler:
    """Samples ranks 0..n−1 with Zipf weights (rank 0 most likely)."""

    def __init__(self, count: int, exponent: float):
        if count <= 0:
            raise ConfigurationError("ZipfSampler needs a positive count")
        if exponent <= 0:
            raise ConfigurationError("Zipf exponent must be positive")
        weights = [1.0 / (rank**exponent) for rank in range(1, count + 1)]
        total = sum(weights)
        self._cumulative: list[float] = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            self._cumulative.append(acc)
        self.probabilities = [weight / total for weight in weights]

    def __len__(self) -> int:
        return len(self._cumulative)

    def draw(self, rng: random.Random) -> int:
        point = rng.random()
        lo, hi = 0, len(self._cumulative) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._cumulative[mid] < point:
                lo = mid + 1
            else:
                hi = mid
        return lo


class PopularPool:
    """Zipf-popular chunk *runs* modelling the heavy head of Figure 1.

    Popular content in real backup streams is structured: common file
    headers, templates and library blobs are multi-chunk sequences
    duplicated in many places. Modelling popularity as whole runs (rather
    than isolated chunks scattered i.i.d.) matters for the locality-based
    attack: a popular chunk's strongest left/right co-occurrences are its
    run-mates, which is exactly the signal the attack's per-neighbor
    frequency analysis exploits.

    Args:
        runs: the reusable popular chunk-id sequences, most popular first.
        exponent: Zipf exponent over run ranks; larger → more skew.
    """

    def __init__(
        self,
        runs: list[list[int]],
        exponent: float = 1.5,
        partial_probability: float = 0.35,
    ):
        if not runs or any(not run for run in runs):
            raise ConfigurationError("popular pool runs must be non-empty")
        if exponent <= 0:
            raise ConfigurationError("Zipf exponent must be positive")
        if not 0.0 <= partial_probability < 1.0:
            raise ConfigurationError("partial_probability must be in [0, 1)")
        self.runs = [list(run) for run in runs]
        self.exponent = exponent
        # With this probability a draw emits only a random prefix of the
        # run (a partial template match). Prefix draws grade the member
        # frequencies within a run — the first chunk is strictly the most
        # frequent — so global frequency ranks have few exact ties, like
        # real workloads where top ranks are stable (§4.2).
        self.partial_probability = partial_probability
        self._sampler = ZipfSampler(len(runs), exponent)
        self.expected_run_length = sum(
            probability * len(run)
            for probability, run in zip(self._sampler.probabilities, runs)
        )

    @classmethod
    def build(
        cls,
        chunk_space: ChunkSpace,
        rng: random.Random,
        num_runs: int,
        exponent: float = 1.5,
        min_run: int = 1,
        max_run: int = 8,
        singleton_top: int = 8,
    ) -> "PopularPool":
        """Allocate ``num_runs`` fresh runs with random lengths.

        The first ``singleton_top`` ranks are single chunks — the analogue
        of the special blocks (zero pages, filesystem metadata patterns)
        that dominate real frequency distributions and whose ranks the
        locality-based attack relies on for seeding (u most frequent).
        """
        runs = []
        for rank in range(num_runs):
            if rank < singleton_top:
                length = 1
            else:
                length = rng.randint(min_run, max_run)
            runs.append(chunk_space.allocate_many(length))
        return cls(runs, exponent)

    def draw_run(self, rng: random.Random) -> list[int]:
        """Sample one popular run (Zipf-distributed by rank); sometimes a
        random prefix only (see ``partial_probability``)."""
        run = self.runs[self._sampler.draw(rng)]
        if len(run) > 1 and rng.random() < self.partial_probability:
            return run[: rng.randint(1, len(run))]
        return run

    def all_chunk_ids(self) -> set[int]:
        return {chunk_id for run in self.runs for chunk_id in run}
