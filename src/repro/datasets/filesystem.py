"""Content-level synthetic file trees (real bytes).

The trace-driven evaluation works on fingerprints, but the examples and
integration tests exercise the full pipeline — chunking → MLE → dedup
storage → restore — on actual data. This module builds deterministic
pseudo-random file trees whose bytes are compressible-looking but unique
per (seed, path), plus duplicated "asset" files shared across directories.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.common.errors import ConfigurationError
from repro.common.rng import derive_seed, rng_from


def deterministic_bytes(seed: int, label: str, length: int) -> bytes:
    """``length`` pseudo-random bytes, reproducible from (seed, label)."""
    if length < 0:
        raise ConfigurationError("length must be non-negative")
    key = hashlib.blake2b(
        f"{seed}:{label}".encode(), digest_size=32
    ).digest()
    blocks: list[bytes] = []
    produced = 0
    counter = 0
    while produced < length:
        block = hashlib.blake2b(
            counter.to_bytes(8, "big"), key=key, digest_size=64
        ).digest()
        blocks.append(block)
        produced += len(block)
        counter += 1
    return b"".join(blocks)[:length]


@dataclass
class ContentFile:
    """A file with real bytes."""

    path: str
    data: bytes

    @property
    def size(self) -> int:
        return len(self.data)


@dataclass
class ContentTree:
    """An ordered set of content files (a snapshot of a directory tree)."""

    files: dict[str, ContentFile] = field(default_factory=dict)

    def add(self, file: ContentFile) -> None:
        self.files[file.path] = file

    def remove(self, path: str) -> None:
        del self.files[path]

    def get(self, path: str) -> ContentFile:
        return self.files[path]

    def paths(self) -> list[str]:
        return sorted(self.files)

    def total_bytes(self) -> int:
        return sum(file.size for file in self.files.values())

    def __len__(self) -> int:
        return len(self.files)

    def iter_files(self) -> list[ContentFile]:
        return [self.files[path] for path in self.paths()]

    def concatenated(self) -> bytes:
        """The tree as one logical backup stream (path order)."""
        return b"".join(file.data for file in self.iter_files())


def build_tree(
    seed: int = 0,
    num_files: int = 24,
    mean_file_size: int = 64 * 1024,
    duplicate_assets: int = 4,
    asset_copies: int = 3,
) -> ContentTree:
    """Build a deterministic content tree.

    ``duplicate_assets`` files are copied verbatim into ``asset_copies``
    locations each, giving the tree real whole-file duplication for the
    deduplication examples.
    """
    if num_files <= 0:
        raise ConfigurationError("num_files must be positive")
    rng = rng_from(seed, "content-tree")
    tree = ContentTree()
    for index in range(num_files):
        size = max(1024, int(rng.lognormvariate(0.0, 0.6) * mean_file_size))
        path = f"tree/f{index:04d}.bin"
        tree.add(
            ContentFile(path=path, data=deterministic_bytes(seed, path, size))
        )
    for asset in range(duplicate_assets):
        size = max(4096, int(rng.lognormvariate(0.0, 0.4) * mean_file_size))
        data = deterministic_bytes(
            derive_seed(seed, "asset", asset), "asset", size
        )
        for copy in range(asset_copies):
            tree.add(
                ContentFile(path=f"tree/asset{asset:02d}-copy{copy}.bin", data=data)
            )
    return tree
