"""FSL-like backup workload (§5.1, substitution 1 in DESIGN.md).

Models the paper's post-processed Fslhomes dataset: six users' home
directories captured as five monthly full backups, variable-size chunks with
an 8 KB average and 48-bit fingerprints, aggregated into one backup stream
per month. The generator reproduces the workload properties the attacks and
defenses are sensitive to:

* **chunk locality** — monthly edits rewrite clustered file regions only;
* **skewed frequency** (Fig. 1) — Zipf-popular chunk runs plus a Zipf
  library of whole-file templates shared within and across users (most
  duplicate bytes in real home directories are whole-file duplicates);
* **graded co-occurrence signal** — popular content recurs *with its
  context* (duplicated files), giving the locality-based attack the
  neighbor-frequency structure it exploits in real traces;
* **temporal redundancy decaying with distance** — more recent auxiliary
  backups share more content with the latest backup (Fig. 5);
* **stable scan order** — home-directory backup tools traverse paths
  stably, so cross-file adjacency survives between backups.

Scale is reduced (tens of thousands of chunks per backup instead of tens of
millions); see EXPERIMENTS.md for the shape-level comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.common.rng import rng_from
from repro.datasets.chunkspace import ChunkSpace, PopularPool, SizeModel
from repro.datasets.filesim import (
    FileMutator,
    SimFileSystem,
    TemplateLibrary,
    snapshot,
)
from repro.datasets.model import Backup, BackupSeries

FSL_LABELS = ("Jan 22", "Feb 22", "Mar 22", "Apr 21", "May 21")


@dataclass
class FSLConfig:
    """Knobs for the FSL-like generator (defaults target bench scale)."""

    num_users: int = 6
    num_backups: int = 5
    files_per_user: int = 110
    mean_file_chunks: int = 42
    num_templates: int = 140
    template_zipf_exponent: float = 1.35
    common_file_probability: float = 0.5
    popular_pool_size: int = 350
    popular_zipf_exponent: float = 1.4
    popular_rate: float = 0.04
    modify_file_fraction: float = 0.34
    file_churn: float = 0.28
    modify_max_regions: int = 3
    add_file_fraction: float = 0.05
    delete_file_fraction: float = 0.02
    min_chunk_size: int = 2048
    avg_chunk_size: int = 8192
    max_chunk_size: int = 65536
    size_quantum: int = 1024
    fingerprint_bytes: int = 6

    def __post_init__(self) -> None:
        if self.num_users <= 0 or self.num_backups <= 0:
            raise ConfigurationError("num_users and num_backups must be positive")
        if not 0.0 <= self.common_file_probability <= 1.0:
            raise ConfigurationError("common_file_probability must be in [0, 1]")


class FSLDatasetGenerator:
    """Generates the FSL-like :class:`~repro.datasets.model.BackupSeries`."""

    def __init__(self, seed: int = 20130122, config: FSLConfig | None = None):
        self.seed = seed
        self.config = config or FSLConfig()

    def generate(self) -> BackupSeries:
        cfg = self.config
        chunk_space = ChunkSpace(
            namespace=f"fsl-{self.seed}",
            fingerprint_bytes=cfg.fingerprint_bytes,
            size_model=SizeModel(
                kind="variable",
                min_size=cfg.min_chunk_size,
                avg_size=cfg.avg_chunk_size,
                max_size=cfg.max_chunk_size,
                size_quantum=cfg.size_quantum,
            ),
        )
        pool = PopularPool.build(
            chunk_space,
            rng_from(self.seed, "fsl-pool"),
            num_runs=cfg.popular_pool_size,
            exponent=cfg.popular_zipf_exponent,
        )
        mutator = FileMutator(chunk_space, pool, cfg.popular_rate)
        library = TemplateLibrary(
            mutator,
            rng_from(self.seed, "fsl-templates"),
            num_templates=cfg.num_templates,
            mean_chunks=cfg.mean_file_chunks,
            exponent=cfg.template_zipf_exponent,
        )

        users = [
            self._initial_user_state(user, mutator, library)
            for user in range(cfg.num_users)
        ]

        series = BackupSeries(name="fsl", chunking="variable")
        for month in range(cfg.num_backups):
            if month > 0:
                for user, filesystem in enumerate(users):
                    self._evolve_user(filesystem, user, month, mutator, library)
            series.backups.append(
                self._monthly_backup(users, chunk_space, month)
            )
        return series

    def generate_columnar(self, directory):
        """Materialize the series into the columnar on-disk layout at
        ``directory`` (generate once, mmap thereafter): a completed trace
        with matching seed/scale is reopened instead of regenerated."""
        from repro.datasets.columnar import ensure_series_columnar

        cfg = self.config
        return ensure_series_columnar(
            directory,
            self.generate,
            params={
                "source": "fsl",
                "seed": self.seed,
                "num_users": cfg.num_users,
                "num_backups": cfg.num_backups,
                "fingerprint_bytes": cfg.fingerprint_bytes,
            },
        )

    # -- internals ----------------------------------------------------------

    def _label(self, month: int) -> str:
        if month < len(FSL_LABELS):
            return FSL_LABELS[month]
        return f"month-{month:02d}"

    def _file_length(self, rng) -> int:
        mean = self.config.mean_file_chunks
        # Lognormal-ish spread: many small files, a few large ones.
        length = int(rng.lognormvariate(0.0, 0.8) * mean * 0.75)
        return max(2, min(length, mean * 8))

    def _new_file(self, path: str, rng, mutator: FileMutator, library: TemplateLibrary):
        if rng.random() < self.config.common_file_probability:
            return library.instantiate(path, rng)
        return mutator.create_file(path, rng, self._file_length(rng))

    def _initial_user_state(
        self, user: int, mutator: FileMutator, library: TemplateLibrary
    ) -> SimFileSystem:
        cfg = self.config
        rng = rng_from(self.seed, "fsl-init", user)
        filesystem = SimFileSystem()
        for index in range(cfg.files_per_user):
            path = f"user{user:02d}/f{index:05d}"
            filesystem.add(self._new_file(path, rng, mutator, library))
        return filesystem

    def _evolve_user(
        self,
        filesystem: SimFileSystem,
        user: int,
        month: int,
        mutator: FileMutator,
        library: TemplateLibrary,
    ) -> None:
        cfg = self.config
        rng = rng_from(self.seed, "fsl-evolve", user, month)
        paths = filesystem.paths()

        num_deletions = int(len(paths) * cfg.delete_file_fraction)
        for path in rng.sample(paths, num_deletions):
            filesystem.remove(path)

        paths = filesystem.paths()
        num_modified = int(len(paths) * cfg.modify_file_fraction)
        for path in rng.sample(paths, num_modified):
            mutator.modify_file(
                filesystem.get(path),
                rng,
                churn=cfg.file_churn,
                max_regions=cfg.modify_max_regions,
            )

        num_added = int(cfg.files_per_user * cfg.add_file_fraction)
        for index in range(num_added):
            path = f"user{user:02d}/m{month}-f{index:05d}"
            filesystem.add(self._new_file(path, rng, mutator, library))

    def _monthly_backup(
        self,
        users: list[SimFileSystem],
        chunk_space: ChunkSpace,
        month: int,
    ) -> Backup:
        backup = Backup(label=self._label(month))
        for filesystem in users:
            user_backup = snapshot(filesystem, chunk_space, label="")
            backup.fingerprints.extend(user_backup.fingerprints)
            backup.sizes.extend(user_backup.sizes)
        return backup
