"""Fingerprint-level file-system simulation with locality-preserving edits.

Backup streams exhibit *chunk locality* (§1): chunks re-occur together with
their neighbors across backup versions because edits cluster in few
contiguous regions while the rest of a file keeps its chunk order. This
module models exactly that:

* a :class:`SimFile` is an ordered list of abstract chunk ids;
* :class:`FileMutator` rewrites a few contiguous regions per edited file
  (fresh chunk ids, occasional growth/shrink to mimic boundary shifts) and
  leaves everything else untouched;
* :func:`snapshot` linearises a :class:`SimFileSystem` into a
  :class:`~repro.datasets.model.Backup` in a configurable scan order —
  stable order preserves cross-file adjacency between backups (FSL-style
  backup tools), shuffled order models tools whose traversal varies.

Popular-pool draws (see :class:`~repro.datasets.chunkspace.PopularPool`)
are baked into file *content* at creation/edit time, so frequent chunks stay
in place across versions just like real-world common blocks do.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.common.errors import ConfigurationError
from repro.datasets.chunkspace import ChunkSpace, PopularPool, ZipfSampler
from repro.datasets.model import Backup


@dataclass
class SimFile:
    """A file as an ordered chunk-id sequence."""

    path: str
    chunks: list[int] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.chunks)


class SimFileSystem:
    """A set of :class:`SimFile` keyed by path."""

    def __init__(self) -> None:
        self._files: dict[str, SimFile] = {}

    def add(self, file: SimFile) -> None:
        if file.path in self._files:
            raise ConfigurationError(f"duplicate path {file.path!r}")
        self._files[file.path] = file

    def remove(self, path: str) -> None:
        del self._files[path]

    def get(self, path: str) -> SimFile:
        return self._files[path]

    def paths(self) -> list[str]:
        return sorted(self._files)

    def files(self) -> list[SimFile]:
        return [self._files[path] for path in self.paths()]

    def __len__(self) -> int:
        return len(self._files)

    def __contains__(self, path: str) -> bool:
        return path in self._files

    def total_chunks(self) -> int:
        return sum(len(file) for file in self._files.values())


class FileMutator:
    """Creates and edits simulated files with clustered, local changes.

    Args:
        chunk_space: allocator/identity space for chunk ids.
        popular_pool: optional pool of high-frequency chunk ids.
        popular_rate: probability that a newly written chunk position reuses
            a popular chunk instead of fresh content.
    """

    def __init__(
        self,
        chunk_space: ChunkSpace,
        popular_pool: PopularPool | None = None,
        popular_rate: float = 0.0,
    ):
        if not 0.0 <= popular_rate <= 1.0:
            raise ConfigurationError("popular_rate must be in [0, 1]")
        if popular_rate > 0.0 and popular_pool is None:
            raise ConfigurationError("popular_rate > 0 requires a popular_pool")
        self.chunk_space = chunk_space
        self.popular_pool = popular_pool
        self.popular_rate = popular_rate
        # popular_rate is the target fraction of *chunks* drawn from the
        # pool; runs have several chunks, so the probability of *starting*
        # a run at any position is scaled down by the mean run length.
        if popular_pool is not None and popular_rate > 0.0:
            self._run_start_probability = min(
                1.0, popular_rate / popular_pool.expected_run_length
            )
        else:
            self._run_start_probability = 0.0

    def new_chunk(self, rng: random.Random) -> int:
        """One chunk id of fresh, unique content."""
        return self.chunk_space.allocate()

    def make_chunks(self, rng: random.Random, count: int) -> list[int]:
        """``count`` chunk ids of new content, interleaving fresh unique
        chunks with whole popular runs at the configured rate."""
        chunks: list[int] = []
        pool = self.popular_pool
        start_probability = self._run_start_probability
        while len(chunks) < count:
            if pool is not None and rng.random() < start_probability:
                chunks.extend(pool.draw_run(rng))
            else:
                chunks.append(self.chunk_space.allocate())
        return chunks

    def create_file(self, path: str, rng: random.Random, num_chunks: int) -> SimFile:
        return SimFile(path=path, chunks=self.make_chunks(rng, num_chunks))

    def modify_file(
        self,
        file: SimFile,
        rng: random.Random,
        churn: float = 0.2,
        max_regions: int = 3,
        resize_probability: float = 0.25,
    ) -> int:
        """Rewrite clustered regions covering ≈ ``churn`` of the file.

        Each chosen region is replaced by fresh content; with
        ``resize_probability`` the replacement is one or two chunks longer or
        shorter, modelling insertions/deletions that shift content-defined
        boundaries locally. Returns the number of chunks rewritten.
        """
        if not 0.0 <= churn <= 1.0:
            raise ConfigurationError("churn must be in [0, 1]")
        if not file.chunks or churn == 0.0:
            return 0
        total_to_change = max(1, int(round(churn * len(file.chunks))))
        num_regions = rng.randint(1, max(1, min(max_regions, total_to_change)))
        per_region = max(1, total_to_change // num_regions)
        rewritten = 0
        for _ in range(num_regions):
            if not file.chunks:
                break
            start = rng.randrange(len(file.chunks))
            length = min(per_region, len(file.chunks) - start)
            new_length = length
            if rng.random() < resize_probability:
                new_length = max(1, length + rng.choice((-2, -1, 1, 2)))
            replacement = self.make_chunks(rng, new_length)
            file.chunks[start : start + length] = replacement
            rewritten += new_length
        return rewritten

    def append_to_file(self, file: SimFile, rng: random.Random, count: int) -> None:
        file.chunks.extend(self.make_chunks(rng, count))


class TemplateLibrary:
    """Zipf-popular whole-file templates.

    Most duplicate bytes in real home-directory datasets come from
    whole-file duplicates (the same package, document or build artifact
    stored in many places). Instantiating a template copies its entire
    chunk sequence, so the co-occurrence counts of template chunks grow
    with the template's popularity — the strong, *graded* neighbor signal
    the locality-based attack traverses (unlike isolated popular chunks,
    whose neighbors are all frequency-1 ties).
    """

    def __init__(
        self,
        mutator: FileMutator,
        rng: random.Random,
        num_templates: int,
        mean_chunks: int,
        exponent: float = 1.05,
        length_sigma: float = 1.1,
        max_length_factor: int = 20,
    ):
        """Template lengths are heavy-tailed (lognormal ``length_sigma``):
        most are small files, a few are multi-megabyte artifacts spanning
        several deduplication segments. The big ones matter for the MinHash
        defense's storage efficiency — interior segments of a large
        duplicated file are identical wherever the file occurs, so they
        keep deduplicating under segment-derived keys, exactly like large
        duplicated artifacts (tarballs, images, media) in real home
        directories."""
        if num_templates <= 0:
            raise ConfigurationError("num_templates must be positive")
        self.templates: list[list[int]] = []
        for _ in range(num_templates):
            length = max(
                2, int(rng.lognormvariate(0.0, length_sigma) * mean_chunks * 0.8)
            )
            self.templates.append(
                mutator.make_chunks(rng, min(length, mean_chunks * max_length_factor))
            )
        self._sampler = ZipfSampler(num_templates, exponent)

    def instantiate(self, path: str, rng: random.Random) -> SimFile:
        """A new file that is a copy of a Zipf-sampled template."""
        template = self.templates[self._sampler.draw(rng)]
        return SimFile(path=path, chunks=list(template))


def snapshot(
    filesystem: SimFileSystem,
    chunk_space: ChunkSpace,
    label: str,
    rng: random.Random | None = None,
    shuffle_order: bool = False,
    scan_disorder: float = 0.0,
) -> Backup:
    """Linearise ``filesystem`` into a logical backup stream.

    ``shuffle_order`` randomises the whole file scan order per snapshot;
    ``scan_disorder`` relocates only that fraction of files to random
    positions (modelling re-packaging/reallocation moving *some* files
    while the bulk of the traversal stays stable). Both need ``rng``. The
    default is stable path order, which preserves cross-file adjacency
    between backups.
    """
    if not 0.0 <= scan_disorder <= 1.0:
        raise ConfigurationError("scan_disorder must be in [0, 1]")
    files = filesystem.files()
    if shuffle_order:
        if rng is None:
            raise ConfigurationError("shuffle_order requires an rng")
        rng.shuffle(files)
    elif scan_disorder > 0.0:
        if rng is None:
            raise ConfigurationError("scan_disorder requires an rng")
        relocate_count = int(len(files) * scan_disorder)
        if relocate_count:
            moved_indices = set(rng.sample(range(len(files)), relocate_count))
            moved = [files[i] for i in sorted(moved_indices)]
            remaining = [
                file for i, file in enumerate(files) if i not in moved_indices
            ]
            for file in moved:
                remaining.insert(rng.randint(0, len(remaining)), file)
            files = remaining
    backup = Backup(label=label)
    fingerprints = backup.fingerprints
    sizes = backup.sizes
    fingerprint_of = chunk_space.fingerprint
    size_of = chunk_space.size
    for file in files:
        for chunk_id in file.chunks:
            fingerprints.append(fingerprint_of(chunk_id))
            sizes.append(size_of(chunk_id))
    return backup
