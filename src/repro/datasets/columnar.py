"""Columnar on-disk chunk traces: generate once, ``mmap`` forever.

The in-RAM :class:`~repro.datasets.model.Backup` holds one Python bytes
object per chunk occurrence, which caps the attacks two orders of
magnitude short of the FSL traces the paper evaluates on. This module
stores a backup series the way the COUNT pipeline consumes it — column
by column:

``manifest.json``
    Series metadata plus the ``[start, stop)`` span of every backup in
    the shared streams. Written atomically (temp file + ``os.replace``)
    **after** all data files, so its presence is the completion marker:
    an interrupted writer leaves no manifest and the trace re-generates.
``vocab.fp``
    The append-only fingerprint vocabulary: fixed-width fingerprint
    bytes packed back to back, where a fingerprint's record index is its
    dense chunk id — ids are assigned in global first-occurrence order,
    exactly like :class:`~repro.attacks.interning.ChunkVocabulary`.
``ids.u32`` / ``sizes.u32``
    The whole logical chunk stream as little-endian ``uint32`` columns:
    one vocabulary id and one chunk size per occurrence.

Readers memory-map the columns: opening a 10⁸-chunk trace is O(1), a
COUNT over it touches pages sequentially, and the only per-object cost
is for fingerprints actually decoded at the rank/report boundary.
:class:`MappedVocabulary` serves the ``_fingerprints[id]`` /
``_ids.get(fp)`` protocol the interned COUNT machinery reads, so the
lazy neighbor views in :mod:`repro.attacks.interning` work unchanged on
top of an mmap. Writing interns through :class:`SpillableVocabulary`,
whose dict spills to SQLite past a threshold so trace generation is not
RAM-bound either.
"""

from __future__ import annotations

import json
import mmap
import os
import struct
import sys
from array import array
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Iterator, Sequence

from repro.common import accel
from repro.common.errors import ConfigurationError
from repro.common.rng import rng_from
from repro.datasets.model import Backup, BackupSeries

__all__ = [
    "ColumnarBackupView",
    "ColumnarTrace",
    "ColumnarTraceWriter",
    "MappedVocabulary",
    "PackedVocabulary",
    "SpillableVocabulary",
    "StreamConfig",
    "ensure_columnar",
    "synthesize_columnar",
    "write_series",
]

FORMAT_NAME = "repro-columnar-trace"
FORMAT_VERSION = 1

MANIFEST_NAME = "manifest.json"
VOCAB_FILE = "vocab.fp"
IDS_FILE = "ids.u32"
SIZES_FILE = "sizes.u32"
SPILL_FILE = "vocab.spill.sqlite"
_DATA_FILES = (VOCAB_FILE, IDS_FILE, SIZES_FILE)

_U32_MAX = (1 << 32) - 1
#: The id stream is uint32, so a trace holds at most 2**32 unique
#: fingerprints — the same bound as the packed-adjacency encoding
#: (:data:`repro.attacks.interning.MAX_VOCABULARY`).
MAX_TRACE_VOCABULARY = 1 << 32

#: In-RAM fingerprints held by the writer's interner before spilling.
DEFAULT_SPILL_THRESHOLD = 4_000_000
_FLUSH_ENTRIES = 1 << 20

_ID_TYPECODE = "I" if array("I").itemsize == 4 else "L"
if array(_ID_TYPECODE).itemsize != 4:  # pragma: no cover - exotic ABI
    raise ImportError("no 4-byte array typecode on this platform")


def _u32_array(raw: bytes) -> array:
    values = array(_ID_TYPECODE)
    values.frombytes(raw)
    if sys.byteorder == "big":  # pragma: no cover - big-endian host
        values.byteswap()
    return values


def _u32_bytes(values: array) -> bytes:
    if sys.byteorder == "big":  # pragma: no cover - big-endian host
        values = array(_ID_TYPECODE, values)
        values.byteswap()
    return values.tobytes()


# ---------------------------------------------------------------------------
# Read side: packed fingerprints over any buffer (mmap, bytes, ...)


class _PackedFingerprints:
    """Sequence view over fixed-width fingerprints packed in one buffer.

    Duck-types the ``vocabulary._fingerprints`` list the interned COUNT
    views index into: ``[id]`` slices ``width`` bytes out of the buffer
    instead of holding one bytes object per fingerprint.
    """

    __slots__ = ("_buffer", "_width", "_length")

    def __init__(self, buffer, width: int, length: int):
        self._buffer = buffer
        self._width = width
        self._length = length

    def __len__(self) -> int:
        return self._length

    def __getitem__(self, index: int) -> bytes:
        if index < 0 or index >= self._length:
            raise IndexError(index)
        width = self._width
        start = index * width
        return bytes(self._buffer[start : start + width])

    def __iter__(self) -> Iterator[bytes]:
        buffer, width = self._buffer, self._width
        for start in range(0, self._length * width, width):
            yield bytes(buffer[start : start + width])


class _FingerprintIndex:
    """Reverse ``fingerprint -> id`` probe over packed fingerprints.

    With numpy the packed buffer is viewed as zero-padded big-endian
    ``uint64`` word columns (for equal-length byte strings that view
    compares exactly like the bytes; numpy's ``S`` dtype would strip
    trailing NULs) and lexsorted **once**; a probe is two C-level
    ``searchsorted`` calls on the leading word plus a short scan — no
    per-fingerprint Python objects are ever built. The pure-Python
    fallback materializes a dict lazily on first probe (correct, but
    RAM-bound — trace scale assumes the accelerated path).
    """

    __slots__ = ("_fingerprints", "_order", "_columns", "_dict", "_ranks")

    def __init__(self, fingerprints: _PackedFingerprints):
        self._fingerprints = fingerprints
        self._order = None
        self._columns: tuple | None = None
        self._dict: dict[bytes, int] | None = None
        self._ranks = None

    def _word_matrix(self):
        numpy = accel.numpy
        packed = self._fingerprints
        width, count = packed._width, packed._length
        words = max(1, (width + 7) // 8)
        data = numpy.frombuffer(
            packed._buffer, dtype=numpy.uint8, count=count * width
        ).reshape(count, width)
        if width % 8:
            padded = numpy.zeros((count, words * 8), dtype=numpy.uint8)
            padded[:, :width] = data
            data = padded
        return data.reshape(count, words * 8).view(">u8"), words

    def _ensure_sorted(self) -> None:
        if self._columns is not None:
            return
        numpy = accel.numpy
        if not len(self._fingerprints):
            self._order = numpy.empty(0, dtype=numpy.intp)
            self._columns = (numpy.empty(0, dtype=numpy.uint64),)
            return
        matrix, words = self._word_matrix()
        order = numpy.lexsort(
            tuple(matrix[:, word] for word in range(words - 1, -1, -1))
        )
        self._order = order
        # Native-endian copies so every probe's searchsorted runs at C speed.
        self._columns = tuple(
            matrix[order, word].astype(numpy.uint64) for word in range(words)
        )

    def sort_ranks(self):
        """Each chunk id's rank in fingerprint-bytes sort order (cached).

        The inverse permutation of the lexsort order: comparing two ids'
        ranks compares their fingerprint bytes without decoding either —
        what the trace-scale attacks use for ``fingerprint`` tie-breaking
        and leakage sampling. Accelerated path only.
        """
        if self._ranks is None:
            self._ensure_sorted()
            numpy = accel.numpy
            assert self._order is not None
            count = len(self._fingerprints)
            ranks = numpy.empty(count, dtype=numpy.intp)
            ranks[self._order] = numpy.arange(count, dtype=numpy.intp)
            self._ranks = ranks
        return self._ranks

    def has_duplicates(self) -> bool:
        """Whether any two ids share the same fingerprint bytes."""
        count = len(self._fingerprints)
        if count < 2:
            return False
        if accel.numpy is None:
            self._ensure_dict()
            assert self._dict is not None
            return len(self._dict) < count
        numpy = accel.numpy
        self._ensure_sorted()
        assert self._columns is not None
        equal = numpy.ones(count - 1, dtype=bool)
        for column in self._columns:
            equal &= column[1:] == column[:-1]
        return bool(equal.any())

    def _ensure_dict(self) -> None:
        if self._dict is None:
            self._dict = {
                fingerprint: index
                for index, fingerprint in enumerate(self._fingerprints)
            }

    def get(self, fingerprint: bytes, default: int | None = None) -> int | None:
        packed = self._fingerprints
        if len(fingerprint) != packed._width or not packed._length:
            return default
        if accel.numpy is None:
            self._ensure_dict()
            assert self._dict is not None
            return self._dict.get(fingerprint, default)
        self._ensure_sorted()
        assert self._columns is not None and self._order is not None
        columns = self._columns
        numpy = accel.numpy
        padded = fingerprint + b"\x00" * (-len(fingerprint) % 8)
        # uint64 scalars, not Python ints: searchsorted's int->uint64
        # scalar conversion costs ~60x the binary search itself.
        target = tuple(
            numpy.uint64(int.from_bytes(padded[start : start + 8], "big"))
            for start in range(0, len(padded), 8)
        )
        leading = columns[0]
        low = int(leading.searchsorted(target[0], side="left"))
        high = int(leading.searchsorted(target[0], side="right"))
        rest = target[1:]
        for position in range(low, high):
            if all(
                int(column[position]) == word
                for column, word in zip(columns[1:], rest)
            ):
                return int(self._order[position])
        return default

    def __contains__(self, fingerprint: bytes) -> bool:
        return self.get(fingerprint) is not None


class PackedVocabulary:
    """Read-only vocabulary over packed fingerprint bytes.

    Duck-types :class:`~repro.attacks.interning.ChunkVocabulary`'s read
    surface (``_fingerprints`` / ``_ids`` / ``id_of`` / ``fingerprint``),
    which is all the interned COUNT stats and neighbor views touch.
    """

    __slots__ = ("_fingerprints", "_ids", "fingerprint_bytes")

    def __init__(self, buffer, fingerprint_bytes: int, length: int):
        self._fingerprints = _PackedFingerprints(
            buffer, fingerprint_bytes, length
        )
        self._ids = _FingerprintIndex(self._fingerprints)
        self.fingerprint_bytes = fingerprint_bytes

    def __len__(self) -> int:
        return len(self._fingerprints)

    def __contains__(self, fingerprint: bytes) -> bool:
        return fingerprint in self._ids

    def id_of(self, fingerprint: bytes) -> int | None:
        return self._ids.get(fingerprint)

    def fingerprint(self, chunk_id: int) -> bytes:
        return self._fingerprints[chunk_id]


class MappedVocabulary(PackedVocabulary):
    """The on-disk vocabulary of a columnar trace, served from ``mmap``."""


# ---------------------------------------------------------------------------
# Write side


class SpillableVocabulary:
    """Append-only fingerprint interner whose dict spills to SQLite.

    The writer-side counterpart of
    :class:`~repro.attacks.interning.ChunkVocabulary`: ids are assigned
    densely in first-occurrence order, but only the hottest ``threshold``
    fingerprints live in the in-RAM dict — older entries drain to an
    on-disk SQLite table (:class:`repro.index.backends.SQLiteBackend`),
    so writing a 10⁸-chunk trace never holds the whole vocabulary in
    memory. ``on_new`` fires once per fresh fingerprint, which is how the
    trace writer appends vocabulary records exactly once.
    """

    def __init__(
        self,
        spill_path: str | os.PathLike,
        threshold: int = DEFAULT_SPILL_THRESHOLD,
    ):
        if threshold < 1:
            raise ConfigurationError("spill threshold must be >= 1")
        self._hot: dict[bytes, int] = {}
        self._spill = None
        self._spill_path = Path(spill_path)
        self._threshold = threshold
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def id_of(self, fingerprint: bytes) -> int | None:
        found = self._hot.get(fingerprint)
        if found is not None:
            return found
        if self._spill is not None:
            raw = self._spill.get(fingerprint)
            if raw is not None:
                return int.from_bytes(raw, "little")
        return None

    def intern(
        self, fingerprint: bytes, on_new: Callable[[bytes], object]
    ) -> int:
        existing = self.id_of(fingerprint)
        if existing is not None:
            return existing
        chunk_id = self._count
        if chunk_id >= MAX_TRACE_VOCABULARY:
            raise ConfigurationError(
                "columnar trace vocabulary exhausted: the uint32 id stream "
                "(and the packed pair encoding, see docs/attacks.md) caps a "
                "trace at 2**32 unique fingerprints"
            )
        self._hot[fingerprint] = chunk_id
        self._count += 1
        on_new(fingerprint)
        if len(self._hot) >= self._threshold:
            self._spill_hot()
        return chunk_id

    def _spill_hot(self) -> None:
        if self._spill is None:
            from repro.index.backends import SQLiteBackend

            self._spill = SQLiteBackend(self._spill_path)
        self._spill.put_batch(
            (fingerprint, chunk_id.to_bytes(8, "little"))
            for fingerprint, chunk_id in self._hot.items()
        )
        self._spill.flush()
        self._hot.clear()

    def close(self) -> None:
        if self._spill is not None:
            self._spill.close()
            self._spill = None
        self._spill_path.unlink(missing_ok=True)
        self._hot.clear()


class ColumnarTraceWriter:
    """Streams a backup series into the columnar layout.

    Feed chunks through :meth:`begin_backup` / :meth:`append` /
    :meth:`end_backup` (or :meth:`add_backup`); :meth:`finalize` writes
    the manifest — the completion marker — last and atomically. Used as a
    context manager, a clean exit finalizes and an exception leaves the
    directory manifest-less (i.e. visibly incomplete).
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        *,
        name: str,
        fingerprint_bytes: int,
        chunking: str = "variable",
        spill_threshold: int = DEFAULT_SPILL_THRESHOLD,
        params: dict | None = None,
    ):
        if fingerprint_bytes < 1:
            raise ConfigurationError("fingerprint_bytes must be >= 1")
        if chunking not in ("variable", "fixed"):
            raise ConfigurationError("chunking must be 'variable' or 'fixed'")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        # A fresh write invalidates whatever lived here before.
        (self.directory / MANIFEST_NAME).unlink(missing_ok=True)
        self.name = name
        self.chunking = chunking
        self.fingerprint_bytes = fingerprint_bytes
        self._params = dict(params or {})
        self._vocabulary = SpillableVocabulary(
            self.directory / SPILL_FILE, spill_threshold
        )
        self._vocab_file = open(self.directory / VOCAB_FILE, "wb")
        self._ids_file = open(self.directory / IDS_FILE, "wb")
        self._sizes_file = open(self.directory / SIZES_FILE, "wb")
        self._vocab_buffer = bytearray()
        self._ids = array(_ID_TYPECODE)
        self._sizes = array(_ID_TYPECODE)
        self._backups: list[dict] = []
        self._current: dict | None = None
        self._total = 0
        self._finalized = False
        self._closed = False

    @property
    def total_chunks(self) -> int:
        return self._total

    def __len__(self) -> int:
        return len(self._vocabulary)

    def begin_backup(self, label: str) -> None:
        if self._current is not None:
            raise ConfigurationError("previous backup still open")
        self._current = {"label": str(label), "start": self._total}

    def append(
        self, fingerprints: Sequence[bytes], chunk_sizes: Sequence[int]
    ) -> None:
        if self._current is None:
            raise ConfigurationError("append outside begin_backup/end_backup")
        width = self.fingerprint_bytes

        def on_new(fingerprint: bytes) -> None:
            if len(fingerprint) != width:
                raise ConfigurationError(
                    f"fingerprint width {len(fingerprint)} != {width}"
                )
            self._vocab_buffer += fingerprint

        intern = self._vocabulary.intern
        ids, sizes = self._ids, self._sizes
        before = len(ids)
        try:
            for fingerprint, size in zip(fingerprints, chunk_sizes, strict=True):
                ids.append(intern(fingerprint, on_new))
                sizes.append(size)
        except OverflowError:
            raise ConfigurationError(
                "chunk size does not fit in the uint32 size column"
            ) from None
        self._total += len(ids) - before
        if len(ids) >= _FLUSH_ENTRIES:
            self._flush()

    def end_backup(self) -> None:
        if self._current is None:
            raise ConfigurationError("no backup open")
        self._current["stop"] = self._total
        self._backups.append(self._current)
        self._current = None

    def add_backup(self, backup: Backup) -> None:
        self.begin_backup(backup.label)
        self.append(backup.fingerprints, backup.sizes)
        self.end_backup()

    def _flush(self) -> None:
        if self._vocab_buffer:
            self._vocab_file.write(self._vocab_buffer)
            self._vocab_buffer.clear()
        if self._ids:
            self._ids_file.write(_u32_bytes(self._ids))
            self._sizes_file.write(_u32_bytes(self._sizes))
            del self._ids[:]
            del self._sizes[:]

    def finalize(self) -> Path:
        if self._finalized:
            return self.directory
        if self._current is not None:
            raise ConfigurationError("cannot finalize with a backup open")
        self._flush()
        num_unique = len(self._vocabulary)
        self.close()
        manifest = {
            "format": FORMAT_NAME,
            "version": FORMAT_VERSION,
            "name": self.name,
            "chunking": self.chunking,
            "fingerprint_bytes": self.fingerprint_bytes,
            "num_chunks": self._total,
            "num_unique": num_unique,
            "backups": self._backups,
            "params": self._params,
        }
        temp = self.directory / (MANIFEST_NAME + ".tmp")
        with open(temp, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=1, sort_keys=True)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, self.directory / MANIFEST_NAME)
        self._finalized = True
        return self.directory

    def close(self) -> None:
        """Release resources *without* writing the manifest (abort path)."""
        if self._closed:
            return
        self._flush()
        for handle in (self._vocab_file, self._ids_file, self._sizes_file):
            handle.flush()
            os.fsync(handle.fileno())
            handle.close()
        self._vocabulary.close()
        self._closed = True

    def __enter__(self) -> "ColumnarTraceWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.finalize()
        else:
            self.close()


# ---------------------------------------------------------------------------
# Reader


@dataclass(frozen=True)
class BackupSpan:
    """One backup's ``[start, stop)`` slice of the shared columns."""

    label: str
    start: int
    stop: int

    @property
    def num_chunks(self) -> int:
        return self.stop - self.start


class ColumnarBackupView:
    """One backup of a columnar trace, read zero-copy from the mmaps."""

    __slots__ = ("trace", "span")

    def __init__(self, trace: "ColumnarTrace", span: BackupSpan):
        self.trace = trace
        self.span = span

    @property
    def label(self) -> str:
        return self.span.label

    @property
    def start(self) -> int:
        return self.span.start

    @property
    def stop(self) -> int:
        return self.span.stop

    @property
    def num_chunks(self) -> int:
        return self.span.num_chunks

    def ids_array(self):
        """The backup's id column as a zero-copy ``uint32`` numpy array."""
        numpy = accel.numpy
        return numpy.frombuffer(
            self.trace._ids_map,
            dtype="<u4",
            count=self.num_chunks,
            offset=self.start * 4,
        )

    def sizes_array(self):
        """The backup's size column as a zero-copy ``uint32`` numpy array."""
        numpy = accel.numpy
        return numpy.frombuffer(
            self.trace._sizes_map,
            dtype="<u4",
            count=self.num_chunks,
            offset=self.start * 4,
        )

    def ids(self) -> array:
        """The id column as an ``array('I')`` (pure-Python consumers)."""
        return _u32_array(
            self.trace._ids_map[self.start * 4 : self.stop * 4]
        )

    def sizes(self) -> array:
        return _u32_array(
            self.trace._sizes_map[self.start * 4 : self.stop * 4]
        )

    def size_at(self, position: int) -> int:
        """One chunk's size by view-relative stream position."""
        if position < 0 or position >= self.num_chunks:
            raise IndexError(position)
        offset = (self.start + position) * 4
        return struct.unpack_from("<I", self.trace._sizes_map, offset)[0]

    def iter_batches(
        self, batch_size: int = 64 * 1024
    ) -> Iterator[tuple[list[bytes], list[int]]]:
        """Decode the stream to ``(fingerprints, sizes)`` batches.

        This is the adapter feeding bytes-keyed consumers — e.g.
        :class:`repro.attacks.streaming.StreamingCount.ingest` — without
        ever materializing the whole stream.
        """
        if batch_size < 1:
            raise ConfigurationError("batch_size must be >= 1")
        fingerprints = self.trace.vocabulary._fingerprints
        for offset in range(0, self.num_chunks, batch_size):
            stop = min(offset + batch_size, self.num_chunks)
            raw_ids = self.ids_slice(offset, stop)
            raw_sizes = _u32_array(
                self.trace._sizes_map[
                    (self.start + offset) * 4 : (self.start + stop) * 4
                ]
            )
            yield (
                list(map(fingerprints.__getitem__, raw_ids)),
                raw_sizes.tolist(),
            )

    def ids_slice(self, offset: int, stop: int) -> array:
        return _u32_array(
            self.trace._ids_map[
                (self.start + offset) * 4 : (self.start + stop) * 4
            ]
        )

    def to_backup(self) -> Backup:
        """Materialize the view as an in-RAM Backup (small scales only —
        this rebuilds one bytes object per occurrence)."""
        fingerprints: list[bytes] = []
        sizes: list[int] = []
        for batch_fps, batch_sizes in self.iter_batches():
            fingerprints.extend(batch_fps)
            sizes.extend(batch_sizes)
        return Backup(label=self.label, fingerprints=fingerprints, sizes=sizes)


class ColumnarTrace:
    """A completed on-disk columnar trace, memory-mapped read-only."""

    def __init__(
        self, directory: Path, manifest: dict, maps: tuple, handles: tuple
    ):
        self.directory = directory
        self.name = manifest["name"]
        self.chunking = manifest["chunking"]
        self.fingerprint_bytes = manifest["fingerprint_bytes"]
        self.num_chunks = manifest["num_chunks"]
        self.num_unique = manifest["num_unique"]
        self.params = manifest.get("params", {})
        self.backups = tuple(
            BackupSpan(entry["label"], entry["start"], entry["stop"])
            for entry in manifest["backups"]
        )
        self._vocab_map, self._ids_map, self._sizes_map = maps
        self._handles = handles
        self._vocabulary: MappedVocabulary | None = None

    @classmethod
    def open(cls, directory: str | os.PathLike) -> "ColumnarTrace":
        directory = Path(directory)
        manifest_path = directory / MANIFEST_NAME
        if not manifest_path.exists():
            raise ConfigurationError(
                f"no completed columnar trace under {directory}: manifest.json "
                "is absent (the writer publishes it only after all data files "
                "are durable, so an interrupted generation run leaves none — "
                "regenerate the trace)"
            )
        with open(manifest_path, encoding="utf-8") as handle:
            manifest = json.load(handle)
        if (
            manifest.get("format") != FORMAT_NAME
            or manifest.get("version") != FORMAT_VERSION
        ):
            raise ConfigurationError(
                f"{manifest_path} is not a v{FORMAT_VERSION} {FORMAT_NAME}"
            )
        expected = {
            VOCAB_FILE: manifest["num_unique"] * manifest["fingerprint_bytes"],
            IDS_FILE: manifest["num_chunks"] * 4,
            SIZES_FILE: manifest["num_chunks"] * 4,
        }
        maps = []
        handles = []
        try:
            for name in _DATA_FILES:
                path = directory / name
                actual = path.stat().st_size if path.exists() else -1
                if actual < expected[name]:
                    raise ConfigurationError(
                        f"columnar trace {directory} is truncated: {name} has "
                        f"{max(actual, 0)} bytes, manifest expects "
                        f"{expected[name]}"
                    )
                if expected[name] == 0:
                    maps.append(b"")
                    continue
                handle = open(path, "rb")
                handles.append(handle)
                maps.append(
                    mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
                )
        except Exception:
            for mapped in maps:
                if isinstance(mapped, mmap.mmap):
                    mapped.close()
            for handle in handles:
                handle.close()
            raise
        return cls(directory, manifest, tuple(maps), tuple(handles))

    @property
    def vocabulary(self) -> MappedVocabulary:
        if self._vocabulary is None:
            self._vocabulary = MappedVocabulary(
                self._vocab_map, self.fingerprint_bytes, self.num_unique
            )
        return self._vocabulary

    def views(self) -> list[ColumnarBackupView]:
        return [ColumnarBackupView(self, span) for span in self.backups]

    def view(self, index: int) -> ColumnarBackupView:
        """One backup view by series position (negative indices wrap)."""
        return ColumnarBackupView(self, self.backups[index])

    def labels(self) -> list[str]:
        return [span.label for span in self.backups]

    def close(self) -> None:
        self._vocabulary = None
        for mapped in (self._vocab_map, self._ids_map, self._sizes_map):
            if isinstance(mapped, mmap.mmap):
                mapped.close()
        for handle in self._handles:
            handle.close()
        self._handles = ()

    def __enter__(self) -> "ColumnarTrace":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Generation: series writers and the trace-scale stream synthesizer


def write_series(
    series: BackupSeries,
    directory: str | os.PathLike,
    *,
    spill_threshold: int = DEFAULT_SPILL_THRESHOLD,
    params: dict | None = None,
) -> ColumnarTrace:
    """Materialize an in-RAM series into the columnar layout and open it."""
    width = None
    for backup in series.backups:
        if backup.fingerprints:
            width = len(backup.fingerprints[0])
            break
    if width is None:
        raise ConfigurationError(
            "cannot infer fingerprint width from an all-empty series"
        )
    writer = ColumnarTraceWriter(
        directory,
        name=series.name,
        fingerprint_bytes=width,
        chunking=series.chunking,
        spill_threshold=spill_threshold,
        params=params if params is not None else {"source": "series"},
    )
    with writer:
        for backup in series.backups:
            writer.add_backup(backup)
    return ColumnarTrace.open(directory)


def ensure_columnar(
    directory: str | os.PathLike,
    builder: Callable[[Path], object],
    *,
    params: dict | None = None,
) -> ColumnarTrace:
    """Generate once, mmap thereafter.

    Opens the trace at ``directory`` if a completed one with matching
    ``params`` exists; otherwise clears any partial remnants, invokes
    ``builder(directory)`` to (re)generate, and opens the result. This is
    the resume-after-interrupt seam: the manifest is the completion
    marker, so a killed generation run is regenerated, never trusted.
    """
    directory = Path(directory)
    wanted = json.loads(json.dumps(params)) if params is not None else None
    try:
        trace = ColumnarTrace.open(directory)
    except ConfigurationError:
        trace = None
    if trace is not None:
        if wanted is None or trace.params == wanted:
            return trace
        trace.close()
    for name in (MANIFEST_NAME, MANIFEST_NAME + ".tmp", SPILL_FILE, *_DATA_FILES):
        (directory / name).unlink(missing_ok=True)
    builder(directory)
    return ColumnarTrace.open(directory)


@dataclass
class StreamConfig:
    """Knobs for the trace-scale stream synthesizer.

    The shape follows the FSL-style generator where it matters to the
    attacks — Zipf-popular chunk *runs* (locality: popular content recurs
    with its context), churn introducing fresh never-reused chunks, and a
    run pool shared across backups (temporal redundancy) — but generates
    batch-wise straight into the writer, so 10⁷–10⁸ chunk traces need
    O(pool) RAM, not O(trace).

    Fingerprints default to 16 bytes: at 10⁷⁺ unique chunks, 6-byte
    fingerprints would give the MLE layer's truncated-hash ciphertext
    fingerprints a material birthday-collision probability.
    """

    chunks: int = 10_000_000
    backups: int = 2
    fingerprint_bytes: int = 16
    run_length: int = 16
    pool_runs: int | None = None
    churn: float = 0.35
    skew: float = 3.0
    min_size: int = 2048
    size_span: int = 14336
    size_quantum: int = 512

    def __post_init__(self) -> None:
        if self.chunks < 0 or self.backups < 1:
            raise ConfigurationError("chunks must be >= 0 and backups >= 1")
        if self.fingerprint_bytes < 4:
            raise ConfigurationError("fingerprint_bytes must be >= 4")
        if not 0.0 <= self.churn <= 1.0:
            raise ConfigurationError("churn must be in [0, 1]")
        if self.run_length < 1:
            raise ConfigurationError("run_length must be >= 1")

    @property
    def effective_pool_runs(self) -> int:
        if self.pool_runs is not None:
            return max(1, self.pool_runs)
        return max(16, min(60_000, self.chunks // 128))


def _run_sizes(fingerprints: Iterable[bytes], config: StreamConfig) -> list[int]:
    # Size is a pure function of the fingerprint, so every occurrence of a
    # chunk reports the same size (as content-defined chunking guarantees).
    quantum = config.size_quantum
    return [
        config.min_size
        + (int.from_bytes(fp[:4], "big") % config.size_span) // quantum * quantum
        for fp in fingerprints
    ]


def synthesize_columnar(
    directory: str | os.PathLike,
    config: StreamConfig | None = None,
    *,
    seed: int = 7,
    name: str = "stream-synthetic",
    spill_threshold: int = DEFAULT_SPILL_THRESHOLD,
) -> Path:
    """Stream a trace-scale synthetic workload into the columnar layout."""
    config = config or StreamConfig()
    width = config.fingerprint_bytes
    pool_rng = rng_from(seed, "columnar", "pool")
    pool = [
        tuple(pool_rng.randbytes(width) for _ in range(config.run_length))
        for _ in range(config.effective_pool_runs)
    ]
    pool_sizes = [_run_sizes(run, config) for run in pool]
    writer = ColumnarTraceWriter(
        directory,
        name=name,
        fingerprint_bytes=width,
        chunking="variable",
        spill_threshold=spill_threshold,
        params={
            "source": "stream",
            "seed": seed,
            "chunks": config.chunks,
            "backups": config.backups,
            "fingerprint_bytes": width,
        },
    )
    per_backup = config.chunks // config.backups
    remainder = config.chunks - per_backup * config.backups
    pool_count = len(pool)
    with writer:
        for index in range(config.backups):
            rng = rng_from(seed, "columnar", "backup", index)
            target = per_backup + (remainder if index == config.backups - 1 else 0)
            writer.begin_backup(f"stream {index}")
            written = 0
            batch_fps: list[bytes] = []
            batch_sizes: list[int] = []
            while written < target:
                if rng.random() < config.churn:
                    run = [rng.randbytes(width) for _ in range(config.run_length)]
                    run_sizes = _run_sizes(run, config)
                else:
                    # Power-law pick: low indices are drawn far more often,
                    # giving the skewed frequency profile of Fig. 1.
                    pick = int(pool_count * rng.random() ** config.skew)
                    run = pool[min(pick, pool_count - 1)]
                    run_sizes = pool_sizes[min(pick, pool_count - 1)]
                take = min(len(run), target - written)
                batch_fps.extend(run[:take])
                batch_sizes.extend(run_sizes[:take])
                written += take
                if len(batch_fps) >= 64 * 1024:
                    writer.append(batch_fps, batch_sizes)
                    batch_fps.clear()
                    batch_sizes.clear()
            if batch_fps:
                writer.append(batch_fps, batch_sizes)
            writer.end_backup()
    return Path(directory)


def ensure_stream_columnar(
    directory: str | os.PathLike,
    config: StreamConfig | None = None,
    *,
    seed: int = 7,
    name: str = "stream-synthetic",
) -> ColumnarTrace:
    """Open (or generate once) the synthetic stream trace at ``directory``."""
    config = config or StreamConfig()
    params = {
        "source": "stream",
        "seed": seed,
        "chunks": config.chunks,
        "backups": config.backups,
        "fingerprint_bytes": config.fingerprint_bytes,
    }
    return ensure_columnar(
        directory,
        lambda path: synthesize_columnar(path, config, seed=seed, name=name),
        params=params,
    )


def ensure_series_columnar(
    directory: str | os.PathLike,
    series_builder: Callable[[], BackupSeries],
    *,
    params: dict,
) -> ColumnarTrace:
    """Open (or materialize once) a canonical series in columnar form."""
    return ensure_columnar(
        directory,
        lambda path: write_series(series_builder(), path, params=params),
        params=params,
    )
