"""Backup workload generators and trace statistics (§5.1).

Three dataset families mirror the paper's evaluation:

* :class:`FSLDatasetGenerator` — FSL-like multi-user home-directory monthly
  backups (variable-size chunks, 48-bit fingerprints).
* :class:`VMDatasetGenerator` — VM-image weekly backups (fixed 4 KB chunks,
  shared base image, mid-series churn window).
* :class:`SyntheticDatasetGenerator` — Lillibridge-style snapshot chain from
  an initial public image (2 % files / 2.5 % content / +new data per
  snapshot).

See DESIGN.md §2 for the substitution rationale (the original traces are
proprietary).
"""

from repro.datasets.chunkspace import ChunkSpace, PopularPool, SizeModel
from repro.datasets.columnar import (
    ColumnarBackupView,
    ColumnarTrace,
    ColumnarTraceWriter,
    MappedVocabulary,
    SpillableVocabulary,
    StreamConfig,
    ensure_columnar,
    synthesize_columnar,
    write_series,
)
from repro.datasets.filesim import (
    FileMutator,
    SimFile,
    SimFileSystem,
    snapshot,
)
from repro.datasets.fsl import FSLConfig, FSLDatasetGenerator
from repro.datasets.model import Backup, BackupSeries, ChunkRecord
from repro.datasets.stats import (
    FrequencyCDF,
    adjacency_preservation,
    chunk_frequencies,
    content_overlap,
    frequency_cdf,
    series_frequencies,
    storage_savings,
)
from repro.datasets.synthetic import SyntheticConfig, SyntheticDatasetGenerator
from repro.datasets.trace import load_series, save_series
from repro.datasets.vm import VMConfig, VMDatasetGenerator

__all__ = [
    "ChunkSpace",
    "PopularPool",
    "SizeModel",
    "ColumnarBackupView",
    "ColumnarTrace",
    "ColumnarTraceWriter",
    "MappedVocabulary",
    "SpillableVocabulary",
    "StreamConfig",
    "ensure_columnar",
    "synthesize_columnar",
    "write_series",
    "FileMutator",
    "SimFile",
    "SimFileSystem",
    "snapshot",
    "FSLConfig",
    "FSLDatasetGenerator",
    "Backup",
    "BackupSeries",
    "ChunkRecord",
    "FrequencyCDF",
    "adjacency_preservation",
    "chunk_frequencies",
    "content_overlap",
    "frequency_cdf",
    "series_frequencies",
    "storage_savings",
    "SyntheticConfig",
    "SyntheticDatasetGenerator",
    "load_series",
    "save_series",
    "VMConfig",
    "VMDatasetGenerator",
]
