"""Trace (de)serialisation.

Backups are persisted in a compact line-oriented text format modelled on the
published FSL snapshot format (one fingerprint+size record per chunk, in
logical order), so generated workloads can be cached on disk and reloaded by
benchmarks without regeneration, and so external fingerprint traces can be
imported.

Format::

    # freqdedup-trace v1
    # series: <name>
    # chunking: variable|fixed
    [backup <label>]
    <hex fingerprint> <size>
    ...
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.common.errors import IntegrityError
from repro.datasets.model import Backup, BackupSeries

_MAGIC = "# freqdedup-trace v1"


def save_series(series: BackupSeries, path: str | os.PathLike) -> None:
    """Write ``series`` to ``path`` in the trace format."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="ascii") as out:
        out.write(f"{_MAGIC}\n")
        out.write(f"# series: {series.name}\n")
        out.write(f"# chunking: {series.chunking}\n")
        for backup in series.backups:
            out.write(f"[backup {backup.label}]\n")
            for fingerprint, size in zip(backup.fingerprints, backup.sizes):
                out.write(f"{fingerprint.hex()} {size}\n")


def load_series(path: str | os.PathLike) -> BackupSeries:
    """Read a series written by :func:`save_series`."""
    with open(path, "r", encoding="ascii") as source:
        first = source.readline().rstrip("\n")
        if first != _MAGIC:
            raise IntegrityError(f"not a freqdedup trace: {path}")
        name = "unknown"
        chunking = "variable"
        series: BackupSeries | None = None
        current: Backup | None = None
        pending: list[Backup] = []
        for line_number, raw in enumerate(source, start=2):
            line = raw.rstrip("\n")
            if not line:
                continue
            if line.startswith("# series: "):
                name = line[len("# series: "):]
            elif line.startswith("# chunking: "):
                chunking = line[len("# chunking: "):]
            elif line.startswith("#"):
                continue
            elif line.startswith("[backup ") and line.endswith("]"):
                current = Backup(label=line[len("[backup "):-1])
                pending.append(current)
            else:
                if current is None:
                    raise IntegrityError(
                        f"chunk record before any backup header "
                        f"(line {line_number})"
                    )
                try:
                    fingerprint_hex, size_text = line.split()
                    current.append(bytes.fromhex(fingerprint_hex), int(size_text))
                except ValueError as exc:
                    raise IntegrityError(
                        f"malformed trace record at line {line_number}: {line!r}"
                    ) from exc
        series = BackupSeries(name=name, backups=pending, chunking=chunking)
        return series
