"""freqdedup — reproduction of *Information Leakage in Encrypted Deduplication
via Frequency Analysis: Attacks and Defenses* (DSN 2017, extended TR).

The package is organised around the paper's pipeline:

* :mod:`repro.chunking` — fixed-size and content-defined chunking plus
  fingerprinting (the deduplication unit of §2.1).
* :mod:`repro.crypto` — message-locked encryption substrates (§2.2):
  convergent encryption, server-aided MLE with a rate-limited key manager,
  and the deterministic block-cipher stand-in.
* :mod:`repro.index` — embedded key-value store, Bloom filter and LRU
  fingerprint cache used by both the attacks (§5.2) and the DDFS prototype
  (§7.4).
* :mod:`repro.datasets` — FSL-like, VM-like and Lillibridge-style synthetic
  backup workload generators (§5.1) plus trace statistics.
* :mod:`repro.attacks` — the basic, locality-based and advanced
  locality-based inference attacks (§4, Algorithms 1–3).
* :mod:`repro.defenses` — MinHash encryption and scrambling (§6,
  Algorithms 4–5) and the defense pipelines of §7.1.
* :mod:`repro.storage` — the DDFS-like deduplicated storage prototype with
  metadata-access accounting (§7.4).
* :mod:`repro.scenarios` — the declarative experiment grids and the
  process-parallel, cache-aware cell runner every driver fans out through.
* :mod:`repro.service` — the multi-tenant service layer: population
  traffic synthesis, per-tenant sessions and quotas, and cross-user
  side-channel metering.
* :mod:`repro.cluster` — the multi-node storage tier: consistent-hash
  routing, elastic rebalancing, and partial-view (per-shard) attacks.
* :mod:`repro.analysis` — experiment drivers that regenerate every
  evaluation figure in the paper, plus reporting and docs tooling.

Quickstart::

    from repro.datasets import FSLDatasetGenerator
    from repro.defenses import DefensePipeline, DefenseScheme
    from repro.attacks import LocalityAttack, AttackEvaluator

    series = FSLDatasetGenerator(seed=7).generate()
    pipeline = DefensePipeline(DefenseScheme.MLE)
    encrypted = pipeline.encrypt_series(series)
    evaluator = AttackEvaluator(encrypted)
    report = evaluator.run(LocalityAttack(), auxiliary=-2, target=-1)
    print(report.inference_rate)
"""

from repro.version import __version__

__all__ = ["__version__"]
