"""Canonical bench-scale workloads shared by benchmarks, examples and the CLI.

One place defines the exact dataset and pipeline configurations every
reproduced figure uses, so EXPERIMENTS.md numbers are regenerable
bit-for-bit. Series and encrypted pipelines are memoised per process —
several figures share the same inputs and generation is not free.

Scaling notes (see DESIGN.md §2): datasets are ~10³× smaller than the
paper's; the defense segmentation and DDFS cache budgets scale with them
(`SegmentationSpec.scaled`, 512 KiB/4 MiB caches standing in for the
paper's 512 MB/4 GB).
"""

from __future__ import annotations

from functools import lru_cache

from repro.common.units import KiB, MiB
from repro.datasets.fsl import FSLConfig, FSLDatasetGenerator
from repro.datasets.model import BackupSeries
from repro.datasets.synthetic import SyntheticConfig, SyntheticDatasetGenerator
from repro.datasets.vm import VMConfig, VMDatasetGenerator
from repro.defenses.pipeline import DefensePipeline, DefenseScheme, EncryptedSeries
from repro.defenses.segmentation import SegmentationSpec

FSL_SEED = 20130122
VM_SEED = 20140901
SYNTHETIC_SEED = 1404

# DDFS cache budgets: the paper's 512 MB (insufficient for all fingerprints)
# and 4 GB (sufficient), scaled to our fingerprint population.
SMALL_CACHE_BYTES = 512 * KiB
LARGE_CACHE_BYTES = 4 * MiB


@lru_cache(maxsize=None)
def fsl_series() -> BackupSeries:
    """The FSL-like workload used by the attack figures."""
    return FSLDatasetGenerator(seed=FSL_SEED).generate()


@lru_cache(maxsize=None)
def vm_series() -> BackupSeries:
    """The VM-like workload (fixed-size chunks, churn window)."""
    return VMDatasetGenerator(seed=VM_SEED).generate()


@lru_cache(maxsize=None)
def synthetic_series() -> BackupSeries:
    """The Lillibridge-style synthetic snapshot chain."""
    return SyntheticDatasetGenerator(seed=SYNTHETIC_SEED).generate()


@lru_cache(maxsize=None)
def storage_fsl_series() -> BackupSeries:
    """FSL variant for the storage/metadata experiments (Figs. 11/13/14).

    Real FSL redundancy is dominated by temporal duplicates of large
    objects; at reduced scale the attack-calibrated workload over-weights
    small cross-context duplicates, which MinHash encryption re-keys per
    context. This variant shifts the balance back (fewer duplicated small
    files, single-region monthly edits) so the defense's *storage* cost is
    measured on a workload whose redundancy structure matches the paper's.
    """
    config = FSLConfig(
        common_file_probability=0.15,
        template_zipf_exponent=1.1,
        popular_rate=0.02,
        modify_file_fraction=0.20,
        file_churn=0.12,
        modify_max_regions=1,
    )
    return FSLDatasetGenerator(seed=FSL_SEED, config=config).generate()


def scaled_segmentation(series: BackupSeries) -> SegmentationSpec:
    """Bench-scale segmentation for a series (see SegmentationSpec.scaled)."""
    if not series.backups or not series.backups[0].sizes:
        return SegmentationSpec.scaled()
    first = series.backups[0]
    mean_chunk = first.logical_bytes // max(1, len(first))
    return SegmentationSpec.scaled(max(512, mean_chunk))


_SERIES_FACTORIES = {
    "fsl": fsl_series,
    "vm": vm_series,
    "synthetic": synthetic_series,
    "storage-fsl": storage_fsl_series,
}


def series_by_name(name: str) -> BackupSeries:
    """Look up a canonical series by CLI-friendly name."""
    try:
        return _SERIES_FACTORIES[name]()
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; choose from {sorted(_SERIES_FACTORIES)}"
        ) from None


# Backup counts and chunking styles of the canonical series, derivable from
# the generator configs without generating anything.  Scenario expansion
# (repro.scenarios.spec) resolves anchor ranges through these, so a parent
# process can plan a parallel run without paying dataset generation;
# tests/unit/test_workloads_analysis.py pins them to the generated truth.
_SERIES_LENGTHS = {
    "fsl": lambda: FSLConfig().num_backups,
    "vm": lambda: VMConfig().num_backups,
    "synthetic": lambda: SyntheticConfig().num_snapshots + 1,
    "storage-fsl": lambda: FSLConfig().num_backups,
}
_SERIES_CHUNKING = {
    "fsl": "variable",
    "vm": "fixed",
    "synthetic": "variable",
    "storage-fsl": "variable",
}


def series_length(name: str) -> int:
    """Number of backups in a canonical series, without generating it."""
    try:
        return _SERIES_LENGTHS[name]()
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; choose from {sorted(_SERIES_LENGTHS)}"
        ) from None


def series_chunking(name: str) -> str:
    """Chunking style (``"fixed"``/``"variable"``) of a canonical series."""
    try:
        return _SERIES_CHUNKING[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; choose from {sorted(_SERIES_CHUNKING)}"
        ) from None


@lru_cache(maxsize=None)
def encrypted_series(
    dataset: str, scheme: DefenseScheme | str = DefenseScheme.MLE
) -> EncryptedSeries:
    """Memoised defense-pipeline output for a canonical dataset.

    ``scheme`` takes anything :class:`DefensePipeline` accepts: an enum
    member, a plain name, or a parameterized obfuscation spec like
    ``"obfuscate:4"`` (``DefenseScheme`` is a str-enum, so enum and
    plain-name spellings share one cache entry).
    """
    series = series_by_name(dataset)
    pipeline = DefensePipeline(
        scheme, segmentation=scaled_segmentation(series), seed=7
    )
    return pipeline.encrypt_series(series)
