"""Docs tooling: the generated CLI reference and the docs link checker.

Two small, dependency-free maintenance tools behind the ``docs`` CI job:

* :func:`cli_markdown` renders ``docs/cli.md`` from the live argparse
  tree — the top-level ``freqdedup --help`` plus every subcommand's full
  help text.  Because it reads the same parser the CLI runs, the
  reference cannot drift from the code silently: the CI guard
  (``python -m repro.analysis.docs --check docs/cli.md``) regenerates it
  and fails on any difference.
* :func:`check_links` scans Markdown files for relative links and
  reports targets that do not exist — the docs suite is cross-linked
  (README ↔ ``docs/*.md``), and a rename must not leave dangling links.

Help text is rendered at a pinned 80-column width, so output is
byte-stable regardless of the invoking terminal.  Argparse formatting
details can shift between interpreter minors, so the staleness guard is
pinned to one Python version (:data:`PINNED_PYTHON`) — the version the
docs CI job runs, and the one the committed ``docs/cli.md`` was
generated with.

Usage::

    python -m repro.analysis.docs --write docs/cli.md   # regenerate
    python -m repro.analysis.docs --check docs/cli.md   # staleness guard
    python -m repro.analysis.docs --links README.md docs
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from pathlib import Path

# The interpreter minor the committed docs/cli.md is rendered with (and
# the docs CI job runs).  Regenerate under this version.
PINNED_PYTHON = (3, 11)

# Argparse reads the terminal width at format time; pin it so the
# generated file is byte-stable everywhere (CI runners, dev laptops).
_COLUMNS = "80"

_HEADER = """\
# CLI reference

Every `freqdedup` (`python -m repro`) subcommand and flag, generated
from the live argparse tree — do not edit by hand.  Regenerate with:

```console
$ PYTHONPATH=src python -m repro.analysis.docs --write docs/cli.md
```

The docs CI job fails if this file is stale
(`python -m repro.analysis.docs --check docs/cli.md`).
"""


def _subcommands(parser: argparse.ArgumentParser) -> dict[str, argparse.ArgumentParser]:
    """Name → subparser for every registered subcommand."""
    for action in parser._actions:  # noqa: SLF001 - argparse has no public API
        if isinstance(action, argparse._SubParsersAction):
            return dict(action.choices)
    return {}


def cli_markdown() -> str:
    """Render the full CLI reference as Markdown (deterministic)."""
    from repro.cli import _build_parser

    previous = os.environ.get("COLUMNS")
    os.environ["COLUMNS"] = _COLUMNS
    try:
        parser = _build_parser()
        sections = [_HEADER]
        sections.append(
            "## freqdedup\n\n```text\n" + parser.format_help() + "```\n"
        )
        for name, subparser in _subcommands(parser).items():
            sections.append(
                f"## freqdedup {name}\n\n```text\n"
                + subparser.format_help()
                + "```\n"
            )
        return "\n".join(sections)
    finally:
        if previous is None:
            del os.environ["COLUMNS"]
        else:
            os.environ["COLUMNS"] = previous


def write_cli_doc(path: str | os.PathLike) -> None:
    """Write the generated reference to ``path``."""
    Path(path).write_text(cli_markdown(), encoding="utf-8")


def check_cli_doc(path: str | os.PathLike) -> list[str]:
    """Staleness problems with the committed reference (empty = fresh)."""
    target = Path(path)
    if not target.exists():
        return [f"{target}: missing — generate it with --write"]
    expected = cli_markdown()
    actual = target.read_text(encoding="utf-8")
    if actual != expected:
        return [
            f"{target}: stale vs the live parser — regenerate with "
            f"`python -m repro.analysis.docs --write {target}`"
        ]
    return []


_LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")


def _markdown_files(paths: list[str | os.PathLike]) -> list[Path]:
    files: list[Path] = []
    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        else:
            files.append(path)
    return files


def check_links(paths: list[str | os.PathLike]) -> list[str]:
    """Dangling relative links in the given Markdown files/directories.

    External (``http(s)://``, ``mailto:``) and pure-anchor (``#…``)
    links are skipped; relative targets are resolved against the linking
    file and must exist (a trailing ``#anchor`` is stripped first).

    Returns:
        One ``file: broken target`` line per dangling link (empty list =
        all links resolve).
    """
    problems: list[str] = []
    for source in _markdown_files(paths):
        if not source.exists():
            problems.append(f"{source}: file not found")
            continue
        text = source.read_text(encoding="utf-8")
        for match in _LINK.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            resolved = (source.parent / relative).resolve()
            if not resolved.exists():
                problems.append(f"{source}: broken link -> {target}")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.docs",
        description="Generate/check docs/cli.md and check docs links.",
    )
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument(
        "--write", metavar="FILE", help="write the generated CLI reference"
    )
    group.add_argument(
        "--check",
        metavar="FILE",
        help="fail (exit 1) if the committed CLI reference is stale",
    )
    group.add_argument(
        "--links",
        nargs="+",
        metavar="PATH",
        help="check relative links in Markdown files/directories",
    )
    args = parser.parse_args(argv)

    if args.write:
        write_cli_doc(args.write)
        print(f"wrote -> {args.write}")
        return 0
    if args.check:
        if sys.version_info[:2] != PINNED_PYTHON:
            print(
                f"skipping staleness check: argparse formatting is pinned "
                f"to Python {PINNED_PYTHON[0]}.{PINNED_PYTHON[1]} "
                f"(running {sys.version_info[0]}.{sys.version_info[1]})"
            )
            return 0
        problems = check_cli_doc(args.check)
    else:
        problems = check_links(args.links)
    for problem in problems:
        print(problem)
    if problems:
        return 1
    print("ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
