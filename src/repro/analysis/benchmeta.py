"""Shared metadata envelope and memory probes for the ``BENCH_*.json`` files.

Every committed bench baseline carries the same ``env`` envelope so the
bench trajectory stays machine-comparable across PRs: schema version,
interpreter/numpy versions, CPU count and a generation timestamp. The
RSS helpers exist because the trace-scale COUNT story is memory-bound,
not just time-bound: ``peak_rss_bytes`` reads the process high-water
mark, and ``run_isolated`` runs one bench phase in a forked child so its
peak RSS is attributable to that phase alone (a parent-process
``ru_maxrss`` only ever grows, so phases measured in-process would
shadow each other).
"""

from __future__ import annotations

import multiprocessing
import os
import platform
import subprocess
import sys
from datetime import datetime, timezone
from typing import Any, Callable

from repro.common import accel
from repro.version import __version__

__all__ = [
    "ENVELOPE_SCHEMA",
    "git_revision",
    "metadata_envelope",
    "peak_rss_bytes",
    "run_isolated",
]

#: Bump when the envelope layout changes shape (not when values change).
#: Schema 2 adds source provenance: ``git_commit`` / ``git_dirty``.
ENVELOPE_SCHEMA = 2


def git_revision() -> tuple[str | None, bool | None]:
    """``(commit hash, worktree dirty?)`` of the repo the code runs from.

    Both come back ``None`` outside a git checkout (tarball installs,
    containers without git) — baselines must still be writable there.
    """
    root = os.path.dirname(os.path.abspath(__file__))
    try:
        commit = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=root,
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        ).stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=root,
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        ).stdout
    except (OSError, subprocess.SubprocessError):
        return None, None
    return (commit or None), bool(status.strip())


def metadata_envelope() -> dict[str, Any]:
    """The shared ``env`` block every ``BENCH_*.json`` baseline embeds."""
    commit, dirty = git_revision()
    return {
        "schema": ENVELOPE_SCHEMA,
        "generated_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "repro_version": __version__,
        "python": platform.python_version(),
        "numpy": None if accel.numpy is None else accel.numpy.__version__,
        "platform": platform.machine(),
        "cpu_count": os.cpu_count(),
        "git_commit": commit,
        "git_dirty": dirty,
    }


def peak_rss_bytes() -> int | None:
    """This process' peak resident set size in bytes (``None`` if the
    platform exposes no ``getrusage``)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports kilobytes, macOS reports bytes.
    return peak if sys.platform == "darwin" else peak * 1024


def _isolated_entry(connection, function, args, kwargs) -> None:
    try:
        value = function(*args, **kwargs)
        connection.send(("ok", value, peak_rss_bytes()))
    except BaseException as exc:  # noqa: BLE001 - re-raised in the parent
        connection.send(("error", repr(exc), peak_rss_bytes()))
    finally:
        connection.close()


def run_isolated(
    function: Callable[..., Any], *args: Any, **kwargs: Any
) -> tuple[Any, int | None]:
    """Run ``function(*args, **kwargs)`` in a forked child and return
    ``(result, child_peak_rss_bytes)``.

    The child inherits the parent's state (fork start method), so closures
    over already-built workloads work; only the *return value* travels
    back over a pipe and must be picklable. Falls back to running inline
    (with the parent's cumulative RSS) where fork is unavailable.
    """
    if "fork" not in multiprocessing.get_all_start_methods():
        return function(*args, **kwargs), peak_rss_bytes()
    context = multiprocessing.get_context("fork")
    ours, theirs = context.Pipe(duplex=False)
    child = context.Process(
        target=_isolated_entry, args=(theirs, function, args, kwargs)
    )
    child.start()
    theirs.close()
    try:
        status, payload, rss = ours.recv()
    except EOFError:
        child.join()
        raise RuntimeError(
            f"isolated bench phase died with exit code {child.exitcode}"
        ) from None
    finally:
        ours.close()
    child.join()
    if status == "error":
        raise RuntimeError(f"isolated bench phase failed: {payload}")
    return payload, rss
