"""Rendering and persistence for reproduced figures.

Every experiment driver in :mod:`repro.analysis.figures` returns a
:class:`FigureResult` — the series the corresponding paper figure plots,
as rows. Benches render these as aligned ASCII tables (written under
``results/``) so paper-vs-measured comparisons in EXPERIMENTS.md can be
regenerated with one command.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path


@dataclass
class FigureResult:
    """A reproduced figure: labelled columns and data rows."""

    figure: str
    title: str
    columns: list[str]
    rows: list[list[object]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values: object) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values, expected {len(self.columns)}"
            )
        self.rows.append(list(values))

    def column(self, name: str) -> list[object]:
        """All values of one column, by name."""
        index = self.columns.index(name)
        return [row[index] for row in self.rows]


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def render_table(result: FigureResult) -> str:
    """Render a :class:`FigureResult` as an aligned ASCII table."""
    header = [result.columns]
    body = [[_format_cell(v) for v in row] for row in result.rows]
    widths = [
        max(len(row[i]) for row in header + body)
        for i in range(len(result.columns))
    ]
    lines = [f"# {result.figure}: {result.title}"]
    lines.append(
        "  ".join(name.ljust(width) for name, width in zip(result.columns, widths))
    )
    lines.append("  ".join("-" * width for width in widths))
    for row in body:
        lines.append(
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        )
    for note in result.notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)


def save_result(
    result: FigureResult, directory: str | os.PathLike = "results"
) -> Path:
    """Write the rendered table (and a JSON twin) under ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    stem = result.figure.lower().replace(" ", "_").replace("/", "-")
    text_path = directory / f"{stem}.txt"
    text_path.write_text(render_table(result) + "\n", encoding="utf-8")
    json_path = directory / f"{stem}.json"
    json_path.write_text(
        json.dumps(
            {
                "figure": result.figure,
                "title": result.title,
                "columns": result.columns,
                "rows": result.rows,
                "notes": result.notes,
            },
            indent=2,
            default=str,
        ),
        encoding="utf-8",
    )
    return text_path
