"""Experiment drivers and reporting for every evaluation figure (§5, §7).

:mod:`repro.analysis.workloads` pins the canonical bench-scale datasets;
:mod:`repro.analysis.figures` contains one driver per paper figure;
:mod:`repro.analysis.reporting` renders and persists the results.
"""

from repro.analysis.figures import (
    FIGURE_SCENARIOS,
    fig1_frequency_skew,
    fig4_parameter_impact,
    fig5_vary_auxiliary,
    fig6_vary_target,
    fig7_sliding_window,
    fig8_known_plaintext,
    fig9_kpm_vary_auxiliary,
    fig10_defense_effectiveness,
    fig11_storage_saving,
    fig13_metadata_small_cache,
    fig14_metadata_large_cache,
)
from repro.analysis.reporting import FigureResult, render_table, save_result
from repro.analysis.workloads import (
    encrypted_series,
    fsl_series,
    scaled_segmentation,
    series_by_name,
    series_chunking,
    series_length,
    storage_fsl_series,
    synthetic_series,
    vm_series,
)

__all__ = [
    "FIGURE_SCENARIOS",
    "fig1_frequency_skew",
    "fig4_parameter_impact",
    "fig5_vary_auxiliary",
    "fig6_vary_target",
    "fig7_sliding_window",
    "fig8_known_plaintext",
    "fig9_kpm_vary_auxiliary",
    "fig10_defense_effectiveness",
    "fig11_storage_saving",
    "fig13_metadata_small_cache",
    "fig14_metadata_large_cache",
    "FigureResult",
    "render_table",
    "save_result",
    "encrypted_series",
    "fsl_series",
    "scaled_segmentation",
    "series_by_name",
    "series_chunking",
    "series_length",
    "storage_fsl_series",
    "synthetic_series",
    "vm_series",
]
