"""Hot-path benchmark harness behind ``freqdedup bench``.

Times the three loops every experiment leans on — content-defined
chunking, the attacks' COUNT pass, and multi-tenant service ingest — on
pinned, seeded workloads, asserts the fast paths are byte-identical to
their reference implementations, and writes the results to
``BENCH_hotpaths.json`` at the repo root. The committed file is the perf
baseline later PRs diff against (CI re-runs ``repro bench --quick`` and
soft-reports deltas; thresholds are asserted only over the identity
checks, never over timings, which are machine-dependent).

Workloads:

* **chunking** — pseudorandom bytes at the default 2048/8192/65536 spec;
  each chunker's skip-ahead/vectorized ``cut_points`` is timed against
  its byte-at-a-time ``cut_points_reference``.
* **count** — an FSL-shaped logical chunk stream (Zipf-popular template
  runs with churn, unique/total ≈ 0.7 like the repo's FSL workload);
  the interned COUNT is timed against ``count_with_neighbors``, both
  bare (tables accumulated) and *rank-ready* (global frequency table
  plus both neighbor tables materialized for probing — everything the
  locality attack needs before its first FREQ-ANALYSIS).
* **service** — one pinned multi-tenant population served through
  ``DedupService`` (synthesis excluded via the shared traffic memo), so
  the batched upload ingest path gets a throughput number and the
  deterministic report a content digest.

All timings are best-of-``repeats`` wall-clock.
"""

from __future__ import annotations

import hashlib
import json
import platform
import random
import sys
import time
from pathlib import Path

from repro.common import accel
from repro.version import __version__

#: Default output file, at the repo root when run from it.
DEFAULT_OUTPUT = "BENCH_hotpaths.json"

_CHUNK_BYTES = 4 << 20
_CHUNK_BYTES_QUICK = 1 << 20
_COUNT_CHUNKS = 1_500_000
_COUNT_CHUNKS_QUICK = 150_000
_COLUMNAR_CHUNKS = 10_000_000
_COLUMNAR_CHUNKS_QUICK = 200_000
_SERVICE_TENANTS = 40
_SERVICE_TENANTS_QUICK = 12


def _best_of(function, repeats: int) -> float:
    import gc

    best = float("inf")
    result_holder = []
    for _ in range(repeats):
        gc.collect()
        start = time.perf_counter()
        result_holder.append(function())
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        result_holder.clear()
    return best


def count_workload(chunks: int, seed: int = 7):
    """FSL-shaped logical stream: Zipf-popular template runs + churn."""
    from repro.datasets.model import Backup

    from itertools import accumulate

    rng = random.Random(seed)
    runs = [
        [rng.randbytes(20) for _ in range(rng.randrange(4, 40))]
        for _ in range(max(200, chunks // 8))
    ]
    # Pre-accumulated weights keep each draw O(log n) instead of O(n)
    # (identical draws: choices() builds exactly this table internally).
    cum_weights = list(
        accumulate(1.0 / (rank + 1) ** 0.9 for rank in range(len(runs)))
    )
    fingerprints: list[bytes] = []
    sizes: list[int] = []
    while len(fingerprints) < chunks:
        run = rng.choices(runs, cum_weights=cum_weights)[0]
        if rng.random() < 0.6:
            run = [
                rng.randbytes(20) if rng.random() < 0.7 else fingerprint
                for fingerprint in run
            ]
        fingerprints.extend(run)
        sizes.extend(rng.randrange(1024, 16384) for _ in run)
    del fingerprints[chunks:]
    del sizes[chunks:]
    return Backup(label="bench-count", fingerprints=fingerprints, sizes=sizes)


def _count_tables_equal(fast, reference) -> bool:
    """Full four-table, order-sensitive equivalence check."""
    if (
        fast.frequencies != reference.frequencies
        or list(fast.frequencies) != list(reference.frequencies)
        or fast.sizes != reference.sizes
        or list(fast.sizes) != list(reference.sizes)
    ):
        return False
    for view, oracle in ((fast.left, reference.left), (fast.right, reference.right)):
        decoded = dict(view.items())
        if decoded != oracle or list(decoded) != list(oracle):
            return False
        for key, table in decoded.items():
            if list(table) != list(oracle[key]):
                return False
    return True


def bench_chunking(quick: bool, repeats: int) -> dict:
    from repro.chunking import ChunkerSpec, GearChunker, RabinChunker

    data = random.Random(0).randbytes(
        _CHUNK_BYTES_QUICK if quick else _CHUNK_BYTES
    )
    spec = ChunkerSpec(min_size=2048, avg_size=8192, max_size=65536)
    section: dict = {
        "data_bytes": len(data),
        "spec": {"min": spec.min_size, "avg": spec.avg_size, "max": spec.max_size},
    }
    for name, chunker in (
        ("rabin", RabinChunker(spec)),
        ("gear", GearChunker(spec)),
    ):
        fast_cuts = chunker.cut_points(data)  # warm table caches
        reference_cuts = chunker.cut_points_reference(data)
        reference_s = _best_of(lambda: chunker.cut_points_reference(data), repeats)
        fast_s = _best_of(lambda: chunker.cut_points(data), repeats)
        section[name] = {
            "chunks": len(fast_cuts),
            "identical": fast_cuts == reference_cuts,
            "reference_s": round(reference_s, 4),
            "fast_s": round(fast_s, 4),
            "speedup": round(reference_s / fast_s, 2),
            "fast_mib_per_s": round(len(data) / (1 << 20) / fast_s, 1),
        }
    # The headline "chunking speedup" is the paper's chunker ([54], Rabin).
    section["speedup"] = section["rabin"]["speedup"]
    return section


def bench_count(quick: bool, repeats: int) -> dict:
    from repro.attacks.frequency import count_with_neighbors
    from repro.attacks.interning import interned_count

    backup = count_workload(_COUNT_CHUNKS_QUICK if quick else _COUNT_CHUNKS)
    unique = len(set(backup.fingerprints))

    def rank_ready():
        stats = interned_count(backup)
        stats.frequencies
        stats.left
        stats.right
        return stats

    reference = count_with_neighbors(backup)
    fast = rank_ready()
    identical = _count_tables_equal(fast, reference)
    reference_s = _best_of(lambda: count_with_neighbors(backup), repeats)
    count_s = _best_of(lambda: interned_count(backup), repeats)
    rank_ready_s = _best_of(rank_ready, repeats)
    return {
        "chunks": len(backup),
        "unique_chunks": unique,
        "identical": identical,
        "reference_s": round(reference_s, 4),
        "interned_s": round(count_s, 4),
        "rank_ready_s": round(rank_ready_s, 4),
        "count_pass_speedup": round(reference_s / count_s, 2),
        # Conservative headline: interned COUNT plus every table the
        # locality attack needs materialized and probe-ready.
        "speedup": round(reference_s / rank_ready_s, 2),
        "reference_chunks_per_s": round(len(backup) / reference_s),
        "interned_chunks_per_s": round(len(backup) / rank_ready_s),
    }


def _columnar_stats_equal(left, right) -> bool:
    """Exact equality of two sharded-COUNT outputs (any jobs values)."""
    numpy = accel.numpy
    if numpy is not None and hasattr(left, "_ordered_ids"):
        for ours, theirs in (
            (left._ordered_pairs, right._ordered_pairs),
            (left._ordered_pair_counts, right._ordered_pair_counts),
        ):
            if (ours is None) != (theirs is None):
                return False
            if ours is not None and not numpy.array_equal(ours, theirs):
                return False
        return all(
            numpy.array_equal(getattr(left, name), getattr(right, name))
            for name in (
                "_ordered_ids",
                "_ordered_counts",
                "_ordered_first",
                "_first_sizes",
            )
        )
    return (
        left._frequency_counts == right._frequency_counts
        and list(left._frequency_counts) == list(right._frequency_counts)
        and left._size_by_id == right._size_by_id
        and left._pair_counts == right._pair_counts
        and list(left._pair_counts) == list(right._pair_counts)
    )


def _sampled_probe_identity(columnar, interned, sample: int = 64) -> bool:
    """Spot-check the lazy columnar views against the in-RAM COUNT.

    Full four-table decode at 10⁷ chunks would dwarf the timed work, so
    the full-scale bench probes the top-``sample`` ranked fingerprints:
    frequency, first-occurrence size, and both neighbor tables (contents
    *and* insertion order) must match the interned reference. Exhaustive
    equality is pinned at unit-test scale (tests/unit/test_columnar.py).
    """
    from itertools import islice

    if hasattr(columnar, "top_ranked"):
        probes = columnar.top_ranked(sample)
    else:  # pure-python fallback: plain insertion-ordered dicts
        probes = list(islice(columnar.frequencies, sample))
    for fingerprint in probes:
        if columnar.frequencies.get(fingerprint) != interned.frequencies.get(
            fingerprint
        ):
            return False
        if columnar.sizes.get(fingerprint) != interned.sizes.get(fingerprint):
            return False
        for side in ("left", "right"):
            ours = getattr(columnar, side).get(fingerprint, {})
            theirs = getattr(interned, side).get(fingerprint, {})
            if dict(ours) != dict(theirs) or list(ours) != list(theirs):
                return False
    return True


def bench_columnar(quick: bool, repeats: int, jobs: int = 1) -> dict:
    """Trace-scale COUNT: sharded bincounts over a memory-mapped trace.

    Generates (once — the completed trace is reopened on later runs) a
    single-backup columnar stream, counts it with
    :func:`~repro.attacks.sharded.sharded_count` across a jobs sweep, and
    contrasts the mmap path against the in-RAM interned COUNT at the same
    scale: wall-clock, peak RSS (each phase forked so its high-water mark
    is attributable), and exact-identity checks.
    """
    import tempfile

    from repro.analysis.benchmeta import run_isolated
    from repro.attacks.interning import interned_count
    from repro.attacks.sharded import sharded_count
    from repro.datasets.columnar import StreamConfig, ensure_stream_columnar

    chunks = _COLUMNAR_CHUNKS_QUICK if quick else _COLUMNAR_CHUNKS
    directory = Path(tempfile.gettempdir()) / f"repro-bench-columnar-{chunks}"
    config = StreamConfig(chunks=chunks, backups=1)
    generate_start = time.perf_counter()
    trace = ensure_stream_columnar(directory, config, seed=7)
    generate_s = time.perf_counter() - generate_start
    try:
        view = trace.view(0)
        job_sweep = sorted({1, jobs, 4})

        def rank_ready_sharded():
            stats = sharded_count(view, jobs=jobs)
            if hasattr(stats, "top_ranked"):
                stats.top_ranked(1)
            stats.left
            stats.right
            return stats

        def rank_ready_interned(backup):
            stats = interned_count(backup)
            stats.frequencies
            stats.left
            stats.right
            return stats

        # Peak RSS per phase, measured in forked children *before* the
        # parent materializes anything large, so each number is the
        # phase's own high-water mark.
        def _isolated_sharded():
            rank_ready_sharded()

        def _isolated_interned():
            rank_ready_interned(view.to_backup())

        _, sharded_rss = run_isolated(_isolated_sharded)
        _, interned_rss = run_isolated(_isolated_interned)

        baseline = sharded_count(view, jobs=1)
        identical = all(
            _columnar_stats_equal(baseline, sharded_count(view, jobs=n))
            for n in job_sweep
        )
        materialize_start = time.perf_counter()
        backup = view.to_backup()
        materialize_s = time.perf_counter() - materialize_start
        interned = interned_count(backup)
        identical = identical and baseline.unique_chunks == interned.unique_chunks
        if quick:
            identical = identical and (
                dict(baseline.frequencies.items()) == interned.frequencies
                and list(baseline.frequencies) == list(interned.frequencies)
                and dict(baseline.sizes.items()) == interned.sizes
                and list(baseline.sizes) == list(interned.sizes)
            )
        identical = identical and _sampled_probe_identity(baseline, interned)

        sharded_count_s = _best_of(lambda: sharded_count(view, jobs=jobs), repeats)
        sharded_s = _best_of(rank_ready_sharded, repeats)
        interned_s = _best_of(lambda: rank_ready_interned(backup), repeats)

        def _mib(value):
            return round(value / (1 << 20), 1) if value else None

        return {
            "chunks": view.num_chunks,
            "unique_chunks": baseline.unique_chunks,
            "fingerprint_bytes": trace.fingerprint_bytes,
            "jobs": jobs,
            "job_sweep": job_sweep,
            "identical": bool(identical),
            "generate_s": round(generate_s, 4),
            "materialize_s": round(materialize_s, 4),
            "sharded_count_s": round(sharded_count_s, 4),
            "sharded_rank_ready_s": round(sharded_s, 4),
            "interned_rank_ready_s": round(interned_s, 4),
            "speedup": round(interned_s / sharded_s, 2),
            "sharded_chunks_per_s": round(view.num_chunks / sharded_s),
            "interned_chunks_per_s": round(view.num_chunks / interned_s),
            "sharded_peak_rss_mib": _mib(sharded_rss),
            "interned_peak_rss_mib": _mib(interned_rss),
        }
    finally:
        trace.close()


def bench_service(quick: bool, repeats: int) -> dict:
    from repro.service.simulate import (
        ServiceConfig,
        service_report,
        simulate,
        traffic_requests,
    )

    config = ServiceConfig(
        tenants=_SERVICE_TENANTS_QUICK if quick else _SERVICE_TENANTS,
        rounds=2,
        files_per_tenant=8,
        mean_file_chunks=16,
        attack_targets=2,
        seed=11,
    )
    synthesis_start = time.perf_counter()
    requests = traffic_requests(config)
    synthesis_s = time.perf_counter() - synthesis_start

    def serve():
        simulate.cache_clear()
        return simulate(config)

    serve_s = _best_of(serve, repeats)
    trace = simulate(config)
    uploads = [
        record for record in trace.meter.observables if record.kind == "upload"
    ]
    records = sum(record.total_chunks for record in uploads)
    report = service_report(config, jobs=1)
    digest = hashlib.sha256(
        json.dumps(report, sort_keys=True).encode()
    ).hexdigest()
    simulate.cache_clear()
    return {
        "tenants": config.tenants,
        "requests": len(requests),
        "uploads": len(uploads),
        "upload_records": records,
        "synthesis_s": round(synthesis_s, 4),
        "serve_s": round(serve_s, 4),
        "uploads_per_s": round(len(uploads) / serve_s, 1),
        "records_per_s": round(records / serve_s),
        "report_sha256": digest,
    }


def run_bench(quick: bool = False, repeats: int = 3, jobs: int = 1) -> dict:
    """Run all hot-path benches; returns the JSON-serializable result."""
    from repro.analysis.benchmeta import metadata_envelope

    result = {
        "env": metadata_envelope(),
        "version": __version__,
        "quick": quick,
        "repeats": repeats,
        "python": platform.python_version(),
        "numpy": getattr(accel.numpy, "__version__", None) if accel.numpy else None,
        "platform": platform.machine(),
        "chunking": bench_chunking(quick, repeats),
        "count": bench_count(quick, repeats),
        "service": bench_service(quick, repeats),
    }
    result["count"]["columnar"] = bench_columnar(quick, repeats, jobs)
    result["identity_ok"] = all(
        (
            result["chunking"]["rabin"]["identical"],
            result["chunking"]["gear"]["identical"],
            result["count"]["identical"],
            result["count"]["columnar"]["identical"],
        )
    )
    return result


def render_bench(result: dict) -> str:
    chunking = result["chunking"]
    count = result["count"]
    service = result["service"]
    lines = [
        f"hot-path bench (quick={result['quick']}, repeats={result['repeats']}, "
        f"numpy={result['numpy'] or 'absent'})",
        (
            f"  chunking: rabin {chunking['rabin']['speedup']:.2f}x "
            f"({chunking['rabin']['fast_mib_per_s']:.0f} MiB/s), "
            f"gear {chunking['gear']['speedup']:.2f}x "
            f"({chunking['gear']['fast_mib_per_s']:.0f} MiB/s) "
            f"over {chunking['data_bytes'] >> 20} MiB"
        ),
        (
            f"  count:    {count['speedup']:.2f}x rank-ready "
            f"({count['count_pass_speedup']:.2f}x bare) over "
            f"{count['chunks']} chunks ({count['unique_chunks']} unique); "
            f"{count['interned_chunks_per_s']} chunks/s"
        ),
        (
            f"  columnar: {count['columnar']['speedup']:.2f}x vs in-RAM "
            f"interned over {count['columnar']['chunks']} mmapped chunks "
            f"({count['columnar']['sharded_chunks_per_s']} chunks/s, jobs "
            f"{count['columnar']['jobs']}, peak RSS "
            f"{count['columnar']['sharded_peak_rss_mib']} vs "
            f"{count['columnar']['interned_peak_rss_mib']} MiB)"
        ),
        (
            f"  service:  {service['uploads_per_s']:.0f} uploads/s "
            f"({service['records_per_s']} records/s) over "
            f"{service['uploads']} uploads, synthesis excluded"
        ),
        f"  identity checks: {'ok' if result['identity_ok'] else 'FAILED'}",
    ]
    return "\n".join(lines)


def write_bench(result: dict, path: str | Path = DEFAULT_OUTPUT) -> Path:
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def compare_to_baseline(result: dict, baseline_path: str | Path) -> list[str]:
    """Human-readable deltas vs a committed baseline (soft, never raises)."""
    baseline_path = Path(baseline_path)
    if not baseline_path.exists():
        return [f"no baseline at {baseline_path}; nothing to compare"]
    try:
        baseline = json.loads(baseline_path.read_text())
    except (OSError, ValueError) as error:
        return [f"unreadable baseline {baseline_path}: {error}"]
    lines = []
    for section, metric in (
        ("chunking", "speedup"),
        ("count", "speedup"),
        ("count.columnar", "sharded_chunks_per_s"),
        ("count.columnar", "speedup"),
        ("service", "uploads_per_s"),
    ):
        new_section = result
        old_section = baseline
        for part in section.split("."):
            new_section = new_section.get(part, {})
            old_section = old_section.get(part, {})
        new = new_section.get(metric)
        old = old_section.get(metric)
        if new is None or old is None or not old:
            lines.append(f"{section}.{metric}: no comparable baseline value")
            continue
        delta = (new - old) / old * 100.0
        lines.append(
            f"{section}.{metric}: {old} -> {new} ({delta:+.1f}%)"
        )
    if result.get("quick") != baseline.get("quick"):
        lines.append(
            "note: quick-mode mismatch vs baseline; deltas are indicative only"
        )
    return lines


def run_and_report(
    quick: bool = False,
    repeats: int = 3,
    output: str | Path = DEFAULT_OUTPUT,
    compare: str | Path | None = None,
    jobs: int = 1,
) -> int:
    """The shared bench driver behind ``freqdedup bench`` and
    ``benchmarks/bench_hotpaths.py``: run, print, write the JSON, soft-
    report baseline deltas, and exit non-zero only on identity failure
    (the contract CI's bench-smoke job keys on)."""
    result = run_bench(quick=quick, repeats=repeats, jobs=jobs)
    print(render_bench(result))
    path = write_bench(result, output)
    print(f"wrote -> {path}")
    if compare:
        for line in compare_to_baseline(result, compare):
            print(f"baseline delta: {line}")
    return 0 if result["identity_ok"] else 1


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="small workloads (CI smoke)"
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--output", default=DEFAULT_OUTPUT)
    parser.add_argument(
        "--compare",
        metavar="FILE",
        help="soft-report deltas vs a committed baseline JSON",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the sharded columnar COUNT section",
    )
    args = parser.parse_args(argv)
    return run_and_report(
        quick=args.quick,
        repeats=args.repeats,
        output=args.output,
        compare=args.compare,
        jobs=args.jobs,
    )


if __name__ == "__main__":
    sys.exit(main())
