"""Cross-figure summary: condense ``results/`` into one digest.

After ``pytest benchmarks/ --benchmark-only`` has populated the results
directory, :func:`summarize_results` extracts the headline number of every
reproduced figure and pairs it with the paper's reported value, producing
the table EXPERIMENTS.md quotes. Exposed as ``freqdedup report``.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

from repro.common.errors import ConfigurationError

# (figure file stem, headline description, paper value) and an extractor
# over the parsed JSON rows.


@dataclass(frozen=True)
class SummaryLine:
    figure: str
    metric: str
    paper: str
    measured: str


def _rows(payload: dict) -> list[list]:
    return payload["rows"]


def _find(payload: dict, **filters) -> list[list]:
    columns = payload["columns"]
    indices = {name: columns.index(name) for name in filters}
    return [
        row
        for row in payload["rows"]
        if all(row[indices[name]] == value for name, value in filters.items())
    ]


def _last_rate(payload: dict, **filters) -> float:
    rows = _find(payload, **filters)
    if not rows:
        raise ConfigurationError(f"no rows matching {filters}")
    return float(rows[-1][-1])


def summarize_results(directory: str | os.PathLike = "results") -> list[SummaryLine]:
    """Build the headline digest from a populated results directory."""
    directory = Path(directory)

    def load(stem: str) -> dict | None:
        path = directory / f"{stem}.json"
        if not path.exists():
            return None
        return json.loads(path.read_text())

    lines: list[SummaryLine] = []

    payload = load("figure_1")
    if payload:
        fsl = _find(payload, dataset="fsl")
        if fsl:
            lines.append(
                SummaryLine(
                    "Fig 1",
                    "FSL fraction of chunks occurring <100 times",
                    "99.8%",
                    f"{float(fsl[0][3]):.1%}",
                )
            )

    payload = load("figure_5")
    if payload:
        lines.append(
            SummaryLine(
                "Fig 5",
                "FSL locality attack, most recent auxiliary",
                "23.2%",
                f"{_last_rate(payload, dataset='fsl', attack='locality'):.1%}",
            )
        )
        lines.append(
            SummaryLine(
                "Fig 5",
                "FSL advanced attack, most recent auxiliary",
                "33.6%",
                f"{_last_rate(payload, dataset='fsl', attack='advanced'):.1%}",
            )
        )
        lines.append(
            SummaryLine(
                "Fig 5",
                "VM locality attack, most recent auxiliary",
                "14.5%",
                f"{_last_rate(payload, dataset='vm', attack='locality'):.1%}",
            )
        )

    payload = load("figure_8")
    if payload:
        lines.append(
            SummaryLine(
                "Fig 8",
                "FSL locality attack at 0.2% leakage",
                "27.5%",
                f"{_last_rate(payload, dataset='fsl', attack='locality'):.1%}",
            )
        )

    payload = load("figure_10")
    if payload:
        lines.append(
            SummaryLine(
                "Fig 10",
                "combined defense vs advanced attack at 0.2% leakage (FSL)",
                "0.20-0.24%",
                f"{_last_rate(payload, dataset='fsl', scheme='combined'):.2%}",
            )
        )

    payload = load("figure_11")
    if payload:
        mle = _find(payload, dataset="storage-fsl", scheme="mle")
        combined = _find(payload, dataset="storage-fsl", scheme="combined")
        if mle and combined:
            loss = float(mle[-1][-1]) - float(combined[-1][-1])
            lines.append(
                SummaryLine(
                    "Fig 11",
                    "storage-saving loss of combined vs MLE (FSL-style)",
                    "3.6pp",
                    f"{100 * loss:.1f}pp",
                )
            )

    payload = load("figure_13")
    if payload:
        mle = _find(payload, scheme="mle")
        combined = _find(payload, scheme="combined")
        if mle and combined:
            lines.append(
                SummaryLine(
                    "Fig 13",
                    "first-backup metadata access, combined vs MLE",
                    "combined cheaper",
                    "combined cheaper"
                    if float(combined[0][-1]) < float(mle[0][-1])
                    else "MLE cheaper",
                )
            )

    if not lines:
        raise ConfigurationError(
            f"no figure results under {directory}; run "
            "`pytest benchmarks/ --benchmark-only` first"
        )
    return lines


def render_summary(lines: list[SummaryLine]) -> str:
    """Align the digest as an ASCII table."""
    headers = ("figure", "metric", "paper", "measured")
    table = [headers] + [
        (line.figure, line.metric, line.paper, line.measured) for line in lines
    ]
    widths = [max(len(row[i]) for row in table) for i in range(4)]
    rendered = []
    for index, row in enumerate(table):
        rendered.append(
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        )
        if index == 0:
            rendered.append("  ".join("-" * width for width in widths))
    return "\n".join(rendered)
