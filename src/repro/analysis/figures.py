"""Experiment drivers: one function per evaluation figure in the paper.

Each driver declares its experiment grid as a
:class:`~repro.scenarios.spec.Scenario` (see ``FIGURE_SCENARIOS``) and runs
it through the scenario engine (:mod:`repro.scenarios`), returning a
:class:`~repro.analysis.reporting.FigureResult` holding the same series the
paper plots.  The benchmarks render and persist these under ``results/``
and assert the paper's qualitative claims (see DESIGN.md §4 for the shape
criteria).

Every driver accepts ``jobs`` (worker processes; results are merged in
spec order, so the output is byte-identical at any job count) and
``cache`` (a directory for the on-disk cell cache; reruns skip completed
cells).  The defaults — serial, uncached — reproduce the pre-engine
behaviour exactly.

Paper parameter choices are preserved: u=1, v=15, w=200 000 for the
ciphertext-only experiments (§5.3.2), w=500 000 in known-plaintext mode
(§5.3.3), leakage rates 0–0.2 %, and the same auxiliary/target backup
selections per dataset.
"""

from __future__ import annotations

import os

from repro.analysis.reporting import FigureResult
from repro.analysis.workloads import (
    LARGE_CACHE_BYTES,
    SMALL_CACHE_BYTES,
    series_chunking,
)
from repro.common.units import MiB
from repro.scenarios.cache import ResultCache
from repro.scenarios.runner import run_scenario
from repro.scenarios.spec import (
    FREQUENCY,
    METADATA,
    PAIR,
    SLIDING,
    STORAGE_SAVING,
    VARY_AUXILIARY,
    VARY_TARGET,
    Anchor,
    AttackParams,
    Scenario,
    ScenarioSpec,
)

# Paper §5.3 default attack parameters.
DEFAULT_U = 1
DEFAULT_V = 15
DEFAULT_W = 200_000
KPM_W = 500_000

# Paper §5.3 experiment anchors: (auxiliary index, target index) per figure.
FIG4_ANCHORS = {"fsl": (2, 4), "vm": (11, 12)}
FIG8_ANCHORS = {"fsl": (2, 4), "synthetic": (0, 5), "vm": (8, 12)}
LEAKAGE_RATES = (0.0005, 0.001, 0.0015, 0.002)
FIG9_LEAKAGE = 0.0005

# DDFS engine knobs shared by the metadata experiments (Figs. 13/14).
_DDFS_EXTRA = (("bloom_capacity", 200_000), ("container_size", 4 * MiB))


def _attacks_for(name: str) -> tuple[str, ...]:
    """The paper omits the advanced attack for fixed-size datasets (it
    coincides with the locality-based attack there)."""
    if series_chunking(name) == "fixed":
        return ("basic", "locality")
    return ("basic", "locality", "advanced")


def _run_figure(
    scenario: Scenario, jobs: int, cache: str | os.PathLike | ResultCache | None
) -> FigureResult:
    run = run_scenario(scenario, jobs=jobs, cache=cache)
    result = FigureResult(
        figure=scenario.name,
        title=scenario.title,
        columns=list(scenario.columns),
        notes=list(scenario.notes),
    )
    result.rows = run.rows
    return result


# -- Figure 1 -----------------------------------------------------------------

def fig1_scenario(datasets: tuple[str, ...] = ("fsl", "vm")) -> Scenario:
    return Scenario(
        name="Figure 1",
        title="Frequency distributions of chunks with duplicate content",
        columns=(
            "dataset",
            "unique_chunks",
            "frac_below_10",
            "frac_below_100",
            "p50_freq",
            "p99_freq",
            "max_freq",
        ),
        specs=(ScenarioSpec(name="fig1", kind=FREQUENCY, datasets=datasets),),
        notes=(
            "paper: FSL 99.8% of chunks occur <100 times while a tiny tail "
            "exceeds 10^4; shapes (strong skew) are compared, not absolute "
            "counts (datasets are ~10^3x smaller).",
        ),
    )


def fig1_frequency_skew(
    datasets: tuple[str, ...] = ("fsl", "vm"),
    jobs: int = 1,
    cache: str | None = None,
) -> FigureResult:
    """Figure 1: chunk frequency distributions (frequency vs CDF)."""
    return _run_figure(fig1_scenario(datasets), jobs, cache)


# -- Figure 4 -----------------------------------------------------------------

def fig4_scenario(
    us: tuple[int, ...] = (1, 3, 5, 10, 15, 20),
    vs: tuple[int, ...] = (5, 10, 15, 20, 30, 40),
    ws: tuple[int, ...] = (50_000, 100_000, 150_000, 200_000),
) -> Scenario:
    sweeps = (
        ("u", us, lambda u: AttackParams(u=u, v=20, w=100_000)),
        ("v", vs, lambda v: AttackParams(u=10, v=v, w=100_000)),
        ("w", ws, lambda w: AttackParams(u=10, v=20, w=w)),
    )
    specs = []
    for name, (auxiliary, target) in FIG4_ANCHORS.items():
        for parameter, values, make_params in sweeps:
            specs.append(
                ScenarioSpec(
                    name=f"fig4-{name}-{parameter}",
                    datasets=(name,),
                    attacks=("locality",),
                    params=tuple(make_params(value) for value in values),
                    param_tags=tuple(
                        (("parameter", parameter), ("value", value))
                        for value in values
                    ),
                    anchor=Anchor(mode=PAIR, auxiliary=auxiliary, target=target),
                )
            )
    return Scenario(
        name="Figure 4",
        title="Impact of parameters on locality-based attack",
        columns=("dataset", "parameter", "value", "inference_rate"),
        specs=tuple(specs),
    )


def fig4_parameter_impact(
    us: tuple[int, ...] = (1, 3, 5, 10, 15, 20),
    vs: tuple[int, ...] = (5, 10, 15, 20, 30, 40),
    ws: tuple[int, ...] = (50_000, 100_000, 150_000, 200_000),
    jobs: int = 1,
    cache: str | None = None,
) -> FigureResult:
    """Figure 4: impact of u, v, w on the locality-based attack."""
    return _run_figure(fig4_scenario(us, vs, ws), jobs, cache)


# -- Figures 5 and 6 ----------------------------------------------------------

def fig5_scenario(
    datasets: tuple[str, ...] = ("fsl", "synthetic", "vm"),
) -> Scenario:
    spec = ScenarioSpec(
        name="fig5",
        datasets=datasets,
        attacks=("basic", "locality", "advanced"),
        attacks_by_dataset=tuple(
            (name, _attacks_for(name)) for name in datasets
        ),
        anchor=Anchor(mode=VARY_AUXILIARY, target=-1),
    )
    return Scenario(
        name="Figure 5",
        title="Inference rate in ciphertext-only mode (varying auxiliary)",
        columns=("dataset", "attack", "auxiliary", "target", "inference_rate"),
        specs=(spec,),
    )


def fig5_vary_auxiliary(
    datasets: tuple[str, ...] = ("fsl", "synthetic", "vm"),
    jobs: int = 1,
    cache: str | None = None,
) -> FigureResult:
    """Figure 5: ciphertext-only inference rate, varying auxiliary backup,
    fixed (latest) target backup."""
    return _run_figure(fig5_scenario(datasets), jobs, cache)


def fig6_scenario(
    datasets: tuple[str, ...] = ("fsl", "synthetic", "vm"),
) -> Scenario:
    spec = ScenarioSpec(
        name="fig6",
        datasets=datasets,
        attacks=("basic", "locality", "advanced"),
        attacks_by_dataset=tuple(
            (name, _attacks_for(name)) for name in datasets
        ),
        anchor=Anchor(mode=VARY_TARGET, auxiliary=0),
    )
    return Scenario(
        name="Figure 6",
        title="Inference rate in ciphertext-only mode (varying target)",
        columns=("dataset", "attack", "auxiliary", "target", "inference_rate"),
        specs=(spec,),
    )


def fig6_vary_target(
    datasets: tuple[str, ...] = ("fsl", "synthetic", "vm"),
    jobs: int = 1,
    cache: str | None = None,
) -> FigureResult:
    """Figure 6: ciphertext-only inference rate, fixed (earliest) auxiliary
    backup, varying target backups."""
    return _run_figure(fig6_scenario(datasets), jobs, cache)


# -- Figure 7 -----------------------------------------------------------------

def fig7_scenario() -> Scenario:
    plan = {
        "fsl": ((1, 2), ("locality", "advanced")),
        "synthetic": ((1, 2), ("locality", "advanced")),
        "vm": ((1, 2, 3), ("locality",)),
    }
    specs = tuple(
        ScenarioSpec(
            name=f"fig7-{name}",
            datasets=(name,),
            attacks=attacks,
            anchor=Anchor(mode=SLIDING, shifts=shifts),
        )
        for name, (shifts, attacks) in plan.items()
    )
    return Scenario(
        name="Figure 7",
        title="Inference rate in ciphertext-only mode (sliding window)",
        columns=("dataset", "attack", "s", "auxiliary", "inference_rate"),
        specs=specs,
    )


def fig7_sliding_window(jobs: int = 1, cache: str | None = None) -> FigureResult:
    """Figure 7: sliding-window attacks (auxiliary t, target t+s)."""
    return _run_figure(fig7_scenario(), jobs, cache)


# -- Figures 8 and 9 ----------------------------------------------------------

def fig8_scenario(
    leakage_rates: tuple[float, ...] = LEAKAGE_RATES,
) -> Scenario:
    spec = ScenarioSpec(
        name="fig8",
        datasets=tuple(FIG8_ANCHORS),
        attacks=("locality", "advanced"),
        attacks_by_dataset=tuple(
            (name, tuple(a for a in _attacks_for(name) if a != "basic"))
            for name in FIG8_ANCHORS
        ),
        params=(AttackParams(w=KPM_W),),
        anchors_by_dataset=tuple(
            (name, Anchor(mode=PAIR, auxiliary=auxiliary, target=target))
            for name, (auxiliary, target) in FIG8_ANCHORS.items()
        ),
        leakage_rates=leakage_rates,
    )
    return Scenario(
        name="Figure 8",
        title="Inference rate in known-plaintext mode (varying leakage)",
        columns=("dataset", "attack", "leakage_rate", "inference_rate"),
        specs=(spec,),
    )


def fig8_known_plaintext(
    leakage_rates: tuple[float, ...] = LEAKAGE_RATES,
    jobs: int = 1,
    cache: str | None = None,
) -> FigureResult:
    """Figure 8: known-plaintext mode, inference rate vs leakage rate."""
    return _run_figure(fig8_scenario(leakage_rates), jobs, cache)


def fig9_scenario(leakage_rate: float = FIG9_LEAKAGE) -> Scenario:
    spec = ScenarioSpec(
        name="fig9",
        datasets=tuple(FIG8_ANCHORS),
        attacks=("locality", "advanced"),
        attacks_by_dataset=tuple(
            (name, tuple(a for a in _attacks_for(name) if a != "basic"))
            for name in FIG8_ANCHORS
        ),
        params=(AttackParams(w=KPM_W),),
        anchors_by_dataset=tuple(
            # The paper sweeps synthetic auxiliaries 0-4 regardless of
            # the target index; elsewhere the sweep runs up to the target.
            (
                name,
                Anchor(
                    mode=VARY_AUXILIARY,
                    target=target,
                    max_auxiliary=5 if name == "synthetic" else None,
                ),
            )
            for name, (_, target) in FIG8_ANCHORS.items()
        ),
        leakage_rates=(leakage_rate,),
    )
    return Scenario(
        name="Figure 9",
        title="Inference rate in known-plaintext mode (varying auxiliary)",
        columns=("dataset", "attack", "auxiliary", "inference_rate"),
        specs=(spec,),
    )


def fig9_kpm_vary_auxiliary(
    leakage_rate: float = FIG9_LEAKAGE,
    jobs: int = 1,
    cache: str | None = None,
) -> FigureResult:
    """Figure 9: known-plaintext mode (fixed 0.05% leakage), varying
    auxiliary backups."""
    return _run_figure(fig9_scenario(leakage_rate), jobs, cache)


# -- Figure 10 ----------------------------------------------------------------

def fig10_scenario(
    leakage_rates: tuple[float, ...] = LEAKAGE_RATES,
) -> Scenario:
    spec = ScenarioSpec(
        name="fig10",
        datasets=tuple(FIG8_ANCHORS),
        schemes=("minhash", "combined"),
        attacks=("advanced",),
        params=(AttackParams(w=KPM_W),),
        anchors_by_dataset=tuple(
            (name, Anchor(mode=PAIR, auxiliary=auxiliary, target=target))
            for name, (auxiliary, target) in FIG8_ANCHORS.items()
        ),
        leakage_rates=leakage_rates,
    )
    return Scenario(
        name="Figure 10",
        title="Defense effectiveness (advanced attack, known-plaintext)",
        columns=("dataset", "scheme", "leakage_rate", "inference_rate"),
        specs=(spec,),
    )


def fig10_defense_effectiveness(
    leakage_rates: tuple[float, ...] = LEAKAGE_RATES,
    jobs: int = 1,
    cache: str | None = None,
) -> FigureResult:
    """Figure 10: inference rate of the advanced locality-based attack in
    known-plaintext mode under MinHash-only and Combined defenses."""
    return _run_figure(fig10_scenario(leakage_rates), jobs, cache)


# -- Figure 11 ----------------------------------------------------------------

def fig11_scenario(
    datasets: tuple[str, ...] = ("fsl", "synthetic", "vm", "storage-fsl"),
) -> Scenario:
    return Scenario(
        name="Figure 11",
        title="Storage efficiency of the combined scheme vs MLE",
        columns=("dataset", "scheme", "backup", "storage_saving"),
        specs=(
            ScenarioSpec(
                name="fig11",
                kind=STORAGE_SAVING,
                datasets=datasets,
                schemes=("mle", "combined"),
            ),
        ),
        notes=(
            "storage-fsl is the temporal-redundancy-dominated FSL variant "
            "used for the storage experiments (see "
            "workloads.storage_fsl_series).",
        ),
    )


def fig11_storage_saving(
    datasets: tuple[str, ...] = ("fsl", "synthetic", "vm", "storage-fsl"),
    jobs: int = 1,
    cache: str | None = None,
) -> FigureResult:
    """Figure 11: cumulative storage saving per backup, MLE vs Combined."""
    return _run_figure(fig11_scenario(datasets), jobs, cache)


# -- Figures 13 and 14 --------------------------------------------------------

def _metadata_scenario(cache_budget: int, figure: str, title: str) -> Scenario:
    return Scenario(
        name=figure,
        title=title,
        columns=(
            "scheme",
            "backup",
            "update_MiB",
            "index_MiB",
            "loading_MiB",
            "total_MiB",
        ),
        specs=(
            ScenarioSpec(
                name=figure.lower().replace(" ", ""),
                kind=METADATA,
                datasets=("storage-fsl",),
                schemes=("mle", "combined"),
                extra=(("cache_budget_bytes", cache_budget),) + _DDFS_EXTRA,
            ),
        ),
    )


def fig13_scenario() -> Scenario:
    return _metadata_scenario(
        SMALL_CACHE_BYTES,
        "Figure 13",
        "Metadata access overhead (512 KiB-scaled fingerprint cache)",
    )


def fig13_metadata_small_cache(
    jobs: int = 1, cache: str | None = None
) -> FigureResult:
    """Figure 13: metadata access with the insufficient fingerprint cache."""
    return _run_figure(fig13_scenario(), jobs, cache)


def fig14_scenario() -> Scenario:
    return _metadata_scenario(
        LARGE_CACHE_BYTES,
        "Figure 14",
        "Metadata access overhead (4 MiB-scaled fingerprint cache)",
    )


def fig14_metadata_large_cache(
    jobs: int = 1, cache: str | None = None
) -> FigureResult:
    """Figure 14: metadata access with the sufficient fingerprint cache."""
    return _run_figure(fig14_scenario(), jobs, cache)


# Scenario builders by figure number — the declarative source of truth the
# drivers above run; the CLI (`figure all`) and tests introspect this.
FIGURE_SCENARIOS = {
    "1": fig1_scenario,
    "4": fig4_scenario,
    "5": fig5_scenario,
    "6": fig6_scenario,
    "7": fig7_scenario,
    "8": fig8_scenario,
    "9": fig9_scenario,
    "10": fig10_scenario,
    "11": fig11_scenario,
    "13": fig13_scenario,
    "14": fig14_scenario,
}
