"""Experiment drivers: one function per evaluation figure in the paper.

Each driver runs the trace-driven experiment behind the corresponding
figure at bench scale and returns a
:class:`~repro.analysis.reporting.FigureResult` holding the same series the
paper plots. The benchmarks render and persist these under ``results/`` and
assert the paper's qualitative claims (see DESIGN.md §4 for the shape
criteria).

Paper parameter choices are preserved: u=1, v=15, w=200 000 for the
ciphertext-only experiments (§5.3.2), w=500 000 in known-plaintext mode
(§5.3.3), leakage rates 0–0.2 %, and the same auxiliary/target backup
selections per dataset.
"""

from __future__ import annotations

from repro.attacks.advanced import AdvancedLocalityAttack
from repro.attacks.base import Attack
from repro.attacks.basic import BasicAttack
from repro.attacks.evaluation import AttackEvaluator
from repro.attacks.locality import LocalityAttack
from repro.analysis.reporting import FigureResult
from repro.analysis.workloads import (
    LARGE_CACHE_BYTES,
    SMALL_CACHE_BYTES,
    encrypted_series,
    scaled_segmentation,
    series_by_name,
)
from repro.common.units import MiB
from repro.datasets.model import BackupSeries
from repro.datasets.stats import (
    frequency_cdf,
    series_frequencies,
    storage_savings,
)
from repro.defenses.pipeline import DefensePipeline, DefenseScheme
from repro.storage.ddfs import DDFSEngine

# Paper §5.3 default attack parameters.
DEFAULT_U = 1
DEFAULT_V = 15
DEFAULT_W = 200_000
KPM_W = 500_000

# Paper §5.3 experiment anchors: (auxiliary index, target index) per figure.
FIG4_ANCHORS = {"fsl": (2, 4), "vm": (11, 12)}
FIG8_ANCHORS = {"fsl": (2, 4), "synthetic": (0, 5), "vm": (8, 12)}
LEAKAGE_RATES = (0.0005, 0.001, 0.0015, 0.002)
FIG9_LEAKAGE = 0.0005


def _locality(u: int = DEFAULT_U, v: int = DEFAULT_V, w: int = DEFAULT_W) -> LocalityAttack:
    return LocalityAttack(u=u, v=v, w=w)


def _advanced(u: int = DEFAULT_U, v: int = DEFAULT_V, w: int = DEFAULT_W) -> AdvancedLocalityAttack:
    return AdvancedLocalityAttack(u=u, v=v, w=w)


def _attack_for(name: str, w: int = DEFAULT_W) -> Attack:
    if name == "basic":
        return BasicAttack()
    if name == "locality":
        return _locality(w=w)
    if name == "advanced":
        return _advanced(w=w)
    raise ValueError(f"unknown attack {name!r}")


def _attacks_for(series: BackupSeries) -> list[str]:
    """The paper omits the advanced attack for fixed-size datasets (it
    coincides with the locality-based attack there)."""
    if series.chunking == "fixed":
        return ["basic", "locality"]
    return ["basic", "locality", "advanced"]


# -- Figure 1 -----------------------------------------------------------------

def fig1_frequency_skew(datasets: tuple[str, ...] = ("fsl", "vm")) -> FigureResult:
    """Figure 1: chunk frequency distributions (frequency vs CDF)."""
    result = FigureResult(
        figure="Figure 1",
        title="Frequency distributions of chunks with duplicate content",
        columns=[
            "dataset",
            "unique_chunks",
            "frac_below_10",
            "frac_below_100",
            "p50_freq",
            "p99_freq",
            "max_freq",
        ],
    )
    for name in datasets:
        series = series_by_name(name)
        cdf = frequency_cdf(series_frequencies(series))
        p99 = cdf.frequencies[int(0.99 * (len(cdf.frequencies) - 1))]
        result.add_row(
            name,
            len(cdf.frequencies),
            round(cdf.fraction_below(10), 4),
            round(cdf.fraction_below(100), 4),
            cdf.median_frequency,
            p99,
            cdf.max_frequency,
        )
    result.notes.append(
        "paper: FSL 99.8% of chunks occur <100 times while a tiny tail "
        "exceeds 10^4; shapes (strong skew) are compared, not absolute "
        "counts (datasets are ~10^3x smaller)."
    )
    return result


# -- Figure 4 -----------------------------------------------------------------

def fig4_parameter_impact(
    us: tuple[int, ...] = (1, 3, 5, 10, 15, 20),
    vs: tuple[int, ...] = (5, 10, 15, 20, 30, 40),
    ws: tuple[int, ...] = (50_000, 100_000, 150_000, 200_000),
) -> FigureResult:
    """Figure 4: impact of u, v, w on the locality-based attack."""
    result = FigureResult(
        figure="Figure 4",
        title="Impact of parameters on locality-based attack",
        columns=["dataset", "parameter", "value", "inference_rate"],
    )
    for name, (aux, target) in FIG4_ANCHORS.items():
        evaluator = AttackEvaluator(encrypted_series(name))
        for u in us:
            report = evaluator.run(
                LocalityAttack(u=u, v=20, w=100_000), aux, target
            )
            result.add_row(name, "u", u, round(report.inference_rate, 5))
        for v in vs:
            report = evaluator.run(
                LocalityAttack(u=10, v=v, w=100_000), aux, target
            )
            result.add_row(name, "v", v, round(report.inference_rate, 5))
        for w in ws:
            report = evaluator.run(
                LocalityAttack(u=10, v=20, w=w), aux, target
            )
            result.add_row(name, "w", w, round(report.inference_rate, 5))
    return result


# -- Figures 5 and 6 ----------------------------------------------------------

def fig5_vary_auxiliary(datasets: tuple[str, ...] = ("fsl", "synthetic", "vm")) -> FigureResult:
    """Figure 5: ciphertext-only inference rate, varying auxiliary backup,
    fixed (latest) target backup."""
    result = FigureResult(
        figure="Figure 5",
        title="Inference rate in ciphertext-only mode (varying auxiliary)",
        columns=["dataset", "attack", "auxiliary", "target", "inference_rate"],
    )
    for name in datasets:
        encrypted = encrypted_series(name)
        series = series_by_name(name)
        evaluator = AttackEvaluator(encrypted)
        target = len(series) - 1
        for attack_name in _attacks_for(series):
            for aux in range(target):
                report = evaluator.run(_attack_for(attack_name), aux, target)
                result.add_row(
                    name,
                    attack_name,
                    report.auxiliary_label,
                    report.target_label,
                    round(report.inference_rate, 5),
                )
    return result


def fig6_vary_target(datasets: tuple[str, ...] = ("fsl", "synthetic", "vm")) -> FigureResult:
    """Figure 6: ciphertext-only inference rate, fixed (earliest) auxiliary
    backup, varying target backups."""
    result = FigureResult(
        figure="Figure 6",
        title="Inference rate in ciphertext-only mode (varying target)",
        columns=["dataset", "attack", "auxiliary", "target", "inference_rate"],
    )
    for name in datasets:
        encrypted = encrypted_series(name)
        series = series_by_name(name)
        evaluator = AttackEvaluator(encrypted)
        for attack_name in _attacks_for(series):
            for target in range(1, len(series)):
                report = evaluator.run(_attack_for(attack_name), 0, target)
                result.add_row(
                    name,
                    attack_name,
                    report.auxiliary_label,
                    report.target_label,
                    round(report.inference_rate, 5),
                )
    return result


# -- Figure 7 -----------------------------------------------------------------

def fig7_sliding_window() -> FigureResult:
    """Figure 7: sliding-window attacks (auxiliary t, target t+s)."""
    result = FigureResult(
        figure="Figure 7",
        title="Inference rate in ciphertext-only mode (sliding window)",
        columns=["dataset", "attack", "s", "auxiliary", "inference_rate"],
    )
    plan = {
        "fsl": ((1, 2), ("locality", "advanced")),
        "synthetic": ((1, 2), ("locality", "advanced")),
        "vm": ((1, 2, 3), ("locality",)),
    }
    for name, (shifts, attacks) in plan.items():
        encrypted = encrypted_series(name)
        series = series_by_name(name)
        evaluator = AttackEvaluator(encrypted)
        for attack_name in attacks:
            for s in shifts:
                for aux in range(len(series) - s):
                    report = evaluator.run(
                        _attack_for(attack_name), aux, aux + s
                    )
                    result.add_row(
                        name,
                        attack_name,
                        s,
                        report.auxiliary_label,
                        round(report.inference_rate, 5),
                    )
    return result


# -- Figures 8 and 9 ----------------------------------------------------------

def fig8_known_plaintext(
    leakage_rates: tuple[float, ...] = LEAKAGE_RATES,
) -> FigureResult:
    """Figure 8: known-plaintext mode, inference rate vs leakage rate."""
    result = FigureResult(
        figure="Figure 8",
        title="Inference rate in known-plaintext mode (varying leakage)",
        columns=["dataset", "attack", "leakage_rate", "inference_rate"],
    )
    for name, (aux, target) in FIG8_ANCHORS.items():
        encrypted = encrypted_series(name)
        series = series_by_name(name)
        evaluator = AttackEvaluator(encrypted)
        attacks = [a for a in _attacks_for(series) if a != "basic"]
        for attack_name in attacks:
            for rate in leakage_rates:
                report = evaluator.run(
                    _attack_for(attack_name, w=KPM_W),
                    aux,
                    target,
                    leakage_rate=rate,
                )
                result.add_row(
                    name, attack_name, rate, round(report.inference_rate, 5)
                )
    return result


def fig9_kpm_vary_auxiliary(leakage_rate: float = FIG9_LEAKAGE) -> FigureResult:
    """Figure 9: known-plaintext mode (fixed 0.05% leakage), varying
    auxiliary backups."""
    result = FigureResult(
        figure="Figure 9",
        title="Inference rate in known-plaintext mode (varying auxiliary)",
        columns=["dataset", "attack", "auxiliary", "inference_rate"],
    )
    for name, (_, target) in FIG8_ANCHORS.items():
        encrypted = encrypted_series(name)
        series = series_by_name(name)
        evaluator = AttackEvaluator(encrypted)
        attacks = [a for a in _attacks_for(series) if a != "basic"]
        aux_range = range(target) if name != "synthetic" else range(5)
        for attack_name in attacks:
            for aux in aux_range:
                report = evaluator.run(
                    _attack_for(attack_name, w=KPM_W),
                    aux,
                    target,
                    leakage_rate=leakage_rate,
                )
                result.add_row(
                    name,
                    attack_name,
                    report.auxiliary_label,
                    round(report.inference_rate, 5),
                )
    return result


# -- Figure 10 ----------------------------------------------------------------

def fig10_defense_effectiveness(
    leakage_rates: tuple[float, ...] = LEAKAGE_RATES,
) -> FigureResult:
    """Figure 10: inference rate of the advanced locality-based attack in
    known-plaintext mode under MinHash-only and Combined defenses."""
    result = FigureResult(
        figure="Figure 10",
        title="Defense effectiveness (advanced attack, known-plaintext)",
        columns=["dataset", "scheme", "leakage_rate", "inference_rate"],
    )
    for name, (aux, target) in FIG8_ANCHORS.items():
        for scheme in (DefenseScheme.MINHASH, DefenseScheme.COMBINED):
            evaluator = AttackEvaluator(encrypted_series(name, scheme))
            for rate in leakage_rates:
                report = evaluator.run(
                    _advanced(w=KPM_W), aux, target, leakage_rate=rate
                )
                result.add_row(
                    name,
                    scheme.value,
                    rate,
                    round(report.inference_rate, 5),
                )
    return result


# -- Figure 11 ----------------------------------------------------------------

def fig11_storage_saving(
    datasets: tuple[str, ...] = ("fsl", "synthetic", "vm", "storage-fsl"),
) -> FigureResult:
    """Figure 11: cumulative storage saving per backup, MLE vs Combined."""
    result = FigureResult(
        figure="Figure 11",
        title="Storage efficiency of the combined scheme vs MLE",
        columns=["dataset", "scheme", "backup", "storage_saving"],
    )
    for name in datasets:
        for scheme in (DefenseScheme.MLE, DefenseScheme.COMBINED):
            encrypted = encrypted_series(name, scheme)
            savings = storage_savings(
                [backup.ciphertext for backup in encrypted.backups]
            )
            for backup, saving in zip(encrypted.backups, savings):
                result.add_row(name, scheme.value, backup.label, round(saving, 4))
    result.notes.append(
        "storage-fsl is the temporal-redundancy-dominated FSL variant used "
        "for the storage experiments (see workloads.storage_fsl_series)."
    )
    return result


# -- Figures 13 and 14 --------------------------------------------------------

def _metadata_experiment(cache_budget: int, figure: str, title: str) -> FigureResult:
    result = FigureResult(
        figure=figure,
        title=title,
        columns=[
            "scheme",
            "backup",
            "update_MiB",
            "index_MiB",
            "loading_MiB",
            "total_MiB",
        ],
    )
    series = series_by_name("storage-fsl")
    spec = scaled_segmentation(series)
    for scheme in (DefenseScheme.MLE, DefenseScheme.COMBINED):
        pipeline = DefensePipeline(scheme, segmentation=spec, seed=7)
        encrypted = pipeline.encrypt_series(series)
        engine = DDFSEngine(
            cache_budget_bytes=cache_budget,
            bloom_capacity=200_000,
            container_size=4 * MiB,
        )
        for backup in encrypted.backups:
            report = engine.process_backup(backup.ciphertext)
            meta = report.metadata
            result.add_row(
                scheme.value,
                backup.label,
                round(meta.update_bytes / MiB, 4),
                round(meta.index_bytes / MiB, 4),
                round(meta.loading_bytes / MiB, 4),
                round(meta.total_bytes / MiB, 4),
            )
    return result


def fig13_metadata_small_cache() -> FigureResult:
    """Figure 13: metadata access with the insufficient fingerprint cache."""
    return _metadata_experiment(
        SMALL_CACHE_BYTES,
        "Figure 13",
        "Metadata access overhead (512 KiB-scaled fingerprint cache)",
    )


def fig14_metadata_large_cache() -> FigureResult:
    """Figure 14: metadata access with the sufficient fingerprint cache."""
    return _metadata_experiment(
        LARGE_CACHE_BYTES,
        "Figure 14",
        "Metadata access overhead (4 MiB-scaled fingerprint cache)",
    )
