"""Leakage/cost tradeoff frontier for the tunable defense families.

The paper's defenses trade *security for storage* along fixed design
points (MinHash, scrambling).  PR 10 adds two *tunable* families — the
frequency-obfuscated encryptor (``obfuscate:t``,
:mod:`repro.defenses.obfuscate`) and dedup-response shaping
(``rr:p`` / ``quantize:B``, :mod:`repro.service.shaping`) — and this
module sweeps their knobs into one machine-readable frontier:

* the **storage axis** runs each scheme spec through the canonical
  encrypted workloads and scores COUNT leakage (attack inference rate,
  frequency-KLD flatness) against the storage cost of per-variant
  dedup loss;
* the **bandwidth axis** runs each shaping policy through the service
  simulation and scores the dedup side channel that survives shaping
  (dedup-signal recall) against the bandwidth cost of the padded
  responses.

Cells execute through the scenario engine (kind
:data:`DEFENSE_FRONTIER`, registered on import and lazily resolvable by
workers), so the frontier parallelises and crash-retries like every
other grid.  Cost columns are **not** recomputed at assembly time: each
cell records ``frontier.*`` counters through :mod:`repro.obs`, the
runner ships worker snapshots back, and :func:`frontier_report` joins
the merged counters into the rows — the observability layer is the
single source of truth for what an experiment cost.

Frontier runs are deliberately uncached (a cache hit would skip the
cell body and with it the metric recording), which also keeps repeated
``freqdedup frontier`` invocations honest about cost.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro import obs
from repro.analysis.benchmeta import metadata_envelope
from repro.common.errors import ConfigurationError
from repro.obs.metrics import metric_key
from repro.scenarios.cells import register_cell_kind
from repro.scenarios.runner import Runner, rows_from
from repro.scenarios.spec import Cell

DEFENSE_FRONTIER = "defense_frontier"

#: Default grid: the paper's fixed schemes anchor the frontier, the
#: obfuscation sweep supplies the tunable storage axis (``obfuscate:1``
#: is the deterministic anchor — same hash domain as the sweep, so
#: monotonicity is judged within one family).
DEFAULT_DATASETS = ("fsl",)
DEFAULT_SCHEMES = (
    "mle",
    "minhash",
    "combined",
    "obfuscate:1",
    "obfuscate:2",
    "obfuscate:4",
    "obfuscate:8",
)
DEFAULT_ATTACKS = ("basic", "locality")
DEFAULT_POLICIES = (
    "honest",
    "rr:0.25",
    "rr:0.5",
    "rr:1",
    "quantize:4096",
    "quantize:16384",
)

#: Baseline scheme for the storage-cost denominator: deterministic MLE
#: stores every duplicate once, so ``stored / baseline - 1`` is the
#: dedup loss a tunable scheme pays for flattening the COUNT histogram.
BASELINE_SCHEME = "mle"

STORAGE_COLUMNS = (
    "dataset",
    "scheme",
    "attack",
    "inference_rate",
    "kld_bits",
    "storage_overhead",
)
BANDWIDTH_COLUMNS = (
    "scheme",
    "policy",
    "dedup_signal_recall",
    "bandwidth_overhead",
    "mean_inference_rate",
)

# Identity keys for drift comparison (everything else is a measurement).
_STORAGE_IDENTITY = ("dataset", "scheme", "attack")
_BANDWIDTH_IDENTITY = ("scheme", "policy")


def _unique_bytes(backups: Iterable) -> int:
    """Bytes the store holds after dedup: each fingerprint counted once."""
    seen: dict[bytes, int] = {}
    for backup in backups:
        ciphertext = backup.ciphertext
        for fingerprint, size in zip(
            ciphertext.fingerprints, ciphertext.sizes
        ):
            seen.setdefault(fingerprint, size)
    return sum(seen.values())


def _run_storage_cell(params: dict) -> tuple:
    """COUNT leakage vs. storage cost for one dataset x scheme x attack."""
    from repro.analysis.workloads import encrypted_series
    from repro.attacks.evaluation import AttackEvaluator
    from repro.defenses.obfuscate import frequency_kld
    from repro.scenarios.cells import build_attack

    dataset = params["dataset"]
    scheme = params["scheme"]
    encrypted = encrypted_series(dataset, scheme)
    baseline = encrypted_series(dataset, BASELINE_SCHEME)

    stored = _unique_bytes(encrypted.backups)
    baseline_stored = _unique_bytes(baseline.backups)
    fingerprints: list[bytes] = []
    for backup in encrypted.backups:
        fingerprints.extend(backup.ciphertext.fingerprints)

    evaluator = AttackEvaluator(encrypted)
    attack = build_attack(
        params["attack"], params["u"], params["v"], params["w"]
    )
    report = evaluator.run(
        attack,
        auxiliary=params["auxiliary"],
        target=params["target"],
        leakage_rate=params["leakage_rate"],
        seed=params["seed"],
    )

    obs.counter(
        "frontier.stored_bytes", stored, dataset=dataset, scheme=scheme,
        attack=params["attack"],
    )
    obs.counter(
        "frontier.baseline_bytes", baseline_stored, dataset=dataset,
        scheme=scheme, attack=params["attack"],
    )
    overhead = stored / baseline_stored - 1.0 if baseline_stored else 0.0
    return (
        (
            ("inference_rate", round(report.inference_rate, 5)),
            ("kld_bits", round(frequency_kld(fingerprints), 4)),
            ("storage_overhead", round(overhead, 4)),
        ),
    )


def _run_bandwidth_cell(params: dict) -> tuple:
    """Dedup-signal recall vs. bandwidth cost for one shaping policy.

    Recall measures how much of the honest dedup side channel a shaped
    response still exposes: per upload the honest protocol reveals
    ``unique - transferred_honest`` deduplicated bytes; shaping hides
    part of that by re-requesting duplicates, leaving
    ``unique - transferred_shaped`` visible.  Summed over uploads,

        recall = sum(unique - shaped) / sum(unique - honest)

    is 1.0 under the honest policy and 0.0 once every duplicate is
    re-transferred (``rr:1``).  The inline COUNT attack rate rides along
    to show what shaping deliberately does *not* change: ciphertexts —
    and with them frequency leakage — are untouched.
    """
    import dataclasses

    from repro.service.simulate import (
        UPLOAD,
        ServiceConfig,
        attack_pairs,
        evaluate_pair,
        simulate,
    )

    config = ServiceConfig(
        tenants=params["tenants"],
        rounds=params["rounds"],
        scheme=params["scheme"],
        shaping=params["policy"],
        seed=params["seed"],
    )
    honest_config = dataclasses.replace(config, shaping="honest")
    shaped = simulate(config)
    honest = simulate(honest_config)

    shaped_uploads = [
        record for record in shaped.meter.observables if record.kind == UPLOAD
    ]
    honest_uploads = [
        record for record in honest.meter.observables if record.kind == UPLOAD
    ]
    shaped_bytes = sum(record.transferred_bytes for record in shaped_uploads)
    honest_bytes = sum(record.transferred_bytes for record in honest_uploads)
    unique_bytes = sum(record.unique_bytes for record in honest_uploads)
    signal = unique_bytes - honest_bytes
    recall = (unique_bytes - shaped_bytes) / signal if signal else 1.0

    rates = [
        evaluate_pair(shaped, auxiliary, target)["inference_rate"]
        for auxiliary, target in attack_pairs(config)
    ]
    mean_rate = round(sum(rates) / len(rates), 5) if rates else 0.0

    obs.counter(
        "frontier.transferred_bytes", shaped_bytes,
        scheme=params["scheme"], policy=params["policy"],
    )
    obs.counter(
        "frontier.honest_bytes", honest_bytes,
        scheme=params["scheme"], policy=params["policy"],
    )
    overhead = shaped_bytes / honest_bytes - 1.0 if honest_bytes else 0.0
    return (
        (
            ("dedup_signal_recall", round(recall, 5)),
            ("bandwidth_overhead", round(overhead, 4)),
            ("mean_inference_rate", mean_rate),
        ),
    )


def _run_frontier_cell(params: dict) -> tuple:
    axis = params.get("axis")
    if axis == "storage":
        return _run_storage_cell(params)
    if axis == "bandwidth":
        return _run_bandwidth_cell(params)
    raise ConfigurationError(f"unknown frontier axis {axis!r}")


register_cell_kind(DEFENSE_FRONTIER, _run_frontier_cell)


def storage_cells(
    datasets: Sequence[str],
    schemes: Sequence[str],
    attacks: Sequence[str],
    seed: int = 0,
) -> list[Cell]:
    """Storage-axis cells: dataset x scheme spec x attack.

    The attack anchors at the paper's default pair (previous backup as
    auxiliary, latest as target) with ciphertext-only leakage.
    """
    from repro.defenses.obfuscate import parse_scheme

    cells = []
    for dataset in datasets:
        for scheme in schemes:
            parse_scheme(scheme)  # fail fast on bad specs
            for attack in attacks:
                params = {
                    "axis": "storage",
                    "dataset": dataset,
                    "scheme": scheme,
                    "attack": attack,
                    "u": 1,
                    "v": 15,
                    "w": 200_000,
                    "auxiliary": -2,
                    "target": -1,
                    "leakage_rate": 0.0,
                    "seed": seed,
                }
                tags = {
                    "dataset": dataset,
                    "scheme": scheme,
                    "attack": attack,
                }
                cells.append(
                    Cell(
                        kind=DEFENSE_FRONTIER,
                        params=tuple(sorted(params.items())),
                        tags=tuple(sorted(tags.items())),
                    )
                )
    return cells


def bandwidth_cells(
    schemes: Sequence[str],
    policies: Sequence[str],
    tenants: int = 8,
    rounds: int = 2,
    seed: int = 7,
) -> list[Cell]:
    """Bandwidth-axis cells: service scheme x shaping policy."""
    from repro.service.shaping import parse_policy

    cells = []
    for scheme in schemes:
        for policy in policies:
            spec = parse_policy(policy).spec()  # validate + canonicalize
            params = {
                "axis": "bandwidth",
                "scheme": scheme,
                "policy": spec,
                "tenants": tenants,
                "rounds": rounds,
                "seed": seed,
            }
            tags = {"scheme": scheme, "policy": spec}
            cells.append(
                Cell(
                    kind=DEFENSE_FRONTIER,
                    params=tuple(sorted(params.items())),
                    tags=tuple(sorted(tags.items())),
                )
            )
    return cells


def _counter(counters: dict, name: str, **labels) -> int | None:
    return counters.get(metric_key(name, labels))


def _non_increasing(values: Sequence[float], tolerance: float = 0.0) -> bool:
    return all(
        later <= earlier + tolerance
        for earlier, later in zip(values, values[1:])
    )


def _obfuscate_sweep(schemes: Sequence[str]) -> list[tuple[int, str]]:
    """The ``(variants, spec)`` pairs of the obfuscation family, sorted
    by knob — the axis monotonicity is judged along."""
    from repro.defenses.obfuscate import parse_scheme
    from repro.defenses.pipeline import DefenseScheme

    sweep = []
    for scheme in schemes:
        parsed, variants = parse_scheme(scheme)
        if parsed is DefenseScheme.OBFUSCATE:
            sweep.append((variants, scheme))
    return sorted(sweep)


def _rr_sweep(policies: Sequence[str]) -> list[tuple[float, str]]:
    from repro.service.shaping import RANDOMIZED_RESPONSE, parse_policy

    sweep = []
    for policy in policies:
        parsed = parse_policy(policy)
        if parsed.mode == RANDOMIZED_RESPONSE:
            sweep.append((parsed.flip_probability, parsed.spec()))
        elif parsed.mode == "honest":
            sweep.append((0.0, parsed.spec()))
    return sorted(sweep)


def frontier_report(
    datasets: Sequence[str] = DEFAULT_DATASETS,
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    attacks: Sequence[str] = DEFAULT_ATTACKS,
    policies: Sequence[str] = DEFAULT_POLICIES,
    service_schemes: Sequence[str] = (BASELINE_SCHEME,),
    tenants: int = 8,
    rounds: int = 2,
    seed: int = 7,
    jobs: int = 1,
) -> dict:
    """Run the full frontier grid and assemble the tradeoff report.

    Metrics are force-enabled for the duration of the run (prior
    recorded state is saved and merged back afterwards, and the
    enable/disable switches are restored), because the cost columns are
    *read from* the observability layer rather than recomputed here.
    """
    cells = storage_cells(datasets, schemes, attacks, seed=seed)
    cells += bandwidth_cells(
        service_schemes, policies, tenants=tenants, rounds=rounds, seed=seed
    )
    storage_count = len(cells) - len(policies) * len(service_schemes)

    prior_metrics = obs.enabled()
    prior_tracing = obs.tracing_enabled()
    obs.enable(metrics=True)
    saved = obs.registry().snapshot()
    obs.registry().clear()
    try:
        results = Runner(jobs=jobs, cache=None).run_cells(cells)
        counters = obs.snapshot()["counters"]
    finally:
        obs.registry().clear()
        if not prior_metrics:
            obs.disable()
            if prior_tracing:
                obs.enable(metrics=False, tracing=True)
        obs.merge_snapshot(saved)

    storage_rows = [
        dict(zip(STORAGE_COLUMNS, row))
        for row in rows_from(results[:storage_count], STORAGE_COLUMNS)
    ]
    bandwidth_rows = [
        dict(zip(BANDWIDTH_COLUMNS, row))
        for row in rows_from(results[storage_count:], BANDWIDTH_COLUMNS)
    ]
    for row in storage_rows:
        labels = {
            "dataset": row["dataset"],
            "scheme": row["scheme"],
            "attack": row["attack"],
        }
        row["stored_bytes"] = _counter(
            counters, "frontier.stored_bytes", **labels
        )
        row["baseline_bytes"] = _counter(
            counters, "frontier.baseline_bytes", **labels
        )
    for row in bandwidth_rows:
        labels = {"scheme": row["scheme"], "policy": row["policy"]}
        row["transferred_bytes"] = _counter(
            counters, "frontier.transferred_bytes", **labels
        )
        row["honest_bytes"] = _counter(
            counters, "frontier.honest_bytes", **labels
        )

    monotonicity = {"storage": [], "bandwidth": []}
    sweep = _obfuscate_sweep(schemes)
    for dataset in datasets:
        for attack in attacks:
            rates = [
                row["inference_rate"]
                for _, spec in sweep
                for row in storage_rows
                if row["dataset"] == dataset
                and row["attack"] == attack
                and row["scheme"] == spec
            ]
            if len(rates) >= 2:
                monotonicity["storage"].append(
                    {
                        "dataset": dataset,
                        "attack": attack,
                        "axis": "obfuscate_variants",
                        "inference_rates": rates,
                        "non_increasing": _non_increasing(rates),
                    }
                )
    rr = _rr_sweep(policies)
    for scheme in service_schemes:
        recalls = [
            row["dedup_signal_recall"]
            for _, spec in rr
            for row in bandwidth_rows
            if row["scheme"] == scheme and row["policy"] == spec
        ]
        if len(recalls) >= 2:
            monotonicity["bandwidth"].append(
                {
                    "scheme": scheme,
                    "axis": "flip_probability",
                    "dedup_signal_recalls": recalls,
                    "non_increasing": _non_increasing(recalls),
                }
            )

    return {
        "env": metadata_envelope(),
        "grid": {
            "datasets": list(datasets),
            "schemes": list(schemes),
            "attacks": list(attacks),
            "policies": [p if isinstance(p, str) else p.spec() for p in policies],
            "service_schemes": list(service_schemes),
            "tenants": tenants,
            "rounds": rounds,
            "seed": seed,
        },
        "storage": storage_rows,
        "bandwidth": bandwidth_rows,
        "monotonicity": monotonicity,
    }


def compare_reports(current: dict, baseline: dict) -> list[str]:
    """Row-level drift between two frontier reports.

    The ``env`` envelope is ignored (it is machine-specific by design);
    rows are matched on their identity keys and every measurement field
    must be equal — these are deterministic reproductions, so any drift
    is a real behavior change.

    Returns:
        Human-readable drift descriptions; empty means identical.
    """
    drifts: list[str] = []
    for section, identity in (
        ("storage", _STORAGE_IDENTITY),
        ("bandwidth", _BANDWIDTH_IDENTITY),
    ):
        current_rows = {
            tuple(row[key] for key in identity): row
            for row in current.get(section, ())
        }
        baseline_rows = {
            tuple(row[key] for key in identity): row
            for row in baseline.get(section, ())
        }
        for key in sorted(
            set(current_rows) - set(baseline_rows), key=repr
        ):
            drifts.append(f"{section}: row {key!r} missing from baseline")
        for key in sorted(
            set(baseline_rows) - set(current_rows), key=repr
        ):
            drifts.append(f"{section}: row {key!r} missing from current")
        for key in sorted(
            set(current_rows) & set(baseline_rows), key=repr
        ):
            row, other = current_rows[key], baseline_rows[key]
            for field in sorted(set(row) | set(other)):
                if row.get(field) != other.get(field):
                    drifts.append(
                        f"{section}: row {key!r} field {field}: "
                        f"{row.get(field)!r} != baseline {other.get(field)!r}"
                    )
    return drifts
