"""Deterministic fault injection for the serve/COUNT/scenario stack.

A :class:`FaultPlan` is a seeded schedule of failures — connection drops,
read/write stalls, frame corruption, node kills and restarts, disk-write
errors, worker-process crashes — expressed as declarative rules over
named *sites*.  Code that can fail hosts a one-line seam::

    action = faults.fire("serve.drop", kind=frame_name)
    if action is not None:
        ...  # fail the way the site fails

With no plan installed (the default), :func:`fire` returns ``None``
without any work beyond a global ``is None`` check, so the fault plane
costs nothing in production paths and every fault-free run is
byte-identical to a build without it.

Determinism
-----------

Nothing here reads the clock: rules trigger on per-site **event
counters** ("the 500th ingest", "every 37th frame") and probabilistic
rules draw from a per-rule :class:`random.Random` seeded from
``(plan seed, rule index)``, so the same plan over the same workload
injects the same faults, every run, on every machine — which is what
lets the chaos tests assert *byte-identical* output between a faulted
run (with retries) and a fault-free run.

Rule schema (one JSON object per rule)::

    {"site": "serve.drop", "every": 37}
    {"site": "node.kill", "at": 5, "times": 1, "node": 1}
    {"site": "count.worker", "at": 1, "times": 1, "mode": "exit"}
    {"site": "client.drop", "probability": 0.1, "times": 3}

Trigger fields (ANDed together; a rule with none fires on every event):

* ``at`` — fire on exactly the N-th matching event (1-based);
* ``every`` — fire on every N-th matching event;
* ``after`` — fire on every matching event *after* the N-th;
* ``probability`` — fire with probability p (seeded, deterministic);
* ``times`` — cap on total firings of this rule (``1`` = fire once);
* ``match`` — ``{tag: value}`` equality filters over the tags the call
  site passes to :func:`fire`.

Every other key (``mode``, ``node``, ``delay_s``, ...) is carried
verbatim into the returned :class:`FaultAction` for the seam to
interpret.  Fired faults count into :mod:`repro.obs` under
``faults.injected`` (tagged by site); retry loops across the stack
count ``faults.retries`` and the cluster counts ``faults.failovers``.

Workers forked by the COUNT/scenario pools inherit the installed plan,
but crash decisions are made in the *parent* at submission time (and
passed to the worker), so per-rule state never diverges across forks.
"""

from __future__ import annotations

import json
import os
import random
from dataclasses import dataclass, field

from repro import obs
from repro.common.errors import ConfigurationError, ReproError

__all__ = [
    "FaultAction",
    "FaultPlan",
    "FaultRule",
    "Injector",
    "WorkerCrashError",
    "active",
    "backoff_delay",
    "clear",
    "fire",
    "install",
    "load_plan",
]

_TRIGGER_FIELDS = frozenset(
    {"site", "at", "every", "after", "probability", "times", "match"}
)


class WorkerCrashError(ReproError):
    """An injected (or detected) worker-process crash."""


@dataclass(frozen=True)
class FaultRule:
    """One declarative fault rule (see the module docstring schema)."""

    site: str
    at: int | None = None
    every: int | None = None
    after: int | None = None
    probability: float | None = None
    times: int | None = None
    match: dict = field(default_factory=dict)
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.site:
            raise ConfigurationError("a fault rule needs a 'site'")
        for name, value in (("at", self.at), ("every", self.every)):
            if value is not None and value < 1:
                raise ConfigurationError(f"rule {name!r} must be >= 1")
        if self.after is not None and self.after < 0:
            raise ConfigurationError("rule 'after' must be >= 0")
        if self.probability is not None and not (
            0.0 <= self.probability <= 1.0
        ):
            raise ConfigurationError("rule 'probability' must be in [0, 1]")
        if self.times is not None and self.times < 1:
            raise ConfigurationError("rule 'times' must be >= 1")

    @classmethod
    def from_dict(cls, raw: dict) -> "FaultRule":
        if not isinstance(raw, dict):
            raise ConfigurationError(f"fault rule must be an object: {raw!r}")
        match = raw.get("match", {})
        if not isinstance(match, dict):
            raise ConfigurationError("rule 'match' must be an object")
        params = {
            key: value
            for key, value in raw.items()
            if key not in _TRIGGER_FIELDS
        }
        return cls(
            site=str(raw.get("site", "")),
            at=raw.get("at"),
            every=raw.get("every"),
            after=raw.get("after"),
            probability=raw.get("probability"),
            times=raw.get("times"),
            match=dict(match),
            params=params,
        )

    def to_dict(self) -> dict:
        raw: dict = {"site": self.site}
        for name in ("at", "every", "after", "probability", "times"):
            value = getattr(self, name)
            if value is not None:
                raw[name] = value
        if self.match:
            raw["match"] = dict(self.match)
        raw.update(self.params)
        return raw


@dataclass(frozen=True)
class FaultPlan:
    """A seeded schedule of fault rules."""

    seed: int = 0
    rules: tuple[FaultRule, ...] = ()

    @classmethod
    def from_dict(cls, raw: dict) -> "FaultPlan":
        if not isinstance(raw, dict):
            raise ConfigurationError("a fault plan must be a JSON object")
        rules = raw.get("rules", [])
        if not isinstance(rules, list):
            raise ConfigurationError("plan 'rules' must be a list")
        return cls(
            seed=int(raw.get("seed", 0)),
            rules=tuple(FaultRule.from_dict(rule) for rule in rules),
        )

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "rules": [rule.to_dict() for rule in self.rules],
        }


def load_plan(path: str | os.PathLike) -> FaultPlan:
    """Read a :class:`FaultPlan` from a JSON file."""
    with open(path, encoding="utf-8") as handle:
        try:
            raw = json.load(handle)
        except ValueError as error:
            raise ConfigurationError(
                f"fault plan {os.fspath(path)!r} is not valid JSON: {error}"
            ) from None
    return FaultPlan.from_dict(raw)


class FaultAction:
    """One fired fault: the rule's free-form params plus provenance."""

    __slots__ = ("site", "rule_index", "event", "params")

    def __init__(self, site: str, rule_index: int, event: int, params: dict):
        self.site = site
        self.rule_index = rule_index
        self.event = event
        self.params = params

    def get(self, key: str, default=None):
        return self.params.get(key, default)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultAction(site={self.site!r}, rule={self.rule_index}, "
            f"event={self.event}, params={self.params!r})"
        )


class Injector:
    """Evaluates a :class:`FaultPlan` against a stream of site events.

    All state is event-count based: per-site event counters, per-rule
    firing counts, and one seeded RNG per probabilistic rule.  The same
    plan over the same event stream fires the same faults.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._events: dict[str, int] = {}
        self._fired: dict[str, int] = {}
        self._rule_fired: list[int] = [0] * len(plan.rules)
        self._rngs: list[random.Random | None] = [
            random.Random(f"{plan.seed}:{index}")
            if rule.probability is not None
            else None
            for index, rule in enumerate(plan.rules)
        ]

    def fire(self, site: str, **tags) -> FaultAction | None:
        """Record one event at ``site``; return the first firing rule."""
        count = self._events.get(site, 0) + 1
        self._events[site] = count
        for index, rule in enumerate(self.plan.rules):
            if rule.site != site:
                continue
            if rule.match and any(
                tags.get(key) != value for key, value in rule.match.items()
            ):
                continue
            if rule.times is not None and self._rule_fired[index] >= rule.times:
                continue
            if rule.at is not None and count != rule.at:
                continue
            if rule.every is not None and count % rule.every != 0:
                continue
            if rule.after is not None and count <= rule.after:
                continue
            if rule.probability is not None:
                rng = self._rngs[index]
                assert rng is not None
                if rng.random() >= rule.probability:
                    continue
            self._rule_fired[index] += 1
            self._fired[site] = self._fired.get(site, 0) + 1
            obs.counter("faults.injected", site=site)
            return FaultAction(site, index, count, rule.params)
        return None

    def summary(self) -> dict[str, object]:
        """Per-site event/fired counts plus per-rule firing totals."""
        sites = sorted(set(self._events) | set(self._fired))
        return {
            "seed": self.plan.seed,
            "sites": {
                site: {
                    "events": self._events.get(site, 0),
                    "fired": self._fired.get(site, 0),
                }
                for site in sites
            },
            "rules": [
                {"rule": rule.to_dict(), "fired": fired}
                for rule, fired in zip(self.plan.rules, self._rule_fired)
            ],
        }


# -- the process-global switchboard (mirrors repro.obs) -----------------------

_INSTALLED: Injector | None = None


def install(plan: FaultPlan | Injector) -> Injector:
    """Install a plan process-wide; forked workers inherit it."""
    global _INSTALLED
    _INSTALLED = plan if isinstance(plan, Injector) else Injector(plan)
    return _INSTALLED


def clear() -> None:
    """Remove the installed plan; every seam goes back to no-op."""
    global _INSTALLED
    _INSTALLED = None


def active() -> Injector | None:
    """The installed injector, or ``None``."""
    return _INSTALLED


def fire(site: str, **tags) -> FaultAction | None:
    """Consult the installed injector; no-op (``None``) when none is."""
    injector = _INSTALLED
    if injector is None:
        return None
    return injector.fire(site, **tags)


# -- deterministic retry backoff ----------------------------------------------


def backoff_delay(
    attempt: int,
    base: float = 0.01,
    cap: float = 0.25,
    seed: int = 0,
    key: str = "",
) -> float:
    """Capped exponential backoff with deterministic jitter.

    ``attempt`` is 0-based (the delay before retry N+1).  The jitter
    draws from a :class:`random.Random` seeded by ``(seed, key,
    attempt)``, so a retried request backs off identically on every run
    — no wall-clock, no shared RNG state.
    """
    if attempt < 0:
        raise ConfigurationError("attempt must be >= 0")
    ceiling = min(cap, base * (2**attempt))
    jitter = random.Random(f"{seed}|{key}|{attempt}").random()
    return ceiling * (0.5 + 0.5 * jitter)
