"""Embedded ordered key-value store (LevelDB stand-in, §5.2).

The store keeps a dict memtable for O(1) point access and supports ordered
iteration and range scans (sorting lazily, only when an ordered view is
requested). An optional append-only write-ahead log provides durability:
every mutation is logged, and :meth:`KVStore.open` replays the log to
rebuild state. :meth:`compact` rewrites the log to drop superseded records.

This intentionally mirrors the subset of LevelDB behaviour the paper's
attack code relies on: byte-keyed associative arrays holding frequency
counts and neighbor co-occurrence lists, larger than what one would want to
rebuild from scratch per run.
"""

from __future__ import annotations

import os
import struct
from pathlib import Path
from typing import Iterator

from repro.common.errors import IntegrityError, StorageError

_TOMBSTONE = b"\x00"
_VALUE = b"\x01"
_HEADER = struct.Struct(">cII")  # record type, key length, value length


class KVStore:
    """Ordered byte-keyed store with optional WAL persistence.

    Use as a context manager or call :meth:`close` to flush the log.
    """

    def __init__(self, path: str | os.PathLike | None = None):
        self._data: dict[bytes, bytes] = {}
        self._path = Path(path) if path is not None else None
        self._log = None
        if self._path is not None:
            self._replay()
            self._log = open(self._path, "ab")

    @classmethod
    def open(cls, path: str | os.PathLike) -> "KVStore":
        """Open (or create) a persistent store at ``path``."""
        return cls(path)

    # -- basic operations ---------------------------------------------------

    def get(self, key: bytes, default: bytes | None = None) -> bytes | None:
        return self._data.get(key, default)

    def put(self, key: bytes, value: bytes) -> None:
        if not isinstance(key, bytes) or not isinstance(value, bytes):
            raise StorageError("KVStore keys and values must be bytes")
        self._data[key] = value
        self._append_record(_VALUE, key, value)

    def put_batch(self, items) -> None:
        """Insert many pairs; equivalent to sequential :meth:`put` calls.

        Part of the :class:`~repro.index.backends.KVBackend` protocol; the
        memtable absorbs each write directly, so there is no extra batching
        benefit here beyond the buffered log file.
        """
        for key, value in items:
            self.put(key, value)

    def delete(self, key: bytes) -> bool:
        """Remove ``key``; returns whether it existed."""
        existed = key in self._data
        if existed:
            del self._data[key]
            self._append_record(_TOMBSTONE, key, b"")
        return existed

    def __contains__(self, key: bytes) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    # -- ordered views ------------------------------------------------------

    def keys(self) -> Iterator[bytes]:
        """Keys in ascending byte order."""
        return iter(sorted(self._data))

    def items(self) -> Iterator[tuple[bytes, bytes]]:
        """(key, value) pairs in ascending key order."""
        for key in sorted(self._data):
            yield key, self._data[key]

    def insertion_items(self) -> Iterator[tuple[bytes, bytes]]:
        """(key, value) pairs in first-insertion order (preserved across
        log replay; deletions forget the original slot)."""
        return iter(self._data.items())

    def range(self, start: bytes, end: bytes) -> Iterator[tuple[bytes, bytes]]:
        """Pairs with ``start <= key < end`` in ascending key order."""
        for key in sorted(self._data):
            if key < start:
                continue
            if key >= end:
                break
            yield key, self._data[key]

    # -- persistence --------------------------------------------------------

    def _append_record(self, kind: bytes, key: bytes, value: bytes) -> None:
        if self._log is None:
            return
        self._log.write(_HEADER.pack(kind, len(key), len(value)))
        self._log.write(key)
        self._log.write(value)

    def _replay(self) -> None:
        assert self._path is not None
        if not self._path.exists():
            return
        with open(self._path, "rb") as log:
            while True:
                header = log.read(_HEADER.size)
                if not header:
                    break
                if len(header) < _HEADER.size:
                    raise IntegrityError("truncated KVStore log header")
                kind, key_len, value_len = _HEADER.unpack(header)
                key = log.read(key_len)
                value = log.read(value_len)
                if len(key) < key_len or len(value) < value_len:
                    raise IntegrityError("truncated KVStore log record")
                if kind == _VALUE:
                    self._data[key] = value
                elif kind == _TOMBSTONE:
                    self._data.pop(key, None)
                else:
                    raise IntegrityError(f"unknown KVStore record type {kind!r}")

    def flush(self) -> None:
        if self._log is not None:
            self._log.flush()

    def compact(self) -> None:
        """Rewrite the log with only live records (drops tombstones)."""
        if self._path is None or self._log is None:
            return
        self._log.close()
        tmp_path = self._path.with_suffix(self._path.suffix + ".compact")
        with open(tmp_path, "wb") as out:
            for key, value in self.items():
                out.write(_HEADER.pack(_VALUE, len(key), len(value)))
                out.write(key)
                out.write(value)
        os.replace(tmp_path, self._path)
        self._log = open(self._path, "ab")

    def close(self) -> None:
        if self._log is not None:
            self._log.close()
            self._log = None

    def __enter__(self) -> "KVStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
