"""Indexing substrate.

* :class:`KVStore` — an embedded, ordered key-value store with optional
  write-ahead-log persistence. The paper's attack implementation keeps its
  frequency and co-occurrence tables in LevelDB (§5.2); this module plays
  the same role offline.
* :class:`BloomFilter` — the in-memory filter of the DDFS prototype
  (§7.4.1), parameterised by capacity and target false-positive rate.
* :class:`LRUCache` / :class:`FingerprintCache` — the byte-budgeted
  fingerprint cache of the DDFS prototype.
"""

from repro.index.bloom import BloomFilter
from repro.index.cache import FingerprintCache, LRUCache
from repro.index.kvstore import KVStore

__all__ = ["BloomFilter", "FingerprintCache", "LRUCache", "KVStore"]
