"""Indexing substrate.

* :class:`KVBackend` and its implementations (:class:`MemoryBackend`,
  :class:`SQLiteBackend`, :class:`ShardedBackend`, built via
  :func:`open_backend`) — the pluggable backend seam every
  fingerprint-keyed table sits behind (the paper keeps these tables in
  LevelDB, §5.2).
* :class:`KVStore` — an embedded, ordered key-value store with optional
  write-ahead-log persistence; also satisfies :class:`KVBackend`.
* :class:`BloomFilter` — the in-memory filter of the DDFS prototype
  (§7.4.1), parameterised by capacity and target false-positive rate.
* :class:`LRUCache` / :class:`FingerprintCache` — the byte-budgeted
  fingerprint cache of the DDFS prototype.
"""

from repro.index.backends import (
    BACKEND_SPECS,
    KVBackend,
    MemoryBackend,
    ShardedBackend,
    SQLiteBackend,
    open_backend,
)
from repro.index.bloom import BloomFilter
from repro.index.cache import FingerprintCache, LRUCache
from repro.index.kvstore import KVStore

__all__ = [
    "BACKEND_SPECS",
    "BloomFilter",
    "FingerprintCache",
    "KVBackend",
    "KVStore",
    "LRUCache",
    "MemoryBackend",
    "ShardedBackend",
    "SQLiteBackend",
    "open_backend",
]
