"""Pluggable key-value backends for the fingerprint-keyed tables (§5.2).

The paper's implementation keeps the COUNT co-occurrence tables in LevelDB
so frequency analysis scales to multi-million-chunk FSL backups. This
module provides the same seam for the reproduction: every fingerprint-keyed
table — attack COUNT state, the DDFS on-disk fingerprint index — talks to a
:class:`KVBackend`, and the backend decides whether the data lives in a
dict, a SQLite file, or a set of hash-partitioned shards.

Backends:

* :class:`MemoryBackend` — a plain dict. The default everywhere; keeps the
  existing figure benches allocation-light and bit-identical.
* :class:`SQLiteBackend` — a single-table SQLite store (WAL journal when
  file-backed) that buffers writes and flushes them with ``executemany``.
  Spills tables larger than RAM to disk, like the paper's LevelDB.
* :class:`ShardedBackend` — hash-partitions keys across N sub-backends
  (CRC32 of the key, deterministic across processes). The seam for
  multi-process or remote sharding in later work.
* :class:`~repro.index.kvstore.KVStore` — the ordered WAL-log store also
  satisfies the protocol (it predates it).

Every backend preserves **first-insertion order** under
:meth:`~KVBackend.insertion_items`, exactly like a Python dict: re-putting
an existing key keeps its original position. The attacks' tie-break
behaviour (see :mod:`repro.attacks.frequency`) depends on this, which is
why :class:`ShardedBackend` prefixes each stored value with a global
insertion sequence number — per-shard order alone would not reconstruct the
stream order.

Use :func:`open_backend` to build a backend from a spec string
(``"memory"``, ``"kvstore"``, ``"sqlite"``, ``"sharded"`` or
``"sharded:N"``); this is what the CLI and the storage constructors accept.
"""

from __future__ import annotations

import heapq
import os
import sqlite3
import struct
import time
import zlib
from pathlib import Path
from typing import Iterable, Iterator, Protocol, Sequence, runtime_checkable

from repro import obs
from repro.common.errors import ConfigurationError, StorageError

__all__ = [
    "BACKEND_SPECS",
    "DEFAULT_SHARDS",
    "KVBackend",
    "MemoryBackend",
    "SQLiteBackend",
    "ShardedBackend",
    "open_backend",
]


@runtime_checkable
class KVBackend(Protocol):
    """Byte-keyed associative store with dict-like insertion semantics.

    Contract (shared by every implementation, and what the conformance
    tests in ``tests/unit/test_backends.py`` assert):

    * keys and values are ``bytes``;
    * :meth:`put` of an existing key overwrites the value but keeps the
      key's first-insertion position;
    * :meth:`keys` / :meth:`items` iterate in ascending byte order;
    * :meth:`insertion_items` iterates in first-insertion order;
    * :meth:`put_batch` is equivalent to sequential :meth:`put` calls but
      lets the backend amortize write overhead;
    * :meth:`flush` makes all buffered writes visible/durable;
    * :meth:`close` flushes and releases resources (idempotent).
    """

    def get(self, key: bytes, default: bytes | None = None) -> bytes | None: ...

    def put(self, key: bytes, value: bytes) -> None: ...

    def put_batch(self, items: Iterable[tuple[bytes, bytes]]) -> None: ...

    def delete(self, key: bytes) -> bool: ...

    def __contains__(self, key: bytes) -> bool: ...

    def __len__(self) -> int: ...

    def keys(self) -> Iterator[bytes]: ...

    def items(self) -> Iterator[tuple[bytes, bytes]]: ...

    def insertion_items(self) -> Iterator[tuple[bytes, bytes]]: ...

    def flush(self) -> None: ...

    def close(self) -> None: ...


def _check_pair(key: bytes, value: bytes) -> None:
    if not isinstance(key, bytes) or not isinstance(value, bytes):
        raise StorageError("backend keys and values must be bytes")


class MemoryBackend:
    """Dict-backed backend: the allocation-light default, no persistence."""

    def __init__(self) -> None:
        self._data: dict[bytes, bytes] = {}

    def get(self, key: bytes, default: bytes | None = None) -> bytes | None:
        return self._data.get(key, default)

    def put(self, key: bytes, value: bytes) -> None:
        _check_pair(key, value)
        self._data[key] = value

    def put_batch(self, items: Iterable[tuple[bytes, bytes]]) -> None:
        data = self._data
        for key, value in items:
            _check_pair(key, value)
            data[key] = value

    def delete(self, key: bytes) -> bool:
        if key in self._data:
            del self._data[key]
            return True
        return False

    def __contains__(self, key: bytes) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def keys(self) -> Iterator[bytes]:
        return iter(sorted(self._data))

    def items(self) -> Iterator[tuple[bytes, bytes]]:
        for key in sorted(self._data):
            yield key, self._data[key]

    def insertion_items(self) -> Iterator[tuple[bytes, bytes]]:
        return iter(self._data.items())

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass

    def __enter__(self) -> "MemoryBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# Bounded retry for "database is locked" write failures: attempts past
# the connection's own busy timeout, with exponential backoff between.
_LOCKED_RETRIES = 5
_LOCKED_BACKOFF_S = 0.01


class SQLiteBackend:
    """Single-table SQLite backend with WAL journaling and batched writes.

    Writes are buffered in a dict and drained with one ``executemany`` per
    ``batch_size`` puts (or on :meth:`flush` / any whole-store read), so
    the per-put overhead stays close to a dict assignment while the data
    can spill to disk. The table carries an ``AUTOINCREMENT`` sequence
    column and upserts keep the original row, which preserves
    first-insertion iteration order across process restarts.

    A file-backed store can be opened by several processes (the cluster
    nodes of one host, a concurrent bench); SQLite then serializes
    writers and throws ``OperationalError: database is locked`` past
    the busy timeout.  Writes here sit behind both defences: the
    connection-level busy timeout (``busy_timeout_s``, also applied as
    ``PRAGMA busy_timeout``), and a bounded exponential-backoff retry
    (``_LOCKED_RETRIES``) that converts persistent lock-out into a
    clean :class:`~repro.common.errors.StorageError` instead of an
    sqlite3 internal leaking upward.

    Args:
        path: database file; ``None`` keeps the store in ``:memory:``.
        batch_size: buffered puts per ``executemany`` drain.
        busy_timeout_s: how long SQLite itself blocks on a locked
            database before raising (per attempt).
    """

    def __init__(
        self,
        path: str | os.PathLike | None = None,
        batch_size: int = 4096,
        busy_timeout_s: float = 5.0,
    ):
        if batch_size < 1:
            raise ConfigurationError("batch_size must be >= 1")
        if busy_timeout_s < 0:
            raise ConfigurationError("busy_timeout_s must be >= 0")
        if path is not None:
            Path(path).parent.mkdir(parents=True, exist_ok=True)
        self._path = str(path) if path is not None else ":memory:"
        self._conn: sqlite3.Connection | None = sqlite3.connect(
            self._path, timeout=busy_timeout_s
        )
        self._conn.execute(
            f"PRAGMA busy_timeout = {int(busy_timeout_s * 1000)}"
        )
        if path is not None:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS kv ("
            " seq INTEGER PRIMARY KEY AUTOINCREMENT,"
            " key BLOB NOT NULL UNIQUE,"
            " value BLOB NOT NULL)"
        )
        self._conn.commit()
        self._pending: dict[bytes, bytes] = {}
        self._batch_size = batch_size

    # -- write path ---------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> None:
        _check_pair(key, value)
        self._pending[key] = value
        if len(self._pending) >= self._batch_size:
            self._drain()

    def put_batch(self, items: Iterable[tuple[bytes, bytes]]) -> None:
        pending = self._pending
        for key, value in items:
            _check_pair(key, value)
            pending[key] = value
            if len(pending) >= self._batch_size:
                self._drain()

    def _drain(self) -> None:
        if not self._pending:
            return
        assert self._conn is not None

        def drain() -> None:
            self._conn.executemany(
                "INSERT INTO kv (key, value) VALUES (?, ?)"
                " ON CONFLICT(key) DO UPDATE SET value = excluded.value",
                list(self._pending.items()),
            )
            self._conn.commit()

        self._write_retry(drain)
        self._pending.clear()

    def _write_retry(self, operation):
        """Run a write transaction, retrying lock contention.

        Lock-out past the busy timeout is transient by definition
        (another writer holds the database), so each retry backs off
        exponentially; a database still locked after every attempt
        surfaces as a :class:`StorageError`.  Any other
        ``OperationalError`` propagates untouched.
        """
        for attempt in range(_LOCKED_RETRIES + 1):
            try:
                return operation()
            except sqlite3.OperationalError as error:
                if "locked" not in str(error) and "busy" not in str(error):
                    raise
                if attempt == _LOCKED_RETRIES:
                    raise StorageError(
                        f"sqlite database stayed locked through "
                        f"{attempt + 1} attempts: {error}"
                    ) from error
                obs.counter("faults.retries", site="sqlite.locked")
                time.sleep(_LOCKED_BACKOFF_S * (2**attempt))

    def delete(self, key: bytes) -> bool:
        self._drain()
        assert self._conn is not None

        def remove() -> bool:
            cursor = self._conn.execute(
                "DELETE FROM kv WHERE key = ?", (key,)
            )
            self._conn.commit()
            return cursor.rowcount > 0

        return self._write_retry(remove)

    # -- read path ----------------------------------------------------------

    def get(self, key: bytes, default: bytes | None = None) -> bytes | None:
        value = self._pending.get(key)
        if value is not None:
            return value
        assert self._conn is not None
        row = self._conn.execute(
            "SELECT value FROM kv WHERE key = ?", (key,)
        ).fetchone()
        return row[0] if row is not None else default

    def __contains__(self, key: bytes) -> bool:
        if key in self._pending:
            return True
        assert self._conn is not None
        row = self._conn.execute(
            "SELECT 1 FROM kv WHERE key = ?", (key,)
        ).fetchone()
        return row is not None

    def __len__(self) -> int:
        self._drain()
        assert self._conn is not None
        return self._conn.execute("SELECT COUNT(*) FROM kv").fetchone()[0]

    def keys(self) -> Iterator[bytes]:
        self._drain()
        assert self._conn is not None
        for (key,) in self._conn.execute("SELECT key FROM kv ORDER BY key"):
            yield key

    def items(self) -> Iterator[tuple[bytes, bytes]]:
        self._drain()
        assert self._conn is not None
        yield from self._conn.execute("SELECT key, value FROM kv ORDER BY key")

    def insertion_items(self) -> Iterator[tuple[bytes, bytes]]:
        self._drain()
        assert self._conn is not None
        yield from self._conn.execute("SELECT key, value FROM kv ORDER BY seq")

    # -- lifecycle ----------------------------------------------------------

    def flush(self) -> None:
        self._drain()

    def close(self) -> None:
        if self._conn is None:
            return
        self._drain()
        self._conn.close()
        self._conn = None

    def __enter__(self) -> "SQLiteBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


_SEQ = struct.Struct(">Q")


class ShardedBackend:
    """Hash-partitions keys across N sub-backends.

    Routing uses ``crc32(key) % shards`` — deterministic across processes,
    so a persisted sharded store reopens onto the same layout. Each stored
    value is prefixed with an 8-byte global insertion sequence number;
    :meth:`insertion_items` merge-sorts the shards by that prefix, which
    reconstructs the exact global first-insertion order the tie-break
    logic needs. Reopening scans each shard once to recover the sequence
    counter.

    Args:
        shards: the sub-backends (any :class:`KVBackend` mix).
    """

    def __init__(self, shards: Sequence[KVBackend]):
        if not shards:
            raise ConfigurationError("ShardedBackend needs at least one shard")
        self._shards = list(shards)
        next_seq = 0
        for shard in self._shards:
            for _, raw in shard.insertion_items():
                seq = _SEQ.unpack_from(raw)[0]
                if seq >= next_seq:
                    next_seq = seq + 1
        self._next_seq = next_seq

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    def _shard_for(self, key: bytes) -> KVBackend:
        return self._shards[zlib.crc32(key) % len(self._shards)]

    # -- write path ---------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> None:
        _check_pair(key, value)
        shard = self._shard_for(key)
        raw = shard.get(key)
        if raw is None:
            prefix = _SEQ.pack(self._next_seq)
            self._next_seq += 1
        else:
            prefix = raw[: _SEQ.size]
        shard.put(key, prefix + value)

    def put_batch(self, items: Iterable[tuple[bytes, bytes]]) -> None:
        # Group per shard so each sub-backend sees one batched write; a
        # dict per shard also catches duplicate keys within the batch
        # (they must reuse the sequence number of the first occurrence).
        buffers: list[dict[bytes, bytes]] = [{} for _ in self._shards]
        shard_count = len(self._shards)
        for key, value in items:
            _check_pair(key, value)
            index = zlib.crc32(key) % shard_count
            buffer = buffers[index]
            raw = buffer.get(key)
            if raw is None:
                raw = self._shards[index].get(key)
            if raw is None:
                prefix = _SEQ.pack(self._next_seq)
                self._next_seq += 1
            else:
                prefix = raw[: _SEQ.size]
            buffer[key] = prefix + value
        for shard, buffer in zip(self._shards, buffers):
            if buffer:
                shard.put_batch(buffer.items())

    def delete(self, key: bytes) -> bool:
        return self._shard_for(key).delete(key)

    # -- read path ----------------------------------------------------------

    def get(self, key: bytes, default: bytes | None = None) -> bytes | None:
        raw = self._shard_for(key).get(key)
        if raw is None:
            return default
        return raw[_SEQ.size :]

    def __contains__(self, key: bytes) -> bool:
        return key in self._shard_for(key)

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def keys(self) -> Iterator[bytes]:
        yield from heapq.merge(*(shard.keys() for shard in self._shards))

    def items(self) -> Iterator[tuple[bytes, bytes]]:
        merged = heapq.merge(
            *(shard.items() for shard in self._shards),
            key=lambda pair: pair[0],
        )
        for key, raw in merged:
            yield key, raw[_SEQ.size :]

    def insertion_items(self) -> Iterator[tuple[bytes, bytes]]:
        # Within one shard insertion order is sequence order, so a k-way
        # merge on the prefix reconstructs the global stream order.
        merged = heapq.merge(
            *(shard.insertion_items() for shard in self._shards),
            key=lambda pair: pair[1][: _SEQ.size],
        )
        for key, raw in merged:
            yield key, raw[_SEQ.size :]

    # -- lifecycle ----------------------------------------------------------

    def flush(self) -> None:
        for shard in self._shards:
            shard.flush()

    def close(self) -> None:
        for shard in self._shards:
            shard.close()

    def __enter__(self) -> "ShardedBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


BACKEND_SPECS = ("memory", "kvstore", "sqlite", "sharded")
DEFAULT_SHARDS = 4


def open_backend(
    spec: str,
    path: str | os.PathLike | None = None,
    shards: int | None = None,
) -> KVBackend:
    """Build a backend from a spec string.

    Specs:

    * ``"memory"`` — :class:`MemoryBackend` (``path`` must be ``None``).
    * ``"kvstore"`` — :class:`~repro.index.kvstore.KVStore`, WAL-persistent
      when ``path`` is given.
    * ``"sqlite"`` — :class:`SQLiteBackend`, file-backed when ``path`` is
      given.
    * ``"sharded"`` or ``"sharded:N"`` — :class:`ShardedBackend` over N
      sub-backends (default 4): SQLite files ``shard-00.db`` … under the
      ``path`` directory, or in-memory shards when ``path`` is ``None``.

    Args:
        spec: backend spec string.
        path: file (kvstore/sqlite) or directory (sharded) to persist to.
        shards: shard count override; equivalent to ``"sharded:N"``.
    """
    from repro.index.kvstore import KVStore

    name, _, option = spec.partition(":")
    if name == "memory":
        if path is not None:
            raise ConfigurationError("the memory backend does not persist")
        return MemoryBackend()
    if name == "kvstore":
        return KVStore(path)
    if name == "sqlite":
        return SQLiteBackend(path)
    if name == "sharded":
        if option:
            try:
                shards = int(option)
            except ValueError:
                raise ConfigurationError(
                    f"bad shard count in backend spec {spec!r}"
                ) from None
        count = shards if shards is not None else DEFAULT_SHARDS
        if count < 1:
            raise ConfigurationError("shard count must be >= 1")
        if path is None:
            return ShardedBackend([MemoryBackend() for _ in range(count)])
        directory = Path(path)
        directory.mkdir(parents=True, exist_ok=True)
        return ShardedBackend(
            [SQLiteBackend(directory / f"shard-{i:02d}.db") for i in range(count)]
        )
    raise ConfigurationError(
        f"unknown backend spec {spec!r}; use one of {BACKEND_SPECS}"
    )
