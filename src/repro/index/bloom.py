"""Bloom filter (DDFS prototype, §7.4.1).

The prototype sizes its filter for a 1 % false-positive rate over the
expected fingerprint population (the paper's FSL configuration: ~65 M
fingerprints, 7 hash functions, ~74 MB of bits). This implementation derives
(m, k) from (capacity, target FPR) with the standard optimal formulas and
reports its own memory footprint so experiments can budget it.
"""

from __future__ import annotations

import hashlib
import math

from repro.common.errors import ConfigurationError


class BloomFilter:
    """Standard Bloom filter over byte keys.

    Args:
        capacity: expected number of distinct inserted keys.
        false_positive_rate: target FPR at ``capacity`` insertions.
    """

    def __init__(self, capacity: int, false_positive_rate: float = 0.01):
        if capacity <= 0:
            raise ConfigurationError("capacity must be positive")
        if not 0.0 < false_positive_rate < 1.0:
            raise ConfigurationError("false_positive_rate must be in (0, 1)")
        self.capacity = capacity
        self.false_positive_rate = false_positive_rate
        ln2 = math.log(2)
        self.num_bits = max(8, int(math.ceil(-capacity * math.log(false_positive_rate) / (ln2 * ln2))))
        self.num_hashes = max(1, int(round(self.num_bits / capacity * ln2)))
        self._bits = bytearray((self.num_bits + 7) // 8)
        self.inserted = 0

    def _positions(self, key: bytes) -> list[int]:
        # Kirsch–Mitzenmacher double hashing from one 128-bit digest.
        digest = hashlib.blake2b(key, digest_size=16).digest()
        h1 = int.from_bytes(digest[:8], "big")
        h2 = int.from_bytes(digest[8:], "big") | 1
        return [
            (h1 + i * h2) % self.num_bits for i in range(self.num_hashes)
        ]

    def add(self, key: bytes) -> None:
        for pos in self._positions(key):
            self._bits[pos >> 3] |= 1 << (pos & 7)
        self.inserted += 1

    def __contains__(self, key: bytes) -> bool:
        return all(
            self._bits[pos >> 3] & (1 << (pos & 7)) for pos in self._positions(key)
        )

    @property
    def size_bytes(self) -> int:
        """Memory footprint of the bit array."""
        return len(self._bits)

    def expected_fpr(self) -> float:
        """Theoretical FPR at the current number of insertions."""
        if self.inserted == 0:
            return 0.0
        exponent = -self.num_hashes * self.inserted / self.num_bits
        return (1.0 - math.exp(exponent)) ** self.num_hashes
