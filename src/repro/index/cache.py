"""LRU caches for fingerprint metadata (DDFS prototype, §7.4.1).

The DDFS prototype front-ends its on-disk fingerprint index with an
in-memory fingerprint cache: on an index hit it loads the fingerprints of
the *whole container* holding the chunk (exploiting chunk locality), and
evicts least-recently-used entries when the byte budget is exhausted.

:class:`LRUCache` is the generic mechanism; :class:`FingerprintCache` adds
the paper's sizing convention (a fixed number of metadata bytes per
fingerprint entry, 32 B in the evaluation) plus hit/miss accounting.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generic, Hashable, Iterator, TypeVar

from repro.common.errors import ConfigurationError

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


class LRUCache(Generic[K, V]):
    """Bounded mapping with least-recently-used eviction.

    ``get`` and ``put`` both refresh recency. Capacity is measured in
    entries; see :class:`FingerprintCache` for a byte-budgeted wrapper.
    """

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ConfigurationError("capacity must be positive")
        self.capacity = capacity
        self._entries: OrderedDict[K, V] = OrderedDict()

    def get(self, key: K, default: V | None = None) -> V | None:
        if key not in self._entries:
            return default
        self._entries.move_to_end(key)
        return self._entries[key]

    def put(self, key: K, value: V) -> list[tuple[K, V]]:
        """Insert/refresh ``key``; returns the entries evicted (oldest first)."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        evicted: list[tuple[K, V]] = []
        while len(self._entries) > self.capacity:
            evicted.append(self._entries.popitem(last=False))
        return evicted

    def __contains__(self, key: K) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[K]:
        """Keys from least- to most-recently used."""
        return iter(self._entries)

    def clear(self) -> None:
        self._entries.clear()


class FingerprintCache:
    """Byte-budgeted LRU cache of fingerprint → container-id mappings.

    Args:
        budget_bytes: total memory budget (the paper evaluates 512 MB and
            4 GB).
        entry_bytes: metadata bytes charged per cached fingerprint (32 B in
            the paper's configuration).
    """

    def __init__(self, budget_bytes: int, entry_bytes: int = 32):
        if entry_bytes <= 0:
            raise ConfigurationError("entry_bytes must be positive")
        capacity = budget_bytes // entry_bytes
        if capacity <= 0:
            raise ConfigurationError(
                f"budget {budget_bytes} B holds no {entry_bytes} B entries"
            )
        self.budget_bytes = budget_bytes
        self.entry_bytes = entry_bytes
        self._lru: LRUCache[bytes, int] = LRUCache(capacity)
        self.hits = 0
        self.misses = 0

    @property
    def capacity_entries(self) -> int:
        return self._lru.capacity

    def lookup(self, fingerprint: bytes) -> int | None:
        """Container id for ``fingerprint`` or ``None``; counts hit/miss."""
        value = self._lru.get(fingerprint)
        if value is None:
            self.misses += 1
        else:
            self.hits += 1
        return value

    def insert(self, fingerprint: bytes, container_id: int) -> int:
        """Cache a mapping; returns how many entries were evicted."""
        return len(self._lru.put(fingerprint, container_id))

    def __contains__(self, fingerprint: bytes) -> bool:
        return fingerprint in self._lru

    def __len__(self) -> int:
        return len(self._lru)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
