"""DupLESS-style key manager for server-aided MLE (§2.2).

The key manager holds a system-wide secret and answers key-derivation
queries: given a chunk fingerprint it returns
``HMAC(system_secret, fingerprint)``. Because the secret never leaves the
manager, ciphertexts look like they were produced under random keys to any
adversary without manager access, defeating *offline* brute-force attacks on
predictable chunks. To slow *online* brute-force (an adversary querying the
manager itself), the manager rate-limits key generation.

The rate limiter runs on an injectable logical clock so tests and
simulations are deterministic and do not sleep.
"""

from __future__ import annotations

import hmac
from typing import Callable

from repro.common.errors import ConfigurationError, RateLimitExceeded
from repro.crypto.primitives import hmac_digest


class RateLimiter:
    """Token-bucket rate limiter over an injectable clock.

    Args:
        rate: tokens added per unit of clock time.
        burst: bucket capacity (maximum tokens; also the initial fill).
        clock: zero-argument callable returning the current time. Defaults
            to a logical clock that only advances via :meth:`advance`.
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] | None = None,
    ):
        if rate <= 0 or burst <= 0:
            raise ConfigurationError("rate and burst must be positive")
        self.rate = rate
        self.burst = burst
        self._logical_time = 0.0
        self._clock = clock if clock is not None else self._read_logical_clock
        self._tokens = burst
        self._last = self._clock()

    def _read_logical_clock(self) -> float:
        return self._logical_time

    def advance(self, delta: float) -> None:
        """Advance the built-in logical clock (no-op with an external clock)."""
        if delta < 0:
            raise ConfigurationError("cannot advance the clock backwards")
        self._logical_time += delta

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Consume ``tokens`` if available; return whether it succeeded."""
        now = self._clock()
        elapsed = max(0.0, now - self._last)
        self._last = now
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        if self._tokens >= tokens:
            self._tokens -= tokens
            return True
        return False

    @property
    def available_tokens(self) -> float:
        return self._tokens


class KeyManager:
    """Dedicated key server for server-aided MLE.

    Args:
        system_secret: the manager's global secret; all derived keys are
            HMACs under it.
        rate_limiter: optional limiter applied to :meth:`derive_key`;
            ``None`` disables rate limiting (useful in trace simulations).
    """

    def __init__(
        self,
        system_secret: bytes,
        rate_limiter: RateLimiter | None = None,
    ):
        if len(system_secret) < 16:
            raise ConfigurationError("system secret must be at least 16 bytes")
        self._secret = system_secret
        self._limiter = rate_limiter
        self.queries_served = 0
        self.queries_rejected = 0

    def derive_key(self, fingerprint: bytes) -> bytes:
        """Return the MLE key for ``fingerprint``.

        Raises :class:`RateLimitExceeded` when the rate limiter rejects the
        request — callers are expected to back off and retry, mirroring
        DupLESS's online brute-force mitigation.
        """
        if self._limiter is not None and not self._limiter.try_acquire():
            self.queries_rejected += 1
            raise RateLimitExceeded("key manager rate limit exceeded")
        self.queries_served += 1
        return hmac_digest(self._secret, b"mle-key:" + fingerprint)

    def verify_key(self, fingerprint: bytes, key: bytes) -> bool:
        """Constant-time check that ``key`` is the key for ``fingerprint``."""
        expected = hmac_digest(self._secret, b"mle-key:" + fingerprint)
        return hmac.compare_digest(expected, key)
