"""Deterministic symmetric cipher with 16-byte block semantics.

The paper assumes AES for chunk encryption; the only properties the attacks
and defenses rely on are:

1. *Determinism*: the same (key, plaintext) always yields the same
   ciphertext — this is what makes deduplication of ciphertext chunks work
   and what frequency analysis exploits.
2. *Block-length preservation*: a plaintext of ``n`` bytes encrypts to
   ``ceil((n + 1) / 16) * 16`` bytes (PKCS#7-style padding), so the
   adversary can read off the plaintext's block count from the ciphertext —
   the side channel used by the advanced locality-based attack (§4.3).

:class:`BlockCipher` provides both, using a PRF keystream XOR (deterministic
CTR with an all-zero nonce) over padded plaintext. AES itself is not
available offline; see DESIGN.md §2.
"""

from __future__ import annotations

from repro.common.errors import ConfigurationError, IntegrityError
from repro.crypto.primitives import prf_stream

BLOCK_SIZE = 16


def pad(data: bytes, block_size: int = BLOCK_SIZE) -> bytes:
    """PKCS#7 padding: always appends between 1 and ``block_size`` bytes."""
    pad_len = block_size - (len(data) % block_size)
    return data + bytes([pad_len]) * pad_len


def unpad(data: bytes, block_size: int = BLOCK_SIZE) -> bytes:
    """Inverse of :func:`pad`; raises :class:`IntegrityError` on bad padding."""
    if not data or len(data) % block_size:
        raise IntegrityError("ciphertext length is not a multiple of block size")
    pad_len = data[-1]
    if not 1 <= pad_len <= block_size:
        raise IntegrityError("invalid padding length byte")
    if data[-pad_len:] != bytes([pad_len]) * pad_len:
        raise IntegrityError("corrupt padding")
    return data[:-pad_len]


def ciphertext_blocks(plaintext_size: int, block_size: int = BLOCK_SIZE) -> int:
    """Number of cipher blocks for a plaintext of ``plaintext_size`` bytes.

    This is the quantity the advanced locality-based attack classifies
    chunks by: ``ceil(size / 16)`` in the paper's Algorithm 3 (the paper
    elides padding; with PKCS#7 it is ``floor(size / 16) + 1``, which is the
    same monotone size signal — see tests for the exact correspondence).
    """
    return plaintext_size // block_size + 1


class BlockCipher:
    """Deterministic symmetric encryption with 16-byte block granularity."""

    def __init__(self, block_size: int = BLOCK_SIZE):
        if block_size <= 0:
            raise ConfigurationError("block_size must be positive")
        self.block_size = block_size

    def encrypt(self, key: bytes, plaintext: bytes) -> bytes:
        """Encrypt ``plaintext`` under ``key`` (deterministic)."""
        if not key:
            raise ConfigurationError("empty encryption key")
        padded = pad(plaintext, self.block_size)
        stream = prf_stream(key, b"freqdedup-cipher", len(padded))
        return bytes(p ^ s for p, s in zip(padded, stream))

    def decrypt(self, key: bytes, ciphertext: bytes) -> bytes:
        """Invert :meth:`encrypt`; raises on malformed ciphertext."""
        if not key:
            raise ConfigurationError("empty encryption key")
        stream = prf_stream(key, b"freqdedup-cipher", len(ciphertext))
        padded = bytes(c ^ s for c, s in zip(ciphertext, stream))
        return unpad(padded, self.block_size)
