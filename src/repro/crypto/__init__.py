"""Cryptographic substrate for encrypted deduplication (§2.2).

* :mod:`repro.crypto.primitives` — hashing, HMAC, and a counter-mode PRF
  keystream built on BLAKE2b.
* :mod:`repro.crypto.cipher` — a deterministic symmetric cipher with 16-byte
  block semantics, standing in for AES (see DESIGN.md §2 substitution 4).
* :mod:`repro.crypto.keymanager` — DupLESS-style key manager with rate
  limiting for server-aided MLE.
* :mod:`repro.crypto.mle` — message-locked encryption schemes: convergent
  encryption and server-aided MLE, plus key recipes.
"""

from repro.crypto.cipher import BLOCK_SIZE, BlockCipher, ciphertext_blocks
from repro.crypto.keymanager import KeyManager, RateLimiter
from repro.crypto.mle import (
    CiphertextChunk,
    ConvergentEncryption,
    KeyRecipe,
    MLEScheme,
    ServerAidedMLE,
)
from repro.crypto.primitives import hkdf_expand, hmac_digest, prf_stream, sha256
from repro.crypto.quorum import KeyManagerReplica, QuorumKeyManager
from repro.crypto.secretsharing import Share, combine_shares, split_secret

__all__ = [
    "BLOCK_SIZE",
    "BlockCipher",
    "ciphertext_blocks",
    "KeyManager",
    "RateLimiter",
    "CiphertextChunk",
    "ConvergentEncryption",
    "KeyRecipe",
    "MLEScheme",
    "ServerAidedMLE",
    "hkdf_expand",
    "hmac_digest",
    "prf_stream",
    "sha256",
    "KeyManagerReplica",
    "QuorumKeyManager",
    "Share",
    "combine_shares",
    "split_secret",
]
