"""Shamir secret sharing over GF(256).

Substrate for the fault-tolerant key-management extension (§8, Duan [24]):
splitting the key manager's secret (or derived MLE keys) across *n* share
holders such that any *k* of them reconstruct it and fewer than *k* learn
nothing.

The field is GF(2⁸) with the AES polynomial (x⁸+x⁴+x³+x+1); secrets of any
byte length are shared byte-wise with an independent random polynomial per
byte, which is the standard construction (e.g. SSSS, HashiCorp Vault).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.common.errors import ConfigurationError, IntegrityError

_POLY = 0x11B  # x^8 + x^4 + x^3 + x + 1


def _gf_mul(a: int, b: int) -> int:
    result = 0
    while b:
        if b & 1:
            result ^= a
        a <<= 1
        if a & 0x100:
            a ^= _POLY
        b >>= 1
    return result


# Log/antilog tables over the generator 3 for fast division.
_EXP = [0] * 510
_LOG = [0] * 256
_value = 1
for _power in range(255):
    _EXP[_power] = _value
    _LOG[_value] = _power
    _value = _gf_mul(_value, 3)
for _power in range(255, 510):
    _EXP[_power] = _EXP[_power - 255]


def gf_mul(a: int, b: int) -> int:
    """Multiplication in GF(256)."""
    if a == 0 or b == 0:
        return 0
    return _EXP[_LOG[a] + _LOG[b]]


def gf_div(a: int, b: int) -> int:
    """Division in GF(256); raises on division by zero."""
    if b == 0:
        raise ZeroDivisionError("GF(256) division by zero")
    if a == 0:
        return 0
    return _EXP[(_LOG[a] - _LOG[b]) % 255]


def _eval_poly(coefficients: list[int], x: int) -> int:
    """Horner evaluation of a polynomial with GF(256) coefficients."""
    result = 0
    for coefficient in reversed(coefficients):
        result = gf_mul(result, x) ^ coefficient
    return result


@dataclass(frozen=True)
class Share:
    """One share: the holder's x-coordinate and per-byte y values."""

    index: int
    data: bytes

    def __post_init__(self) -> None:
        if not 1 <= self.index <= 255:
            raise ConfigurationError("share index must be in [1, 255]")


def split_secret(
    secret: bytes,
    threshold: int,
    num_shares: int,
    rng: random.Random | None = None,
) -> list[Share]:
    """Split ``secret`` into ``num_shares`` shares, any ``threshold`` of
    which reconstruct it."""
    if not 1 <= threshold <= num_shares <= 255:
        raise ConfigurationError(
            "require 1 <= threshold <= num_shares <= 255"
        )
    if not secret:
        raise ConfigurationError("cannot share an empty secret")
    rng = rng or random.SystemRandom()
    # One random polynomial of degree threshold-1 per secret byte, with the
    # secret byte as the constant term.
    polynomials = [
        [byte] + [rng.randrange(256) for _ in range(threshold - 1)]
        for byte in secret
    ]
    shares = []
    for index in range(1, num_shares + 1):
        data = bytes(_eval_poly(poly, index) for poly in polynomials)
        shares.append(Share(index=index, data=data))
    return shares


def combine_shares(shares: list[Share]) -> bytes:
    """Reconstruct the secret from ``threshold`` (or more) shares via
    Lagrange interpolation at x=0."""
    if not shares:
        raise ConfigurationError("no shares given")
    indices = [share.index for share in shares]
    if len(set(indices)) != len(indices):
        raise IntegrityError("duplicate share indices")
    lengths = {len(share.data) for share in shares}
    if len(lengths) != 1:
        raise IntegrityError("shares have inconsistent lengths")
    (length,) = lengths

    secret = bytearray(length)
    for position in range(length):
        value = 0
        for i, share_i in enumerate(shares):
            # Lagrange basis at x=0: prod_{j!=i} x_j / (x_i ^ x_j)
            numerator = 1
            denominator = 1
            for j, share_j in enumerate(shares):
                if i == j:
                    continue
                numerator = gf_mul(numerator, share_j.index)
                denominator = gf_mul(
                    denominator, share_i.index ^ share_j.index
                )
            basis = gf_div(numerator, denominator)
            value ^= gf_mul(share_i.data[position], basis)
        secret[position] = value
    return bytes(secret)
