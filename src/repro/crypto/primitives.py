"""Low-level crypto primitives built on the standard library.

No third-party crypto package is available offline, so everything here is
constructed from :mod:`hashlib`/:mod:`hmac`. The constructions are standard
(HMAC, HKDF-expand, counter-mode PRF keystream); their purpose in this
reproduction is behavioural fidelity — determinism, key separation, and
length preservation — not resistance review.
"""

from __future__ import annotations

import hashlib
import hmac


def sha256(data: bytes) -> bytes:
    """SHA-256 digest."""
    return hashlib.sha256(data).digest()


def hmac_digest(key: bytes, data: bytes) -> bytes:
    """HMAC-SHA-256 digest."""
    return hmac.new(key, data, hashlib.sha256).digest()


def hkdf_expand(key: bytes, info: bytes, length: int = 32) -> bytes:
    """HKDF-expand (RFC 5869) with SHA-256, without the extract step.

    Used for deriving purpose-separated subkeys, e.g. a cipher key and a tag
    key from one MLE key.
    """
    output = b""
    block = b""
    counter = 1
    while len(output) < length:
        block = hmac_digest(key, block + info + bytes([counter]))
        output += block
        counter += 1
        if counter > 255:
            raise ValueError("hkdf_expand length too large")
    return output[:length]


def prf_stream(key: bytes, nonce: bytes, length: int) -> bytes:
    """Deterministic keystream of ``length`` bytes from (key, nonce).

    Counter mode over keyed BLAKE2b: block *i* is
    ``BLAKE2b(key=key, data=nonce || i)``. Distinct (key, nonce) pairs give
    independent streams; identical inputs always give identical streams,
    which is exactly the determinism MLE requires (§2.2).
    """
    if length < 0:
        raise ValueError("length must be non-negative")
    blocks: list[bytes] = []
    produced = 0
    counter = 0
    key = hashlib.blake2b(key, digest_size=32).digest()  # clamp to valid key size
    while produced < length:
        block = hashlib.blake2b(
            nonce + counter.to_bytes(8, "big"), key=key, digest_size=64
        ).digest()
        blocks.append(block)
        produced += len(block)
        counter += 1
    return b"".join(blocks)[:length]
