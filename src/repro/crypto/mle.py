"""Message-locked encryption schemes (§2.2).

An MLE scheme derives each chunk's encryption key from the chunk itself so
that identical plaintext chunks encrypt to identical ciphertext chunks and
remain deduplicable:

* :class:`ConvergentEncryption` — key = H(chunk), the classic instantiation
  ([22]); vulnerable to offline brute force on predictable chunks.
* :class:`ServerAidedMLE` — key = KeyManager(fingerprint), the DupLESS
  construction ([12]); brute force requires online queries, which the
  manager rate-limits.

Both are *deterministic*, which is precisely the property the paper's
frequency-analysis attacks exploit. The MinHash defense (§6.1) swaps the
per-chunk key for a per-segment key; see :mod:`repro.defenses.minhash`.

Each encrypted chunk carries a *tag* (fingerprint of the ciphertext) used as
the deduplication identity, and every client keeps a :class:`KeyRecipe`
mapping chunk indices to keys for later decryption. Key recipes are
themselves encrypted under the user's own secret key via the conventional
:class:`~repro.crypto.cipher.BlockCipher` (the adversary never sees them,
per the threat model in §3.3).
"""

from __future__ import annotations

import json
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.chunking.fingerprint import Fingerprinter
from repro.common.errors import IntegrityError
from repro.crypto.cipher import BlockCipher
from repro.crypto.keymanager import KeyManager
from repro.crypto.primitives import hkdf_expand, sha256


@dataclass(frozen=True)
class CiphertextChunk:
    """An encrypted chunk as uploaded to deduplicated storage.

    Attributes:
        data: the ciphertext bytes.
        tag: fingerprint of ``data``; the storage system deduplicates by tag.
    """

    data: bytes
    tag: bytes

    @property
    def size(self) -> int:
        return len(self.data)


class MLEScheme(ABC):
    """Common interface for message-locked encryption schemes."""

    def __init__(self, fingerprinter: Fingerprinter | None = None):
        self.fingerprinter = fingerprinter or Fingerprinter("sha256")
        self._cipher = BlockCipher()

    @abstractmethod
    def derive_key(self, plaintext: bytes) -> bytes:
        """Derive the (deterministic) encryption key for a plaintext chunk."""

    def encrypt_chunk(self, plaintext: bytes) -> tuple[CiphertextChunk, bytes]:
        """Encrypt one chunk; returns the ciphertext chunk and its key."""
        key = self.derive_key(plaintext)
        return self.encrypt_with_key(plaintext, key), key

    def encrypt_with_key(self, plaintext: bytes, key: bytes) -> CiphertextChunk:
        """Encrypt ``plaintext`` under an externally supplied key.

        Used by MinHash encryption, where the key comes from the segment
        rather than the chunk itself.
        """
        cipher_key = hkdf_expand(key, b"chunk-cipher")
        data = self._cipher.encrypt(cipher_key, plaintext)
        return CiphertextChunk(data=data, tag=self.fingerprinter(data))

    def decrypt_chunk(self, chunk: CiphertextChunk, key: bytes) -> bytes:
        """Decrypt a ciphertext chunk, verifying its tag first."""
        if self.fingerprinter(chunk.data) != chunk.tag:
            raise IntegrityError("ciphertext tag mismatch")
        cipher_key = hkdf_expand(key, b"chunk-cipher")
        return self._cipher.decrypt(cipher_key, chunk.data)


class ConvergentEncryption(MLEScheme):
    """Convergent encryption: the key is the hash of the chunk content."""

    def derive_key(self, plaintext: bytes) -> bytes:
        return sha256(b"convergent-key:" + plaintext)


class ServerAidedMLE(MLEScheme):
    """DupLESS-style server-aided MLE.

    The key is derived by the :class:`~repro.crypto.keymanager.KeyManager`
    from the chunk *fingerprint* (not the raw content), so the chunk itself
    never leaves the client.
    """

    def __init__(
        self,
        key_manager: KeyManager,
        fingerprinter: Fingerprinter | None = None,
    ):
        super().__init__(fingerprinter)
        self.key_manager = key_manager

    def derive_key(self, plaintext: bytes) -> bytes:
        return self.key_manager.derive_key(self.fingerprinter(plaintext))


@dataclass
class KeyRecipe:
    """Per-user list of chunk keys, in the chunks' original logical order.

    Persisted only in encrypted form (:meth:`seal`) under the user's own
    secret key, matching the threat model's assumption that the adversary
    cannot read recipes.
    """

    keys: list[bytes] = field(default_factory=list)

    def add(self, key: bytes) -> None:
        self.keys.append(key)

    def __len__(self) -> int:
        return len(self.keys)

    def seal(self, user_secret: bytes) -> bytes:
        """Encrypt the recipe under ``user_secret`` (conventional encryption)."""
        payload = json.dumps([key.hex() for key in self.keys]).encode()
        return BlockCipher().encrypt(
            hkdf_expand(user_secret, b"key-recipe"), payload
        )

    @classmethod
    def unseal(cls, sealed: bytes, user_secret: bytes) -> "KeyRecipe":
        """Decrypt a sealed recipe; raises :class:`IntegrityError` on a wrong
        key or corrupted ciphertext."""
        payload = BlockCipher().decrypt(
            hkdf_expand(user_secret, b"key-recipe"), sealed
        )
        try:
            hex_keys = json.loads(payload.decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise IntegrityError("key recipe payload corrupt") from exc
        return cls(keys=[bytes.fromhex(item) for item in hex_keys])
