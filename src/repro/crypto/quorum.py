"""Quorum key management for server-aided MLE (§8, Duan [24]).

DupLESS's single key manager is a single point of failure (and a single
point of compromise). Duan proposes a quorum: key derivation is distributed
over *n* key-manager replicas with a *k*-of-*n* threshold, so a client can
tolerate ``n - k`` replica failures while no coalition smaller than *k*
can answer key queries on its own.

Construction used here: each replica derives the per-fingerprint key
``K = HMAC(master, fingerprint)`` and a *deterministic* Shamir split of K
(the split's polynomial coefficients are seeded from
``HMAC(master, "coeff" || fingerprint)``, so all replicas produce the same
share set without coordinating), then returns only its own share. Any *k*
responses combine to K by Lagrange interpolation; fewer reveal nothing
beyond Shamir's guarantee. (HMAC is not linear, so responses cannot simply
be HMACs under shares of the master secret — they must be shares of the
derived key itself.) Each replica keeps DupLESS-style rate limiting, so
online brute force still has to beat *k* limiters at once.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.common.errors import ConfigurationError, RateLimitExceeded
from repro.common.rng import derive_seed
from repro.crypto.keymanager import RateLimiter
from repro.crypto.primitives import hmac_digest
from repro.crypto.secretsharing import Share, combine_shares, split_secret


@dataclass(frozen=True)
class KeyShareResponse:
    """One replica's response to a key-derivation query."""

    replica_index: int
    share: Share


class KeyManagerReplica:
    """One member of the key-manager quorum.

    Every replica holds the same ``master_secret`` sealed inside it (in a
    deployment this would live in an HSM; what matters for the protocol is
    that *responses*, not the secret, leave the replica) and a fixed
    replica index. For a queried fingerprint the replica derives:

    * the key ``K = HMAC(master, fingerprint)``;
    * a *deterministic* Shamir split of K (polynomial coefficients seeded
      from ``HMAC(master, "coeff" || fingerprint)``), identical across
      replicas without coordination;
    * and returns only share ``index`` of that split.

    Thus any k responses combine to K, while fewer than k reveal nothing
    beyond Shamir's guarantee, and a compromised replica exposes only its
    own share stream.
    """

    def __init__(
        self,
        master_secret: bytes,
        index: int,
        threshold: int,
        num_replicas: int,
        rate_limiter: RateLimiter | None = None,
    ):
        if len(master_secret) < 16:
            raise ConfigurationError("master secret must be at least 16 bytes")
        if not 1 <= index <= num_replicas:
            raise ConfigurationError("replica index out of range")
        if not 1 <= threshold <= num_replicas:
            raise ConfigurationError("require 1 <= threshold <= num_replicas")
        self._master = master_secret
        self.index = index
        self.threshold = threshold
        self.num_replicas = num_replicas
        self._limiter = rate_limiter
        self.queries_served = 0
        self.available = True

    def derive_share(self, fingerprint: bytes) -> KeyShareResponse:
        """Answer a key query with this replica's share of the key."""
        if not self.available:
            raise ConnectionError(f"replica {self.index} is down")
        if self._limiter is not None and not self._limiter.try_acquire():
            raise RateLimitExceeded(
                f"replica {self.index} rate limit exceeded"
            )
        self.queries_served += 1
        key = hmac_digest(self._master, b"mle-key:" + fingerprint)
        seed = derive_seed(
            int.from_bytes(
                hmac_digest(self._master, b"coeff:" + fingerprint)[:8], "big"
            ),
            "quorum-coefficients",
        )
        shares = split_secret(
            key,
            threshold=self.threshold,
            num_shares=self.num_replicas,
            rng=random.Random(seed),
        )
        return KeyShareResponse(
            replica_index=self.index, share=shares[self.index - 1]
        )


class QuorumKeyManager:
    """Client-side combiner over a quorum of key-manager replicas.

    Drop-in for :class:`~repro.crypto.keymanager.KeyManager` in
    server-aided MLE: :meth:`derive_key` queries live replicas until it
    holds ``threshold`` shares, tolerating up to ``n - k`` failures.
    """

    def __init__(self, replicas: list[KeyManagerReplica]):
        if not replicas:
            raise ConfigurationError("need at least one replica")
        thresholds = {replica.threshold for replica in replicas}
        if len(thresholds) != 1:
            raise ConfigurationError("replicas disagree on the threshold")
        self.replicas = list(replicas)
        self.threshold = replicas[0].threshold

    @classmethod
    def create(
        cls,
        master_secret: bytes,
        threshold: int,
        num_replicas: int,
        rate_limiter_factory=None,
    ) -> "QuorumKeyManager":
        """Provision a fresh quorum."""
        replicas = [
            KeyManagerReplica(
                master_secret,
                index=index,
                threshold=threshold,
                num_replicas=num_replicas,
                rate_limiter=(
                    rate_limiter_factory() if rate_limiter_factory else None
                ),
            )
            for index in range(1, num_replicas + 1)
        ]
        return cls(replicas)

    def derive_key(self, fingerprint: bytes) -> bytes:
        """Collect ``threshold`` shares from live replicas and combine."""
        responses: list[KeyShareResponse] = []
        errors: list[Exception] = []
        for replica in self.replicas:
            if len(responses) == self.threshold:
                break
            try:
                responses.append(replica.derive_share(fingerprint))
            except (ConnectionError, RateLimitExceeded) as exc:
                errors.append(exc)
        if len(responses) < self.threshold:
            raise ConfigurationError(
                f"quorum unavailable: got {len(responses)} of "
                f"{self.threshold} required shares ({len(errors)} failures)"
            )
        return combine_shares([response.share for response in responses])

    def live_replicas(self) -> int:
        return sum(1 for replica in self.replicas if replica.available)
