"""MinHash encryption (§6.1, Algorithm 4).

Instead of deriving one key per chunk (deterministic MLE), MinHash
encryption derives one key per *segment* from the minimum chunk fingerprint
in the segment. By Broder's theorem, highly similar segments — the common
case across backups of the same source — share their minimum fingerprint
with high probability and therefore encrypt identical chunks identically,
preserving deduplication. Occasionally, similar segments have different
minimum fingerprints and the same plaintext chunk yields *different*
ciphertext chunks: that slight non-determinism is the defense, because it
perturbs the ciphertext frequency ranking that frequency analysis relies on.

This module implements the content-level scheme used by the storage
prototype and integration tests: real segment keys (locally derived or from
the DupLESS key manager) and real chunk encryption. The fingerprint-level
simulation used in the trace-driven evaluation lives in
:mod:`repro.defenses.pipeline` (§7.1's methodology).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chunking.fingerprint import Fingerprinter
from repro.crypto.keymanager import KeyManager
from repro.crypto.mle import CiphertextChunk, KeyRecipe, MLEScheme
from repro.crypto.primitives import sha256
from repro.defenses.segmentation import Segment, SegmentationSpec, segment_stream


@dataclass
class MinHashSegmentResult:
    """Output for one segment: ciphertexts in input order plus the key."""

    segment: Segment
    minimum_fingerprint: bytes
    key: bytes
    ciphertexts: list[CiphertextChunk]


class MinHashEncryptor:
    """Encrypts chunk streams with per-segment MinHash-derived keys.

    Args:
        scheme: the underlying MLE scheme, used for its cipher/tag plumbing
            (``encrypt_with_key``); its per-chunk key derivation is bypassed.
        key_manager: optional DupLESS-style manager; when given, segment keys
            are requested from it (one query per *segment*, which is how
            MinHash encryption also slashes server-aided MLE's key-generation
            overhead [53]). Without it, keys are derived locally from the
            minimum fingerprint.
        spec: segment size bounds.
    """

    def __init__(
        self,
        scheme: MLEScheme,
        key_manager: KeyManager | None = None,
        spec: SegmentationSpec | None = None,
        fingerprinter: Fingerprinter | None = None,
    ):
        self.scheme = scheme
        self.key_manager = key_manager
        self.spec = spec or SegmentationSpec()
        self.fingerprinter = fingerprinter or scheme.fingerprinter

    def segment_key(self, minimum_fingerprint: bytes) -> bytes:
        """Derive the key for a segment from its minimum fingerprint."""
        if self.key_manager is not None:
            return self.key_manager.derive_key(minimum_fingerprint)
        return sha256(b"minhash-segment-key:" + minimum_fingerprint)

    def encrypt_stream(
        self, plaintext_chunks: list[bytes]
    ) -> tuple[list[MinHashSegmentResult], KeyRecipe]:
        """Encrypt a logical chunk stream segment by segment.

        Returns per-segment results (ciphertexts in the original chunk
        order) and the flat key recipe for decryption.
        """
        fingerprints = [self.fingerprinter(chunk) for chunk in plaintext_chunks]
        sizes = [len(chunk) for chunk in plaintext_chunks]
        segments = segment_stream(fingerprints, sizes, self.spec)
        results: list[MinHashSegmentResult] = []
        recipe = KeyRecipe()
        for segment in segments:
            segment_fps = fingerprints[segment.start : segment.end]
            minimum = min(segment_fps)
            key = self.segment_key(minimum)
            ciphertexts = [
                self.scheme.encrypt_with_key(plaintext_chunks[index], key)
                for index in range(segment.start, segment.end)
            ]
            for _ in range(len(segment)):
                recipe.add(key)
            results.append(
                MinHashSegmentResult(
                    segment=segment,
                    minimum_fingerprint=minimum,
                    key=key,
                    ciphertexts=ciphertexts,
                )
            )
        return results, recipe

    def decrypt_stream(
        self,
        ciphertexts: list[CiphertextChunk],
        recipe: KeyRecipe,
    ) -> list[bytes]:
        """Decrypt a chunk stream with its key recipe."""
        return [
            self.scheme.decrypt_chunk(chunk, key)
            for chunk, key in zip(ciphertexts, recipe.keys)
        ]
