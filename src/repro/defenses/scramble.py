"""Scrambling (§6.2, Algorithm 5).

Scrambling shuffles the chunk order *within each segment* before the chunks
are encrypted and uploaded, so the adversary's view of neighbor
co-occurrence no longer reflects plaintext chunk locality — the signal the
locality-based attack feeds on. File recipes keep the original order, so
restores are unaffected, and because reordering happens within segments
(smaller than storage containers), the on-disk chunk layout barely changes.

The paper's algorithm builds the scrambled segment by appending each chunk
to either the front or the back of a deque by a random bit. We implement
that exactly, plus a Fisher–Yates full shuffle as an ablation alternative
(benchmarked in ``bench_ablation_scramble``).
"""

from __future__ import annotations

import random
from collections import deque
from typing import Sequence, TypeVar

from repro.common.errors import ConfigurationError
from repro.datasets.model import Backup
from repro.defenses.segmentation import Segment

T = TypeVar("T")

DEQUE = "deque"
FISHER_YATES = "fisher-yates"
_MODES = (DEQUE, FISHER_YATES)


def scramble_indices(
    length: int, rng: random.Random, mode: str = DEQUE
) -> list[int]:
    """Return a scrambled permutation of ``range(length)``.

    ``deque`` is the paper's Algorithm 5: each element goes to the front of
    the output when the random draw is odd, else to the back.
    ``fisher-yates`` is a uniform random permutation (ablation).
    """
    if mode == DEQUE:
        output: deque[int] = deque()
        for index in range(length):
            if rng.getrandbits(1):
                output.appendleft(index)
            else:
                output.append(index)
        return list(output)
    if mode == FISHER_YATES:
        order = list(range(length))
        rng.shuffle(order)
        return order
    raise ConfigurationError(f"unknown scramble mode {mode!r}; use one of {_MODES}")


def scramble_segmented(
    items: Sequence[T],
    segments: Sequence[Segment],
    rng: random.Random,
    mode: str = DEQUE,
) -> list[T]:
    """Scramble ``items`` independently within each segment.

    ``segments`` must tile ``items`` exactly (contiguous, in order); the
    result preserves the multiset of each segment and the segment order.
    """
    expected = 0
    output: list[T] = []
    for segment in segments:
        if segment.start != expected:
            raise ConfigurationError("segments must tile the stream contiguously")
        expected = segment.end
        order = scramble_indices(len(segment), rng, mode)
        output.extend(items[segment.start + offset] for offset in order)
    if expected != len(items):
        raise ConfigurationError("segments do not cover the whole stream")
    return output


def scramble_backup(
    backup: Backup,
    segments: Sequence[Segment],
    rng: random.Random,
    mode: str = DEQUE,
) -> Backup:
    """Return a new backup with each segment's chunk order scrambled."""
    order: list[int] = []
    expected = 0
    for segment in segments:
        if segment.start != expected:
            raise ConfigurationError("segments must tile the stream contiguously")
        expected = segment.end
        permutation = scramble_indices(len(segment), rng, mode)
        order.extend(segment.start + offset for offset in permutation)
    if expected != len(backup):
        raise ConfigurationError("segments do not cover the whole stream")
    return Backup(
        label=backup.label,
        fingerprints=[backup.fingerprints[i] for i in order],
        sizes=[backup.sizes[i] for i in order],
    )
