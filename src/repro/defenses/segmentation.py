"""Variable-size segmentation (§7.1, following Lillibridge et al. [45]).

Both defenses operate on *segments*: non-overlapping sub-sequences of
adjacent chunks. Boundaries are content-defined at segment granularity — a
segment ends at a chunk whose fingerprint satisfies a modulus test — so the
same chunk content produces the same segmentation across backups, which is
what lets MinHash encryption keep most duplicate chunks deduplicable.

The paper's configuration: 512 KB minimum, 1 MB average, 2 MB maximum
segment size. The divisor of the modulus test sets the average *chunk count*
per segment, so it is derived from the target average segment size and the
stream's mean chunk size.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.common.units import KiB, MiB
from repro.datasets.model import Backup


@dataclass(frozen=True)
class SegmentationSpec:
    """Segment size bounds (bytes). Defaults follow the paper (§7.1)."""

    min_bytes: int = 512 * KiB
    avg_bytes: int = 1 * MiB
    max_bytes: int = 2 * MiB

    def __post_init__(self) -> None:
        if not 0 < self.min_bytes <= self.avg_bytes <= self.max_bytes:
            raise ConfigurationError(
                "require 0 < min_bytes <= avg_bytes <= max_bytes"
            )

    @classmethod
    def scaled(cls, avg_chunk_size: int = 8192) -> "SegmentationSpec":
        """Bench-scale segmentation: 8/16/32 chunks per segment.

        The paper's 512 KB/1 MB/2 MB segments hold ~64–256 chunks and are
        *small* relative to the duplicated objects in its multi-TB datasets.
        Our reduced-scale workloads have proportionally smaller files and
        duplicated artifacts, so benchmarks scale the segment size down with
        them; otherwise one segment spans several files and MinHash
        encryption loses far more deduplication than it would at full scale
        (see EXPERIMENTS.md, Fig. 11 notes).
        """
        return cls(
            min_bytes=8 * avg_chunk_size,
            avg_bytes=16 * avg_chunk_size,
            max_bytes=32 * avg_chunk_size,
        )

    def divisor_for(self, mean_chunk_size: float) -> int:
        """Divisor whose per-chunk boundary probability yields the target
        average segment size for the given mean chunk size."""
        if mean_chunk_size <= 0:
            raise ConfigurationError("mean_chunk_size must be positive")
        return max(2, round(self.avg_bytes / mean_chunk_size))


@dataclass(frozen=True)
class Segment:
    """A half-open chunk-index range [start, end) within a backup stream."""

    start: int
    end: int

    def __len__(self) -> int:
        return self.end - self.start


def segment_stream(
    fingerprints: list[bytes],
    sizes: list[int],
    spec: SegmentationSpec | None = None,
    divisor: int | None = None,
) -> list[Segment]:
    """Partition a chunk stream into segments.

    A boundary is placed at the end of chunk *i* when (i) the segment
    holds at least ``min_bytes`` and the chunk's fingerprint value modulo
    ``divisor`` equals ``divisor - 1`` (the paper's "constant −1"), or
    (ii) including the chunk pushed the segment to ``max_bytes`` or beyond.
    Consequently segments never exceed ``max_bytes`` by more than one chunk.
    """
    spec = spec or SegmentationSpec()
    if len(fingerprints) != len(sizes):
        raise ConfigurationError("fingerprints and sizes must align")
    if not fingerprints:
        return []
    if divisor is None:
        mean_chunk = sum(sizes) / len(sizes)
        divisor = spec.divisor_for(mean_chunk)
    target_residue = divisor - 1

    segments: list[Segment] = []
    start = 0
    segment_bytes = 0
    for index, fingerprint in enumerate(fingerprints):
        segment_bytes += sizes[index]
        fingerprint_value = int.from_bytes(fingerprint, "big")
        at_boundary = (
            segment_bytes >= spec.min_bytes
            and fingerprint_value % divisor == target_residue
        )
        if at_boundary or segment_bytes >= spec.max_bytes:
            segments.append(Segment(start, index + 1))
            start = index + 1
            segment_bytes = 0
    if start < len(fingerprints):
        segments.append(Segment(start, len(fingerprints)))
    return segments


def segment_backup(
    backup: Backup,
    spec: SegmentationSpec | None = None,
    divisor: int | None = None,
) -> list[Segment]:
    """:func:`segment_stream` over a :class:`~repro.datasets.model.Backup`."""
    return segment_stream(backup.fingerprints, backup.sizes, spec, divisor)
