"""Defenses against frequency analysis (§6) and the evaluation pipelines.

* :mod:`repro.defenses.segmentation` — variable-size segmentation shared by
  both defenses.
* :mod:`repro.defenses.minhash` — MinHash encryption (Algorithm 4), content
  level.
* :mod:`repro.defenses.scramble` — scrambling (Algorithm 5).
* :mod:`repro.defenses.obfuscate` — tunable frequency-obfuscated encryption
  (the journal extension's relaxed MLE with a leakage/storage knob).
* :mod:`repro.defenses.pipeline` — fingerprint-level defense pipelines used
  in the trace-driven evaluation (§7.1): MLE, MinHash, Scramble, Combined,
  Obfuscate.
"""

from repro.defenses.minhash import MinHashEncryptor, MinHashSegmentResult
from repro.defenses.obfuscate import (
    DEFAULT_VARIANTS,
    FrequencyObfuscator,
    frequency_kld,
    parse_scheme,
    scheme_spec,
)
from repro.defenses.pipeline import (
    DefensePipeline,
    DefenseScheme,
    EncryptedBackup,
    EncryptedSeries,
    padded_size,
)
from repro.defenses.scramble import (
    DEQUE,
    FISHER_YATES,
    scramble_backup,
    scramble_indices,
    scramble_segmented,
)
from repro.defenses.segmentation import (
    Segment,
    SegmentationSpec,
    segment_backup,
    segment_stream,
)

__all__ = [
    "MinHashEncryptor",
    "MinHashSegmentResult",
    "DEFAULT_VARIANTS",
    "FrequencyObfuscator",
    "frequency_kld",
    "parse_scheme",
    "scheme_spec",
    "DefensePipeline",
    "DefenseScheme",
    "EncryptedBackup",
    "EncryptedSeries",
    "padded_size",
    "DEQUE",
    "FISHER_YATES",
    "scramble_backup",
    "scramble_indices",
    "scramble_segmented",
    "Segment",
    "SegmentationSpec",
    "segment_backup",
    "segment_stream",
]
