"""Tunable frequency-obfuscated encryption (the journal extension's
relaxed MLE; arXiv 1904.05736, PAPERS.md).

Exact MLE maps each plaintext chunk to exactly one ciphertext, so the
adversary's COUNT pass recovers the true frequency distribution.  The
relaxation here gives every plaintext chunk ``t`` ciphertext *variants*
``H("obf" ∥ j ∥ fp)`` for ``j ∈ [0, t)`` and spreads the chunk's
occurrences across them with a **keyed balance function**: the k-th
occurrence of chunk ``c`` within one backup encrypts to variant
``(offset_K(c) + k) mod t``, where ``offset_K`` is a keyed starting
phase.  Round-robin assignment splits a true count ``f`` into per-variant
counts of ``⌈f/t⌉`` or ``⌊f/t⌋`` — the flattest split possible for a
given ``t`` — so the observed frequency distribution moves toward
uniform as ``t`` grows and frequency analysis loses its signal.

The price is deduplication: a chunk occurring ``f`` times stores
``min(f, t)`` distinct ciphertexts instead of one, so the dedup ratio
degrades monotonically (and gracefully) in ``t``.  Encryption is a pure
function of the plaintext stream — the occurrence counter resets per
backup — so identical uploads still produce identical ciphertexts:
cross-user deduplication survives at the variant level, and restore
keeps the exact-ciphertext-map round-trip guarantee of the other
schemes.  ``t = 1`` degenerates to deterministic one-to-one encryption
(MLE in a different hash domain).

:func:`frequency_kld` is the flatness metric the defense frontier and
the property tests share: the KL divergence of an observed ciphertext
frequency distribution from the uniform distribution over its support
(0 = perfectly flat; larger = more analyzable skew).
"""

from __future__ import annotations

import hashlib
import math
from collections import Counter
from typing import Iterable

from repro.common.errors import ConfigurationError

#: Default variant count of the ``obfuscate`` scheme (the smallest knob
#: value that actually obfuscates; ``t = 1`` is deterministic).
DEFAULT_VARIANTS = 2


def parse_scheme(spec) -> tuple["DefenseScheme", int]:  # noqa: F821
    """Resolve a scheme spec to ``(DefenseScheme, obfuscation variants)``.

    Args:
        spec: a :class:`~repro.defenses.pipeline.DefenseScheme`, a plain
            scheme name (``"mle"``, ``"obfuscate"``, …), or a
            parameterized obfuscation spec ``"obfuscate:t"`` (e.g.
            ``"obfuscate:4"``).

    Returns:
        The scheme plus its variant count — :data:`DEFAULT_VARIANTS` for
        a bare ``"obfuscate"``, 1 for every non-obfuscating scheme.

    Raises:
        ConfigurationError: unknown scheme name or a bad variant count.
    """
    from repro.defenses.pipeline import DefenseScheme

    if isinstance(spec, DefenseScheme):
        variants = DEFAULT_VARIANTS if spec is DefenseScheme.OBFUSCATE else 1
        return spec, variants
    name, _, knob = str(spec).partition(":")
    try:
        scheme = DefenseScheme(name)
    except ValueError:
        raise ConfigurationError(
            f"unknown scheme {name!r}; choose from "
            f"{sorted(s.value for s in DefenseScheme)}"
        ) from None
    if not knob:
        return parse_scheme(scheme)
    if scheme is not DefenseScheme.OBFUSCATE:
        raise ConfigurationError(
            f"scheme {name!r} takes no parameter (only obfuscate:t does)"
        )
    try:
        variants = int(knob)
    except ValueError:
        raise ConfigurationError(
            f"bad obfuscation variant count {knob!r}; expected an integer"
        ) from None
    if variants < 1:
        raise ConfigurationError("obfuscation variant count must be >= 1")
    return scheme, variants


def scheme_spec(scheme, variants: int = 1) -> str:
    """The canonical CLI/report spelling of a (scheme, variants) pair."""
    from repro.defenses.pipeline import DefenseScheme

    scheme = DefenseScheme(scheme)
    if scheme is DefenseScheme.OBFUSCATE:
        return f"{scheme.value}:{variants}"
    return scheme.value


class FrequencyObfuscator:
    """The keyed balance function and its variant fingerprints.

    Args:
        variants: the knob ``t`` — ciphertext variants per plaintext
            chunk (``1`` = deterministic).
        seed: keys the balance function's starting phase.  The variant
            *fingerprints* are seed-independent (content-derived, like
            MLE), so pipelines with different balance keys still
            deduplicate against each other's ciphertexts.
    """

    def __init__(self, variants: int = DEFAULT_VARIANTS, seed: int = 0):
        if variants < 1:
            raise ConfigurationError(
                "obfuscation variant count must be >= 1"
            )
        self.variants = variants
        self.seed = seed
        self._phase_key = b"obf-balance|" + seed.to_bytes(
            8, "big", signed=True
        )

    def offset(self, plaintext_fp: bytes) -> int:
        """The keyed starting phase of one chunk's round-robin."""
        if self.variants == 1:
            return 0
        digest = hashlib.sha256(self._phase_key + plaintext_fp).digest()
        return int.from_bytes(digest[:4], "big") % self.variants

    def assign(self, plaintext_fp: bytes, occurrence: int) -> int:
        """Variant index of a chunk's ``occurrence``-th appearance."""
        return (self.offset(plaintext_fp) + occurrence) % self.variants

    @staticmethod
    def variant_fingerprint(
        plaintext_fp: bytes, variant: int, length: int
    ) -> bytes:
        """Ciphertext fingerprint of one (chunk, variant) pair."""
        prefix = b"obf|" + variant.to_bytes(4, "big") + b"|"
        return hashlib.sha256(prefix + plaintext_fp).digest()[:length]


def frequency_kld(fingerprints: Iterable[bytes]) -> float:
    """KL divergence of a stream's frequency distribution from uniform.

    ``D(P ‖ U) = log₂ N − H(P)`` over the ``N`` distinct fingerprints
    observed — the flatness metric of the obfuscation frontier: 0 bits
    for a perfectly flat stream, growing with frequency skew.  Splitting
    any chunk's count into near-equal variant shares (what the balance
    function does) can only move the distribution toward uniform, so the
    metric is non-increasing as the knob ``t`` grows.

    Returns:
        The divergence in bits (0.0 for an empty stream).
    """
    counts = Counter(fingerprints)
    total = sum(counts.values())
    if total == 0 or len(counts) <= 1:
        return 0.0
    entropy = 0.0
    for count in counts.values():
        probability = count / total
        entropy -= probability * math.log2(probability)
    return math.log2(len(counts)) - entropy
