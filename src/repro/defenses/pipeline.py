"""Defense pipelines: plaintext backup streams → adversary-visible
ciphertext streams, with ground truth for evaluation.

This is the trace-driven methodology of §7.1. The datasets carry
fingerprints rather than content, so encryption is simulated exactly as the
paper does:

* **MLE** (baseline): ciphertext fingerprint = H("mle" ∥ plaintext fp),
  a fixed bijection — deterministic encryption.
* **MinHash**: segment the stream, compute the segment's minimum
  fingerprint *h*, then ciphertext fingerprint = truncate(SHA-256(h ∥
  plaintext fp)). Identical plaintext chunks under the same *h* deduplicate;
  under different *h* they diverge.
* **Scramble**: MLE encryption, but the upload order is scrambled within
  each segment (Algorithm 5) — an ablation isolating order perturbation.
* **Combined**: scrambling inside each segment followed by MinHash
  encryption — the paper's recommended defense.
* **Obfuscate**: tunable frequency-obfuscated encryption (the journal
  extension's relaxed MLE): each plaintext chunk maps to one of ``t``
  ciphertext variants chosen by a keyed balance function, flattening the
  adversary's COUNT distribution as ``t`` grows while the dedup ratio
  degrades gracefully (see :mod:`repro.defenses.obfuscate`).

Ciphertext sizes are plaintext sizes padded to 16-byte cipher blocks, which
is what the advanced attack observes.

Every encrypted backup records the ground-truth map (ciphertext fingerprint
→ plaintext fingerprint) used solely by the evaluator to score attacks.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from enum import Enum

from repro.common.errors import ConfigurationError
from repro.common.rng import rng_from
from repro.crypto.cipher import BLOCK_SIZE
from repro.datasets.model import Backup, BackupSeries
from repro.defenses.obfuscate import (
    DEFAULT_VARIANTS,
    FrequencyObfuscator,
    parse_scheme,
)
from repro.defenses.scramble import DEQUE, scramble_indices
from repro.defenses.segmentation import SegmentationSpec, segment_stream


class DefenseScheme(str, Enum):
    """Which encryption pipeline protects the backup stream."""

    MLE = "mle"
    MINHASH = "minhash"
    SCRAMBLE = "scramble"
    COMBINED = "combined"
    OBFUSCATE = "obfuscate"


@dataclass
class EncryptedBackup:
    """Adversary view of one backup plus evaluation ground truth.

    ``ciphertext`` is the *upload-order* stream the adversary taps (with
    scrambling, the scrambled order). ``restore_order`` is the same
    ciphertext stream in the original logical order — what a file-recipe-
    driven restore fetches — used by the restore-locality simulation.
    """

    label: str
    ciphertext: Backup
    truth: dict[bytes, bytes] = field(default_factory=dict)
    num_segments: int = 0
    restore_order: Backup | None = None

    @property
    def unique_ciphertext_chunks(self) -> int:
        return len(set(self.ciphertext.fingerprints))

    def logical_ciphertext(self) -> Backup:
        """Ciphertext stream in logical (restore) order."""
        if self.restore_order is not None:
            return self.restore_order
        return self.ciphertext


@dataclass
class EncryptedSeries:
    """An encrypted backup series with its plaintext source retained for
    auxiliary-information experiments."""

    name: str
    scheme: DefenseScheme
    plaintext: BackupSeries
    backups: list[EncryptedBackup] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.backups)

    def __getitem__(self, index: int) -> EncryptedBackup:
        return self.backups[index]

    def ciphertext_series(self) -> BackupSeries:
        """The ciphertext stream as a plain series (for storage studies)."""
        return BackupSeries(
            name=f"{self.name}-{self.scheme.value}",
            backups=[backup.ciphertext for backup in self.backups],
            chunking=self.plaintext.chunking,
        )


def padded_size(plaintext_size: int, block_size: int = BLOCK_SIZE) -> int:
    """Ciphertext size of a chunk: PKCS#7 padding to full blocks."""
    return (plaintext_size // block_size + 1) * block_size


class DefensePipeline:
    """Encrypts plaintext backup streams under a chosen defense scheme.

    ``scheme`` accepts a :class:`DefenseScheme`, a plain scheme name, or
    a parameterized obfuscation spec (``"obfuscate:4"``); a spec's knob
    overrides ``obfuscate_variants``.
    """

    def __init__(
        self,
        scheme: DefenseScheme | str = DefenseScheme.MLE,
        segmentation: SegmentationSpec | None = None,
        seed: int = 0,
        scramble_mode: str = DEQUE,
        fingerprint_bytes: int | None = None,
        obfuscate_variants: int = DEFAULT_VARIANTS,
    ):
        self.scheme, spec_variants = parse_scheme(scheme)
        self.segmentation = segmentation or SegmentationSpec()
        self.seed = seed
        self.scramble_mode = scramble_mode
        self.fingerprint_bytes = fingerprint_bytes
        if self.scheme is DefenseScheme.OBFUSCATE:
            if isinstance(scheme, str) and ":" in scheme:
                obfuscate_variants = spec_variants
            self.obfuscate_variants = obfuscate_variants
        else:
            self.obfuscate_variants = 1
        self._obfuscator = FrequencyObfuscator(
            variants=self.obfuscate_variants, seed=seed
        )

    # -- fingerprint-level encryption ---------------------------------------

    def _output_length(self, plaintext_fp: bytes) -> int:
        if self.fingerprint_bytes is not None:
            return self.fingerprint_bytes
        return len(plaintext_fp)

    @staticmethod
    def _mle_fingerprint(plaintext_fp: bytes, length: int) -> bytes:
        return hashlib.sha256(b"mle|" + plaintext_fp).digest()[:length]

    @staticmethod
    def _minhash_fingerprint(
        minimum_fp: bytes, plaintext_fp: bytes, length: int
    ) -> bytes:
        # §7.1: concatenate the segment minimum with the chunk fingerprint,
        # hash with SHA-256, truncate to the dataset's fingerprint width.
        return hashlib.sha256(minimum_fp + plaintext_fp).digest()[:length]

    @staticmethod
    def _record_truth(
        truth: dict[bytes, bytes], cipher_fp: bytes, plaintext_fp: bytes
    ) -> None:
        """Record one ground-truth pair, rejecting ciphertext collisions.

        Every encryption path funnels through this one check, so a
        truncated fingerprint width that maps two distinct plaintext
        chunks to the same ciphertext fingerprint fails identically
        whatever the scheme (or scheme order) — the restore round-trip
        guarantee requires ``truth`` to stay a function.
        """
        existing = truth.get(cipher_fp)
        if existing is not None and existing != plaintext_fp:
            raise ConfigurationError(
                "ciphertext fingerprint collision; increase "
                "fingerprint_bytes"
            )
        truth[cipher_fp] = plaintext_fp

    def encrypt_backup(self, backup: Backup, backup_index: int = 0) -> EncryptedBackup:
        """Encrypt one plaintext backup stream."""
        if self.scheme is DefenseScheme.MLE:
            return self._encrypt_plain_mle(backup)
        if self.scheme is DefenseScheme.OBFUSCATE:
            return self._encrypt_obfuscated(backup)
        return self._encrypt_segmented(backup, backup_index)

    def encrypt_series(self, series: BackupSeries) -> EncryptedSeries:
        """Encrypt every backup of a series."""
        encrypted = EncryptedSeries(
            name=series.name, scheme=self.scheme, plaintext=series
        )
        for index, backup in enumerate(series.backups):
            encrypted.backups.append(self.encrypt_backup(backup, index))
        return encrypted

    # -- internals ----------------------------------------------------------

    def _encrypt_plain_mle(self, backup: Backup) -> EncryptedBackup:
        ciphertext = Backup(label=backup.label)
        truth: dict[bytes, bytes] = {}
        cache: dict[bytes, bytes] = {}
        for plaintext_fp, size in zip(backup.fingerprints, backup.sizes):
            cipher_fp = cache.get(plaintext_fp)
            if cipher_fp is None:
                cipher_fp = self._mle_fingerprint(
                    plaintext_fp, self._output_length(plaintext_fp)
                )
                self._record_truth(truth, cipher_fp, plaintext_fp)
                cache[plaintext_fp] = cipher_fp
            ciphertext.append(cipher_fp, padded_size(size))
        return EncryptedBackup(
            label=backup.label, ciphertext=ciphertext, truth=truth
        )

    def _encrypt_obfuscated(self, backup: Backup) -> EncryptedBackup:
        """Relaxed MLE: round-robin each chunk's occurrences over its
        ``t`` keyed variants (see :mod:`repro.defenses.obfuscate`).  The
        occurrence counter resets per backup, so encryption stays a pure
        function of the plaintext stream — identical uploads produce
        identical ciphertexts and cross-user dedup survives per variant.
        """
        ciphertext = Backup(label=backup.label)
        truth: dict[bytes, bytes] = {}
        occurrences: dict[bytes, int] = {}
        variant_cache: dict[tuple[bytes, int], bytes] = {}
        for plaintext_fp, size in zip(backup.fingerprints, backup.sizes):
            occurrence = occurrences.get(plaintext_fp, 0)
            occurrences[plaintext_fp] = occurrence + 1
            variant = self._obfuscator.assign(plaintext_fp, occurrence)
            cipher_fp = variant_cache.get((plaintext_fp, variant))
            if cipher_fp is None:
                cipher_fp = self._obfuscator.variant_fingerprint(
                    plaintext_fp, variant, self._output_length(plaintext_fp)
                )
                self._record_truth(truth, cipher_fp, plaintext_fp)
                variant_cache[(plaintext_fp, variant)] = cipher_fp
            ciphertext.append(cipher_fp, padded_size(size))
        return EncryptedBackup(
            label=backup.label, ciphertext=ciphertext, truth=truth
        )

    def _encrypt_segmented(
        self, backup: Backup, backup_index: int
    ) -> EncryptedBackup:
        segments = segment_stream(
            backup.fingerprints, backup.sizes, self.segmentation
        )
        scramble = self.scheme in (DefenseScheme.SCRAMBLE, DefenseScheme.COMBINED)
        minhash = self.scheme in (DefenseScheme.MINHASH, DefenseScheme.COMBINED)
        rng = rng_from(self.seed, "scramble", backup.label, backup_index)

        ciphertext = Backup(label=backup.label)
        logical = Backup(label=backup.label) if scramble else None
        truth: dict[bytes, bytes] = {}
        for segment in segments:
            indices = list(range(segment.start, segment.end))
            cipher_fps: dict[int, bytes] = {}
            if minhash:
                minimum_fp = min(
                    backup.fingerprints[segment.start : segment.end]
                )
            for index in indices:
                plaintext_fp = backup.fingerprints[index]
                length = self._output_length(plaintext_fp)
                if minhash:
                    cipher_fp = self._minhash_fingerprint(
                        minimum_fp, plaintext_fp, length
                    )
                else:
                    cipher_fp = self._mle_fingerprint(plaintext_fp, length)
                self._record_truth(truth, cipher_fp, plaintext_fp)
                cipher_fps[index] = cipher_fp
                if logical is not None:
                    logical.append(cipher_fp, padded_size(backup.sizes[index]))
            if scramble:
                order = scramble_indices(len(indices), rng, self.scramble_mode)
                indices = [segment.start + offset for offset in order]
            for index in indices:
                ciphertext.append(
                    cipher_fps[index], padded_size(backup.sizes[index])
                )
        return EncryptedBackup(
            label=backup.label,
            ciphertext=ciphertext,
            truth=truth,
            num_segments=len(segments),
            restore_order=logical,
        )
