"""Command-line front-end: ``freqdedup`` (or ``python -m repro``).

Subcommands:

* ``generate`` — build a canonical dataset and save its trace.
* ``stats`` — workload statistics (dedup ratio, frequency skew, locality).
* ``attack`` — run one inference attack against one dataset/scheme.
* ``figure`` — regenerate a paper figure's series and print the table.
* ``storage`` — run the DDFS metadata-access experiment.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import figures as figure_drivers
from repro.analysis.reporting import render_table, save_result
from repro.analysis.workloads import (
    LARGE_CACHE_BYTES,
    SMALL_CACHE_BYTES,
    encrypted_series,
    series_by_name,
)
from repro.attacks import (
    AdvancedLocalityAttack,
    AttackEvaluator,
    BasicAttack,
    LocalityAttack,
    PersistentAdvancedAttack,
    PersistentLocalityAttack,
)
from repro.common.units import format_size
from repro.datasets.stats import (
    adjacency_preservation,
    content_overlap,
    frequency_cdf,
    series_frequencies,
)
from repro.datasets.trace import save_series
from repro.defenses.pipeline import DefenseScheme
from repro.version import __version__

_DATASETS = ("fsl", "vm", "synthetic", "storage-fsl")
_FIGURES = {
    "1": figure_drivers.fig1_frequency_skew,
    "4": figure_drivers.fig4_parameter_impact,
    "5": figure_drivers.fig5_vary_auxiliary,
    "6": figure_drivers.fig6_vary_target,
    "7": figure_drivers.fig7_sliding_window,
    "8": figure_drivers.fig8_known_plaintext,
    "9": figure_drivers.fig9_kpm_vary_auxiliary,
    "10": figure_drivers.fig10_defense_effectiveness,
    "11": figure_drivers.fig11_storage_saving,
    "13": figure_drivers.fig13_metadata_small_cache,
    "14": figure_drivers.fig14_metadata_large_cache,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="freqdedup",
        description=(
            "Reproduction of 'Information Leakage in Encrypted Deduplication "
            "via Frequency Analysis' (DSN 2017)."
        ),
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a dataset trace file")
    gen.add_argument("dataset", choices=_DATASETS)
    gen.add_argument("output", help="trace file path")

    stats = sub.add_parser("stats", help="print workload statistics")
    stats.add_argument("dataset", choices=_DATASETS)

    attack = sub.add_parser("attack", help="run an inference attack")
    attack.add_argument("dataset", choices=_DATASETS)
    attack.add_argument(
        "--attack",
        choices=("basic", "locality", "advanced"),
        default="locality",
    )
    attack.add_argument(
        "--scheme",
        choices=[scheme.value for scheme in DefenseScheme],
        default="mle",
    )
    attack.add_argument("--auxiliary", type=int, default=-2)
    attack.add_argument("--target", type=int, default=-1)
    attack.add_argument("--leakage-rate", type=float, default=0.0)
    attack.add_argument("-u", type=int, default=1)
    attack.add_argument("-v", type=int, default=15)
    attack.add_argument("-w", type=int, default=200_000)
    attack.add_argument(
        "--workdir",
        metavar="DIR",
        help=(
            "keep COUNT state on disk under DIR (the paper's LevelDB "
            "mode); reruns against the same backups skip recounting"
        ),
    )
    attack.add_argument(
        "--backend",
        choices=("kvstore", "sqlite", "sharded"),
        default="kvstore",
        help=(
            "key-value backend for --workdir COUNT state: the WAL-log "
            "kvstore (default), a batched SQLite store, or hash-partitioned "
            "SQLite shards"
        ),
    )
    attack.add_argument(
        "--shards",
        type=int,
        default=4,
        help="shard count for --backend sharded (default 4)",
    )

    figure = sub.add_parser("figure", help="regenerate a paper figure")
    figure.add_argument("number", choices=sorted(_FIGURES, key=int))
    figure.add_argument("--save", metavar="DIR", help="also save under DIR")

    storage = sub.add_parser(
        "storage", help="run the DDFS metadata-access experiment"
    )
    storage.add_argument(
        "--cache", choices=("small", "large"), default="small"
    )

    report = sub.add_parser(
        "report", help="summarize reproduced figures (after running benches)"
    )
    report.add_argument(
        "--results", default="results", help="results directory"
    )
    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    series = series_by_name(args.dataset)
    save_series(series, args.output)
    print(
        f"wrote {args.dataset}: {len(series)} backups, "
        f"{sum(len(b) for b in series.backups)} chunk records -> {args.output}"
    )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    series = series_by_name(args.dataset)
    cdf = frequency_cdf(series_frequencies(series))
    print(f"dataset: {series.name} ({series.chunking} chunking)")
    print(f"backups: {len(series)}  labels: {', '.join(series.labels())}")
    print(
        f"logical: {format_size(series.logical_bytes)}  "
        f"dedup ratio: {series.dedup_ratio():.2f}x"
    )
    print(
        f"frequency skew: {cdf.fraction_below(100):.2%} of unique chunks "
        f"occur <100 times; max frequency {cdf.max_frequency}"
    )
    if len(series) >= 2:
        aux, target = series.backups[-2], series.backups[-1]
        print(
            f"last-pair overlap: {content_overlap(aux, target):.2%}  "
            f"adjacency preservation: {adjacency_preservation(aux, target):.2%}"
        )
    return 0


def _cmd_attack(args: argparse.Namespace) -> int:
    if args.workdir is None and (args.backend != "kvstore" or args.shards != 4):
        print(
            "warning: --backend/--shards have no effect without --workdir",
            file=sys.stderr,
        )
    if args.workdir and args.attack == "basic":
        print(
            "warning: --workdir is ignored for the basic attack",
            file=sys.stderr,
        )
    scheme = DefenseScheme(args.scheme)
    evaluator = AttackEvaluator(encrypted_series(args.dataset, scheme))
    if args.attack == "basic":
        attack = BasicAttack()
    elif args.workdir and args.attack == "locality":
        attack = PersistentLocalityAttack(
            args.workdir,
            u=args.u,
            v=args.v,
            w=args.w,
            backend=args.backend,
            shards=args.shards,
        )
    elif args.workdir:
        attack = PersistentAdvancedAttack(
            args.workdir,
            u=args.u,
            v=args.v,
            w=args.w,
            backend=args.backend,
            shards=args.shards,
        )
    elif args.attack == "locality":
        attack = LocalityAttack(u=args.u, v=args.v, w=args.w)
    else:
        attack = AdvancedLocalityAttack(u=args.u, v=args.v, w=args.w)
    report = evaluator.run(
        attack,
        auxiliary=args.auxiliary,
        target=args.target,
        leakage_rate=args.leakage_rate,
    )
    print(report)
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    result = _FIGURES[args.number]()
    print(render_table(result))
    if args.save:
        path = save_result(result, args.save)
        print(f"saved -> {path}")
    return 0


def _cmd_storage(args: argparse.Namespace) -> int:
    if args.cache == "small":
        result = figure_drivers.fig13_metadata_small_cache()
        budget = SMALL_CACHE_BYTES
    else:
        result = figure_drivers.fig14_metadata_large_cache()
        budget = LARGE_CACHE_BYTES
    print(f"fingerprint cache budget: {format_size(budget)}")
    print(render_table(result))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.summary import render_summary, summarize_results

    print(render_summary(summarize_results(args.results)))
    return 0


_HANDLERS = {
    "generate": _cmd_generate,
    "stats": _cmd_stats,
    "attack": _cmd_attack,
    "figure": _cmd_figure,
    "storage": _cmd_storage,
    "report": _cmd_report,
}


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    return _HANDLERS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
