"""Command-line front-end: ``freqdedup`` (or ``python -m repro``).

Subcommands:

* ``generate`` — build a canonical dataset and save its trace.
* ``stats`` — workload statistics (dedup ratio, frequency skew, locality).
* ``attack`` — run one inference attack against one dataset/scheme.
* ``figure`` — regenerate a paper figure (or ``all``), optionally in
  parallel (``--jobs``) and against an on-disk cell cache (``--cache``).
* ``sweep`` — run a user-defined scenario grid (any dataset × scheme ×
  attack × (u, v, w) × anchor × leakage-rate combination) through the
  scenario engine — including cells the paper never plotted.
* ``storage`` — run the DDFS metadata-access experiment.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import figures as figure_drivers
from repro.analysis.reporting import render_table, save_result
from repro.analysis.workloads import (
    LARGE_CACHE_BYTES,
    SMALL_CACHE_BYTES,
    encrypted_series,
    series_by_name,
)
from repro.attacks import (
    AdvancedLocalityAttack,
    AttackEvaluator,
    BasicAttack,
    LocalityAttack,
    PersistentAdvancedAttack,
    PersistentLocalityAttack,
)
from repro.common.errors import ConfigurationError
from repro.common.units import format_size
from repro.datasets.stats import (
    adjacency_preservation,
    content_overlap,
    frequency_cdf,
    series_frequencies,
)
from repro.datasets.trace import save_series
from repro.defenses.pipeline import DefenseScheme
from repro.version import __version__

_DATASETS = ("fsl", "vm", "synthetic", "storage-fsl")
_FIGURES = {
    "1": figure_drivers.fig1_frequency_skew,
    "4": figure_drivers.fig4_parameter_impact,
    "5": figure_drivers.fig5_vary_auxiliary,
    "6": figure_drivers.fig6_vary_target,
    "7": figure_drivers.fig7_sliding_window,
    "8": figure_drivers.fig8_known_plaintext,
    "9": figure_drivers.fig9_kpm_vary_auxiliary,
    "10": figure_drivers.fig10_defense_effectiveness,
    "11": figure_drivers.fig11_storage_saving,
    "13": figure_drivers.fig13_metadata_small_cache,
    "14": figure_drivers.fig14_metadata_large_cache,
}


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return value


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="freqdedup",
        description=(
            "Reproduction of 'Information Leakage in Encrypted Deduplication "
            "via Frequency Analysis' (DSN 2017)."
        ),
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a dataset trace file")
    gen.add_argument("dataset", choices=_DATASETS)
    gen.add_argument("output", help="trace file path")

    stats = sub.add_parser("stats", help="print workload statistics")
    stats.add_argument("dataset", choices=_DATASETS)

    attack = sub.add_parser("attack", help="run an inference attack")
    attack.add_argument("dataset", choices=_DATASETS)
    attack.add_argument(
        "--attack",
        choices=("basic", "locality", "advanced"),
        default="locality",
    )
    attack.add_argument(
        "--scheme",
        choices=[scheme.value for scheme in DefenseScheme],
        default="mle",
    )
    attack.add_argument("--auxiliary", type=int, default=-2)
    attack.add_argument("--target", type=int, default=-1)
    attack.add_argument("--leakage-rate", type=float, default=0.0)
    attack.add_argument(
        "--seed",
        type=int,
        default=0,
        help="seed for the known-plaintext leakage sample (default 0)",
    )
    attack.add_argument("-u", type=int, default=1)
    attack.add_argument("-v", type=int, default=15)
    attack.add_argument("-w", type=int, default=200_000)
    attack.add_argument(
        "--workdir",
        metavar="DIR",
        help=(
            "keep COUNT state on disk under DIR (the paper's LevelDB "
            "mode); reruns against the same backups skip recounting"
        ),
    )
    attack.add_argument(
        "--backend",
        choices=("kvstore", "sqlite", "sharded"),
        default="kvstore",
        help=(
            "key-value backend for --workdir COUNT state: the WAL-log "
            "kvstore (default), a batched SQLite store, or hash-partitioned "
            "SQLite shards"
        ),
    )
    attack.add_argument(
        "--shards",
        type=int,
        default=4,
        help="shard count for --backend sharded (default 4)",
    )

    figure = sub.add_parser(
        "figure", help="regenerate a paper figure (or 'all')"
    )
    figure.add_argument(
        "number", choices=sorted(_FIGURES, key=int) + ["all"]
    )
    figure.add_argument("--save", metavar="DIR", help="also save under DIR")
    figure.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        metavar="N",
        help="worker processes (output is identical at any job count)",
    )
    figure.add_argument(
        "--cache",
        metavar="DIR",
        help="on-disk cell cache; reruns skip completed cells",
    )

    sweep = sub.add_parser(
        "sweep",
        help="run a user-defined scenario grid through the engine",
        description=(
            "Cross dataset × scheme × attack × (u, v, w) × anchor pair × "
            "leakage rate, run every cell (optionally in parallel and "
            "cached), and print one row per cell — scenarios well beyond "
            "the paper's plotted grid."
        ),
    )
    sweep.add_argument(
        "--datasets", default="fsl", metavar="A,B", help="comma-separated"
    )
    sweep.add_argument(
        "--schemes",
        default="mle",
        metavar="A,B",
        help=f"comma-separated from {[s.value for s in DefenseScheme]}",
    )
    sweep.add_argument(
        "--attacks",
        default="locality",
        metavar="A,B",
        help="comma-separated from basic,locality,advanced",
    )
    sweep.add_argument("--u", default="1", metavar="N,..", help="u values")
    sweep.add_argument("--v", default="15", metavar="N,..", help="v values")
    sweep.add_argument(
        "--w", default="200000", metavar="N,..", help="w values"
    )
    sweep.add_argument(
        "--pairs",
        default="-2:-1",
        metavar="AUX:TGT,..",
        help=(
            "auxiliary:target backup index pairs; negatives count from the "
            "end (use the = form for those, e.g. --pairs=-2:-1,0:-1)"
        ),
    )
    sweep.add_argument(
        "--leakage-rates", default="0", metavar="R,..", help="leakage rates"
    )
    sweep.add_argument(
        "--seed", type=int, default=0, help="leakage-sample seed"
    )
    sweep.add_argument("--jobs", type=_positive_int, default=1, metavar="N")
    sweep.add_argument("--cache", metavar="DIR")
    sweep.add_argument(
        "--json", metavar="FILE", help="also write rows as JSON to FILE"
    )

    storage = sub.add_parser(
        "storage", help="run the DDFS metadata-access experiment"
    )
    storage.add_argument(
        "--cache", choices=("small", "large"), default="small"
    )

    report = sub.add_parser(
        "report", help="summarize reproduced figures (after running benches)"
    )
    report.add_argument(
        "--results", default="results", help="results directory"
    )
    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    series = series_by_name(args.dataset)
    save_series(series, args.output)
    print(
        f"wrote {args.dataset}: {len(series)} backups, "
        f"{sum(len(b) for b in series.backups)} chunk records -> {args.output}"
    )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    series = series_by_name(args.dataset)
    cdf = frequency_cdf(series_frequencies(series))
    print(f"dataset: {series.name} ({series.chunking} chunking)")
    print(f"backups: {len(series)}  labels: {', '.join(series.labels())}")
    print(
        f"logical: {format_size(series.logical_bytes)}  "
        f"dedup ratio: {series.dedup_ratio():.2f}x"
    )
    print(
        f"frequency skew: {cdf.fraction_below(100):.2%} of unique chunks "
        f"occur <100 times; max frequency {cdf.max_frequency}"
    )
    if len(series) >= 2:
        aux, target = series.backups[-2], series.backups[-1]
        print(
            f"last-pair overlap: {content_overlap(aux, target):.2%}  "
            f"adjacency preservation: {adjacency_preservation(aux, target):.2%}"
        )
    return 0


def _cmd_attack(args: argparse.Namespace) -> int:
    if args.workdir is None and (args.backend != "kvstore" or args.shards != 4):
        print(
            "warning: --backend/--shards have no effect without --workdir",
            file=sys.stderr,
        )
    if args.workdir and args.attack == "basic":
        print(
            "warning: --workdir is ignored for the basic attack",
            file=sys.stderr,
        )
    scheme = DefenseScheme(args.scheme)
    evaluator = AttackEvaluator(encrypted_series(args.dataset, scheme))
    if args.attack == "basic":
        attack = BasicAttack()
    elif args.workdir and args.attack == "locality":
        attack = PersistentLocalityAttack(
            args.workdir,
            u=args.u,
            v=args.v,
            w=args.w,
            backend=args.backend,
            shards=args.shards,
        )
    elif args.workdir:
        attack = PersistentAdvancedAttack(
            args.workdir,
            u=args.u,
            v=args.v,
            w=args.w,
            backend=args.backend,
            shards=args.shards,
        )
    elif args.attack == "locality":
        attack = LocalityAttack(u=args.u, v=args.v, w=args.w)
    else:
        attack = AdvancedLocalityAttack(u=args.u, v=args.v, w=args.w)
    report = evaluator.run(
        attack,
        auxiliary=args.auxiliary,
        target=args.target,
        leakage_rate=args.leakage_rate,
        seed=args.seed,
    )
    print(report)
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    numbers = (
        sorted(_FIGURES, key=int) if args.number == "all" else [args.number]
    )
    for index, number in enumerate(numbers):
        if index:
            print()
        result = _FIGURES[number](jobs=args.jobs, cache=args.cache)
        print(render_table(result))
        if args.save:
            path = save_result(result, args.save)
            print(f"saved -> {path}")
    return 0


def _split(text: str, convert) -> tuple:
    return tuple(convert(part) for part in text.split(",") if part)


def _parse_pairs(text: str) -> tuple:
    from repro.scenarios.spec import PAIR, Anchor

    anchors = []
    for part in _split(text, str):
        auxiliary, _, target = part.partition(":")
        try:
            anchor = Anchor(
                mode=PAIR, auxiliary=int(auxiliary), target=int(target)
            )
        except ValueError:
            raise SystemExit(
                f"bad --pairs entry {part!r}; expected AUX:TGT (e.g. -2:-1)"
            ) from None
        anchors.append(anchor)
    return tuple(anchors)


def _validate_sweep_axes(datasets, schemes, attacks) -> None:
    """Reject bad axis values up front, before any worker starts."""
    for dataset in datasets:
        if dataset not in _DATASETS:
            raise SystemExit(
                f"unknown dataset {dataset!r}; choose from {sorted(_DATASETS)}"
            )
    valid_schemes = {scheme.value for scheme in DefenseScheme}
    for scheme in schemes:
        if scheme not in valid_schemes:
            raise SystemExit(
                f"unknown scheme {scheme!r}; choose from {sorted(valid_schemes)}"
            )
    from repro.scenarios.cells import KNOWN_ATTACKS

    for attack_name in attacks:
        if attack_name not in KNOWN_ATTACKS:
            raise SystemExit(
                f"unknown attack {attack_name!r}; choose from "
                f"{sorted(KNOWN_ATTACKS)}"
            )


def _validate_leakage_rates(rates) -> None:
    for rate in rates:
        if not 0.0 <= rate <= 1.0:
            raise SystemExit(f"leakage rate {rate} must be in [0, 1]")


def _cmd_sweep(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.analysis.reporting import FigureResult
    from repro.scenarios.runner import rows_from, Runner
    from repro.scenarios.spec import AttackParams, ScenarioSpec

    columns = (
        "dataset",
        "scheme",
        "attack",
        "u",
        "v",
        "w",
        "auxiliary",
        "target",
        "leakage_rate",
        "inference_rate",
        "precision",
    )
    params = tuple(
        AttackParams(u=u, v=v, w=w)
        for u in _split(args.u, int)
        for v in _split(args.v, int)
        for w in _split(args.w, int)
    )
    datasets = _split(args.datasets, str)
    schemes = _split(args.schemes, str)
    attacks = _split(args.attacks, str)
    _validate_sweep_axes(datasets, schemes, attacks)
    leakage_rates = _split(args.leakage_rates, float)
    _validate_leakage_rates(leakage_rates)
    cells = []
    for anchor in _parse_pairs(args.pairs):
        spec = ScenarioSpec(
            name="sweep",
            datasets=datasets,
            schemes=schemes,
            attacks=attacks,
            params=params,
            anchor=anchor,
            leakage_rates=leakage_rates,
            seed=args.seed,
        )
        try:
            cells.extend(spec.expand())
        except ConfigurationError as error:
            # e.g. a --pairs index outside the series: same clean exit
            # style as the other axis validations.
            raise SystemExit(str(error)) from None
    runner = Runner(jobs=args.jobs, cache=args.cache)
    results = runner.run_cells(cells)
    result = FigureResult(
        figure="Sweep",
        title=f"{len(cells)} cells (seed {args.seed})",
        columns=list(columns),
    )
    result.rows = rows_from(results, columns)
    print(render_table(result))
    executed = sum(1 for r in results if r.source == "executed")
    cached = sum(1 for r in results if r.source == "cache")
    duplicates = sum(1 for r in results if r.source == "duplicate")
    print(
        f"cells: {len(results)} total, {executed} executed, "
        f"{cached} cached, {duplicates} duplicate",
        file=sys.stderr,
    )
    if args.json:
        payload = {
            "columns": list(columns),
            "rows": result.rows,
            "seed": args.seed,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json_module.dump(payload, handle, indent=2)
        print(f"wrote -> {args.json}", file=sys.stderr)
    return 0


def _cmd_storage(args: argparse.Namespace) -> int:
    if args.cache == "small":
        result = figure_drivers.fig13_metadata_small_cache()
        budget = SMALL_CACHE_BYTES
    else:
        result = figure_drivers.fig14_metadata_large_cache()
        budget = LARGE_CACHE_BYTES
    print(f"fingerprint cache budget: {format_size(budget)}")
    print(render_table(result))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.summary import render_summary, summarize_results

    print(render_summary(summarize_results(args.results)))
    return 0


_HANDLERS = {
    "generate": _cmd_generate,
    "stats": _cmd_stats,
    "attack": _cmd_attack,
    "figure": _cmd_figure,
    "sweep": _cmd_sweep,
    "storage": _cmd_storage,
    "report": _cmd_report,
}


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    return _HANDLERS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
