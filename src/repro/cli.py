"""Command-line front-end: ``freqdedup`` (or ``python -m repro``).

Subcommands:

* ``generate`` — build a canonical dataset and save its trace.
* ``stats`` — workload statistics (dedup ratio, frequency skew, locality).
* ``attack`` — run one inference attack against one dataset/scheme.
* ``figure`` — regenerate a paper figure (or ``all``), optionally in
  parallel (``--jobs``) and against an on-disk cell cache (``--cache``).
* ``sweep`` — run a user-defined scenario grid (any dataset × scheme ×
  attack × (u, v, w) × anchor × leakage-rate combination) through the
  scenario engine — including cells the paper never plotted.
* ``serve-sim`` — simulate a multi-tenant dedup service over synthesized
  population traffic and meter its cross-user side channels.
* ``serve-net`` — serve the same traffic over a real socket through the
  asyncio framed-protocol frontend: multi-process load generation with
  req/s + latency percentiles, or ``--identity`` differential replay
  against the simulator.
* ``frontier`` — sweep the tunable defenses (``obfuscate:t`` encryption,
  dedup-response shaping) into a leakage/cost tradeoff frontier with
  cost columns sourced from the ``repro.obs`` metrics layer.
* ``storage`` — run the DDFS metadata-access experiment.
* ``bench`` — time the hot paths (chunking, COUNT, service ingest)
  against their reference implementations and write the
  ``BENCH_hotpaths.json`` perf baseline.
* ``obs`` — render or diff the metrics snapshot JSON the ``--metrics``
  flag exports.

``attack``, ``figure``, ``sweep``, ``serve-sim`` and ``serve-net`` all
take ``--metrics FILE`` (export a merged metrics-registry snapshot),
``--trace-out FILE`` (export the span ring as JSONL) and ``--log-json``
(structured logs on stderr).  All three are off by default, and leaving
them off keeps every report byte-identical to an uninstrumented build.
"""

from __future__ import annotations

import argparse
import sys

from repro import faults, obs
from repro.analysis import figures as figure_drivers
from repro.analysis.reporting import render_table, save_result
from repro.analysis.workloads import (
    LARGE_CACHE_BYTES,
    SMALL_CACHE_BYTES,
    encrypted_series,
    series_by_name,
)
from repro.attacks import (
    AdvancedLocalityAttack,
    AttackEvaluator,
    BasicAttack,
    LocalityAttack,
    PersistentAdvancedAttack,
    PersistentLocalityAttack,
)
from repro.common.errors import ConfigurationError
from repro.common.units import MiB, format_size
from repro.datasets.stats import (
    adjacency_preservation,
    content_overlap,
    frequency_cdf,
    series_frequencies,
)
from repro.datasets.trace import save_series
from repro.defenses.pipeline import DefenseScheme
from repro.version import __version__

_DATASETS = ("fsl", "vm", "synthetic", "storage-fsl")
_FIGURES = {
    "1": figure_drivers.fig1_frequency_skew,
    "4": figure_drivers.fig4_parameter_impact,
    "5": figure_drivers.fig5_vary_auxiliary,
    "6": figure_drivers.fig6_vary_target,
    "7": figure_drivers.fig7_sliding_window,
    "8": figure_drivers.fig8_known_plaintext,
    "9": figure_drivers.fig9_kpm_vary_auxiliary,
    "10": figure_drivers.fig10_defense_effectiveness,
    "11": figure_drivers.fig11_storage_saving,
    "13": figure_drivers.fig13_metadata_small_cache,
    "14": figure_drivers.fig14_metadata_large_cache,
}


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return value


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    """The observability trio, shared by every instrumented subcommand.

    All default to off; the command's report output is byte-identical
    with and without them (exports go to separate files / stderr).
    """
    group = parser.add_argument_group("observability")
    group.add_argument(
        "--metrics",
        metavar="FILE",
        default=None,
        help=(
            "enable the metrics registry and write the merged snapshot "
            "JSON to FILE on exit (inspect with 'freqdedup obs')"
        ),
    )
    group.add_argument(
        "--trace-out",
        metavar="FILE",
        default=None,
        help=(
            "enable span tracing and write the span ring to FILE as "
            "JSONL on exit"
        ),
    )
    group.add_argument(
        "--log-json",
        action="store_true",
        help="emit structured JSON logs on stderr",
    )


def _add_faults_flag(parser: argparse.ArgumentParser) -> None:
    """The fault-injection plan flag, shared by every chaos-capable
    subcommand.  With no plan the fault plane is a no-op and reports
    stay byte-identical; with one, retries/failovers keep the *results*
    byte-identical while a ``faults`` summary section shows what was
    injected (see docs/robustness.md)."""
    group = parser.add_argument_group("robustness")
    group.add_argument(
        "--faults",
        metavar="PLAN.json",
        default=None,
        help=(
            "install the deterministic fault-injection plan from "
            "PLAN.json for this run: seeded connection drops, stalls, "
            "node kills, disk errors and worker crashes, survived by "
            "retry/failover (see docs/robustness.md)"
        ),
    )


def _faults_install(args: argparse.Namespace) -> None:
    """Install the requested fault plan before dispatch (so every seam
    in the handler's path sees it); ``main`` clears it on the way out."""
    path = getattr(args, "faults", None)
    if path is not None:
        faults.install(faults.load_plan(path))


def _obs_enable(args: argparse.Namespace) -> None:
    """Turn on whichever observability planes the flags requested.

    Runs before dispatch so ``obs.enable`` can export ``REPRO_OBS`` to
    spawn-started workers; with no flags given nothing is touched and
    every ``obs`` call in the handlers stays a no-op.
    """
    metrics = getattr(args, "metrics", None) is not None
    tracing = getattr(args, "trace_out", None) is not None
    logging = bool(getattr(args, "log_json", False))
    if metrics or tracing or logging:
        obs.enable(metrics=metrics, tracing=tracing, logging=logging)


def _obs_export(args: argparse.Namespace) -> None:
    """Write the requested snapshot/trace files after the handler ran.

    Runs in a ``finally`` so a partial run (e.g. identity-mode exit 1)
    still exports what it recorded.  Paths go to stderr to keep stdout
    (the report the goldens pin) untouched.
    """
    metrics_path = getattr(args, "metrics", None)
    if metrics_path and obs.enabled():
        with open(metrics_path, "wb") as handle:
            handle.write(obs.snapshot_bytes(obs.snapshot()) + b"\n")
        print(f"metrics snapshot -> {metrics_path}", file=sys.stderr)
    trace_path = getattr(args, "trace_out", None)
    if trace_path and obs.tracing_enabled():
        count = obs.export_trace(trace_path)
        print(f"{count} spans -> {trace_path}", file=sys.stderr)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="freqdedup",
        description=(
            "Reproduction of 'Information Leakage in Encrypted Deduplication "
            "via Frequency Analysis' (DSN 2017)."
        ),
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser(
        "generate",
        help="generate a dataset trace file (or columnar trace directory)",
    )
    gen.add_argument("dataset", choices=_DATASETS + ("stream",))
    gen.add_argument(
        "output", help="trace file path (a directory with --columnar)"
    )
    gen.add_argument(
        "--columnar",
        action="store_true",
        help=(
            "write the on-disk columnar layout (fingerprint vocabulary + "
            "memory-mapped uint32 id stream) instead of a trace file; "
            "generate once, mmap thereafter — a completed trace with "
            "matching parameters is reopened, not regenerated"
        ),
    )
    gen.add_argument(
        "--chunks",
        type=_positive_int,
        default=10_000_000,
        metavar="N",
        help=(
            "total chunk records for the 'stream' dataset "
            "(default 10000000; requires --columnar)"
        ),
    )
    gen.add_argument(
        "--backups",
        type=_positive_int,
        default=2,
        metavar="B",
        help="backup count for the 'stream' dataset (default 2)",
    )
    gen.add_argument(
        "--fingerprint-bytes",
        type=_positive_int,
        default=16,
        metavar="K",
        help="fingerprint width for the 'stream' dataset (default 16)",
    )
    gen.add_argument(
        "--seed",
        type=int,
        default=7,
        help="generation seed for the 'stream' dataset (default 7)",
    )

    stats = sub.add_parser("stats", help="print workload statistics")
    stats.add_argument("dataset", choices=_DATASETS)
    stats.add_argument(
        "--json",
        action="store_true",
        help="emit the statistics as JSON (stable key order, scriptable)",
    )

    attack = sub.add_parser("attack", help="run an inference attack")
    attack.add_argument("dataset", nargs="?", choices=_DATASETS)
    attack.add_argument(
        "--columnar",
        metavar="DIR",
        help=(
            "attack an on-disk columnar trace directory (see generate "
            "--columnar) instead of a canonical dataset: both COUNT "
            "passes run sharded over the memory-mapped id stream "
            "(--jobs), the MLE ciphertext side is derived at the "
            "vocabulary level, and no full frequency table is ever "
            "materialized in RAM"
        ),
    )
    attack.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        metavar="N",
        help=(
            "worker processes for the sharded columnar COUNT (output is "
            "byte-identical at any job count; only with --columnar)"
        ),
    )
    attack.add_argument(
        "--attack",
        choices=("basic", "locality", "advanced"),
        default="locality",
    )
    attack.add_argument(
        "--scheme",
        choices=[scheme.value for scheme in DefenseScheme],
        default="mle",
    )
    attack.add_argument(
        "--obfuscate-t",
        type=_positive_int,
        default=None,
        metavar="T",
        help=(
            "ciphertext variants per plaintext chunk for --scheme "
            "obfuscate (default 2); higher flattens the COUNT histogram "
            "at the cost of per-variant dedup"
        ),
    )
    attack.add_argument("--auxiliary", type=int, default=-2)
    attack.add_argument("--target", type=int, default=-1)
    attack.add_argument("--leakage-rate", type=float, default=0.0)
    attack.add_argument(
        "--seed",
        type=int,
        default=0,
        help="seed for the known-plaintext leakage sample (default 0)",
    )
    attack.add_argument("-u", type=int, default=1)
    attack.add_argument("-v", type=int, default=15)
    attack.add_argument("-w", type=int, default=200_000)
    attack.add_argument(
        "--workdir",
        metavar="DIR",
        help=(
            "keep COUNT state on disk under DIR (the paper's LevelDB "
            "mode); reruns against the same backups skip recounting"
        ),
    )
    attack.add_argument(
        "--backend",
        choices=("kvstore", "sqlite", "sharded"),
        default="kvstore",
        help=(
            "key-value backend for --workdir COUNT state: the WAL-log "
            "kvstore (default), a batched SQLite store, or hash-partitioned "
            "SQLite shards"
        ),
    )
    attack.add_argument(
        "--shards",
        type=int,
        default=4,
        help="shard count for --backend sharded (default 4)",
    )
    attack.add_argument(
        "--nodes",
        type=_positive_int,
        default=1,
        metavar="N",
        help=(
            "cluster size for a partial-view attack: the target is "
            "sharded over N storage nodes and the adversary observes "
            "one compromised node's shard (default 1 = full view)"
        ),
    )
    attack.add_argument(
        "--routing",
        choices=("ring", "modulo"),
        default="ring",
        help="cluster routing policy for --nodes > 1 (default ring)",
    )
    attack.add_argument(
        "--compromised-node",
        type=int,
        default=0,
        metavar="K",
        help="which node's shard the adversary observes (default 0)",
    )
    _add_obs_flags(attack)
    _add_faults_flag(attack)

    figure = sub.add_parser(
        "figure", help="regenerate a paper figure (or 'all')"
    )
    figure.add_argument(
        "number", choices=sorted(_FIGURES, key=int) + ["all"]
    )
    figure.add_argument("--save", metavar="DIR", help="also save under DIR")
    figure.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        metavar="N",
        help="worker processes (output is identical at any job count)",
    )
    figure.add_argument(
        "--cache",
        metavar="DIR",
        help="on-disk cell cache; reruns skip completed cells",
    )
    _add_obs_flags(figure)
    _add_faults_flag(figure)

    sweep = sub.add_parser(
        "sweep",
        help="run a user-defined scenario grid through the engine",
        description=(
            "Cross dataset × scheme × attack × (u, v, w) × anchor pair × "
            "leakage rate, run every cell (optionally in parallel and "
            "cached), and print one row per cell — scenarios well beyond "
            "the paper's plotted grid."
        ),
    )
    sweep.add_argument(
        "--datasets", default="fsl", metavar="A,B", help="comma-separated"
    )
    sweep.add_argument(
        "--schemes",
        default="mle",
        metavar="A,B",
        help=f"comma-separated from {[s.value for s in DefenseScheme]}",
    )
    sweep.add_argument(
        "--attacks",
        default="locality",
        metavar="A,B",
        help="comma-separated from basic,locality,advanced",
    )
    sweep.add_argument("--u", default="1", metavar="N,..", help="u values")
    sweep.add_argument("--v", default="15", metavar="N,..", help="v values")
    sweep.add_argument(
        "--w", default="200000", metavar="N,..", help="w values"
    )
    sweep.add_argument(
        "--pairs",
        default="-2:-1",
        metavar="AUX:TGT,..",
        help=(
            "auxiliary:target backup index pairs; negatives count from the "
            "end (use the = form for those, e.g. --pairs=-2:-1,0:-1)"
        ),
    )
    sweep.add_argument(
        "--leakage-rates", default="0", metavar="R,..", help="leakage rates"
    )
    sweep.add_argument(
        "--seed", type=int, default=0, help="leakage-sample seed"
    )
    sweep.add_argument("--jobs", type=_positive_int, default=1, metavar="N")
    sweep.add_argument("--cache", metavar="DIR")
    sweep.add_argument(
        "--json", metavar="FILE", help="also write rows as JSON to FILE"
    )
    _add_obs_flags(sweep)
    _add_faults_flag(sweep)

    serve = sub.add_parser(
        "serve-sim",
        help="simulate a multi-tenant dedup service and meter side channels",
        description=(
            "Synthesize population traffic (Zipf-popular shared files, "
            "per-tenant churn), serve it through a shared dedup engine "
            "with per-tenant namespaces and quotas, and report the "
            "adversary's view: per-upload bandwidth, cross-tenant "
            "overlap, and cross-tenant inference rates. Deterministic: "
            "the same --seed produces a byte-identical JSON report at "
            "any --jobs value."
        ),
    )
    serve.add_argument("--tenants", type=_positive_int, default=20)
    serve.add_argument(
        "--requests",
        type=_positive_int,
        default=None,
        metavar="N",
        help=(
            "total upload requests; rounds = max(1, N // tenants) "
            "(default: 2 rounds)"
        ),
    )
    serve.add_argument(
        "--duplication-factor",
        type=float,
        default=0.5,
        metavar="F",
        help="probability a tenant file copies a shared popular file",
    )
    serve.add_argument(
        "--popularity-exponent",
        type=float,
        default=1.5,
        metavar="S",
        help="Zipf skew over the shared file popularity ranks",
    )
    serve.add_argument(
        "--scheme",
        choices=[scheme.value for scheme in DefenseScheme],
        default="mle",
    )
    serve.add_argument(
        "--obfuscate-t",
        type=_positive_int,
        default=None,
        metavar="T",
        help="ciphertext variants for --scheme obfuscate (default 2)",
    )
    serve.add_argument(
        "--shaping",
        default="honest",
        metavar="SPEC",
        help=(
            "dedup-response shaping policy: 'honest' (default), 'rr:P' "
            "(re-request each deduplicated chunk with probability P), or "
            "'quantize:B' (pad each upload's transfer to a multiple of "
            "B bytes); shaping pads the wire, never the store"
        ),
    )
    serve.add_argument(
        "--attack",
        choices=("basic", "locality", "advanced"),
        default="advanced",
    )
    serve.add_argument(
        "--auxiliary-tenant",
        type=int,
        default=-1,
        metavar="T",
        help=(
            "adversary's prior knowledge: a tenant id (curious tenant) "
            "or -1 for the population auxiliary (curious provider)"
        ),
    )
    serve.add_argument(
        "--attack-targets",
        type=_positive_int,
        default=4,
        metavar="N",
        help="number of victim tenants evaluated",
    )
    serve.add_argument(
        "--nodes",
        type=_positive_int,
        default=1,
        metavar="N",
        help=(
            "storage-tier nodes: 1 (default) serves from one shared "
            "engine, N > 1 from a consistent-hash cluster of N engines "
            "with per-node load metering and partial-view attack rows"
        ),
    )
    serve.add_argument(
        "--routing",
        choices=("ring", "modulo"),
        default="ring",
        help="cluster routing policy for --nodes > 1 (default ring)",
    )
    serve.add_argument(
        "--backend",
        choices=("memory", "kvstore", "sqlite", "sharded"),
        default="memory",
        help="fingerprint-index backend of the shared store (per node)",
    )
    serve.add_argument(
        "--shards",
        type=_positive_int,
        default=4,
        help="shard count for --backend sharded (default 4)",
    )
    serve.add_argument(
        "--workdir",
        metavar="DIR",
        help="persist a file-backed index backend under DIR",
    )
    serve.add_argument(
        "--quota-mib",
        type=float,
        default=None,
        metavar="M",
        help="per-tenant logical-byte quota (default: unlimited)",
    )
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        metavar="N",
        help="worker processes for the attack pairs (output identical)",
    )
    serve.add_argument(
        "--json", metavar="FILE", help="write the full JSON report to FILE"
    )
    _add_obs_flags(serve)

    net = sub.add_parser(
        "serve-net",
        help="serve the dedup service over a socket and load-generate it",
        description=(
            "Start the asyncio framed-socket frontend over a real Unix "
            "socket (or TCP with --port), then either replay the "
            "synthesized traffic from N client processes and report "
            "sustained req/s and latency percentiles (default), or "
            "replay it in stream order over one connection and prove "
            "the served trace byte-identical to the in-process "
            "simulator (--identity)."
        ),
    )
    net.add_argument("--tenants", type=_positive_int, default=20)
    net.add_argument(
        "--requests",
        type=_positive_int,
        default=None,
        metavar="N",
        help=(
            "total upload requests; rounds = max(1, N // tenants) "
            "(default: 2 rounds)"
        ),
    )
    net.add_argument(
        "--duplication-factor", type=float, default=0.5, metavar="F"
    )
    net.add_argument(
        "--popularity-exponent", type=float, default=1.5, metavar="S"
    )
    net.add_argument(
        "--scheme",
        choices=[scheme.value for scheme in DefenseScheme],
        default="mle",
    )
    net.add_argument(
        "--obfuscate-t",
        type=_positive_int,
        default=None,
        metavar="T",
        help="ciphertext variants for --scheme obfuscate (default 2)",
    )
    net.add_argument(
        "--shaping",
        default="honest",
        metavar="SPEC",
        help=(
            "dedup-response shaping policy ('honest', 'rr:P', "
            "'quantize:B'); shaped responses stay byte-identical "
            "between the socket frontend and the simulator"
        ),
    )
    net.add_argument(
        "--quota-mib",
        type=float,
        default=None,
        metavar="M",
        help="per-tenant logical-byte quota (default: unlimited)",
    )
    net.add_argument(
        "--nodes",
        type=_positive_int,
        default=1,
        metavar="N",
        help="storage-tier nodes behind the frontend (cluster for N > 1)",
    )
    net.add_argument(
        "--routing", choices=("ring", "modulo"), default="ring"
    )
    net.add_argument("--seed", type=int, default=0)
    net.add_argument(
        "--clients",
        type=_positive_int,
        default=2,
        metavar="N",
        help="load-generator client processes (default 2)",
    )
    net.add_argument(
        "--rate-limit",
        type=float,
        default=0.0,
        metavar="R",
        help="per-tenant admission rate in req/s (0 = unlimited)",
    )
    net.add_argument(
        "--burst",
        type=float,
        default=32.0,
        metavar="B",
        help="per-tenant token-bucket capacity",
    )
    net.add_argument(
        "--port",
        type=int,
        default=None,
        metavar="P",
        help=(
            "serve TCP on 127.0.0.1:P (0 = ephemeral) instead of the "
            "default scratch Unix socket"
        ),
    )
    net.add_argument(
        "--identity",
        action="store_true",
        help=(
            "identity mode: single-connection in-order replay, then "
            "byte-compare the served report against the simulator "
            "(exit 1 on divergence; requires --rate-limit 0)"
        ),
    )
    net.add_argument(
        "--json", metavar="FILE", help="write the JSON report to FILE"
    )
    _add_obs_flags(net)
    _add_faults_flag(net)

    frontier = sub.add_parser(
        "frontier",
        help="sweep the tunable defenses into a leakage/cost frontier",
        description=(
            "Run the defense-frontier grid: every scheme spec through "
            "the encrypted workloads (COUNT inference rate, frequency-"
            "KLD flatness, storage overhead) and every shaping policy "
            "through the service simulator (dedup-signal recall, "
            "bandwidth overhead). Cost columns come from the repro.obs "
            "metrics the cells record. Deterministic at any --jobs."
        ),
    )
    frontier.add_argument(
        "--datasets", default="fsl", metavar="LIST",
        help="comma-separated canonical datasets (default fsl)",
    )
    frontier.add_argument(
        "--schemes",
        default="mle,minhash,combined,obfuscate:1,obfuscate:2,"
        "obfuscate:4,obfuscate:8",
        metavar="LIST",
        help=(
            "comma-separated scheme specs for the storage axis; "
            "parameterized 'obfuscate:T' specs supply the tunable sweep"
        ),
    )
    frontier.add_argument(
        "--attacks", default="basic,locality", metavar="LIST",
        help="comma-separated attacks scored per scheme",
    )
    frontier.add_argument(
        "--policies",
        default="honest,rr:0.25,rr:0.5,rr:1,quantize:4096,quantize:16384",
        metavar="LIST",
        help="comma-separated shaping policy specs for the bandwidth axis",
    )
    frontier.add_argument(
        "--service-schemes", default="mle", metavar="LIST",
        help="schemes the bandwidth-axis service runs under (default mle)",
    )
    frontier.add_argument(
        "--tenants", type=_positive_int, default=8,
        help="bandwidth-axis population size (default 8)",
    )
    frontier.add_argument("--seed", type=int, default=7)
    frontier.add_argument(
        "--jobs", type=_positive_int, default=1, metavar="N",
        help="worker processes for the grid (report identical at any N)",
    )
    frontier.add_argument(
        "--smoke",
        action="store_true",
        help=(
            "CI grid: 2 obfuscation knobs x 2 attacks plus one shaping "
            "policy (overrides the axis lists)"
        ),
    )
    frontier.add_argument(
        "--output",
        metavar="FILE",
        default=None,
        help=(
            "write the JSON report to FILE "
            "(default BENCH_defense_frontier.json; '-' skips the write)"
        ),
    )
    frontier.add_argument(
        "--compare",
        metavar="FILE",
        help=(
            "diff rows against a baseline frontier report (env envelope "
            "ignored); exit 1 on drift"
        ),
    )

    storage = sub.add_parser(
        "storage", help="run the DDFS metadata-access experiment"
    )
    storage.add_argument(
        "--cache", choices=("small", "large"), default="small"
    )

    bench = sub.add_parser(
        "bench",
        help="benchmark the hot paths and write BENCH_hotpaths.json",
        description=(
            "Time content-defined chunking, the attacks' COUNT pass, and "
            "multi-tenant service ingest on pinned workloads, assert the "
            "fast paths are byte-identical to their references, and write "
            "the perf baseline JSON."
        ),
    )
    bench.add_argument(
        "--quick", action="store_true", help="small workloads (CI smoke)"
    )
    bench.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        metavar="N",
        help=(
            "worker processes for the trace-scale sharded-COUNT section "
            "(identity is asserted at every job count)"
        ),
    )
    bench.add_argument(
        "--repeats",
        type=_positive_int,
        default=3,
        help="best-of-N timing repeats (default 3)",
    )
    bench.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="output JSON path (default: BENCH_hotpaths.json in the cwd)",
    )
    bench.add_argument(
        "--compare",
        metavar="FILE",
        help="soft-report deltas vs a committed baseline JSON",
    )

    report = sub.add_parser(
        "report", help="summarize reproduced figures (after running benches)"
    )
    report.add_argument(
        "--results", default="results", help="results directory"
    )
    report.add_argument(
        "--json",
        action="store_true",
        help="emit the summary as JSON (stable key order, scriptable)",
    )

    obs_cmd = sub.add_parser(
        "obs",
        help="render or diff metrics snapshot JSON from --metrics",
        description=(
            "Inspect the snapshot files the --metrics flag exports: "
            "pretty-print one as counter/gauge/histogram tables, or show "
            "the per-metric delta between two runs."
        ),
    )
    obs_sub = obs_cmd.add_subparsers(dest="obs_command", required=True)
    obs_render = obs_sub.add_parser(
        "render", help="pretty-print one snapshot"
    )
    obs_render.add_argument("snapshot", help="snapshot JSON path")
    obs_diff = obs_sub.add_parser(
        "diff", help="per-metric delta between two snapshots"
    )
    obs_diff.add_argument("left", help="baseline snapshot JSON path")
    obs_diff.add_argument("right", help="comparison snapshot JSON path")
    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.columnar:
        return _generate_columnar(args)
    if args.dataset == "stream":
        raise SystemExit(
            "the 'stream' dataset is trace-scale and only exists in the "
            "columnar layout; add --columnar (and size it with --chunks)"
        )
    series = series_by_name(args.dataset)
    save_series(series, args.output)
    print(
        f"wrote {args.dataset}: {len(series)} backups, "
        f"{sum(len(b) for b in series.backups)} chunk records -> {args.output}"
    )
    return 0


def _generate_columnar(args: argparse.Namespace) -> int:
    """``generate --columnar``: write (or reopen) an on-disk columnar trace."""
    from repro.analysis.workloads import FSL_SEED, SYNTHETIC_SEED

    if args.dataset == "stream":
        from repro.datasets.columnar import StreamConfig, ensure_stream_columnar

        config = StreamConfig(
            chunks=args.chunks,
            backups=args.backups,
            fingerprint_bytes=args.fingerprint_bytes,
        )
        trace = ensure_stream_columnar(args.output, config, seed=args.seed)
    elif args.dataset == "fsl":
        from repro.datasets.fsl import FSLDatasetGenerator

        trace = FSLDatasetGenerator(seed=FSL_SEED).generate_columnar(
            args.output
        )
    elif args.dataset == "synthetic":
        from repro.datasets.synthetic import SyntheticDatasetGenerator

        trace = SyntheticDatasetGenerator(seed=SYNTHETIC_SEED).generate_columnar(
            args.output
        )
    else:
        raise SystemExit(
            f"no columnar writer for dataset {args.dataset!r}; choose from "
            "fsl, synthetic, stream"
        )
    try:
        print(
            f"columnar {trace.name}: {len(trace.backups)} backups, "
            f"{trace.num_chunks} chunk records, {trace.num_unique} unique "
            f"({trace.fingerprint_bytes}-byte fingerprints) -> "
            f"{trace.directory}"
        )
    finally:
        trace.close()
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    import json as json_module

    series = series_by_name(args.dataset)
    cdf = frequency_cdf(series_frequencies(series))
    if args.json:
        payload = {
            "dataset": series.name,
            "chunking": series.chunking,
            "backups": len(series),
            "labels": series.labels(),
            "logical_bytes": series.logical_bytes,
            "dedup_ratio": round(series.dedup_ratio(), 4),
            "unique_chunks": len(cdf.frequencies),
            "frac_below_100": round(cdf.fraction_below(100), 6),
            "max_frequency": cdf.max_frequency,
        }
        if len(series) >= 2:
            aux, target = series.backups[-2], series.backups[-1]
            payload["last_pair_overlap"] = round(
                content_overlap(aux, target), 6
            )
            payload["adjacency_preservation"] = round(
                adjacency_preservation(aux, target), 6
            )
        print(json_module.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"dataset: {series.name} ({series.chunking} chunking)")
    print(f"backups: {len(series)}  labels: {', '.join(series.labels())}")
    print(
        f"logical: {format_size(series.logical_bytes)}  "
        f"dedup ratio: {series.dedup_ratio():.2f}x"
    )
    print(
        f"frequency skew: {cdf.fraction_below(100):.2%} of unique chunks "
        f"occur <100 times; max frequency {cdf.max_frequency}"
    )
    if len(series) >= 2:
        aux, target = series.backups[-2], series.backups[-1]
        print(
            f"last-pair overlap: {content_overlap(aux, target):.2%}  "
            f"adjacency preservation: {adjacency_preservation(aux, target):.2%}"
        )
    return 0


def _scheme_spec(args: argparse.Namespace) -> str:
    """The scheme spec string an ``--scheme``/``--obfuscate-t`` pair names.

    ``--obfuscate-t`` only parameterizes the obfuscation family; on any
    other scheme it is a silent no-op guarded by a stderr warning, like
    the other inapplicable-flag warnings in this module.
    """
    obfuscate_t = getattr(args, "obfuscate_t", None)
    if args.scheme == "obfuscate" and obfuscate_t is not None:
        return f"obfuscate:{obfuscate_t}"
    if obfuscate_t is not None:
        print(
            "warning: --obfuscate-t has no effect without "
            "--scheme obfuscate",
            file=sys.stderr,
        )
    return args.scheme


def _shaping_spec(args: argparse.Namespace) -> str:
    """Validate and canonicalize the ``--shaping`` policy spec."""
    from repro.service.shaping import parse_policy

    try:
        return parse_policy(args.shaping).spec()
    except ConfigurationError as error:
        raise SystemExit(str(error)) from None


def _cmd_attack(args: argparse.Namespace) -> int:
    if (args.dataset is None) == (args.columnar is None):
        raise SystemExit(
            "pick exactly one input: a dataset positional, or --columnar DIR"
        )
    if args.columnar is not None:
        return _run_columnar_attack(args)
    if args.jobs != 1:
        print(
            "warning: --jobs has no effect without --columnar",
            file=sys.stderr,
        )
    if args.workdir is None and (args.backend != "kvstore" or args.shards != 4):
        print(
            "warning: --backend/--shards have no effect without --workdir",
            file=sys.stderr,
        )
    if args.workdir and args.attack == "basic":
        print(
            "warning: --workdir is ignored for the basic attack",
            file=sys.stderr,
        )
    if not 0 <= args.compromised_node < args.nodes:
        raise SystemExit(
            f"compromised node {args.compromised_node} is outside the "
            f"cluster (use 0 .. {args.nodes - 1})"
        )
    if args.nodes > 1 and args.workdir:
        raise SystemExit(
            "--workdir COUNT persistence is not supported for partial-view "
            "(--nodes > 1) attacks; drop one of the two"
        )
    if args.nodes > 1:
        return _run_partial_view_attack(args)
    evaluator = AttackEvaluator(
        encrypted_series(args.dataset, _scheme_spec(args))
    )
    if args.attack == "basic":
        attack = BasicAttack()
    elif args.workdir and args.attack == "locality":
        attack = PersistentLocalityAttack(
            args.workdir,
            u=args.u,
            v=args.v,
            w=args.w,
            backend=args.backend,
            shards=args.shards,
        )
    elif args.workdir:
        attack = PersistentAdvancedAttack(
            args.workdir,
            u=args.u,
            v=args.v,
            w=args.w,
            backend=args.backend,
            shards=args.shards,
        )
    elif args.attack == "locality":
        attack = LocalityAttack(u=args.u, v=args.v, w=args.w)
    else:
        attack = AdvancedLocalityAttack(u=args.u, v=args.v, w=args.w)
    report = evaluator.run(
        attack,
        auxiliary=args.auxiliary,
        target=args.target,
        leakage_rate=args.leakage_rate,
        seed=args.seed,
    )
    print(report)
    return 0


def _run_columnar_attack(args: argparse.Namespace) -> int:
    """``attack --columnar DIR``: the trace-scale sharded-COUNT path."""
    from repro.attacks.sharded import columnar_attack_report

    if args.scheme != "mle":
        raise SystemExit(
            "--columnar derives the ciphertext side at the vocabulary "
            "level, which exists for the deterministic mle scheme only; "
            "other schemes need the in-RAM pipeline (drop --columnar)"
        )
    if args.attack not in ("locality", "advanced"):
        raise SystemExit(
            "--columnar drives the counted-stats attacks only "
            "(--attack locality or advanced)"
        )
    if args.nodes > 1:
        raise SystemExit(
            "--columnar and --nodes > 1 are separate experiments; "
            "drop one of the two"
        )
    if args.workdir:
        raise SystemExit(
            "--columnar keeps COUNT state in flat arrays, not backend "
            "stores; --workdir does not apply (see "
            "repro.attacks.persistent.persist_columnar_stats for "
            "backend-backed columnar COUNT)"
        )
    try:
        report = columnar_attack_report(
            args.columnar,
            args.attack,
            auxiliary=args.auxiliary,
            target=args.target,
            leakage_rate=args.leakage_rate,
            seed=args.seed,
            u=args.u,
            v=args.v,
            w=args.w,
            jobs=args.jobs,
        )
    except ConfigurationError as error:
        raise SystemExit(str(error)) from None
    print(report)
    return 0


def _run_partial_view_attack(args: argparse.Namespace) -> int:
    """``attack --nodes N``: the adversary sees one node's shard only."""
    from repro.cluster import partial_view_report
    from repro.scenarios.cells import build_attack
    from repro.scenarios.spec import _resolve_index

    spec = _scheme_spec(args)
    encrypted = encrypted_series(args.dataset, spec)
    length = len(encrypted)

    def resolve(index: int) -> int:
        try:
            return _resolve_index(index, length)
        except ConfigurationError as error:
            raise SystemExit(str(error)) from None

    attack = build_attack(args.attack, args.u, args.v, args.w)
    view = partial_view_report(
        attack,
        encrypted[resolve(args.target)],
        encrypted.plaintext[resolve(args.auxiliary)],
        nodes=args.nodes,
        routing=args.routing,
        compromised_node=args.compromised_node,
        scheme=spec,
        leakage_rate=args.leakage_rate,
        seed=args.seed,
    )
    print(view)
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    numbers = (
        sorted(_FIGURES, key=int) if args.number == "all" else [args.number]
    )
    for index, number in enumerate(numbers):
        if index:
            print()
        result = _FIGURES[number](jobs=args.jobs, cache=args.cache)
        print(render_table(result))
        if args.save:
            path = save_result(result, args.save)
            print(f"saved -> {path}")
    return 0


def _split(text: str, convert) -> tuple:
    return tuple(convert(part) for part in text.split(",") if part)


def _parse_pairs(text: str) -> tuple:
    from repro.scenarios.spec import PAIR, Anchor

    anchors = []
    for part in _split(text, str):
        auxiliary, _, target = part.partition(":")
        try:
            anchor = Anchor(
                mode=PAIR, auxiliary=int(auxiliary), target=int(target)
            )
        except ValueError:
            raise SystemExit(
                f"bad --pairs entry {part!r}; expected AUX:TGT (e.g. -2:-1)"
            ) from None
        anchors.append(anchor)
    return tuple(anchors)


def _validate_sweep_axes(datasets, schemes, attacks) -> None:
    """Reject bad axis values up front, before any worker starts."""
    for dataset in datasets:
        if dataset not in _DATASETS:
            raise SystemExit(
                f"unknown dataset {dataset!r}; choose from {sorted(_DATASETS)}"
            )
    from repro.defenses.obfuscate import parse_scheme

    for scheme in schemes:
        try:
            # Accepts plain names and parameterized specs ("obfuscate:4").
            parse_scheme(scheme)
        except ConfigurationError as error:
            raise SystemExit(str(error)) from None
    from repro.scenarios.cells import KNOWN_ATTACKS

    for attack_name in attacks:
        if attack_name not in KNOWN_ATTACKS:
            raise SystemExit(
                f"unknown attack {attack_name!r}; choose from "
                f"{sorted(KNOWN_ATTACKS)}"
            )


def _validate_leakage_rates(rates) -> None:
    for rate in rates:
        if not 0.0 <= rate <= 1.0:
            raise SystemExit(f"leakage rate {rate} must be in [0, 1]")


def _cmd_sweep(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.analysis.reporting import FigureResult
    from repro.scenarios.runner import rows_from, Runner
    from repro.scenarios.spec import AttackParams, ScenarioSpec

    columns = (
        "dataset",
        "scheme",
        "attack",
        "u",
        "v",
        "w",
        "auxiliary",
        "target",
        "leakage_rate",
        "inference_rate",
        "precision",
    )
    params = tuple(
        AttackParams(u=u, v=v, w=w)
        for u in _split(args.u, int)
        for v in _split(args.v, int)
        for w in _split(args.w, int)
    )
    datasets = _split(args.datasets, str)
    schemes = _split(args.schemes, str)
    attacks = _split(args.attacks, str)
    _validate_sweep_axes(datasets, schemes, attacks)
    leakage_rates = _split(args.leakage_rates, float)
    _validate_leakage_rates(leakage_rates)
    cells = []
    for anchor in _parse_pairs(args.pairs):
        spec = ScenarioSpec(
            name="sweep",
            datasets=datasets,
            schemes=schemes,
            attacks=attacks,
            params=params,
            anchor=anchor,
            leakage_rates=leakage_rates,
            seed=args.seed,
        )
        try:
            cells.extend(spec.expand())
        except ConfigurationError as error:
            # e.g. a --pairs index outside the series: same clean exit
            # style as the other axis validations.
            raise SystemExit(str(error)) from None
    runner = Runner(jobs=args.jobs, cache=args.cache)
    results = runner.run_cells(cells)
    result = FigureResult(
        figure="Sweep",
        title=f"{len(cells)} cells (seed {args.seed})",
        columns=list(columns),
    )
    result.rows = rows_from(results, columns)
    print(render_table(result))
    executed = sum(1 for r in results if r.source == "executed")
    cached = sum(1 for r in results if r.source == "cache")
    duplicates = sum(1 for r in results if r.source == "duplicate")
    print(
        f"cells: {len(results)} total, {executed} executed, "
        f"{cached} cached, {duplicates} duplicate",
        file=sys.stderr,
    )
    if args.json:
        payload = {
            "columns": list(columns),
            "rows": result.rows,
            "seed": args.seed,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json_module.dump(payload, handle, indent=2)
        print(f"wrote -> {args.json}", file=sys.stderr)
    return 0


#: The committed frontier baseline the CI drift gate compares against.
FRONTIER_OUTPUT = "BENCH_defense_frontier.json"

#: The CI smoke grid: two obfuscation knobs x two attacks, one shaping
#: policy against its honest anchor.
_FRONTIER_SMOKE = {
    "datasets": ("fsl",),
    "schemes": ("obfuscate:2", "obfuscate:4"),
    "attacks": ("basic", "locality"),
    "policies": ("honest", "rr:0.5"),
}


def _cmd_frontier(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.analysis.frontier import compare_reports, frontier_report
    from repro.analysis.reporting import FigureResult
    from repro.defenses.obfuscate import parse_scheme
    from repro.scenarios.cells import KNOWN_ATTACKS
    from repro.service.shaping import parse_policy

    if args.smoke:
        datasets = _FRONTIER_SMOKE["datasets"]
        schemes = _FRONTIER_SMOKE["schemes"]
        attacks = _FRONTIER_SMOKE["attacks"]
        policies = _FRONTIER_SMOKE["policies"]
        service_schemes = ("mle",)
    else:
        datasets = _split(args.datasets, str)
        schemes = _split(args.schemes, str)
        attacks = _split(args.attacks, str)
        policies = _split(args.policies, str)
        service_schemes = _split(args.service_schemes, str)
    _validate_sweep_axes(datasets, schemes, attacks)
    try:
        for scheme in service_schemes:
            parse_scheme(scheme)
        for policy in policies:
            parse_policy(policy)
    except ConfigurationError as error:
        raise SystemExit(str(error)) from None
    for attack_name in attacks:
        if attack_name not in KNOWN_ATTACKS:
            raise SystemExit(f"unknown attack {attack_name!r}")

    report = frontier_report(
        datasets=datasets,
        schemes=schemes,
        attacks=attacks,
        policies=policies,
        service_schemes=service_schemes,
        tenants=args.tenants,
        seed=args.seed,
        jobs=args.jobs,
    )

    storage_result = FigureResult(
        figure="Frontier",
        title="storage axis: COUNT leakage vs. dedup loss",
        columns=[
            "dataset", "scheme", "attack", "inference_rate", "kld_bits",
            "storage_overhead", "stored_bytes",
        ],
    )
    storage_result.rows = [
        [row[column] for column in storage_result.columns]
        for row in report["storage"]
    ]
    print(render_table(storage_result))
    print()
    bandwidth_result = FigureResult(
        figure="Frontier",
        title="bandwidth axis: dedup-signal recall vs. padded transfer",
        columns=[
            "scheme", "policy", "dedup_signal_recall", "bandwidth_overhead",
            "mean_inference_rate", "transferred_bytes",
        ],
    )
    bandwidth_result.rows = [
        [row[column] for column in bandwidth_result.columns]
        for row in report["bandwidth"]
    ]
    print(render_table(bandwidth_result))
    for section in ("storage", "bandwidth"):
        for entry in report["monotonicity"][section]:
            verdict = "ok" if entry["non_increasing"] else "VIOLATED"
            label = ", ".join(
                f"{key}={value}"
                for key, value in entry.items()
                if isinstance(value, str)
            )
            print(
                f"monotone non-increasing [{label}]: {verdict}",
                file=sys.stderr,
            )

    output = args.output if args.output is not None else FRONTIER_OUTPUT
    if output != "-":
        with open(output, "w", encoding="utf-8") as handle:
            json_module.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote -> {output}", file=sys.stderr)
    if args.compare:
        with open(args.compare, encoding="utf-8") as handle:
            baseline = json_module.load(handle)
        drifts = compare_reports(report, baseline)
        if drifts:
            for drift in drifts:
                print(f"drift: {drift}", file=sys.stderr)
            return 1
        print(f"no drift vs {args.compare}", file=sys.stderr)
    return 0


def _cmd_storage(args: argparse.Namespace) -> int:
    if args.cache == "small":
        result = figure_drivers.fig13_metadata_small_cache()
        budget = SMALL_CACHE_BYTES
    else:
        result = figure_drivers.fig14_metadata_large_cache()
        budget = LARGE_CACHE_BYTES
    print(f"fingerprint cache budget: {format_size(budget)}")
    print(render_table(result))
    return 0


def _cmd_serve_sim(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.analysis.reporting import FigureResult
    from repro.service.simulate import (
        ATTACK_COLUMNS,
        ServiceConfig,
        service_report,
    )

    rounds = 2
    if args.requests is not None:
        rounds = max(1, args.requests // args.tenants)
    if not 0.0 <= args.duplication_factor <= 1.0:
        raise SystemExit(
            f"duplication factor {args.duplication_factor} must be in [0, 1]"
        )
    if not -1 <= args.auxiliary_tenant < args.tenants:
        raise SystemExit(
            f"auxiliary tenant {args.auxiliary_tenant} is outside the "
            f"population (use -1 for the population auxiliary, or a "
            f"tenant id below {args.tenants})"
        )
    backend = args.backend
    if backend == "sharded":
        backend = f"sharded:{args.shards}"
    backend_path = None
    if args.workdir is not None:
        from pathlib import Path

        if args.backend == "memory":
            raise SystemExit("--workdir requires a persistent --backend")
        workdir = Path(args.workdir)
        if workdir.is_file() or (
            workdir.is_dir() and any(workdir.iterdir())
        ):
            # A persisted index would dedup this run against a previous
            # run's chunks, silently breaking the same-seed determinism
            # guarantee the report makes.
            raise SystemExit(
                f"refusing to reuse non-empty --workdir {args.workdir!r}: "
                "a persisted index changes dedup results; use a fresh "
                "directory"
            )
        # The index persists *under* the directory, like attack
        # --workdir: a database file for sqlite/kvstore, a shard
        # directory for sharded.
        if args.backend == "sharded":
            backend_path = str(workdir / "index-shards")
        else:
            backend_path = str(workdir / "index.db")
    quota_bytes = (
        int(args.quota_mib * MiB) if args.quota_mib is not None else None
    )
    scheme = _scheme_spec(args)
    config = ServiceConfig(
        tenants=args.tenants,
        rounds=rounds,
        duplication_factor=args.duplication_factor,
        popularity_exponent=args.popularity_exponent,
        scheme=scheme,
        backend=backend,
        backend_path=backend_path,
        quota_bytes=quota_bytes,
        nodes=args.nodes,
        routing=args.routing,
        shaping=_shaping_spec(args),
        attack=args.attack,
        auxiliary_tenant=args.auxiliary_tenant,
        attack_targets=args.attack_targets,
        seed=args.seed,
    )
    report = service_report(config, jobs=args.jobs)
    traffic = report["traffic"]
    service = report["service"]
    overlap = report["side_channel"]["overlap"]
    tier = (
        f"nodes: {args.nodes} ({args.routing})  "
        if args.nodes > 1
        else ""
    )
    shaped = (
        f"shaping: {config.shaping}  " if config.shaping != "honest" else ""
    )
    print(
        f"tenants: {args.tenants}  rounds: {rounds}  scheme: {scheme}  "
        f"{tier}{shaped}backend: {backend}  seed: {args.seed}"
    )
    print(
        f"requests: {traffic['requests']} "
        f"({traffic['uploads']} uploads, {traffic['restores']} restores, "
        f"{traffic['rejected_uploads']} rejected)"
    )
    print(
        f"logical {format_size(service['logical_bytes'])}  "
        f"transferred {format_size(service['transferred_bytes'])}  "
        f"dedup ratio {service['dedup_ratio']:.2f}x  "
        f"cross-user dedup rate {service['cross_user_dedup_rate']:.2%}"
    )
    print(
        f"cross-tenant overlap: mean {overlap['mean']:.2%} "
        f"max {overlap['max']:.2%}"
    )
    attack = report["attack"]
    result = FigureResult(
        figure="Serve-sim",
        title=(
            f"{attack['name']} attack, "
            f"mean inference rate {attack['mean_inference_rate']:.2%}"
        ),
        columns=list(ATTACK_COLUMNS),
    )
    result.rows = [list(row) for row in attack["pairs"]]
    print(render_table(result))
    if args.nodes > 1:
        cluster = report["cluster"]
        skew = cluster["skew"]
        partial = cluster["partial_view"]
        print(
            f"cluster: {cluster['total_chunks']} chunks over "
            f"{cluster['nodes']} nodes  "
            f"imbalance {skew['imbalance']:.2f}x  cv {skew['cv']:.2f}"
        )
        print(
            f"partial view (node {partial['compromised_node']} "
            f"compromised): mean inference rate "
            f"{partial['mean_inference_rate']:.2%} "
            f"vs {attack['mean_inference_rate']:.2%} full view"
        )
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json_module.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote -> {args.json}", file=sys.stderr)
    return 0


def _cmd_serve_net(args: argparse.Namespace) -> int:
    import json as json_module
    import os
    import shutil
    import tempfile

    from repro.service.frontend import (
        FrontendConfig,
        FrontendServer,
        build_frontend,
        identity_check,
    )
    from repro.service.loadgen import RetryPolicy, replay_stream, run_loadgen
    from repro.service.simulate import ServiceConfig

    rounds = 2
    if args.requests is not None:
        rounds = max(1, args.requests // args.tenants)
    if not 0.0 <= args.duplication_factor <= 1.0:
        raise SystemExit(
            f"duplication factor {args.duplication_factor} must be in [0, 1]"
        )
    if args.identity and args.rate_limit > 0:
        raise SystemExit(
            "--identity needs admission disabled (--rate-limit 0): a "
            "throttled request would diverge from the simulator"
        )
    scheme = _scheme_spec(args)
    config = ServiceConfig(
        tenants=args.tenants,
        rounds=rounds,
        duplication_factor=args.duplication_factor,
        popularity_exponent=args.popularity_exponent,
        scheme=scheme,
        quota_bytes=(
            int(args.quota_mib * MiB) if args.quota_mib is not None else None
        ),
        nodes=args.nodes,
        routing=args.routing,
        shaping=_shaping_spec(args),
        seed=args.seed,
    )
    frontend = build_frontend(
        config,
        FrontendConfig(rate_limit=args.rate_limit, burst=args.burst),
    )
    scratch = None
    if args.port is not None:
        requested = ("tcp", "127.0.0.1", args.port)
    else:
        scratch = tempfile.mkdtemp(prefix="serve-net-")
        requested = ("unix", os.path.join(scratch, "frontend.sock"))
    tier = f"nodes: {args.nodes} ({args.routing})  " if args.nodes > 1 else ""
    try:
        with FrontendServer(frontend, requested) as address:
            where = (
                f"{address[1]}:{address[2]}"
                if address[0] == "tcp"
                else address[1]
            )
            shaped = (
                f"shaping: {config.shaping}  "
                if config.shaping != "honest"
                else ""
            )
            print(
                f"tenants: {args.tenants}  rounds: {rounds}  "
                f"scheme: {scheme}  {tier}{shaped}seed: {args.seed}  "
                f"listening: {address[0]}://{where}"
            )
            # Under a fault plan the clients must survive what it
            # injects: capped-backoff retries with idempotent re-HELLO
            # resume, seeded from the run seed so reruns are identical.
            retry = (
                RetryPolicy(seed=args.seed)
                if args.faults is not None
                else None
            )
            if args.identity:
                counts = replay_stream(address, config, retry=retry)
                report = {"mode": "identity", "replay": counts}
            else:
                report = run_loadgen(
                    address, config, processes=args.clients, retry=retry
                )
                report["mode"] = "loadgen"
            if obs.enabled():
                # Final server-side engine gauges (cache, bloom FPs,
                # metadata bytes) into the snapshot --metrics exports.
                frontend.service.publish_metrics()
    finally:
        if scratch is not None:
            shutil.rmtree(scratch, ignore_errors=True)
    injector = faults.active()
    if injector is not None:
        # Server-side injections (client processes count their own
        # retries into the report's "retries" section).
        report["faults"] = injector.summary()
    if args.identity:
        check = identity_check(frontend)
        report["identical"] = check["identical"]
        report["report"] = check["served"]
        counts = report["replay"]
        print(
            f"replayed {counts['requests']} requests in order "
            f"({counts['uploads']} uploads, {counts['restores']} restores, "
            f"{counts['rejected_uploads']} quota-rejected, "
            f"{counts['skipped_restores']} skipped restores)"
        )
        verdict = (
            "IDENTICAL to the in-process simulator"
            if check["identical"]
            else "DIVERGED from the in-process simulator"
        )
        print(f"served trace: {verdict}")
    else:
        latency = report["latency_ms"]
        print(
            f"clients: {report['processes']}  "
            f"sessions: {report['sessions']}  "
            f"requests: {report['requests']} ({report['ok']} ok)"
        )
        print(
            f"sustained {report['requests_per_s']:.0f} req/s over "
            f"{report['elapsed_s']:.2f}s  latency p50 {latency['p50']:.2f}ms "
            f"p99 {latency['p99']:.2f}ms max {latency['max']:.2f}ms"
        )
        if report["errors"]:
            print(
                "errors: "
                + "  ".join(
                    f"{code}={count}"
                    for code, count in report["errors"].items()
                )
            )
        retries = report.get("retries")
        if retries is not None:
            print(
                f"retries: {retries['retries']}  "
                f"reconnects: {retries['reconnects']}  "
                f"gave_up: {retries['gave_up']}"
            )
    if "faults" in report:
        fired = sum(
            site["fired"] for site in report["faults"]["sites"].values()
        )
        print(
            f"faults injected: {fired} "
            f"(plan seed {report['faults']['seed']})"
        )
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json_module.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote -> {args.json}", file=sys.stderr)
    return 0 if not args.identity or report["identical"] else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.analysis.hotpaths import DEFAULT_OUTPUT, run_and_report

    return run_and_report(
        quick=args.quick,
        repeats=args.repeats,
        output=args.output if args.output is not None else DEFAULT_OUTPUT,
        compare=args.compare,
        jobs=args.jobs,
    )


def _cmd_report(args: argparse.Namespace) -> int:
    import json as json_module
    from dataclasses import asdict

    from repro.analysis.summary import render_summary, summarize_results

    lines = summarize_results(args.results)
    if args.json:
        print(
            json_module.dumps(
                [asdict(line) for line in lines], indent=2, sort_keys=True
            )
        )
        return 0
    print(render_summary(lines))
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    from repro.obs.render import (
        diff_snapshots,
        load_snapshot,
        render_snapshot,
    )

    try:
        if args.obs_command == "render":
            print(render_snapshot(load_snapshot(args.snapshot)))
        else:
            print(
                diff_snapshots(
                    load_snapshot(args.left), load_snapshot(args.right)
                )
            )
    except (OSError, ConfigurationError) as error:
        raise SystemExit(f"obs: {error}") from None
    return 0


_HANDLERS = {
    "generate": _cmd_generate,
    "stats": _cmd_stats,
    "attack": _cmd_attack,
    "figure": _cmd_figure,
    "sweep": _cmd_sweep,
    "serve-sim": _cmd_serve_sim,
    "serve-net": _cmd_serve_net,
    "frontier": _cmd_frontier,
    "storage": _cmd_storage,
    "bench": _cmd_bench,
    "report": _cmd_report,
    "obs": _cmd_obs,
}


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    _obs_enable(args)
    _faults_install(args)
    try:
        return _HANDLERS[args.command](args)
    finally:
        faults.clear()
        _obs_export(args)


if __name__ == "__main__":
    sys.exit(main())
