"""Byte-size constants, parsing, and formatting.

The paper quotes sizes in binary units (4 KB chunks, 1 MB segments, 4 MB
containers, 512 MB / 4 GB caches); we follow the same convention and treat
``KB``/``MB``/``GB`` in user input as binary multiples.
"""

from __future__ import annotations

import re

from repro.common.errors import ConfigurationError

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB

_SUFFIXES = {
    "": 1,
    "b": 1,
    "k": KiB,
    "kb": KiB,
    "kib": KiB,
    "m": MiB,
    "mb": MiB,
    "mib": MiB,
    "g": GiB,
    "gb": GiB,
    "gib": GiB,
}

_SIZE_RE = re.compile(r"^\s*(\d+(?:\.\d+)?)\s*([a-zA-Z]*)\s*$")


def parse_size(text: str | int) -> int:
    """Parse a human size string such as ``"4MB"`` or ``"512 KiB"`` to bytes.

    Integers pass through unchanged. Raises :class:`ConfigurationError` on
    malformed input or unknown suffixes.
    """
    if isinstance(text, int):
        return text
    match = _SIZE_RE.match(text)
    if match is None:
        raise ConfigurationError(f"unparseable size: {text!r}")
    value, suffix = match.groups()
    factor = _SUFFIXES.get(suffix.lower())
    if factor is None:
        raise ConfigurationError(f"unknown size suffix in {text!r}")
    return int(float(value) * factor)


def format_size(num_bytes: int | float) -> str:
    """Render a byte count with a binary suffix, e.g. ``format_size(4 * MiB)
    == "4.0 MiB"``. Negative values keep their sign."""
    sign = "-" if num_bytes < 0 else ""
    value = abs(float(num_bytes))
    for suffix in ("B", "KiB", "MiB", "GiB", "TiB"):
        if value < 1024 or suffix == "TiB":
            if suffix == "B":
                return f"{sign}{int(value)} B"
            return f"{sign}{value:.1f} {suffix}"
        value /= 1024
    raise AssertionError("unreachable")
