"""Shared utilities: sizes, deterministic randomness, and error types."""

from repro.common.errors import (
    ReproError,
    ConfigurationError,
    IntegrityError,
    RateLimitExceeded,
    StorageError,
)
from repro.common.rng import derive_seed, rng_from
from repro.common.units import (
    KiB,
    MiB,
    GiB,
    format_size,
    parse_size,
)

__all__ = [
    "ReproError",
    "ConfigurationError",
    "IntegrityError",
    "RateLimitExceeded",
    "StorageError",
    "derive_seed",
    "rng_from",
    "KiB",
    "MiB",
    "GiB",
    "format_size",
    "parse_size",
]
