"""Gated optional-accelerator imports.

NumPy is an *optional* accelerator throughout the repo: every vectorized
fast path has a pure-Python fallback with byte-identical output (pinned by
property tests), so the package runs — just slower — on interpreters
without it. Import the gate from here so there is exactly one place that
decides whether the accelerator exists.
"""

from __future__ import annotations

try:  # pragma: no cover - trivially environment-dependent
    import numpy
except ImportError:  # pragma: no cover
    numpy = None  # type: ignore[assignment]


def available() -> bool:
    """Whether the numpy-backed fast paths can run."""
    return numpy is not None
