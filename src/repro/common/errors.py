"""Exception hierarchy for the freqdedup reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers embedding the library can catch a single base class.
"""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigurationError(ReproError, ValueError):
    """A component was constructed with invalid or inconsistent parameters."""


class IntegrityError(ReproError):
    """Stored data failed a consistency check (e.g. fingerprint mismatch)."""


class RateLimitExceeded(ReproError):
    """The server-aided MLE key manager refused a key request (DupLESS-style
    rate limiting that slows down online brute-force attacks, §2.2)."""


class StorageError(ReproError):
    """The deduplicated storage prototype hit an unrecoverable condition."""


class QuotaExceededError(ReproError):
    """A tenant's upload would exceed its logical-byte quota in the
    multi-tenant dedup service."""
