"""Deterministic randomness helpers.

Every stochastic component in the reproduction (dataset generators, the
scrambling defense, leakage sampling) takes an explicit seed so that each
experiment in EXPERIMENTS.md is exactly repeatable. ``derive_seed`` gives
independent child streams from a parent seed plus a string label, which
avoids the classic bug of reusing one ``random.Random`` across components
whose draw order then becomes load-bearing.
"""

from __future__ import annotations

import hashlib
import random

_SEED_BYTES = 8


def derive_seed(parent: int, *labels: object) -> int:
    """Derive a child seed from ``parent`` and a label path.

    The derivation hashes the parent seed and the ``repr`` of every label, so
    different labels give statistically independent streams while identical
    inputs always return the same seed.
    """
    hasher = hashlib.blake2b(digest_size=_SEED_BYTES)
    hasher.update(str(parent).encode())
    for label in labels:
        hasher.update(b"\x1f")
        hasher.update(repr(label).encode())
    return int.from_bytes(hasher.digest(), "big")


def rng_from(parent: int, *labels: object) -> random.Random:
    """Return a fresh :class:`random.Random` seeded via :func:`derive_seed`."""
    return random.Random(derive_seed(parent, *labels))
