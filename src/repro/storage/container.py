"""Container management (§7.4.1).

Deduplicated storage appends unique chunks in logical order into fixed-size
*containers* (4 MB in the paper) that serve as the basic on-disk read/write
units; chunk locality then means that chunks likely to be accessed together
sit in the same container, which is what makes step S4's whole-container
fingerprint prefetch effective.

Containers optionally carry chunk payloads (the content-level system stores
ciphertext bytes; the trace-driven prototype stores metadata only).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigurationError, StorageError
from repro.common.units import MiB


@dataclass(frozen=True)
class ContainerEntry:
    """One chunk stored in a container."""

    fingerprint: bytes
    size: int
    offset: int


@dataclass
class Container:
    """A sealed container: entries plus optional payload bytes."""

    container_id: int
    entries: list[ContainerEntry] = field(default_factory=list)
    payload: bytes = b""

    @property
    def num_chunks(self) -> int:
        return len(self.entries)

    @property
    def data_bytes(self) -> int:
        return sum(entry.size for entry in self.entries)

    def fingerprints(self) -> list[bytes]:
        return [entry.fingerprint for entry in self.entries]

    def read_chunk(self, fingerprint: bytes) -> bytes:
        """Payload bytes for ``fingerprint`` (content-level containers)."""
        for entry in self.entries:
            if entry.fingerprint == fingerprint:
                data = self.payload[entry.offset : entry.offset + entry.size]
                if len(data) != entry.size:
                    raise StorageError("container payload truncated")
                return data
        raise StorageError(f"chunk {fingerprint.hex()} not in container")


class ContainerStore:
    """Accumulates chunks into an open container and seals full ones."""

    def __init__(self, container_size: int = 4 * MiB, keep_payload: bool = False):
        if container_size <= 0:
            raise ConfigurationError("container_size must be positive")
        self.container_size = container_size
        self.keep_payload = keep_payload
        self.containers: dict[int, Container] = {}
        self._next_id = 0
        self._open_entries: list[ContainerEntry] = []
        self._open_payload: list[bytes] = []
        self._open_bytes = 0
        self._open_index: dict[bytes, int] = {}

    # -- writing -------------------------------------------------------------

    def append(self, fingerprint: bytes, size: int, data: bytes | None = None) -> int | None:
        """Buffer a unique chunk; returns the sealed container id if the
        buffer filled up and was flushed, else ``None``."""
        if self.keep_payload:
            if data is None:
                raise StorageError("payload-keeping store requires chunk data")
            if len(data) != size:
                raise StorageError("chunk data length disagrees with size")
        entry = ContainerEntry(
            fingerprint=fingerprint, size=size, offset=self._open_bytes
        )
        self._open_entries.append(entry)
        if self.keep_payload:
            self._open_payload.append(data if data is not None else b"")
        self._open_index[fingerprint] = size
        self._open_bytes += size
        if self._open_bytes >= self.container_size:
            return self.flush()
        return None

    def flush(self) -> int | None:
        """Seal the open container; returns its id, or None if empty."""
        if not self._open_entries:
            return None
        container = Container(
            container_id=self._next_id,
            entries=self._open_entries,
            payload=b"".join(self._open_payload) if self.keep_payload else b"",
        )
        self.containers[container.container_id] = container
        self._next_id += 1
        self._open_entries = []
        self._open_payload = []
        self._open_bytes = 0
        self._open_index = {}
        return container.container_id

    # -- reading -------------------------------------------------------------

    def in_open_buffer(self, fingerprint: bytes) -> bool:
        """Whether the chunk is buffered but not yet sealed (duplicate
        suppression must consider these too, or back-to-back duplicates
        would be double-stored)."""
        return fingerprint in self._open_index

    def get(self, container_id: int) -> Container:
        try:
            return self.containers[container_id]
        except KeyError:
            raise StorageError(f"unknown container {container_id}") from None

    @property
    def num_containers(self) -> int:
        return len(self.containers)

    @property
    def open_chunks(self) -> int:
        """Chunks buffered in the open (unsealed) container."""
        return len(self._open_entries)

    def stored_bytes(self) -> int:
        sealed = sum(c.data_bytes for c in self.containers.values())
        return sealed + self._open_bytes
