"""Deduplicated storage substrate: the DDFS-like prototype (§7.4) and the
end-to-end encrypted deduplication system (Figure 2).

* :class:`DDFSEngine` — steps S1–S4 with metered metadata access.
* :class:`ContainerStore` / :class:`Container` — 4 MB container layout.
* :class:`OnDiskFingerprintIndex` — byte-metered fingerprint index.
* :class:`FileRecipe` — restore-order chunk references.
* :class:`EncryptedDedupSystem` — full content-level client/server path.
"""

from repro.storage.container import Container, ContainerEntry, ContainerStore
from repro.storage.ddfs import DDFSEngine
from repro.storage.fingerprint_index import OnDiskFingerprintIndex
from repro.storage.gc import GCReport, ReferenceTracker, collect_garbage
from repro.storage.metrics import BackupWriteReport, MetadataAccessStats
from repro.storage.recipes import ChunkRef, FileRecipe
from repro.storage.restore_sim import RestoreReport, simulate_restore
from repro.storage.system import EncryptedDedupSystem, StoredFile

__all__ = [
    "Container",
    "ContainerEntry",
    "ContainerStore",
    "DDFSEngine",
    "OnDiskFingerprintIndex",
    "GCReport",
    "ReferenceTracker",
    "collect_garbage",
    "BackupWriteReport",
    "MetadataAccessStats",
    "ChunkRef",
    "FileRecipe",
    "RestoreReport",
    "simulate_restore",
    "EncryptedDedupSystem",
    "StoredFile",
]
