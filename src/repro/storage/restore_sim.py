"""Restore-path locality simulation (§6.2's read-performance argument).

The paper argues scrambling barely affects restore performance: it permutes
chunks only *within segments* (≤ 2 MB), while containers — the physical
read unit — are larger (4 MB), so the chunk→container layout, and hence the
number of container reads during a sequential restore, barely changes.

:func:`simulate_restore` replays a backup's *logical* chunk order (the
order a file-recipe-driven restore fetches chunks in) against the container
layout produced by the DDFS engine, with an LRU cache of open containers,
and counts container reads. Comparing deterministic MLE with the combined
defense quantifies the claim; the ``bench_ablation_restore_locality``
benchmark asserts it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.datasets.model import Backup
from repro.index.cache import LRUCache
from repro.storage.ddfs import DDFSEngine


@dataclass(frozen=True)
class RestoreReport:
    """Outcome of one simulated sequential restore."""

    label: str
    chunks_read: int
    container_reads: int
    container_switches: int
    containers_in_layout: int

    @property
    def reads_per_mib_factor(self) -> float:
        """Container reads per chunk — the paper's read-amplification
        proxy (lower is better; 1/chunks-per-container is optimal)."""
        if self.chunks_read == 0:
            return 0.0
        return self.container_reads / self.chunks_read


def simulate_restore(
    engine: DDFSEngine,
    backup: Backup,
    cache_containers: int = 4,
) -> RestoreReport:
    """Replay a sequential restore of ``backup`` against ``engine``.

    Args:
        engine: a DDFS engine that already ingested the backup (and
            possibly others); its index and containers define the layout.
        backup: the *logical-order* chunk sequence to restore. With
            scrambling, this is the original pre-scramble order from the
            file recipes — the upload order differs, the restore order
            does not.
        cache_containers: how many open containers the restore client
            caches (restore clients stage a handful of container buffers).
    """
    if cache_containers <= 0:
        raise ConfigurationError("cache_containers must be positive")
    open_containers: LRUCache[int, bool] = LRUCache(cache_containers)
    container_reads = 0
    container_switches = 0
    previous_container: int | None = None
    touched: set[int] = set()
    for fingerprint in backup.fingerprints:
        container_id = engine.index.container_of(fingerprint)
        if container_id is None:
            raise ConfigurationError(
                f"chunk {fingerprint.hex()} was never stored; ingest the "
                "backup before simulating its restore"
            )
        touched.add(container_id)
        if container_id != previous_container:
            if previous_container is not None:
                container_switches += 1
            previous_container = container_id
        if open_containers.get(container_id) is None:
            container_reads += 1
            open_containers.put(container_id, True)
    return RestoreReport(
        label=backup.label,
        chunks_read=len(backup.fingerprints),
        container_reads=container_reads,
        container_switches=container_switches,
        containers_in_layout=len(touched),
    )
