"""End-to-end encrypted deduplication system (Figure 2's architecture).

Combines every substrate into the full client/server path the paper
assumes:

* client side — content-defined chunking, MLE (convergent or server-aided)
  or MinHash encryption, optional scrambling, recipe management;
* server side — the DDFS-like engine deduplicating ciphertext chunks into
  containers.

This is the content-level system used by the examples and integration
tests (store a file, evolve it, restore it byte-identically under every
defense scheme); the trace-driven evaluation uses the fingerprint-level
pipelines instead (§7.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chunking.base import Chunker
from repro.chunking.gear import GearChunker
from repro.common.errors import ConfigurationError, StorageError
from repro.common.rng import rng_from
from repro.common.units import MiB
from repro.crypto.mle import CiphertextChunk, KeyRecipe, MLEScheme
from repro.defenses.minhash import MinHashEncryptor
from repro.defenses.scramble import DEQUE, scramble_indices
from repro.defenses.segmentation import SegmentationSpec, segment_stream
from repro.storage.ddfs import DDFSEngine
from repro.storage.recipes import FileRecipe


@dataclass
class StoredFile:
    """Client-side handle for a stored file (recipes sealed in practice)."""

    recipe: FileRecipe
    keys: KeyRecipe


class EncryptedDedupSystem:
    """A single-node encrypted deduplication system.

    Args:
        scheme: the MLE scheme handling chunk encryption plumbing.
        chunker: content-defined chunker (defaults to gear CDC, 8 KB avg).
        use_minhash: derive keys per segment (MinHash encryption, §6.1)
            instead of per chunk (deterministic MLE).
        use_scramble: scramble the upload order within segments (§6.2).
        segmentation: segment bounds for the defenses.
        scramble_seed: determinises scrambling.
        cache_budget_bytes / bloom_capacity / container_size: DDFS engine
            configuration.
        index_backend: backend for the server's fingerprint index — a
            :class:`~repro.index.backends.KVBackend` instance, a spec
            string (``"memory"``, ``"sqlite"``, ``"sharded[:N]"``, …), or
            ``None`` for the default in-process store. Lets the same
            system spill its index to disk or shard it without touching
            the dedup logic.
        index_path: where a spec-string ``index_backend`` persists (a
            spec string without a path stays in process memory).
    """

    def __init__(
        self,
        scheme: MLEScheme,
        chunker: Chunker | None = None,
        use_minhash: bool = False,
        use_scramble: bool = False,
        segmentation: SegmentationSpec | None = None,
        scramble_seed: int = 0,
        cache_budget_bytes: int = 4 * MiB,
        bloom_capacity: int = 1_000_000,
        container_size: int = 4 * MiB,
        index_backend=None,
        index_path=None,
    ):
        if use_scramble and not use_minhash:
            # Scramble-only is supported for ablations, but it still needs
            # segmentation; MinHash-off just keeps per-chunk keys.
            pass
        self.scheme = scheme
        self.chunker = chunker or GearChunker()
        self.use_minhash = use_minhash
        self.use_scramble = use_scramble
        self.segmentation = segmentation or SegmentationSpec.scaled()
        self.scramble_seed = scramble_seed
        self.engine = DDFSEngine(
            cache_budget_bytes=cache_budget_bytes,
            bloom_capacity=bloom_capacity,
            container_size=container_size,
            keep_payload=True,
            index_backend=index_backend,
            index_path=index_path,
        )
        # When the MLE scheme is server-aided, MinHash segment keys come
        # from the same key manager (one query per segment, §6.1).
        self._minhash = MinHashEncryptor(
            scheme=scheme,
            key_manager=getattr(scheme, "key_manager", None),
            spec=self.segmentation,
        )
        self._file_counter = 0

    # -- store path -----------------------------------------------------------

    def put_file(self, filename: str, data: bytes) -> StoredFile:
        """Chunk, encrypt, (optionally) scramble, and deduplicate a file.

        Args:
            filename: client-side name recorded in the file recipe.
            data: the file contents (empty files are stored as one empty
                chunk so they restore byte-identically).

        Returns:
            A :class:`StoredFile` holding the chunk recipe and the key
            recipe — everything :meth:`get_file` needs to restore the
            file. The server never sees either.
        """
        plaintext_chunks = [chunk.data for chunk in self.chunker.split(data)]
        if not plaintext_chunks:
            plaintext_chunks = [b""] if data == b"" else plaintext_chunks

        ciphertexts, keys = self._encrypt(plaintext_chunks)

        recipe = FileRecipe(filename=filename)
        for chunk in ciphertexts:
            recipe.add(chunk.tag, chunk.size)

        for chunk in self._upload_order(ciphertexts, plaintext_chunks):
            self.engine.process_chunk(chunk.tag, chunk.size, chunk.data)
        self._file_counter += 1
        return StoredFile(recipe=recipe, keys=keys)

    def _encrypt(
        self, plaintext_chunks: list[bytes]
    ) -> tuple[list[CiphertextChunk], KeyRecipe]:
        if self.use_minhash:
            segments, keys = self._minhash.encrypt_stream(plaintext_chunks)
            ciphertexts = [
                chunk for segment in segments for chunk in segment.ciphertexts
            ]
            return ciphertexts, keys
        keys = KeyRecipe()
        ciphertexts = []
        for plaintext in plaintext_chunks:
            chunk, key = self.scheme.encrypt_chunk(plaintext)
            ciphertexts.append(chunk)
            keys.add(key)
        return ciphertexts, keys

    def _upload_order(
        self,
        ciphertexts: list[CiphertextChunk],
        plaintext_chunks: list[bytes],
    ) -> list[CiphertextChunk]:
        if not self.use_scramble:
            return ciphertexts
        fingerprints = [
            self.scheme.fingerprinter(chunk) for chunk in plaintext_chunks
        ]
        sizes = [len(chunk) for chunk in plaintext_chunks]
        segments = segment_stream(fingerprints, sizes, self.segmentation)
        rng = rng_from(self.scramble_seed, "system-scramble", self._file_counter)
        ordered: list[CiphertextChunk] = []
        for segment in segments:
            order = scramble_indices(len(segment), rng, DEQUE)
            ordered.extend(
                ciphertexts[segment.start + offset] for offset in order
            )
        return ordered

    # -- restore path ----------------------------------------------------------

    def get_file(self, stored: StoredFile) -> bytes:
        """Restore a file from its recipes, verifying chunk integrity.

        Args:
            stored: the handle returned by :meth:`put_file`. Call
                :meth:`flush` first if the file was stored since the last
                container seal, otherwise trailing chunks are still in the
                open container buffer.

        Returns:
            The original plaintext bytes.

        Raises:
            ConfigurationError: if the chunk and key recipes disagree.
            StorageError: if a referenced chunk is missing from the
                fingerprint index.
            IntegrityError: if a restored chunk fails tag verification.
        """
        if len(stored.recipe) != len(stored.keys):
            raise ConfigurationError("recipe/key length mismatch")
        pieces: list[bytes] = []
        for ref, key in zip(stored.recipe.chunks, stored.keys.keys):
            container_id = self.engine.index.container_of(ref.tag)
            if container_id is None:
                raise StorageError(
                    f"chunk {ref.tag.hex()} missing from the fingerprint index"
                )
            container = self.engine.containers.get(container_id)
            data = container.read_chunk(ref.tag)
            chunk = CiphertextChunk(data=data, tag=ref.tag)
            pieces.append(self.scheme.decrypt_chunk(chunk, key))
        return b"".join(pieces)

    # -- bookkeeping -----------------------------------------------------------

    def flush(self) -> None:
        """Seal the open container so every stored chunk is restorable."""
        self.engine.finish_backup()

    @property
    def stored_bytes(self) -> int:
        """Physical bytes in sealed containers (post-deduplication)."""
        return self.engine.containers.stored_bytes()
