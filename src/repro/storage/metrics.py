"""Metadata-access accounting (§7.4.2).

The DDFS prototype's deduplication performance is dominated by on-disk
metadata access, which the paper splits into three categories:

* **update access** — writing the metadata of newly stored unique chunks to
  the on-disk fingerprint index (steps S2/S3);
* **index access** — looking up the on-disk fingerprint index to confirm a
  Bloom-filter hit (step S3);
* **loading access** — reading a whole container's fingerprints into the
  in-memory fingerprint cache after an index hit (step S4).

All three are measured in bytes of metadata moved, at a configurable
per-fingerprint entry size (32 B in the paper's evaluation).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs


@dataclass
class MetadataAccessStats:
    """Byte counters for one backup's worth of deduplication."""

    update_bytes: int = 0
    index_bytes: int = 0
    loading_bytes: int = 0

    @property
    def total_bytes(self) -> int:
        return self.update_bytes + self.index_bytes + self.loading_bytes

    def add(self, other: "MetadataAccessStats") -> None:
        self.update_bytes += other.update_bytes
        self.index_bytes += other.index_bytes
        self.loading_bytes += other.loading_bytes

    def breakdown(self) -> dict[str, int]:
        return {
            "update": self.update_bytes,
            "index": self.index_bytes,
            "loading": self.loading_bytes,
        }


@dataclass
class BackupWriteReport:
    """Outcome of deduplicating one backup stream (Figures 13/14 rows)."""

    label: str
    total_chunks: int = 0
    unique_chunks: int = 0
    duplicate_chunks: int = 0
    logical_bytes: int = 0
    stored_bytes: int = 0
    containers_written: int = 0
    bloom_false_positives: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    metadata: MetadataAccessStats = field(default_factory=MetadataAccessStats)

    @property
    def dedup_ratio(self) -> float:
        if self.stored_bytes == 0:
            return 0.0
        return self.logical_bytes / self.stored_bytes


def publish_engine_metrics(engine, **labels) -> None:
    """Surface one engine's running totals in the metrics registry.

    Publishes the S1 cache hit/miss totals, the engine-lifetime bloom
    false positives, and the §7.4.2 metadata-access byte breakdown as
    **gauges** (absolute running totals — republishing is idempotent and
    merging worker snapshots takes the high-water mark).  Labels
    (``node=2``) distinguish cluster nodes.  No-op while metrics are off.
    """
    if not obs.enabled():
        return
    obs.gauge("ddfs.cache.hits", engine.cache.hits, **labels)
    obs.gauge("ddfs.cache.misses", engine.cache.misses, **labels)
    obs.gauge(
        "ddfs.bloom.false_positives", engine.bloom_false_positives, **labels
    )
    for category, moved in engine.index.stats.breakdown().items():
        obs.gauge("ddfs.metadata_bytes", moved, access=category, **labels)
