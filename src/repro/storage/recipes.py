"""File recipes (§2.1, §6.2).

A file recipe lists the chunk references of a file *in the file's original
chunk order*, so the file can be reconstructed regardless of how the storage
system deduplicated, scrambled, or containerised the chunks. Together with
the (conventionally encrypted) key recipe it is all a client needs to
restore: fetch each ciphertext chunk by fingerprint, decrypt with the
corresponding key, concatenate.

Scrambling (§6.2) permutes only the *upload order*; the recipe retains the
logical order, which is why restores are unaffected by the defense.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.common.errors import IntegrityError
from repro.crypto.cipher import BlockCipher
from repro.crypto.primitives import hkdf_expand


@dataclass(frozen=True)
class ChunkRef:
    """Reference to one stored ciphertext chunk."""

    tag: bytes
    size: int


@dataclass
class FileRecipe:
    """Ordered chunk references for one file."""

    filename: str
    chunks: list[ChunkRef] = field(default_factory=list)

    def add(self, tag: bytes, size: int) -> None:
        self.chunks.append(ChunkRef(tag=tag, size=size))

    def __len__(self) -> int:
        return len(self.chunks)

    @property
    def logical_bytes(self) -> int:
        return sum(ref.size for ref in self.chunks)

    # Recipes hold the map from ciphertext chunks back to file layout, so
    # they are stored under the user's own key (threat model §3.3: the
    # adversary cannot read any recipe).

    def seal(self, user_secret: bytes) -> bytes:
        payload = json.dumps(
            {
                "filename": self.filename,
                "chunks": [[ref.tag.hex(), ref.size] for ref in self.chunks],
            }
        ).encode()
        return BlockCipher().encrypt(
            hkdf_expand(user_secret, b"file-recipe"), payload
        )

    @classmethod
    def unseal(cls, sealed: bytes, user_secret: bytes) -> "FileRecipe":
        payload = BlockCipher().decrypt(
            hkdf_expand(user_secret, b"file-recipe"), sealed
        )
        try:
            doc = json.loads(payload.decode())
            recipe = cls(filename=doc["filename"])
            for tag_hex, size in doc["chunks"]:
                recipe.add(bytes.fromhex(tag_hex), int(size))
        except (KeyError, ValueError, UnicodeDecodeError) as exc:
            raise IntegrityError("file recipe payload corrupt") from exc
        return recipe
