"""DDFS-like deduplication engine (§7.4.1).

Implements the paper's four-step deduplication workflow for each incoming
(ciphertext) chunk:

* **S1** — check the in-memory fingerprint cache; a hit means duplicate.
* **S2** — if the Bloom filter does not contain the fingerprint, the chunk
  is definitely unique: update the filter, buffer the chunk into the open
  container, and, when the container fills, seal it and write its metadata
  to the on-disk fingerprint index (update access).
* **S3** — a Bloom hit may be a false positive, so query the on-disk index
  (index access); a miss routes back to S2.
* **S4** — an index hit confirms a duplicate: load the fingerprints of the
  whole container holding the chunk into the cache (loading access),
  banking on chunk locality to turn the following chunks into S1 hits.

The engine processes whole backups and emits one
:class:`~repro.storage.metrics.BackupWriteReport` per backup — exactly the
series Figures 13/14 plot for MLE vs the combined defense.
"""

from __future__ import annotations

from repro.common.errors import ConfigurationError
from repro.common.units import MiB
from repro.datasets.model import Backup
from repro.index.bloom import BloomFilter
from repro.index.cache import FingerprintCache
from repro.storage.container import ContainerStore
from repro.storage.fingerprint_index import OnDiskFingerprintIndex
from repro.storage.metrics import BackupWriteReport


class DDFSEngine:
    """Locality-aware deduplication engine with metered metadata access.

    Args:
        cache_budget_bytes: fingerprint-cache memory budget (the paper
            evaluates an insufficient and a sufficient size).
        bloom_capacity: expected number of unique fingerprints.
        bloom_fpr: Bloom filter false-positive target (0.01 in the paper).
        container_size: container payload size (4 MB in the paper).
        entry_bytes: metadata bytes per fingerprint entry (32 B).
        keep_payload: retain chunk payloads for the restore path.
        index_backend: backend for the on-disk fingerprint index — a
            :class:`~repro.index.backends.KVBackend` instance, a spec
            string (``"memory"``, ``"sqlite"``, ``"sharded[:N]"``, …), or
            ``None`` for the default in-process store.
        index_path: where a spec-string ``index_backend`` persists; a
            spec string without a path stays in process memory.
    """

    def __init__(
        self,
        cache_budget_bytes: int,
        bloom_capacity: int,
        bloom_fpr: float = 0.01,
        container_size: int = 4 * MiB,
        entry_bytes: int = 32,
        keep_payload: bool = False,
        index_backend=None,
        index_path=None,
    ):
        if bloom_capacity <= 0:
            raise ConfigurationError("bloom_capacity must be positive")
        self.cache = FingerprintCache(cache_budget_bytes, entry_bytes)
        self.bloom = BloomFilter(bloom_capacity, bloom_fpr)
        self.containers = ContainerStore(container_size, keep_payload)
        self.index = OnDiskFingerprintIndex(
            entry_bytes, store=index_backend, path=index_path
        )
        self._pending_container_fingerprints: list[bytes] = []
        # Engine-lifetime bloom false positives (per-backup reports reset
        # their own counter; the service path has no report, so telemetry
        # reads this running total instead).
        self.bloom_false_positives = 0

    # -- chunk path -----------------------------------------------------------

    def process_chunk(
        self,
        fingerprint: bytes,
        size: int,
        data: bytes | None = None,
        report: BackupWriteReport | None = None,
    ) -> bool:
        """Deduplicate one chunk; returns True if it was stored (unique)."""
        if report is not None:
            report.total_chunks += 1
            report.logical_bytes += size

        # S1: in-memory fingerprint cache (plus the open container buffer,
        # so duplicates of not-yet-sealed chunks are not double-stored).
        if self.cache.lookup(fingerprint) is not None:
            if report is not None:
                report.duplicate_chunks += 1
                report.cache_hits += 1
            return False
        if report is not None:
            report.cache_misses += 1
        if self.containers.in_open_buffer(fingerprint):
            if report is not None:
                report.duplicate_chunks += 1
            return False

        # S2: definite-unique fast path via the Bloom filter.
        if fingerprint not in self.bloom:
            self._store_unique(fingerprint, size, data, report)
            return True

        # S3: possible duplicate — confirm against the on-disk index.
        container_id = self.index.lookup(fingerprint)
        if container_id is None:
            self.bloom_false_positives += 1
            if report is not None:
                report.bloom_false_positives += 1
            self._store_unique(fingerprint, size, data, report)
            return True

        # S4: confirmed duplicate — prefetch the whole container's
        # fingerprints into the cache (chunk locality).
        self._load_container(container_id)
        if report is not None:
            report.duplicate_chunks += 1
        return False

    def _store_unique(
        self,
        fingerprint: bytes,
        size: int,
        data: bytes | None,
        report: BackupWriteReport | None,
    ) -> None:
        self.bloom.add(fingerprint)
        self._pending_container_fingerprints.append(fingerprint)
        sealed = self.containers.append(fingerprint, size, data)
        if report is not None:
            report.unique_chunks += 1
            report.stored_bytes += size
        if sealed is not None:
            self.index.update_batch(self._pending_container_fingerprints, sealed)
            self._pending_container_fingerprints = []
            if report is not None:
                report.containers_written += 1

    def ingest_unique_batch(
        self,
        fingerprints: list[bytes],
        sizes: list[int],
        report: BackupWriteReport | None = None,
    ) -> None:
        """Store a batch of *distinct* chunks the dedup response already
        resolved as unique (not cached, not buffered, not indexed) — the
        multi-tenant service's transfer path.

        Dedup decisions and metered index/update bytes are identical to
        feeding each chunk through :meth:`process_chunk`: every chunk is
        definitely stored, a bloom false positive still charges one
        (batched) index probe, and container seals flush index updates
        at the same points — but the whole batch runs one bound loop
        instead of a full S1–S4 method chain per chunk. The S1 cache is
        *not* consulted (the dedup response already probed it while
        resolving the needed-set), so the engine's cache hit/miss
        counters — and a report's ``cache_misses`` — advance only on the
        per-chunk path.
        """
        bloom = self.bloom
        bloom_add = bloom.add
        containers_append = self.containers.append
        pending = self._pending_container_fingerprints
        probes = 0
        sealed_containers = 0
        stored_bytes = 0
        for fingerprint, size in zip(fingerprints, sizes):
            if fingerprint in bloom:
                # S3 would confirm "not a duplicate" against the on-disk
                # index; the probe is still metered even though its
                # outcome is known.
                probes += 1
            bloom_add(fingerprint)
            pending.append(fingerprint)
            sealed = containers_append(fingerprint, size, None)
            stored_bytes += size
            if sealed is not None:
                self.index.update_batch(pending, sealed)
                pending = self._pending_container_fingerprints = []
                sealed_containers += 1
        if probes:
            self.index.charge_index_probes(probes)
            self.bloom_false_positives += probes
        if report is not None:
            report.total_chunks += len(fingerprints)
            report.logical_bytes += stored_bytes
            report.unique_chunks += len(fingerprints)
            report.stored_bytes += stored_bytes
            report.bloom_false_positives += probes
            report.containers_written += sealed_containers

    def _load_container(self, container_id: int) -> None:
        container = self.containers.get(container_id)
        self.index.charge_loading(container.num_chunks)
        for entry in container.entries:
            self.cache.insert(entry.fingerprint, container_id)

    def prefetch_container(self, container_id: int) -> None:
        """Step S4 for front-ends that confirm duplicates themselves (the
        multi-tenant service's batched dedup response): load the whole
        container's fingerprints into the cache, charging loading access."""
        self._load_container(container_id)

    # -- backup path ----------------------------------------------------------

    def finish_backup(self, report: BackupWriteReport | None = None) -> None:
        """Seal the open container at a backup boundary."""
        sealed = self.containers.flush()
        if sealed is not None:
            self.index.update_batch(self._pending_container_fingerprints, sealed)
            self._pending_container_fingerprints = []
            if report is not None:
                report.containers_written += 1

    def process_backup(self, backup: Backup) -> BackupWriteReport:
        """Deduplicate a whole backup stream and report metadata access."""
        report = BackupWriteReport(label=backup.label)
        hits_before = self.cache.hits
        misses_before = self.cache.misses
        for fingerprint, size in zip(backup.fingerprints, backup.sizes):
            self.process_chunk(fingerprint, size, report=report)
        self.finish_backup(report)
        report.metadata = self.index.take_stats()
        report.cache_hits = self.cache.hits - hits_before
        report.cache_misses = self.cache.misses - misses_before
        return report

    def process_series(self, backups: list[Backup]) -> list[BackupWriteReport]:
        """Deduplicate a whole backup series in creation order."""
        return [self.process_backup(backup) for backup in backups]
