"""Backup deletion and garbage collection for deduplicated storage.

Deduplication makes deletion non-trivial: a chunk may be referenced by many
backups, so removing one backup can only reclaim chunks no *other* backup
references. This module adds the standard mark-free machinery on top of the
DDFS engine:

* :class:`ReferenceTracker` — per-chunk reference counts registered per
  backup (the information file recipes provide in a full system);
* :func:`collect_garbage` — identifies dead chunks after deletions and
  reclaims *whole containers* whose live-byte ratio falls below a
  threshold, rewriting their surviving chunks into fresh containers
  (copy-forward compaction, as deployed in DDFS-lineage systems [23]).

The DSN paper does not evaluate GC, but a production encrypted-dedup
deployment needs it, and it interacts with the defenses: MinHash variants
increase the number of chunks that become dead when old backups expire.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.common.errors import ConfigurationError, StorageError
from repro.datasets.model import Backup
from repro.storage.ddfs import DDFSEngine


@dataclass
class GCReport:
    """Outcome of one garbage-collection pass."""

    containers_scanned: int = 0
    containers_reclaimed: int = 0
    chunks_dead: int = 0
    chunks_copied_forward: int = 0
    bytes_reclaimed: int = 0
    bytes_copied_forward: int = 0


@dataclass
class ReferenceTracker:
    """Reference counts of stored chunks, registered per backup."""

    _counts: Counter = field(default_factory=Counter)
    _backups: dict[str, list[bytes]] = field(default_factory=dict)

    def register_backup(self, backup: Backup) -> None:
        """Register every chunk occurrence of a stored backup."""
        if backup.label in self._backups:
            raise ConfigurationError(
                f"backup {backup.label!r} already registered"
            )
        self._backups[backup.label] = list(backup.fingerprints)
        self._counts.update(backup.fingerprints)

    def delete_backup(self, label: str) -> int:
        """Drop a backup's references; returns chunks that became dead."""
        try:
            fingerprints = self._backups.pop(label)
        except KeyError:
            raise StorageError(f"unknown backup {label!r}") from None
        died = 0
        for fingerprint in fingerprints:
            self._counts[fingerprint] -= 1
            if self._counts[fingerprint] == 0:
                del self._counts[fingerprint]
                died += 1
        return died

    def is_live(self, fingerprint: bytes) -> bool:
        return self._counts[fingerprint] > 0

    def live_chunks(self) -> int:
        return len(self._counts)

    def registered_backups(self) -> list[str]:
        return list(self._backups)


def collect_garbage(
    engine: DDFSEngine,
    tracker: ReferenceTracker,
    live_ratio_threshold: float = 0.5,
) -> GCReport:
    """Reclaim containers whose live-data ratio dropped below the threshold.

    Containers above the threshold are left alone (their dead chunks are
    tolerated — the classic space/IO trade-off); containers below it have
    their live chunks copied forward into the open container and are then
    dropped. The fingerprint index is updated for moved chunks.
    """
    if not 0.0 < live_ratio_threshold <= 1.0:
        raise ConfigurationError("live_ratio_threshold must be in (0, 1]")
    report = GCReport()
    store = engine.containers
    for container_id in sorted(store.containers):
        container = store.containers[container_id]
        report.containers_scanned += 1
        live_entries = [
            entry
            for entry in container.entries
            if tracker.is_live(entry.fingerprint)
        ]
        dead_entries = len(container.entries) - len(live_entries)
        live_bytes = sum(entry.size for entry in live_entries)
        total_bytes = container.data_bytes
        if total_bytes == 0 or live_bytes / total_bytes >= live_ratio_threshold:
            continue
        # Unindex the dead chunks first: their Bloom-filter bits cannot be
        # cleared, so a future re-write of the same content must fall
        # through S3's index miss into the unique path instead of chasing
        # a reclaimed container.
        for entry in container.entries:
            if not tracker.is_live(entry.fingerprint):
                engine.index.remove(entry.fingerprint)
        # Copy-forward the survivors, then drop the container.
        for entry in live_entries:
            data = (
                container.read_chunk(entry.fingerprint)
                if store.keep_payload
                else None
            )
            engine._pending_container_fingerprints.append(entry.fingerprint)
            sealed = store.append(entry.fingerprint, entry.size, data)
            if sealed is not None:
                engine.index.update_batch(
                    engine._pending_container_fingerprints, sealed
                )
                engine._pending_container_fingerprints = []
            report.chunks_copied_forward += 1
            report.bytes_copied_forward += entry.size
        del store.containers[container_id]
        report.containers_reclaimed += 1
        report.chunks_dead += dead_entries
        report.bytes_reclaimed += total_bytes - live_bytes
    # Seal whatever copy-forward left open so the index stays complete.
    sealed = store.flush()
    if sealed is not None:
        engine.index.update_batch(
            engine._pending_container_fingerprints, sealed
        )
        engine._pending_container_fingerprints = []
    return report
