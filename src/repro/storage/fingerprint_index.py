"""On-disk fingerprint index with byte-metered access (§7.4.1).

The fingerprint index maps every stored chunk's fingerprint to the container
holding its physical copy. It grows with the number of unique chunks, so the
prototype keeps it "on disk" — behind any
:class:`~repro.index.backends.KVBackend` — and meters every access in bytes
of metadata moved (``entry_bytes`` per fingerprint entry, 32 B in the
paper's configuration), which is the quantity Figures 13/14 report.
"""

from __future__ import annotations

import struct

from repro.common.errors import ConfigurationError
from repro.index.backends import KVBackend, open_backend
from repro.index.kvstore import KVStore
from repro.storage.metrics import MetadataAccessStats

_CONTAINER_ID = struct.Struct(">q")


class OnDiskFingerprintIndex:
    """Byte-metered fingerprint → container-id index.

    Args:
        entry_bytes: metered metadata bytes per fingerprint entry.
        store: the backend holding the index — a
            :class:`~repro.index.backends.KVBackend` instance, a backend
            spec string for :func:`~repro.index.backends.open_backend`
            (``"memory"``, ``"sqlite"``, ``"sharded[:N]"``, …), or ``None``
            for the default in-process store.
        path: where a spec-string backend persists (file for ``sqlite``,
            directory for ``sharded``); without it, spec-string backends
            stay in process memory.
    """

    def __init__(
        self,
        entry_bytes: int = 32,
        store: KVBackend | str | None = None,
        path: str | None = None,
    ):
        self.entry_bytes = entry_bytes
        if store is None:
            if path is not None:
                raise ConfigurationError(
                    "path requires a backend spec string (e.g. 'sqlite')"
                )
            store = KVStore()
        elif isinstance(store, str):
            store = open_backend(store, path)
        elif path is not None:
            raise ConfigurationError(
                "pass either a backend instance or a spec string with a "
                "path, not both"
            )
        self._store = store
        self.stats = MetadataAccessStats()

    def __len__(self) -> int:
        return len(self._store)

    def lookup(self, fingerprint: bytes) -> int | None:
        """Query the on-disk index (index access, step S3)."""
        self.stats.index_bytes += self.entry_bytes
        raw = self._store.get(fingerprint)
        if raw is None:
            return None
        return _CONTAINER_ID.unpack(raw)[0]

    def lookup_batch(self, fingerprints) -> dict[bytes, int]:
        """Batched index probe: one metered access per fingerprint, one
        round through the backend (the dedup-response path of the
        multi-tenant service).  Returns only the fingerprints found."""
        store_get = self._store.get
        found: dict[bytes, int] = {}
        probed = 0
        for fingerprint in fingerprints:
            probed += 1
            raw = store_get(fingerprint)
            if raw is not None:
                found[fingerprint] = _CONTAINER_ID.unpack(raw)[0]
        self.stats.index_bytes += self.entry_bytes * probed
        return found

    def update_batch(self, fingerprints: list[bytes], container_id: int) -> None:
        """Record a sealed container's chunks (update access, steps S2/S3)."""
        packed = _CONTAINER_ID.pack(container_id)
        self._store.put_batch((fp, packed) for fp in fingerprints)
        self.stats.update_bytes += self.entry_bytes * len(fingerprints)

    def container_of(self, fingerprint: bytes) -> int | None:
        """Unmetered lookup (restore path / tests)."""
        raw = self._store.get(fingerprint)
        if raw is None:
            return None
        return _CONTAINER_ID.unpack(raw)[0]

    def remove(self, fingerprint: bytes) -> bool:
        """Drop a fingerprint's entry (garbage collection); returns whether
        it was present."""
        return self._store.delete(fingerprint)

    def charge_index_probes(self, num_probes: int) -> None:
        """Meter ``num_probes`` index accesses whose outcome the caller
        already knows (the batched unique-ingest path: a bloom false
        positive still costs one on-disk probe, it just doesn't need the
        answer round-tripped per chunk)."""
        self.stats.index_bytes += self.entry_bytes * num_probes

    def charge_loading(self, num_fingerprints: int) -> None:
        """Meter a whole-container fingerprint prefetch (loading access,
        step S4)."""
        self.stats.loading_bytes += self.entry_bytes * num_fingerprints

    def take_stats(self) -> MetadataAccessStats:
        """Return and reset the accumulated counters."""
        stats = self.stats
        self.stats = MetadataAccessStats()
        return stats

    def close(self) -> None:
        """Flush and release the underlying backend (idempotent)."""
        self._store.close()
