"""On-disk fingerprint index with byte-metered access (§7.4.1).

The fingerprint index maps every stored chunk's fingerprint to the container
holding its physical copy. It grows with the number of unique chunks, so the
prototype keeps it "on disk" — here a :class:`~repro.index.kvstore.KVStore`
— and meters every access in bytes of metadata moved (``entry_bytes`` per
fingerprint entry, 32 B in the paper's configuration), which is the quantity
Figures 13/14 report.
"""

from __future__ import annotations

import struct

from repro.index.kvstore import KVStore
from repro.storage.metrics import MetadataAccessStats

_CONTAINER_ID = struct.Struct(">q")


class OnDiskFingerprintIndex:
    """Byte-metered fingerprint → container-id index."""

    def __init__(
        self,
        entry_bytes: int = 32,
        store: KVStore | None = None,
    ):
        self.entry_bytes = entry_bytes
        self._store = store if store is not None else KVStore()
        self.stats = MetadataAccessStats()

    def __len__(self) -> int:
        return len(self._store)

    def lookup(self, fingerprint: bytes) -> int | None:
        """Query the on-disk index (index access, step S3)."""
        self.stats.index_bytes += self.entry_bytes
        raw = self._store.get(fingerprint)
        if raw is None:
            return None
        return _CONTAINER_ID.unpack(raw)[0]

    def update_batch(self, fingerprints: list[bytes], container_id: int) -> None:
        """Record a sealed container's chunks (update access, steps S2/S3)."""
        packed = _CONTAINER_ID.pack(container_id)
        for fingerprint in fingerprints:
            self._store.put(fingerprint, packed)
        self.stats.update_bytes += self.entry_bytes * len(fingerprints)

    def container_of(self, fingerprint: bytes) -> int | None:
        """Unmetered lookup (restore path / tests)."""
        raw = self._store.get(fingerprint)
        if raw is None:
            return None
        return _CONTAINER_ID.unpack(raw)[0]

    def remove(self, fingerprint: bytes) -> bool:
        """Drop a fingerprint's entry (garbage collection); returns whether
        it was present."""
        return self._store.delete(fingerprint)

    def charge_loading(self, num_fingerprints: int) -> None:
        """Meter a whole-container fingerprint prefetch (loading access,
        step S4)."""
        self.stats.loading_bytes += self.entry_bytes * num_fingerprints

    def take_stats(self) -> MetadataAccessStats:
        """Return and reset the accumulated counters."""
        stats = self.stats
        self.stats = MetadataAccessStats()
        return stats
