"""End-to-end service simulation: traffic → service → meter → report.

:func:`simulate` drives one :class:`~repro.service.traffic.TrafficModel`
stream through a :class:`~repro.service.server.DedupService` under a
:class:`~repro.service.meter.SideChannelMeter` and memoises the resulting
:class:`ServiceTrace` per process — the same economics as the canonical
workload registry (:mod:`repro.analysis.workloads`): the parent process
(or each forked worker) pays for a given configuration at most once.

:func:`service_report` is what ``freqdedup serve-sim`` and the throughput
benchmark share: it assembles a fully deterministic, JSON-serializable
report and runs the cross-tenant attack pairs through the scenario
engine's :class:`~repro.scenarios.runner.Runner` (cells of kind
``service_attack``, see :mod:`repro.service.cells`), so ``--jobs N``
fans the attacks out across processes with byte-identical output.

:func:`service_grid_cells` is the grid axis for scenario sweeps: one
``service`` cell per (tenants × popularity-skew × duplication-factor)
combination, each returning the simulation's headline metrics as a row.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from dataclasses import dataclass, replace

from repro import obs
from repro.common.errors import QuotaExceededError
from repro.scenarios.spec import Cell, Tags
from repro.service.meter import SideChannelMeter
from repro.service.server import DedupService
from repro.service.traffic import (
    RESTORE,
    UPLOAD,
    TrafficConfig,
    TrafficModel,
)


@dataclass(frozen=True)
class ServiceConfig:
    """One full service experiment: population, service, and attack knobs.

    Frozen and built from primitives only, so a config is hashable (the
    :func:`simulate` memoisation key) and its fields embed directly into
    scenario-cell params (the cache identity).
    """

    tenants: int = 20
    rounds: int = 2
    files_per_tenant: int = 12
    mean_file_chunks: int = 16
    duplication_factor: float = 0.5
    popularity_exponent: float = 1.5
    num_templates: int = 40
    modify_fraction: float = 0.25
    churn: float = 0.2
    restore_probability: float = 0.1
    popular_rate: float = 0.08
    scheme: str = "mle"
    backend: str = "memory"
    backend_path: str | None = None
    quota_bytes: int | None = None
    # Storage-tier shape: 1 node serves from one shared engine (the
    # pre-cluster service, byte-identical reports); N > 1 fronts a
    # DedupCluster of N engines behind the chosen routing policy.
    nodes: int = 1
    routing: str = "ring"
    # Dedup-response shaping policy spec ("honest", "rr:p",
    # "quantize:bytes"); "honest" is the pre-shaping protocol and is
    # elided from report config echoes, keeping them byte-identical.
    shaping: str = "honest"
    attack: str = "advanced"
    u: int = 1
    v: int = 15
    w: int = 200_000
    # The adversary's prior knowledge: -1 evaluates the curious-provider
    # model (population auxiliary: everything every other tenant uploaded,
    # the journal extension's strongest multi-tenant adversary); a tenant
    # id evaluates the curious-tenant model (that tenant's last upload).
    auxiliary_tenant: int = -1
    attack_targets: int = 4
    seed: int = 0


CONFIG_FIELDS = tuple(
    field.name for field in dataclasses.fields(ServiceConfig)
)


def config_params(config: ServiceConfig) -> Tags:
    """The config as sorted ``(field, value)`` pairs (cell params)."""
    return tuple(sorted(dataclasses.asdict(config).items()))


def config_from_params(params: dict) -> ServiceConfig:
    """Rebuild a config from cell params (extra keys are ignored)."""
    return ServiceConfig(
        **{name: params[name] for name in CONFIG_FIELDS if name in params}
    )


@dataclass
class ServiceTrace:
    """Everything one simulated service run produced."""

    config: ServiceConfig
    service: DedupService
    meter: SideChannelMeter
    rejected_uploads: int = 0
    skipped_restores: int = 0


def _traffic_config(config: ServiceConfig) -> TrafficConfig:
    return TrafficConfig(
        tenants=config.tenants,
        rounds=config.rounds,
        files_per_tenant=config.files_per_tenant,
        mean_file_chunks=config.mean_file_chunks,
        duplication_factor=config.duplication_factor,
        popularity_exponent=config.popularity_exponent,
        num_templates=config.num_templates,
        modify_fraction=config.modify_fraction,
        churn=config.churn,
        restore_probability=config.restore_probability,
        popular_rate=config.popular_rate,
    )


# Per-process traffic memo: the synthesized request stream depends only on
# (seed, TrafficConfig), not on the service/backend/attack knobs, so one
# stream serves every backend variant of the same population (the
# throughput bench sweeps three backends over identical traffic). Requests
# are treated read-only by the service, so sharing the list is safe.
_TRAFFIC_CACHE: OrderedDict[tuple[int, TrafficConfig], list] = OrderedDict()
_TRAFFIC_CACHE_SIZE = 4


def synthesize_requests(seed: int, traffic: TrafficConfig) -> list:
    """The deterministic request stream for one population (memoised)."""
    key = (seed, traffic)
    requests = _TRAFFIC_CACHE.get(key)
    if requests is None:
        requests = TrafficModel(seed=seed, config=traffic).requests()
        _TRAFFIC_CACHE[key] = requests
        while len(_TRAFFIC_CACHE) > _TRAFFIC_CACHE_SIZE:
            _TRAFFIC_CACHE.popitem(last=False)
    else:
        _TRAFFIC_CACHE.move_to_end(key)
    return requests


# Per-process trace memo.  A plain lru_cache would evict traces without
# releasing their index backends (an open file/connection for sqlite and
# sharded stores), so eviction closes the evicted trace's service.
_TRACE_CACHE: OrderedDict[ServiceConfig, ServiceTrace] = OrderedDict()
_TRACE_CACHE_SIZE = 4


def _evict_trace(trace: ServiceTrace) -> None:
    trace.service.close()


def simulate(config: ServiceConfig) -> ServiceTrace:
    """Run the full simulation for ``config`` (memoised per process).

    At most :data:`_TRACE_CACHE_SIZE` traces stay resident; the least-
    recently-used one is closed (open container sealed, index backend
    released) on eviction, so grid sweeps over many configs don't leak
    backend handles.
    """
    trace = _TRACE_CACHE.get(config)
    if trace is not None:
        _TRACE_CACHE.move_to_end(config)
        return trace
    trace = _simulate(config)
    _TRACE_CACHE[config] = trace
    while len(_TRACE_CACHE) > _TRACE_CACHE_SIZE:
        _, evicted = _TRACE_CACHE.popitem(last=False)
        _evict_trace(evicted)
    return trace


def _clear_trace_cache() -> None:
    """Close and drop every memoised trace (bench/test hook)."""
    while _TRACE_CACHE:
        _, evicted = _TRACE_CACHE.popitem(last=False)
        _evict_trace(evicted)


# Keep the lru_cache-style hook the throughput bench uses.
simulate.cache_clear = _clear_trace_cache


def traffic_requests(config: ServiceConfig) -> list:
    """The (memoised) request stream behind ``config``'s population."""
    return synthesize_requests(config.seed, _traffic_config(config))


def build_service(config: ServiceConfig) -> DedupService:
    """The service a config describes (shared with the socket frontend).

    The in-process simulator and the framed-socket frontend both build
    their service through this one constructor call, which is half of
    the identity argument: same config, same engine knobs, so any
    divergence between the two can only come from the serving order.
    """
    return DedupService(
        scheme=config.scheme,
        index_backend=config.backend,
        index_path=config.backend_path,
        default_quota_bytes=config.quota_bytes,
        seed=config.seed,
        nodes=config.nodes,
        routing=config.routing,
        shaping=config.shaping,
    )


def _simulate(config: ServiceConfig) -> ServiceTrace:
    requests = traffic_requests(config)
    service = build_service(config)
    meter = SideChannelMeter(scheme=service.scheme)
    trace = ServiceTrace(config=config, service=service, meter=meter)
    for request in requests:
        if request.kind == UPLOAD:
            try:
                result = service.upload(
                    request.tenant, request.backup, label=request.label
                )
            except QuotaExceededError:
                trace.rejected_uploads += 1
                continue
            meter.observe_upload(request, result)
        else:
            # A quota-rejected upload leaves no recipe to restore from.
            if not service.has_upload(request.tenant, request.restore_label):
                trace.skipped_restores += 1
                continue
            observables, _ = service.restore(
                request.tenant, request.restore_label
            )
            meter.observe_restore(observables)
    return trace


# -- cross-tenant attack pairs ---------------------------------------------

ATTACK_COLUMNS = (
    "auxiliary_tenant",
    "target_tenant",
    "auxiliary",
    "target",
    "overlap",
    "inference_rate",
    "precision",
)


def attack_pairs(config: ServiceConfig) -> tuple[tuple[int, int], ...]:
    """The evaluated (auxiliary tenant, target tenant) pairs.

    Population mode (``auxiliary_tenant == -1``): the first
    ``attack_targets`` tenants are victims of the curious provider.
    Tenant mode: the configured tenant is the curious insider, the first
    ``attack_targets`` *other* tenants are victims.
    """
    auxiliary = config.auxiliary_tenant
    if auxiliary < 0:
        victims = range(min(config.tenants, config.attack_targets))
        return tuple((-1, target) for target in victims)
    victims = [
        tenant for tenant in range(config.tenants) if tenant != auxiliary
    ]
    return tuple(
        (auxiliary, target)
        for target in victims[: config.attack_targets]
    )


def pair_served(
    meter: SideChannelMeter, auxiliary_tenant: int, target_tenant: int
) -> bool:
    """Whether both ends of an attack pair completed at least one upload.

    A pair that fails this check (e.g. every upload was quota-rejected)
    scores a zero row instead of failing — the shared convention of
    :func:`evaluate_pair` and :func:`cluster_report`, which keeps
    reports over throttled populations deterministic and comparable.
    """
    auxiliary = None if auxiliary_tenant < 0 else auxiliary_tenant
    served = set(meter.tenants())
    return target_tenant in served and (
        auxiliary is None or auxiliary in served
    )


def evaluate_pair(
    trace: ServiceTrace, auxiliary_tenant: int, target_tenant: int
) -> dict[str, object]:
    """Score one cross-tenant attack on a simulated trace
    (``auxiliary_tenant == -1`` selects the population auxiliary).

    Pairs that fail :func:`pair_served` score a zero row (see there).
    """
    from repro.scenarios.cells import build_attack

    config = trace.config
    meter = trace.meter
    auxiliary = None if auxiliary_tenant < 0 else auxiliary_tenant
    if not pair_served(meter, auxiliary_tenant, target_tenant):
        return {
            "auxiliary_tenant": auxiliary_tenant,
            "target_tenant": target_tenant,
            "auxiliary": "-",
            "target": "-",
            "overlap": 0.0,
            "inference_rate": 0.0,
            "precision": 0.0,
            "correct_pairs": 0,
            "inferred_pairs": 0,
            "unique_ciphertext_chunks": 0,
        }
    attack = build_attack(config.attack, config.u, config.v, config.w)
    report = meter.evaluate(attack, auxiliary, target_tenant)
    return {
        "auxiliary_tenant": auxiliary_tenant,
        "target_tenant": target_tenant,
        "auxiliary": report.auxiliary_label,
        "target": report.target_label,
        "overlap": round(trace.meter.overlap(auxiliary, target_tenant), 4),
        "inference_rate": round(report.inference_rate, 5),
        "precision": round(report.precision, 5),
        "correct_pairs": report.correct_pairs,
        "inferred_pairs": report.inferred_pairs,
        "unique_ciphertext_chunks": report.unique_ciphertext_chunks,
    }


def attack_cells(config: ServiceConfig) -> tuple[Cell, ...]:
    """One ``service_attack`` cell per cross-tenant pair."""
    base = dict(config_params(config))
    cells = []
    for auxiliary_tenant, target_tenant in attack_pairs(config):
        params = dict(base)
        params["auxiliary_tenant"] = auxiliary_tenant
        params["target_tenant"] = target_tenant
        cells.append(
            Cell(
                kind="service_attack",
                params=tuple(sorted(params.items())),
                tags=(
                    ("auxiliary_tenant", auxiliary_tenant),
                    ("target_tenant", target_tenant),
                ),
            )
        )
    return tuple(cells)


# -- headline metrics and the JSON report -----------------------------------


def headline_metrics(trace: ServiceTrace) -> dict[str, object]:
    """Service-wide totals plus the side-channel headline numbers.

    ``cross_user_dedup_rate`` measures leakage-relevant deduplication:
    over round-0 uploads (each tenant's first, so the store holds no own
    history), the fraction of *unique-chunk* bytes the server already
    had.  Using unique bytes excludes intra-upload self-duplicates — a
    tenant's own repeated content — which are deduplicated too but leak
    nothing across users; a single-tenant population scores 0.
    """
    uploads = [
        record
        for record in trace.meter.observables
        if record.kind == UPLOAD
    ]
    restores = [
        record
        for record in trace.meter.observables
        if record.kind == RESTORE
    ]
    logical = sum(record.logical_bytes for record in uploads)
    transferred = sum(record.transferred_bytes for record in uploads)
    metadata = sum(record.metadata_bytes for record in trace.meter.observables)
    round0 = [
        record
        for round_index, record in trace.meter.upload_records()
        if round_index == 0
    ]
    round0_unique = sum(record.unique_bytes for record in round0)
    round0_transferred = sum(record.transferred_bytes for record in round0)
    return {
        "uploads": len(uploads),
        "restores": len(restores),
        "logical_bytes": logical,
        "transferred_bytes": transferred,
        "deduped_bytes": logical - transferred,
        "metadata_bytes": metadata,
        "dedup_ratio": round(logical / transferred, 4) if transferred else 0.0,
        "cross_user_dedup_rate": round(
            1.0 - round0_transferred / round0_unique, 4
        )
        if round0_unique
        else 0.0,
        "unique_chunks_stored": trace.service.unique_chunks_stored(),
    }


def cluster_report(
    trace: ServiceTrace, compromised_node: int = 0
) -> dict[str, object]:
    """The clustered run's extra report section (``nodes > 1`` only).

    Per-node load/bandwidth/skew metering from
    :meth:`~repro.cluster.cluster.DedupCluster.load_report`, plus the
    partial-view attack rows: the configured attack pairs re-run with
    the adversary demoted from the whole store to ``compromised_node``'s
    shard (:meth:`~repro.service.meter.SideChannelMeter.evaluate_partial`).
    Computed in the calling process — deterministic at any ``jobs``.
    """
    from repro.scenarios.cells import build_attack

    config = trace.config
    cluster = trace.service.cluster
    report = cluster.load_report()
    attack = build_attack(config.attack, config.u, config.v, config.w)
    pairs = []
    rates = []
    for auxiliary_tenant, target_tenant in attack_pairs(config):
        auxiliary = None if auxiliary_tenant < 0 else auxiliary_tenant
        if not pair_served(trace.meter, auxiliary_tenant, target_tenant):
            # Zero-row convention shared with evaluate_pair (pair_served).
            pairs.append(
                {
                    "auxiliary_tenant": auxiliary_tenant,
                    "target_tenant": target_tenant,
                    "shard_fraction": 0.0,
                    "inference_rate": 0.0,
                }
            )
            rates.append(0.0)
            continue
        view = trace.meter.evaluate_partial(
            attack,
            auxiliary,
            target_tenant,
            cluster.router,
            compromised_node,
        )
        pairs.append(
            {
                "auxiliary_tenant": auxiliary_tenant,
                "target_tenant": target_tenant,
                "shard_fraction": round(view.shard_fraction, 5),
                "inference_rate": round(view.report.inference_rate, 5),
            }
        )
        rates.append(view.report.inference_rate)
    report["partial_view"] = {
        "compromised_node": compromised_node,
        "pairs": pairs,
        "mean_inference_rate": round(sum(rates) / len(rates), 5)
        if rates
        else 0.0,
    }
    return report


def service_report(
    config: ServiceConfig, jobs: int = 1, cache=None
) -> dict[str, object]:
    """The full deterministic report behind ``freqdedup serve-sim``.

    The simulation itself runs (memoised) in the calling process; the
    cross-tenant attack pairs run as ``service_attack`` cells through the
    scenario :class:`~repro.scenarios.runner.Runner`, whose spec-order
    merge makes the report byte-identical at any ``jobs`` value (forked
    workers inherit the memoised trace and only pay for their attacks).

    Single-node configs produce the exact pre-cluster report (the
    ``nodes``/``routing`` keys are elided from the config echo and no
    ``cluster`` section appears), so existing pinned reports stay
    byte-identical.  Clustered configs add a ``cluster`` section: per-
    node load and skew, rebalance history, and the partial-view attack
    rows for the default compromised node.
    """
    from repro.scenarios.runner import Runner, rows_from

    trace = simulate(config)
    if obs.enabled():
        # Engine-lifetime gauges (cache hit/miss, bloom FPs, metadata
        # bytes) for the --metrics snapshot; a no-op on the pinned
        # report itself.
        trace.service.publish_metrics()
    results = Runner(jobs=jobs, cache=cache).run_cells(
        list(attack_cells(config))
    )
    rows = rows_from(results, ATTACK_COLUMNS)
    return trace_report(trace, rows)


def trace_report(
    trace: ServiceTrace, rows: list[list[object]]
) -> dict[str, object]:
    """Assemble the full report dict from a trace and its attack rows.

    This is the body of :func:`service_report` with the attack-pair
    execution factored out: the CLI path feeds rows fanned out through
    the scenario :class:`~repro.scenarios.runner.Runner`, while
    :func:`inline_report` (the socket frontend's identity mode) feeds
    rows evaluated inline on an arbitrary trace.  Both paths produce the
    identical structure, so served and simulated traces compare
    byte-for-byte with ``json.dumps``.
    """
    config = trace.config
    meter = trace.meter
    rate_index = ATTACK_COLUMNS.index("inference_rate")
    rates = [row[rate_index] for row in rows]
    service_totals = headline_metrics(trace)
    config_echo = dict(config_params(config))
    if config.nodes == 1:
        # Keep single-node reports byte-identical to the pre-cluster
        # service: the tier shape only appears once it is non-trivial.
        del config_echo["nodes"]
        del config_echo["routing"]
    if config.shaping == "honest":
        # Same elision discipline for response shaping: the honest
        # policy is the pre-shaping protocol, so its key only appears
        # once a run actually shapes.
        del config_echo["shaping"]
    report = {
        "config": config_echo,
        "traffic": {
            "requests": len(meter.observables)
            + trace.rejected_uploads
            + trace.skipped_restores,
            "uploads": service_totals.pop("uploads"),
            "restores": service_totals.pop("restores"),
            "rejected_uploads": trace.rejected_uploads,
            "skipped_restores": trace.skipped_restores,
        },
        "service": service_totals,
        "tenants": [
            trace.service.tenant_usage(tenant)
            for tenant in trace.service.tenants()
        ],
        "side_channel": {
            "bandwidth_signal": meter.bandwidth_signal(),
            "overlap": meter.overlap_summary(),
        },
        "attack": {
            "name": config.attack,
            "columns": list(ATTACK_COLUMNS),
            "pairs": rows,
            "mean_inference_rate": round(sum(rates) / len(rates), 5)
            if rates
            else 0.0,
        },
    }
    if config.nodes > 1:
        report["cluster"] = cluster_report(trace)
    return report


def inline_report(trace: ServiceTrace) -> dict[str, object]:
    """The full report for an *arbitrary* trace, attack pairs inline.

    :func:`service_report` only works for traces the simulator can
    rebuild from a config (its attack cells re-simulate in workers).
    A trace served through the socket frontend exists once, in one
    process, so its attack pairs run inline here instead — through the
    same :func:`evaluate_pair` the ``service_attack`` cells execute,
    projected onto :data:`ATTACK_COLUMNS` exactly like the runner's
    ``rows_from`` merge.  For a simulated trace the two paths are
    byte-identical, which is what lets the differential tests compare a
    served trace against ``service_report`` output with ``json.dumps``.
    """
    rows = [
        [
            evaluate_pair(trace, auxiliary_tenant, target_tenant)[column]
            for column in ATTACK_COLUMNS
        ]
        for auxiliary_tenant, target_tenant in attack_pairs(trace.config)
    ]
    return trace_report(trace, rows)


# -- scenario grid axis ------------------------------------------------------

SERVICE_GRID_COLUMNS = (
    "tenants",
    "popularity_exponent",
    "duplication_factor",
    "cross_user_dedup_rate",
    "dedup_ratio",
    "mean_overlap",
    "mean_inference_rate",
)


def service_grid_cells(
    base: ServiceConfig | None = None,
    tenants: tuple[int, ...] | None = None,
    popularity_exponents: tuple[float, ...] | None = None,
    duplication_factors: tuple[float, ...] | None = None,
) -> tuple[Cell, ...]:
    """Expand a tenants × popularity-skew × duplication-factor grid into
    ``service`` cells (one full simulation each; row columns are
    :data:`SERVICE_GRID_COLUMNS`).  Run them with the scenario
    :class:`~repro.scenarios.runner.Runner` like any other cells."""
    base = base if base is not None else ServiceConfig()
    tenants = tenants if tenants is not None else (base.tenants,)
    popularity_exponents = (
        popularity_exponents
        if popularity_exponents is not None
        else (base.popularity_exponent,)
    )
    duplication_factors = (
        duplication_factors
        if duplication_factors is not None
        else (base.duplication_factor,)
    )
    cells = []
    for num_tenants in tenants:
        for exponent in popularity_exponents:
            for factor in duplication_factors:
                config = replace(
                    base,
                    tenants=num_tenants,
                    popularity_exponent=exponent,
                    duplication_factor=factor,
                )
                cells.append(
                    Cell(
                        kind="service",
                        params=config_params(config),
                        tags=(
                            ("tenants", num_tenants),
                            ("popularity_exponent", exponent),
                            ("duplication_factor", factor),
                        ),
                    )
                )
    return tuple(cells)
