"""Blocking protocol client and the multi-process load generator.

Two consumers of the wire protocol live here:

* :class:`FrontendClient` — a small blocking client over a plain
  ``socket``, used by the replay/identity path, the load-generator
  workers, the CLI, the benchmarks, and (via :meth:`send_raw`) the
  protocol-robustness tests.
* :func:`run_loadgen` — replays a :class:`ServiceConfig`'s synthesized
  ``TrafficModel`` stream against a running frontend from N **client
  processes**.  Tenants are partitioned round-robin across workers and
  each worker opens one connection per *(tenant, round)* — a tenant
  session, the unit the acceptance numbers count — measuring
  per-request wall latency.  Workers re-synthesize the (memoised)
  request stream from the config instead of shipping backups through
  pickles, so fan-out cost stays flat in trace size.

:func:`replay_stream` is the other replay mode: one connection sending
the *interleaved* stream in exact order — the serving order the
simulator uses — which is what identity mode needs.
"""

from __future__ import annotations

import math
import socket
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro import faults, obs
from repro.common.errors import StorageError
from repro.datasets.model import Backup
from repro.service import protocol as wire
from repro.service.simulate import ServiceConfig, traffic_requests
from repro.service.traffic import UPLOAD


@dataclass(frozen=True)
class RetryPolicy:
    """Capped-exponential retry for the frame client.

    ``attempts`` is the total number of tries per request; backoff
    before retry *i* is :func:`repro.faults.backoff_delay` of attempt
    ``i`` — capped exponential with jitter drawn deterministically from
    ``(seed, request id, attempt)``, so retried runs stay reproducible.
    """

    attempts: int = 5
    backoff_base: float = 0.01
    backoff_cap: float = 0.25
    seed: int = 0

    def delay(self, attempt: int, key: str) -> float:
        return faults.backoff_delay(
            attempt,
            base=self.backoff_base,
            cap=self.backoff_cap,
            seed=self.seed,
            key=key,
        )


class GaveUpError(StorageError):
    """A request exhausted its retry budget without a final answer."""


class FrontendClient:
    """A blocking client speaking the framed protocol.

    Args:
        address: ``("unix", path)`` or ``("tcp", host, port)``.
        timeout: socket timeout in seconds for connect/send/recv.

    With a :class:`RetryPolicy` (:meth:`request_with_retry`), a dropped
    connection or fatal transport answer triggers reconnect + re-HELLO
    (sessions are stateless beyond the handshake, so resume is just a
    new handshake) and an idempotent resend: the request carries a
    client-unique ``rid`` the server uses to replay the original
    response if the first send actually executed.  ``retries``,
    ``reconnects`` and ``gave_up`` count the policy's work.
    """

    def __init__(self, address, timeout: float = 30.0):
        self.address = address
        self.timeout = timeout
        self.retries = 0
        self.reconnects = 0
        self.gave_up = 0
        self._hello_client: str | None = None
        self._connect()

    def _connect(self) -> None:
        address = self.address
        if address[0] == "unix":
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(self.timeout)
            self._sock.connect(address[1])
        elif address[0] == "tcp":
            self._sock = socket.create_connection(
                (address[1], address[2]), timeout=self.timeout
            )
        else:
            raise StorageError(f"unknown address kind {address[0]!r}")

    def reconnect(self) -> None:
        """Tear down the socket and resume: fresh connection, re-HELLO."""
        try:
            self._sock.close()
        except OSError:
            pass
        self._connect()
        self.reconnects += 1
        if self._hello_client is not None:
            self.hello(self._hello_client)

    # -- raw transport (the robustness tests poke the framing layer) --------

    def send_raw(self, data: bytes) -> None:
        """Send arbitrary bytes — deliberately unframed."""
        self._sock.sendall(data)

    def recv_exact(self, count: int) -> bytes:
        chunks = []
        while count > 0:
            chunk = self._sock.recv(count)
            if not chunk:
                raise ConnectionError("server closed the connection")
            chunks.append(chunk)
            count -= len(chunk)
        return b"".join(chunks)

    def recv_frame(self) -> tuple[int, dict]:
        """Read one response frame; returns ``(kind, payload)``."""
        (length,) = wire.HEADER.unpack(self.recv_exact(wire.HEADER_BYTES))
        return wire.decode_body(self.recv_exact(length))

    # -- framed requests ----------------------------------------------------

    def request(self, kind: int, payload: dict) -> tuple[int, dict]:
        """Send one frame and read one response."""
        self._sock.sendall(wire.encode_frame(kind, payload))
        return self.recv_frame()

    def request_with_retry(
        self, kind: int, payload: dict, policy: RetryPolicy, rid: str
    ) -> tuple[int, dict]:
        """Send idempotently under ``policy``: retry lost connections.

        The payload is stamped with ``rid`` so a resend after a lost
        *response* replays the server's remembered answer instead of
        re-executing.  A fatal transport answer (the server closes the
        connection after it) also retries — the session is gone either
        way.  Raises :class:`GaveUpError` after the attempt budget.
        """
        payload = dict(payload)
        payload["rid"] = rid
        failure: Exception | None = None
        for attempt in range(max(1, policy.attempts)):
            if attempt:
                self.retries += 1
                time.sleep(policy.delay(attempt - 1, rid))
                try:
                    self.reconnect()
                except (OSError, StorageError) as error:
                    failure = error
                    continue
            try:
                drop = faults.fire("client.drop", rid=rid)
                if drop is not None:
                    # Injected client-side connection loss: kill our
                    # half mid-request, exactly like a flaky network.
                    self._sock.close()
                    raise ConnectionError("injected client-side drop")
                corrupt = faults.fire("client.corrupt", rid=rid)
                if corrupt is not None:
                    # Injected stream corruption: a header claiming an
                    # absurd frame.  The server answers a fatal
                    # oversized_frame and closes; recover by retrying.
                    self.send_raw(wire.HEADER.pack(0xFFFFFFF))
                    self.recv_frame()
                    raise ConnectionError("injected corrupt frame")
                response_kind, response = self.request(kind, payload)
            except (ConnectionError, OSError) as error:
                failure = error
                continue
            if (
                response_kind == wire.ERROR
                and response.get("code") in wire.FATAL_CODES
            ):
                failure = ConnectionError(
                    f"fatal server answer: {response.get('code')}"
                )
                continue
            return response_kind, response
        self.gave_up += 1
        raise GaveUpError(
            f"request {rid} gave up after {policy.attempts} attempts: "
            f"{failure}"
        )

    def hello(self, client: str = "freqdedup-loadgen") -> dict:
        self._hello_client = client
        kind, payload = self.request(wire.HELLO, wire.hello_payload(client))
        if kind != wire.OK:
            raise StorageError(
                f"HELLO refused: {payload.get('code')}: "
                f"{payload.get('message')}"
            )
        return payload

    def hello_with_retry(self, client: str, policy: RetryPolicy) -> dict:
        """HELLO under ``policy``: a dropped handshake reconnects and
        re-greets.  HELLO opens no state worth replaying, so a plain
        resend on a fresh connection is already idempotent."""
        failure: Exception | None = None
        for attempt in range(max(1, policy.attempts)):
            if attempt:
                self.retries += 1
                time.sleep(policy.delay(attempt - 1, "hello"))
                try:
                    self._sock.close()
                except OSError:
                    pass
                try:
                    self._connect()
                    self.reconnects += 1
                except OSError as error:
                    failure = error
                    continue
            try:
                return self.hello(client)
            except (ConnectionError, OSError) as error:
                failure = error
        self.gave_up += 1
        raise GaveUpError(
            f"HELLO gave up after {policy.attempts} attempts: {failure}"
        )

    def upload(
        self, tenant: int, round_index: int, label: str, backup: Backup
    ) -> tuple[int, dict]:
        return self.request(
            wire.UPLOAD_BATCH,
            wire.upload_payload(tenant, round_index, label, backup),
        )

    def restore(self, tenant: int, label: str) -> tuple[int, dict]:
        return self.request(wire.RESTORE, wire.restore_payload(tenant, label))

    def stats(self) -> dict:
        kind, payload = self.request(wire.STATS, {})
        if kind != wire.OK:
            raise StorageError(f"STATS failed: {payload}")
        return payload

    def close(self, polite: bool = True) -> None:
        """Close the session (politely with a CLOSE frame by default)."""
        if polite:
            try:
                self.request(wire.CLOSE, {})
            except OSError:
                pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "FrontendClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close(polite=exc_info[0] is None)


def _send_request(
    client: FrontendClient,
    request,
    retry: RetryPolicy | None = None,
    rid: str | None = None,
) -> tuple[int, dict]:
    if request.kind == UPLOAD:
        kind, payload = wire.UPLOAD_BATCH, wire.upload_payload(
            request.tenant, request.round, request.label, request.backup
        )
    else:
        kind, payload = wire.RESTORE, wire.restore_payload(
            request.tenant, request.restore_label
        )
    if retry is None:
        return client.request(kind, payload)
    assert rid is not None
    return client.request_with_retry(kind, payload, retry, rid)


# -- identity replay ----------------------------------------------------------


def replay_stream(
    address, config: ServiceConfig, retry: RetryPolicy | None = None
) -> dict[str, object]:
    """Replay the full interleaved stream, in order, over one connection.

    This is identity mode's client half: the global serving order equals
    the stream order, so the served trace must match the in-process
    simulator byte for byte.  Quota rejections and failed restores are
    counted exactly the way the simulator counts them.

    With a :class:`RetryPolicy`, every request goes through the
    idempotent retry path (reconnect, re-HELLO, rid resend) so injected
    drops and stalls don't break the replay — and because the resends
    are idempotent, the served trace *still* matches the simulator.

    Returns:
        ``{"requests", "uploads", "restores", "rejected_uploads",
        "skipped_restores", "errors"}`` — ``errors`` counts any response
        code other than the two expected rejection codes.  With a retry
        policy, also ``{"retries", "reconnects", "gave_up"}`` (the
        fault-free report shape is unchanged).
    """
    requests = traffic_requests(config)
    counts = {
        "requests": len(requests),
        "uploads": 0,
        "restores": 0,
        "rejected_uploads": 0,
        "skipped_restores": 0,
        "errors": 0,
    }
    with FrontendClient(address) as client:
        if retry is None:
            client.hello("freqdedup-replay")
        else:
            client.hello_with_retry("freqdedup-replay", retry)
        for index, request in enumerate(requests):
            try:
                kind, payload = _send_request(
                    client, request, retry, f"replay-{index}"
                )
            except GaveUpError:
                counts["errors"] += 1
                continue
            if kind == wire.OK:
                counts["uploads" if request.kind == UPLOAD else "restores"] += 1
            elif payload.get("code") == wire.E_QUOTA:
                counts["rejected_uploads"] += 1
            elif payload.get("code") == wire.E_NOT_FOUND:
                counts["skipped_restores"] += 1
            else:
                counts["errors"] += 1
        if retry is not None:
            counts["retries"] = client.retries
            counts["reconnects"] = client.reconnects
            counts["gave_up"] = client.gave_up
    return counts


# -- multi-process load generation --------------------------------------------


@dataclass
class WorkerReport:
    """One worker process's share of a load-generation run."""

    worker: int
    tenants: int
    sessions: int
    requests: int
    ok: int
    errors: dict[str, int] = field(default_factory=dict)
    latencies: list[float] = field(default_factory=list)
    # Retry accounting (zero unless the run carried a RetryPolicy).
    retries: int = 0
    reconnects: int = 0
    gave_up: int = 0
    # Client-side metrics snapshot, shipped back for the parent merge
    # (None while metrics are off).
    metrics: dict | None = None


def _replay_worker(
    address,
    config: ServiceConfig,
    worker: int,
    processes: int,
    retry: RetryPolicy | None = None,
) -> WorkerReport:
    """Replay this worker's tenant partition, one session per round.

    Runs in a child process: re-synthesizes the (memoised, deterministic)
    request stream locally and keeps only tenants congruent to
    ``worker`` modulo ``processes``.
    """
    report = WorkerReport(worker=worker, tenants=0, sessions=0, requests=0, ok=0)
    registry = obs.worker_registry()
    by_tenant: dict[int, dict[int, list]] = {}
    for request in traffic_requests(config):
        if request.tenant % processes != worker:
            continue
        by_tenant.setdefault(request.tenant, {}).setdefault(
            request.round, []
        ).append(request)
    report.tenants = len(by_tenant)
    for tenant in sorted(by_tenant):
        for round_index in sorted(by_tenant[tenant]):
            with FrontendClient(address) as client:
                if retry is None:
                    client.hello(f"loadgen-w{worker}")
                else:
                    client.hello_with_retry(f"loadgen-w{worker}", retry)
                report.sessions += 1
                for sequence, request in enumerate(
                    by_tenant[tenant][round_index]
                ):
                    rid = f"w{worker}-t{tenant}-r{round_index}-{sequence}"
                    started = time.perf_counter()
                    try:
                        kind, payload = _send_request(
                            client, request, retry, rid
                        )
                    except GaveUpError:
                        kind = wire.ERROR
                        payload = {"code": "gave_up"}
                    elapsed = time.perf_counter() - started
                    report.latencies.append(elapsed)
                    report.requests += 1
                    if registry is not None:
                        registry.observe(
                            "loadgen.latency_s", elapsed, kind=request.kind
                        )
                    if kind == wire.OK:
                        report.ok += 1
                        if registry is not None:
                            registry.counter("loadgen.ok", kind=request.kind)
                    else:
                        code = str(payload.get("code"))
                        report.errors[code] = report.errors.get(code, 0) + 1
                        if registry is not None:
                            registry.counter(
                                "loadgen.errors",
                                code=code,
                                cls=wire.error_class(code),
                            )
                report.retries += client.retries
                report.reconnects += client.reconnects
                report.gave_up += client.gave_up
                if registry is not None and client.retries:
                    registry.counter("loadgen.retries", client.retries)
    if registry is not None:
        report.metrics = registry.snapshot()
    return report


def percentile(values: list[float], quantile: float) -> float:
    """Nearest-rank percentile of ``values`` (which must be sorted)."""
    if not values:
        return 0.0
    rank = max(1, math.ceil(quantile * len(values)))
    return values[min(rank, len(values)) - 1]


def run_loadgen(
    address,
    config: ServiceConfig,
    processes: int = 2,
    retry: RetryPolicy | None = None,
) -> dict[str, object]:
    """Replay ``config``'s traffic from ``processes`` client processes.

    Tenants are partitioned round-robin across workers; each worker
    opens one connection per (tenant, round) — a *tenant session* — and
    sends that session's requests back to back, timing each.

    Returns:
        A JSON-safe report: processes, tenants, sessions, requests, ok,
        per-code and per-error-class counts, elapsed seconds, sustained
        requests per second, and latency percentiles (p50/p90/p99/max,
        milliseconds).  With metrics enabled, each worker's client-side
        registry snapshot is merged into the process-global registry.
    """
    processes = max(1, int(processes))
    started = time.perf_counter()
    if processes == 1:
        reports = [_replay_worker(address, config, 0, 1, retry)]
    else:
        with ProcessPoolExecutor(max_workers=processes) as pool:
            reports = list(
                pool.map(
                    _replay_worker,
                    [address] * processes,
                    [config] * processes,
                    range(processes),
                    [processes] * processes,
                    [retry] * processes,
                )
            )
    elapsed = time.perf_counter() - started
    latencies = sorted(
        latency for report in reports for latency in report.latencies
    )
    errors: dict[str, int] = {}
    errors_by_class = dict.fromkeys(wire.ERROR_CLASSES, 0)
    for report in reports:
        for code, count in report.errors.items():
            errors[code] = errors.get(code, 0) + count
            errors_by_class[wire.error_class(code)] += count
        obs.merge_snapshot(report.metrics)
    requests = sum(report.requests for report in reports)
    retry_section = (
        {
            "retries": {
                "attempts": retry.attempts,
                "retries": sum(report.retries for report in reports),
                "reconnects": sum(report.reconnects for report in reports),
                "gave_up": sum(report.gave_up for report in reports),
            }
        }
        if retry is not None
        else {}
    )
    return {
        **retry_section,
        "processes": processes,
        "tenants": sum(report.tenants for report in reports),
        "sessions": sum(report.sessions for report in reports),
        "requests": requests,
        "ok": sum(report.ok for report in reports),
        "errors": dict(sorted(errors.items())),
        "errors_by_class": dict(sorted(errors_by_class.items())),
        "elapsed_s": round(elapsed, 6),
        "requests_per_s": round(requests / elapsed, 3) if elapsed > 0 else 0.0,
        "latency_ms": {
            "p50": round(percentile(latencies, 0.50) * 1e3, 3),
            "p90": round(percentile(latencies, 0.90) * 1e3, 3),
            "p99": round(percentile(latencies, 0.99) * 1e3, 3),
            "max": round((latencies[-1] if latencies else 0.0) * 1e3, 3),
        },
    }
