"""The framed wire protocol the socket frontend speaks.

Frames are length-prefixed: a 4-byte big-endian unsigned length, then a
1-byte frame kind, then a JSON payload (UTF-8, sorted keys).  The length
covers the kind byte plus the payload, so an empty-payload frame is 3
bytes of body behind a 4-byte header.  Fingerprints cross the wire as
lowercase hex strings (the shared chunk space uses short fingerprints,
so hex costs 2x — the throughput bench measures the real price).

Request kinds (client → server):

* ``HELLO`` — opens a session; carries the protocol version and is
  rejected (``protocol`` error) on a mismatch.
* ``UPLOAD_BATCH`` — one upload session: tenant, label, traffic round,
  and the plaintext chunk stream (fingerprints + sizes).  The server
  runs the client-assisted dedup protocol of
  :meth:`~repro.service.server.DedupService.upload` — encrypt under the
  service scheme, one pipelined batched index probe, transfer only the
  needed-set — and answers with the request's
  :class:`~repro.service.server.RequestObservables`.
* ``RESTORE`` — read one upload back from the tenant's own namespace.
* ``STATS`` — server counters (sessions, frames, errors, store totals).
* ``CLOSE`` — polite shutdown of the session.

Responses are ``OK`` (result payload) or ``ERROR`` (``code`` +
``message``).  Error codes are module constants: admission errors
(``rate_limited``, ``quota_exceeded``, ``busy``), session errors
(``not_found``, ``label_conflict``, ``bad_request``), and transport
errors (``oversized_frame``, ``idle_timeout``, ``protocol``) — the
transport class is fatal (the server closes the connection after
answering), the rest leave the session usable.

The codec is deliberately symmetric and dependency-free so the asyncio
server (:mod:`repro.service.frontend`), the blocking client
(:mod:`repro.service.loadgen`), and the protocol-robustness tests all
share one source of framing truth.
"""

from __future__ import annotations

import json
import struct
from dataclasses import asdict

from repro.common.errors import ReproError
from repro.common.units import MiB
from repro.datasets.model import Backup

PROTOCOL_VERSION = 1

# Frame kinds: requests 0x01-0x0f, responses 0x81-0x8f.
HELLO = 0x01
UPLOAD_BATCH = 0x02
RESTORE = 0x03
STATS = 0x04
CLOSE = 0x05
OK = 0x81
ERROR = 0x82

FRAME_NAMES = {
    HELLO: "hello",
    UPLOAD_BATCH: "upload_batch",
    RESTORE: "restore",
    STATS: "stats",
    CLOSE: "close",
    OK: "ok",
    ERROR: "error",
}

HEADER = struct.Struct(">I")
HEADER_BYTES = HEADER.size
DEFAULT_MAX_FRAME_BYTES = 4 * MiB

# Error codes carried in ERROR payloads.  The transport class
# (FATAL_CODES) desyncs or abuses the framing layer, so the server
# answers once and closes; every other code leaves the session open.
E_BAD_REQUEST = "bad_request"
E_RATE_LIMITED = "rate_limited"
E_QUOTA = "quota_exceeded"
E_CONFLICT = "label_conflict"
E_NOT_FOUND = "not_found"
E_BUSY = "busy"
E_OVERSIZED = "oversized_frame"
E_IDLE = "idle_timeout"
E_PROTOCOL = "protocol"
E_UNKNOWN_KIND = "unknown_frame_kind"

FATAL_CODES = frozenset({E_OVERSIZED, E_IDLE, E_PROTOCOL, E_UNKNOWN_KIND})

# Every error code falls into exactly one class: admission rejections
# (the token bucket, quota, or queue said no — retry later), garbage
# (a frame kind outside the protocol — a corrupted stream or a peer
# speaking something else entirely; fatal, and classed on its own so
# corruption is distinguishable from protocol-aware transport abuse),
# transport violations (fatal, connection closed after the answer),
# and session errors (the request was wrong but the session survives).
ADMISSION_CODES = frozenset({E_RATE_LIMITED, E_QUOTA, E_BUSY})
GARBAGE_CODES = frozenset({E_UNKNOWN_KIND})

CLASS_ADMISSION = "admission"
CLASS_GARBAGE = "garbage"
CLASS_SESSION = "session"
CLASS_TRANSPORT = "transport"

ERROR_CLASSES = (CLASS_ADMISSION, CLASS_GARBAGE, CLASS_SESSION, CLASS_TRANSPORT)


def error_class(code: str) -> str:
    """The class an error code belongs to (unknown codes count as
    session errors — survivable and visible, never silently fatal)."""
    if code in ADMISSION_CODES:
        return CLASS_ADMISSION
    if code in GARBAGE_CODES:
        return CLASS_GARBAGE
    if code in FATAL_CODES:
        return CLASS_TRANSPORT
    return CLASS_SESSION


class ProtocolError(ReproError):
    """A frame or payload violated the wire protocol.

    ``code`` is the ERROR-payload code the server answers with (one of
    the ``E_*`` constants).
    """

    def __init__(self, message: str, code: str = E_BAD_REQUEST):
        super().__init__(message)
        self.code = code


def encode_frame(kind: int, payload: dict) -> bytes:
    """Serialize one frame: header + kind byte + JSON payload."""
    body = json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return HEADER.pack(1 + len(body)) + bytes([kind]) + body


def decode_body(body: bytes) -> tuple[int, dict]:
    """Decode a frame body (everything after the length header).

    Raises:
        ProtocolError: the body is empty, the kind byte is not a frame
            kind this protocol defines (``unknown_frame_kind`` — the
            stream is corrupt or the peer speaks something else, so the
            code is fatal and classed as garbage), the payload is not
            valid JSON, or the payload is not a JSON object.
    """
    if not body:
        raise ProtocolError("empty frame body", code=E_PROTOCOL)
    kind = body[0]
    if kind not in FRAME_NAMES:
        raise ProtocolError(
            f"unknown frame kind 0x{kind:02x}", code=E_UNKNOWN_KIND
        )
    try:
        payload = json.loads(body[1:].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(
            f"malformed frame payload: {error}", code=E_BAD_REQUEST
        ) from None
    if not isinstance(payload, dict):
        raise ProtocolError(
            "frame payload must be a JSON object", code=E_BAD_REQUEST
        )
    return kind, payload


def error_payload(code: str, message: str) -> dict:
    return {"code": code, "message": message}


def hello_payload(client: str = "freqdedup-client") -> dict:
    return {"protocol": PROTOCOL_VERSION, "client": client}


def upload_payload(
    tenant: int, round_index: int, label: str, backup: Backup
) -> dict:
    """The UPLOAD_BATCH payload for one plaintext chunk stream."""
    return {
        "tenant": tenant,
        "round": round_index,
        "label": label,
        "fingerprints": [fp.hex() for fp in backup.fingerprints],
        "sizes": list(backup.sizes),
    }


def restore_payload(tenant: int, label: str) -> dict:
    return {"tenant": tenant, "label": label}


def _require(payload: dict, field: str, kinds) -> object:
    value = payload.get(field)
    if not isinstance(value, kinds) or isinstance(value, bool):
        raise ProtocolError(f"missing or invalid field {field!r}")
    return value


def parse_upload(payload: dict) -> tuple[int, int, str, Backup]:
    """Validate an UPLOAD_BATCH payload into ``(tenant, round, label,
    plaintext backup)``.

    Raises:
        ProtocolError: a field is missing, mistyped, or the fingerprint
            and size lists disagree in length.
    """
    tenant = _require(payload, "tenant", int)
    round_index = _require(payload, "round", int)
    label = _require(payload, "label", str)
    fingerprints = _require(payload, "fingerprints", list)
    sizes = _require(payload, "sizes", list)
    if len(fingerprints) != len(sizes):
        raise ProtocolError(
            f"{len(fingerprints)} fingerprints but {len(sizes)} sizes"
        )
    try:
        raw = [bytes.fromhex(fp) for fp in fingerprints]
    except (TypeError, ValueError):
        raise ProtocolError("fingerprints must be hex strings") from None
    for size in sizes:
        if not isinstance(size, int) or isinstance(size, bool) or size < 0:
            raise ProtocolError("sizes must be non-negative integers")
    return tenant, round_index, label, Backup(
        label=label, fingerprints=raw, sizes=list(sizes)
    )


def parse_restore(payload: dict) -> tuple[int, str]:
    """Validate a RESTORE payload into ``(tenant, label)``."""
    return _require(payload, "tenant", int), _require(payload, "label", str)


def observables_payload(observables) -> dict:
    """A :class:`~repro.service.server.RequestObservables` as a JSON-safe
    response payload (all primitive fields)."""
    return asdict(observables)
