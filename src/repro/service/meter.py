"""Cross-user side-channel metering: the adversary's view of the service.

The multi-tenant threat model gives the adversary two vantage points the
single-client trace path cannot express:

* **the wire** — per-upload transferred bytes.  With client-assisted
  deduplication an upload's bandwidth reveals how much of the tenant's
  data the shared store already held, including *other tenants'* data;
  :meth:`SideChannelMeter.bandwidth_signal` is that series.
* **the store** — cross-tenant chunk overlap.  A curious provider (or an
  attacker with store access) sees which ciphertext chunks tenants
  share; :meth:`SideChannelMeter.overlap_matrix` quantifies it, and
  :meth:`SideChannelMeter.evaluate` replays the paper's frequency/
  locality attacks with one tenant's *plaintext* as auxiliary knowledge
  against another tenant's *ciphertext* upload, through the standard
  :class:`~repro.attacks.evaluation.AttackEvaluator`.

The meter is evaluation harness, not server code: it also retains the
plaintext streams (ground truth) so inference rates can be scored, which
a real adversary of course lacks.
"""

from __future__ import annotations

from repro.attacks.base import Attack
from repro.attacks.evaluation import AttackEvaluator, InferenceReport
from repro.datasets.model import Backup, BackupSeries
from repro.common.errors import ConfigurationError
from repro.defenses.pipeline import (
    DefenseScheme,
    EncryptedBackup,
    EncryptedSeries,
)
from repro.service.server import RequestObservables, UploadResult
from repro.service.traffic import RESTORE, UPLOAD, Request


class SideChannelMeter:
    """Accumulates request observables into the adversary's view.

    The meter records what each vantage point can see — per-request wire
    observables for the network adversary, per-tenant ciphertext chunk
    sets for the store adversary — plus the plaintext ground truth the
    *evaluation* needs (which a real adversary lacks; see module docs).

    Args:
        scheme: the defense scheme the observed service encrypts under
            (stamped into attack reports and the reconstructed
            :class:`~repro.defenses.pipeline.EncryptedSeries`).
    """

    def __init__(self, scheme: DefenseScheme = DefenseScheme.MLE):
        self.scheme = DefenseScheme(scheme)
        self.observables: list[RequestObservables] = []
        self._upload_rounds: list[int] = []
        self._plaintexts: list[Backup] = []
        self._ciphertexts: list[EncryptedBackup] = []
        self._upload_positions: dict[int, list[int]] = {}
        self._tenant_fingerprints: dict[int, set[bytes]] = {}

    # -- recording ----------------------------------------------------------

    def observe_upload(self, request: Request, result: UploadResult) -> None:
        """Record one served upload.

        Args:
            request: the traffic request (carries the plaintext stream —
                the ground truth side — and the client's round number).
            result: what the service returned: wire observables plus the
                ciphertext the adversary taps.

        Raises:
            ConfigurationError: ``request`` is not an upload (or carries
                no plaintext backup).
        """
        if request.kind != UPLOAD or request.backup is None:
            raise ConfigurationError("observe_upload needs an upload request")
        position = len(self._plaintexts)
        self.observables.append(result.observables)
        self._upload_rounds.append(request.round)
        self._plaintexts.append(request.backup)
        self._ciphertexts.append(result.encrypted)
        self._upload_positions.setdefault(request.tenant, []).append(position)
        self._tenant_fingerprints.setdefault(request.tenant, set()).update(
            result.encrypted.ciphertext.fingerprints
        )

    def observe_restore(self, observables: RequestObservables) -> None:
        """Record one served restore (bandwidth only; no dedup signal).

        Args:
            observables: the restore's wire record.

        Raises:
            ConfigurationError: the record is not a restore.
        """
        if observables.kind != RESTORE:
            raise ConfigurationError("observe_restore needs a restore record")
        self.observables.append(observables)

    # -- the bandwidth side channel -----------------------------------------

    def upload_records(self) -> list[tuple[int, RequestObservables]]:
        """Served uploads as ``(traffic round, observables)``, in service
        order (the round is client-side context the meter captured from
        each request; observables only carry the service sequence)."""
        uploads = [
            record for record in self.observables if record.kind == UPLOAD
        ]
        return list(zip(self._upload_rounds, uploads))

    def bandwidth_signal(self) -> list[dict[str, object]]:
        """Per-upload wire observables, in service order.

        Returns:
            One JSON-serializable row per served upload — tenant, round,
            label, logical/transferred bytes and the dedup fraction (the
            bandwidth side channel's time series).  When the observed
            service shaped any response (:mod:`repro.service.shaping`),
            every row additionally carries ``shaped_extra_bytes``;
            honest traces keep the pre-shaping row shape byte-for-byte.
        """
        records = self.upload_records()
        shaped = any(
            record.shaped_extra_bytes for _, record in records
        )
        rows = []
        for round_index, record in records:
            row = {
                "tenant": record.tenant,
                "round": round_index,
                "label": record.label,
                "logical_bytes": record.logical_bytes,
                "transferred_bytes": record.transferred_bytes,
                "dedup_fraction": round(record.dedup_fraction, 4),
            }
            if shaped:
                row["shaped_extra_bytes"] = record.shaped_extra_bytes
            rows.append(row)
        return rows

    # -- the store-view side channel ------------------------------------------

    def tenants(self) -> list[int]:
        return sorted(self._upload_positions)

    def overlap(
        self, auxiliary_tenant: int | None, target_tenant: int
    ) -> float:
        """Fraction of the target tenant's unique ciphertext chunks also
        uploaded by the auxiliary tenant (directional, like
        :func:`repro.datasets.stats.content_overlap`).

        Args:
            auxiliary_tenant: the observing tenant, or ``None`` to
                measure against the rest of the population — the upper
                bound on any population-auxiliary attack's inference
                rate.
            target_tenant: the observed tenant.

        Returns:
            Overlap in ``[0, 1]``; 0.0 for a tenant with no uploads.
        """
        target = self._tenant_fingerprints.get(target_tenant, set())
        if not target:
            return 0.0
        if auxiliary_tenant is None:
            auxiliary = set()
            for tenant, fingerprints in self._tenant_fingerprints.items():
                if tenant != target_tenant:
                    auxiliary |= fingerprints
        else:
            auxiliary = self._tenant_fingerprints.get(auxiliary_tenant, set())
        return len(target & auxiliary) / len(target)

    def overlap_matrix(self) -> dict[int, dict[int, float]]:
        """Full cross-tenant overlap: ``matrix[a][b]`` = fraction of b's
        chunks that a also holds."""
        tenants = self.tenants()
        return {
            a: {b: round(self.overlap(a, b), 4) for b in tenants}
            for a in tenants
        }

    def overlap_summary(self) -> dict[str, float]:
        """Mean/min/max of the off-diagonal overlap entries."""
        tenants = self.tenants()
        values = [
            self.overlap(a, b) for a in tenants for b in tenants if a != b
        ]
        if not values:
            return {"mean": 0.0, "min": 0.0, "max": 0.0}
        return {
            "mean": round(sum(values) / len(values), 4),
            "min": round(min(values), 4),
            "max": round(max(values), 4),
        }

    # -- feeding the attack harness -------------------------------------------

    def upload_position(self, tenant: int, occurrence: int = -1) -> int:
        """Global trace position of a tenant's n-th upload.

        Args:
            tenant: the tenant whose upload to locate.
            occurrence: which of the tenant's uploads, in service order;
                negative indices count from the end (default: last).

        Returns:
            The upload's index in the meter's service-order trace (what
            :meth:`encrypted_trace` feeds the evaluator).

        Raises:
            ConfigurationError: the tenant completed no uploads.
        """
        positions = self._upload_positions.get(tenant)
        if not positions:
            raise ConfigurationError(f"tenant {tenant} has no uploads")
        return positions[occurrence]

    def population_auxiliary(self, excluding_tenant: int) -> Backup:
        """The population's plaintext stream, minus one tenant.

        This is the journal extension's strongest multi-tenant adversary:
        a provider-side observer (or colluding tenant coalition) who knows
        what everyone *except* the target uploaded.  Uploads concatenate
        in service order, so within-upload chunk adjacency — what the
        locality-based attack traverses — is preserved.
        """
        population = Backup(label=f"population-minus-t{excluding_tenant:04d}")
        excluded = set(
            self._upload_positions.get(excluding_tenant, ())
        )
        for position, backup in enumerate(self._plaintexts):
            if position in excluded:
                continue
            population.fingerprints.extend(backup.fingerprints)
            population.sizes.extend(backup.sizes)
        return population

    def encrypted_trace(
        self, extra_plaintexts: list[Backup] | None = None
    ) -> EncryptedSeries:
        """The service-generated trace as an :class:`EncryptedSeries`.

        Backups appear in service order (the interleaved upload stream),
        so any (auxiliary, target) index pair — same tenant or cross-
        tenant — runs through the unchanged
        :class:`~repro.attacks.evaluation.AttackEvaluator`.
        ``extra_plaintexts`` are appended to the *plaintext* side only
        (auxiliary-information streams, e.g. the population auxiliary,
        are never uploads themselves).
        """
        plaintext = BackupSeries(
            name="service",
            backups=list(self._plaintexts) + list(extra_plaintexts or ()),
            chunking="variable",
        )
        return EncryptedSeries(
            name="service",
            scheme=self.scheme,
            plaintext=plaintext,
            backups=list(self._ciphertexts),
        )

    def evaluate(
        self,
        attack: Attack,
        auxiliary_tenant: int | None,
        target_tenant: int,
        auxiliary_occurrence: int = -1,
        target_occurrence: int = -1,
        leakage_rate: float = 0.0,
        seed: int = 0,
    ) -> InferenceReport:
        """Run a cross-tenant attack against ``target_tenant``'s
        ciphertext upload.

        Args:
            attack: any paper attack (basic / locality / advanced).
            auxiliary_tenant: the adversary's prior knowledge — a
                specific tenant's plaintext upload (the curious-tenant
                model), or ``None`` for the population auxiliary:
                everything every *other* tenant uploaded (the
                curious-provider model, see :meth:`population_auxiliary`).
            target_tenant: the victim tenant.
            auxiliary_occurrence / target_occurrence: which of the
                tenants' uploads anchor the pair (default: last).
            leakage_rate: known-plaintext leakage over the target's
                unique ciphertext chunks (0 = ciphertext-only mode).
            seed: determinises the leakage sample.

        Returns:
            The scored :class:`~repro.attacks.evaluation.InferenceReport`.

        Raises:
            ConfigurationError: either tenant completed no uploads.
        """
        if auxiliary_tenant is None:
            extra = [self.population_auxiliary(target_tenant)]
            evaluator = AttackEvaluator(self.encrypted_trace(extra))
            auxiliary = len(self._plaintexts)
        else:
            evaluator = AttackEvaluator(self.encrypted_trace())
            auxiliary = self.upload_position(
                auxiliary_tenant, auxiliary_occurrence
            )
        return evaluator.run(
            attack,
            auxiliary=auxiliary,
            target=self.upload_position(target_tenant, target_occurrence),
            leakage_rate=leakage_rate,
            seed=seed,
        )

    def evaluate_partial(
        self,
        attack: Attack,
        auxiliary_tenant: int | None,
        target_tenant: int,
        router,
        compromised_node: int,
        auxiliary_occurrence: int = -1,
        target_occurrence: int = -1,
        leakage_rate: float = 0.0,
        seed: int = 0,
    ):
        """Run a *partial-view* cross-tenant attack: the adversary holds
        one compromised storage node's shard of the target upload.

        Same adversary-knowledge model as :meth:`evaluate`
        (``auxiliary_tenant`` = a tenant id or ``None`` for the
        population auxiliary), but the observed ciphertext is projected
        onto the shard ``compromised_node`` owns under ``router``
        (:func:`repro.cluster.partial.shard_view`) before the attack
        runs, and the inference rate keeps the full target's unique
        chunks as denominator — so rates compare across cluster sizes.

        Args:
            attack: any paper attack.
            auxiliary_tenant: the adversary's prior knowledge (see
                :meth:`evaluate`).
            target_tenant: the victim tenant.
            router: the cluster's placement function
                (:class:`~repro.cluster.ring.Router`).
            compromised_node: which node's shard the adversary observed.
            auxiliary_occurrence / target_occurrence: which of the
                tenants' uploads anchor the pair (default: last).
            leakage_rate / seed: known-plaintext mode, as in
                :meth:`evaluate`.

        Returns:
            A :class:`~repro.cluster.partial.PartialViewReport`.
        """
        from repro.cluster.partial import evaluate_partial_view

        if auxiliary_tenant is None:
            auxiliary = self.population_auxiliary(target_tenant)
        else:
            position = self.upload_position(
                auxiliary_tenant, auxiliary_occurrence
            )
            auxiliary = self._plaintexts[position]
        target = self._ciphertexts[
            self.upload_position(target_tenant, target_occurrence)
        ]
        return evaluate_partial_view(
            attack,
            target,
            auxiliary,
            router,
            compromised_node,
            scheme=self.scheme.value,
            leakage_rate=leakage_rate,
            seed=seed,
        )
