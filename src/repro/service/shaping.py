"""Dedup-response shaping: perturbing the bandwidth observable at the
protocol boundary (RRCS-style randomized responses, arXiv 1703.05126).

The upload side channel exists because an honest dedup response tells the
client exactly which chunks the store already holds — transferred bytes
then reveal cross-user overlap (see :mod:`repro.service.meter`).  Shaping
policies perturb that response *without touching storage*: a shaped
response only ever **adds** duplicate chunks to the transfer set (the
client re-uploads data the server discards), so dedup decisions, stored
bytes and the ciphertext stream are byte-identical to the honest run —
only the wire observable moves.

Three policies:

* ``honest`` — the identity policy (the pre-shaping protocol, default).
* ``randomized-response`` (``rr:p``) — every truly-duplicate chunk is
  independently requested anyway with probability ``p``.  ``p = 0`` is
  honest; ``p = 1`` transfers the full unique stream (no dedup signal).
* ``quantized-bandwidth`` (``quantize:B``) — the transfer size is padded
  up to the next multiple of ``B`` bytes by requesting duplicates in
  stream order, so the adversary observes bucket indices, not bytes.  A
  fully-deduplicated upload pads to one bucket (an honest 0-byte
  transfer would leak full duplication exactly).

Decisions derive from a keyed hash of ``(seed, tenant, label, chunk)`` —
**upload identity, not serving order** — so the in-process simulator and
the socket frontend shape identically whatever order requests arrive in,
and the identity differential holds under shaping.  The per-chunk draw
doubles as a common-random-numbers coupling: one uniform per chunk,
flipped iff ``u < p``, so the shaped transfer set is monotone in ``p``
sample-for-sample (the frontier's monotonicity claim is exact, not just
in expectation).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.common.errors import ConfigurationError

HONEST = "honest"
RANDOMIZED_RESPONSE = "randomized-response"
QUANTIZED_BANDWIDTH = "quantized-bandwidth"

#: Accepted spec spellings (long and short) per policy mode.
_MODE_ALIASES = {
    "honest": HONEST,
    "rr": RANDOMIZED_RESPONSE,
    "randomized-response": RANDOMIZED_RESPONSE,
    "quantize": QUANTIZED_BANDWIDTH,
    "quantized-bandwidth": QUANTIZED_BANDWIDTH,
}


@dataclass(frozen=True)
class ShapingPolicy:
    """One response-shaping policy, hashable and spec-round-trippable.

    Attributes:
        mode: :data:`HONEST`, :data:`RANDOMIZED_RESPONSE` or
            :data:`QUANTIZED_BANDWIDTH`.
        flip_probability: per-duplicate transfer probability (randomized
            response only).
        bucket_bytes: transfer-size quantum (quantized bandwidth only).
        seed: keys the per-chunk decision hash.
    """

    mode: str = HONEST
    flip_probability: float = 0.0
    bucket_bytes: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.mode not in (
            HONEST,
            RANDOMIZED_RESPONSE,
            QUANTIZED_BANDWIDTH,
        ):
            raise ConfigurationError(
                f"unknown shaping mode {self.mode!r}; choose from "
                f"{sorted(set(_MODE_ALIASES.values()))}"
            )
        if not 0.0 <= self.flip_probability <= 1.0:
            raise ConfigurationError(
                "shaping flip probability must be in [0, 1]"
            )
        if self.mode is QUANTIZED_BANDWIDTH and self.bucket_bytes < 1:
            raise ConfigurationError(
                "quantized-bandwidth shaping needs bucket_bytes >= 1"
            )

    def is_active(self) -> bool:
        """Whether this policy can ever change a response (an inactive
        policy keeps the upload path byte-identical to pre-shaping)."""
        if self.mode == RANDOMIZED_RESPONSE:
            return self.flip_probability > 0.0
        return self.mode == QUANTIZED_BANDWIDTH

    def spec(self) -> str:
        """The canonical CLI/report spelling of this policy."""
        if self.mode == RANDOMIZED_RESPONSE:
            return f"rr:{self.flip_probability:g}"
        if self.mode == QUANTIZED_BANDWIDTH:
            return f"quantize:{self.bucket_bytes}"
        return HONEST


def parse_policy(spec, seed: int = 0) -> ShapingPolicy:
    """Resolve a shaping spec to a :class:`ShapingPolicy`.

    Args:
        spec: an existing policy (seed re-keyed), or a spec string:
            ``"honest"``, ``"rr:0.25"`` / ``"randomized-response:0.25"``,
            ``"quantize:4096"`` / ``"quantized-bandwidth:4096"``.
        seed: keys the per-chunk decision hash (the service seed).

    Raises:
        ConfigurationError: unknown mode or a bad knob value.
    """
    if isinstance(spec, ShapingPolicy):
        return ShapingPolicy(
            mode=spec.mode,
            flip_probability=spec.flip_probability,
            bucket_bytes=spec.bucket_bytes,
            seed=seed,
        )
    name, _, knob = str(spec).partition(":")
    mode = _MODE_ALIASES.get(name)
    if mode is None:
        raise ConfigurationError(
            f"unknown shaping policy {name!r}; choose from "
            f"{sorted(_MODE_ALIASES)}"
        )
    if mode == HONEST:
        if knob:
            raise ConfigurationError("the honest policy takes no parameter")
        return ShapingPolicy(seed=seed)
    if not knob:
        raise ConfigurationError(
            f"shaping policy {name!r} needs a parameter "
            "(rr:p or quantize:bytes)"
        )
    if mode == RANDOMIZED_RESPONSE:
        try:
            probability = float(knob)
        except ValueError:
            raise ConfigurationError(
                f"bad flip probability {knob!r}; expected a float"
            ) from None
        return ShapingPolicy(
            mode=mode, flip_probability=probability, seed=seed
        )
    try:
        bucket = int(knob)
    except ValueError:
        raise ConfigurationError(
            f"bad bucket size {knob!r}; expected an integer byte count"
        ) from None
    return ShapingPolicy(mode=mode, bucket_bytes=bucket, seed=seed)


def _chunk_uniform(
    seed: int, tenant: int, label: str, fingerprint: bytes
) -> float:
    """One uniform in [0, 1) keyed by upload identity and chunk.

    Hash-derived rather than ``rng_from`` so the draw is a pure function
    of the (seed, tenant, label, chunk) tuple — independent of serving
    order and of how many chunks were drawn before it.
    """
    key = (
        f"shaping|{seed}|{tenant}|{label}|".encode("utf-8") + fingerprint
    )
    digest = hashlib.sha256(key).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


def shape_response(
    policy: ShapingPolicy,
    tenant: int,
    label: str,
    unique: dict[bytes, int],
    needed: set[bytes],
) -> set[bytes]:
    """The duplicates a shaped response requests *in addition to* the
    honest needed-set.

    Args:
        policy: the active shaping policy.
        tenant / label: the upload's identity (keys the decision hash).
        unique: the upload's unique fingerprints → chunk size, in
            first-occurrence stream order (the server's dedup-response
            input).
        needed: the honest needed-set (truly new chunks).

    Returns:
        Extra fingerprints to transfer — always a subset of the
        duplicates, so shaping never suppresses a needed chunk (storage
        correctness is untouched).
    """
    if not policy.is_active():
        return set()
    duplicates = [fp for fp in unique if fp not in needed]
    if policy.mode == RANDOMIZED_RESPONSE:
        probability = policy.flip_probability
        return {
            fp
            for fp in duplicates
            if _chunk_uniform(policy.seed, tenant, label, fp) < probability
        }
    # Quantized bandwidth: pad the honest transfer up to the next bucket
    # boundary with duplicates in stream order.  An exact-boundary
    # transfer pads nothing; a fully-deduplicated upload pads to one
    # bucket; an empty upload stays empty (nothing to transfer at all).
    bucket = policy.bucket_bytes
    transferred = sum(
        size for fp, size in unique.items() if fp in needed
    )
    if not unique:
        return set()
    target = -(-max(transferred, 1) // bucket) * bucket
    extra: set[bytes] = set()
    shaped = transferred
    for fingerprint in duplicates:
        if shaped >= target:
            break
        extra.add(fingerprint)
        shaped += unique[fingerprint]
    return extra
