"""Asyncio framed-socket frontend over the multi-tenant dedup service.

This is the serving tier the threat model assumes: a server speaking the
length-prefixed protocol of :mod:`repro.service.protocol` over TCP or a
Unix socket, multiplexing concurrent per-tenant sessions onto one shared
:class:`~repro.service.server.DedupService` (and through it the
:class:`~repro.index.backends.KVBackend` seam — every upload's index
probe is the same single batched ``lookup_batch`` the in-process path
issues).

Concurrency model
-----------------

One event loop serves every connection.  Each connection runs two
tasks — a *frame pump* that reads and decodes frames into a **bounded**
queue, and a *processor* that serves them in order — so a client may
pipeline requests: while the engine serves frame N, frames N+1..N+q are
already parsed and queued.  The queue bound is the backpressure valve:
when a connection has ``queue_depth`` requests in flight the pump's
``put`` blocks, the server stops reading that socket, and TCP pushes
back on the sender.  Engine calls themselves are synchronous and run on
the loop, so *global* request order — the order that determines every
dedup decision — is exactly the order the processor tasks interleave.

Admission control
-----------------

Three layers, all in front of the engine:

* per-tenant token-bucket rate limits and a global session cap
  (:mod:`repro.service.admission`) — over-rate requests get a
  ``rate_limited`` error without touching the engine;
* logical-byte quotas, enforced by the service itself
  (``quota_exceeded`` on the wire, nothing stored);
* transport hygiene: oversized frames are refused without reading the
  payload, idle sessions are evicted after ``idle_timeout``, slow
  readers are aborted when a response drain exceeds ``drain_timeout``,
  and malformed frames answer a fatal error then close.

Identity mode
-------------

With admission disabled (``rate_limit=0``) and requests replayed in
stream order over one connection, a served trace must be byte-identical
to the in-process simulator on the same seeded traffic —
:func:`identity_check` proves it by comparing full
:func:`~repro.service.simulate.inline_report` JSON for both.  The server
builds its service through the same
:func:`~repro.service.simulate.build_service`, serves each request
through the same ``DedupService`` methods, and meters through the same
:class:`~repro.service.meter.SideChannelMeter`, so the only degree of
freedom is serving order — which identity mode pins.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import threading
import time
from dataclasses import dataclass, field

from repro import faults, obs
from repro.common.errors import (
    ConfigurationError,
    QuotaExceededError,
    StorageError,
)
from repro.service import protocol as wire
from repro.service.admission import AdmissionController
from repro.service.meter import SideChannelMeter
from repro.service.server import DedupService
from repro.service.simulate import (
    ServiceConfig,
    ServiceTrace,
    build_service,
    inline_report,
    simulate,
)
from repro.service.traffic import UPLOAD, Request

# Address tuples: ("unix", path) or ("tcp", host, port).  Plain tuples so
# they pickle into load-generator worker processes unchanged.
Address = tuple

_log = obs.get_logger("serve")


@dataclass(frozen=True)
class FrontendConfig:
    """Transport and admission knobs for one frontend instance.

    Attributes:
        max_frame_bytes: largest accepted frame body; a header claiming
            more is refused (``oversized_frame``) without reading it.
        idle_timeout: seconds a session may sit between frames before
            eviction (also bounds a half-sent frame).
        drain_timeout: seconds a response drain may take before the
            connection is declared a slow reader and aborted.
        queue_depth: per-connection pipeline bound (parsed requests in
            flight); the backpressure valve.
        rate_limit: per-tenant request rate (req/s); 0 disables —
            identity mode requires 0.
        burst: per-tenant token-bucket capacity.
        max_sessions: global concurrent-session cap (``busy`` beyond).
        shutdown_grace: seconds a graceful shutdown waits for live
            sessions to finish their queued batches before cancelling
            them (:meth:`DedupFrontend.drain`).
    """

    max_frame_bytes: int = wire.DEFAULT_MAX_FRAME_BYTES
    idle_timeout: float = 30.0
    drain_timeout: float = 10.0
    queue_depth: int = 16
    rate_limit: float = 0.0
    burst: float = 32.0
    max_sessions: int = 4096
    shutdown_grace: float = 5.0


@dataclass
class FrontendStats:
    """Serving counters (exposed verbatim in the STATS frame)."""

    sessions_opened: int = 0
    sessions_closed: int = 0
    frames_in: int = 0
    frames_out: int = 0
    uploads: int = 0
    restores: int = 0
    slow_reader_aborts: int = 0
    errors: dict[str, int] = field(default_factory=dict)
    errors_by_class: dict[str, int] = field(
        default_factory=lambda: dict.fromkeys(wire.ERROR_CLASSES, 0)
    )

    def count_error(self, code: str) -> None:
        self.errors[code] = self.errors.get(code, 0) + 1
        cls = wire.error_class(code)
        self.errors_by_class[cls] = self.errors_by_class.get(cls, 0) + 1
        obs.counter("serve.errors", code=code, cls=cls)


class _SlowReaderAbort(Exception):
    """Internal: a response drain timed out; the connection was aborted."""


class DedupFrontend:
    """Serves the framed protocol over one shared :class:`DedupService`.

    Args:
        service: the dedup service to serve (single-node or clustered).
        service_config: the :class:`ServiceConfig` behind ``service``,
            when there is one — required by :meth:`as_trace` and
            :func:`identity_check`, unused for ad-hoc services.
        config: transport/admission knobs.
        clock: monotonic time source for the admission buckets
            (injectable for deterministic rate-limit tests).
    """

    def __init__(
        self,
        service: DedupService,
        service_config: ServiceConfig | None = None,
        config: FrontendConfig | None = None,
        clock=None,
    ):
        self.service = service
        self.service_config = service_config
        self.config = config or FrontendConfig()
        self.meter = SideChannelMeter(scheme=service.scheme)
        self.stats = FrontendStats()
        self.rejected_uploads = 0
        self.skipped_restores = 0
        kwargs = {} if clock is None else {"clock": clock}
        self.admission = AdmissionController(
            rate_limit=self.config.rate_limit,
            burst=self.config.burst,
            max_sessions=self.config.max_sessions,
            **kwargs,
        )
        self._connections: set[asyncio.Task] = set()
        # Idempotent retry support: responses to requests that carried a
        # client-generated ``rid`` are remembered, so a client resending
        # after a lost response gets the original answer verbatim — the
        # engine and meter never see the request twice.  Bounded FIFO;
        # fault-free clients send no rid, so the cache stays empty.
        self._rid_cache: dict[str, tuple[int, dict]] = {}
        self.final_stats: dict[str, object] | None = None

    # -- the served trace ---------------------------------------------------

    def as_trace(self) -> ServiceTrace:
        """The served requests as a :class:`ServiceTrace`.

        The same structure the simulator produces, so every report
        helper (``headline_metrics``, ``evaluate_pair``,
        ``cluster_report``, :func:`inline_report`) runs on a served
        trace unchanged.
        """
        if self.service_config is None:
            raise ConfigurationError(
                "as_trace() needs the frontend built with a service_config"
            )
        return ServiceTrace(
            config=self.service_config,
            service=self.service,
            meter=self.meter,
            rejected_uploads=self.rejected_uploads,
            skipped_restores=self.skipped_restores,
        )

    # -- connection handling ------------------------------------------------

    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one connection: pump frames, process in order."""
        if not self.admission.admit_session():
            self.stats.count_error(wire.E_BUSY)
            with contextlib.suppress(Exception):
                writer.write(
                    wire.encode_frame(
                        wire.ERROR,
                        wire.error_payload(wire.E_BUSY, "session cap reached"),
                    )
                )
                await writer.drain()
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()
            return
        self.stats.sessions_opened += 1
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        queue: asyncio.Queue = asyncio.Queue(maxsize=self.config.queue_depth)
        pump = asyncio.create_task(self._pump_frames(reader, queue))
        try:
            await self._process(queue, writer)
        except _SlowReaderAbort:
            self.stats.slow_reader_aborts += 1
            _log.warning("slow reader aborted")
        finally:
            # Close the transport BEFORE reaping the pump: a bare
            # cancel() can be absorbed by wait_for when the read
            # completed concurrently, and a swallowed cancel would leave
            # the pump blocking on the next read for a full idle
            # timeout.  With the transport closed every read fails
            # immediately, so the pump always exits promptly.
            writer.close()
            pump.cancel()
            # Leave the pump room to post its terminal event even if the
            # session died with a full pipeline, so it can always finish.
            while not queue.empty():
                queue.get_nowait()
            with contextlib.suppress(asyncio.CancelledError, Exception):
                await pump
            if task is not None:
                self._connections.discard(task)
            self.admission.release_session()
            self.stats.sessions_closed += 1
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def shutdown(self) -> None:
        """Cancel and await every live connection task (server stop)."""
        tasks = [task for task in self._connections if not task.done()]
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        self._connections.clear()

    async def drain(self, grace: float | None = None) -> dict[str, object]:
        """Graceful shutdown: finish queued batches, then stop.

        The caller has already closed the listener (no new sessions);
        live sessions keep serving their pipelined frames for up to
        ``grace`` seconds (``config.shutdown_grace`` by default), then
        stragglers are cancelled.  The final STATS payload is captured
        in :attr:`final_stats`, logged, and returned — the serving
        tier's last words, emitted exactly once per lifetime.
        """
        grace = self.config.shutdown_grace if grace is None else grace
        tasks = [task for task in self._connections if not task.done()]
        if tasks and grace > 0:
            done, pending = await asyncio.wait(tasks, timeout=grace)
            if pending:
                obs.counter("serve.drain_cancelled", len(pending))
                _log.warning(
                    "drain grace expired",
                    extra={"cancelled_sessions": len(pending)},
                )
        await self.shutdown()
        self.final_stats = self.stats_payload()
        obs.counter("serve.drains")
        _log.info(
            "frontend drained",
            extra={
                "sessions_closed": self.stats.sessions_closed,
                "frames_in": self.stats.frames_in,
                "frames_out": self.stats.frames_out,
                "uploads": self.stats.uploads,
                "restores": self.stats.restores,
            },
        )
        return self.final_stats

    async def _pump_frames(
        self, reader: asyncio.StreamReader, queue: asyncio.Queue
    ) -> None:
        """Read, bound-check and decode frames into the session queue.

        Emits ``("frame", kind, payload)`` events — or ``("error", code,
        message)`` for a well-delimited frame whose payload fails to
        decode (framing is still in sync, so the session survives) —
        then exactly one terminal event: ``("eof",)`` for a clean or
        abrupt disconnect (including a frame truncated by the
        disconnect) or ``("fatal", code, message)`` for transport abuse
        the processor must answer before closing.
        """
        config = self.config
        while True:
            try:
                header = await asyncio.wait_for(
                    reader.readexactly(wire.HEADER_BYTES), config.idle_timeout
                )
            except asyncio.TimeoutError:
                await queue.put(("fatal", wire.E_IDLE, "session idle timeout"))
                return
            except (asyncio.IncompleteReadError, ConnectionError, OSError):
                await queue.put(("eof",))
                return
            (length,) = wire.HEADER.unpack(header)
            if length < 1 or length > config.max_frame_bytes:
                await queue.put(
                    (
                        "fatal",
                        wire.E_OVERSIZED,
                        f"frame of {length} bytes exceeds the "
                        f"{config.max_frame_bytes}-byte limit",
                    )
                )
                return
            try:
                body = await asyncio.wait_for(
                    reader.readexactly(length), config.idle_timeout
                )
            except asyncio.TimeoutError:
                await queue.put(
                    ("fatal", wire.E_IDLE, "frame stalled mid-body")
                )
                return
            except (asyncio.IncompleteReadError, ConnectionError, OSError):
                # Truncated by disconnect: nobody is left to answer.
                await queue.put(("eof",))
                return
            try:
                kind, payload = wire.decode_body(body)
            except wire.ProtocolError as error:
                if error.code in wire.FATAL_CODES:
                    await queue.put(("fatal", error.code, str(error)))
                    return
                # The frame was well-delimited (length known, body fully
                # consumed), so framing is still in sync: answer the
                # error and keep pumping.
                await queue.put(("error", error.code, str(error)))
                continue
            # A full queue blocks here — backpressure: the server stops
            # reading this socket until the processor drains a slot.
            await queue.put(("frame", kind, payload))

    async def _process(
        self, queue: asyncio.Queue, writer: asyncio.StreamWriter
    ) -> None:
        while True:
            event = await queue.get()
            tag = event[0]
            if tag == "eof":
                return
            if tag == "fatal":
                _, code, message = event
                self.stats.count_error(code)
                _log.warning(
                    "fatal transport error",
                    extra={"code": code, "detail": message},
                )
                await self._send(
                    writer, wire.ERROR, wire.error_payload(code, message)
                )
                return
            if tag == "error":
                _, code, message = event
                self.stats.count_error(code)
                await self._send(
                    writer, wire.ERROR, wire.error_payload(code, message)
                )
                continue
            _, kind, payload = event
            self.stats.frames_in += 1
            frame_name = wire.FRAME_NAMES.get(kind, f"0x{kind:02x}")
            obs.counter("serve.frames", kind=frame_name)
            obs.gauge_max("serve.queue_depth", queue.qsize() + 1, stable=False)
            # Injected server-side faults: a drop abruptly aborts the
            # connection (before serving by default, so the request
            # never executed — or after, exercising the rid-replay
            # path); a stall delays the response without touching it.
            drop = faults.fire("serve.drop", kind=frame_name)
            if drop is not None and drop.get("when", "before") == "before":
                _log.warning("injected drop", extra={"kind": frame_name})
                writer.transport.abort()
                return
            stall = faults.fire("serve.stall", kind=frame_name)
            if stall is not None:
                await asyncio.sleep(float(stall.get("delay_s", 0.05)))
            started = time.perf_counter()
            with obs.span("serve.frame", kind=frame_name):
                response_kind, response_payload, close_after = self._serve(
                    kind, payload
                )
            obs.observe(
                "serve.latency_s",
                time.perf_counter() - started,
                kind=frame_name,
            )
            if drop is not None:
                # when == "after": the request was served (and its rid
                # response remembered) but the answer is lost in flight.
                _log.warning(
                    "injected drop after serve", extra={"kind": frame_name}
                )
                writer.transport.abort()
                return
            await self._send(writer, response_kind, response_payload)
            if close_after:
                return

    async def _send(
        self, writer: asyncio.StreamWriter, kind: int, payload: dict
    ) -> None:
        writer.write(wire.encode_frame(kind, payload))
        self.stats.frames_out += 1
        try:
            await asyncio.wait_for(writer.drain(), self.config.drain_timeout)
        except asyncio.TimeoutError:
            # Slow reader: the peer is not consuming responses.  Abort
            # the transport (no lingering send buffer) and bail out.
            writer.transport.abort()
            raise _SlowReaderAbort() from None

    # -- request dispatch (synchronous, ordered by the event loop) ----------

    def _serve(self, kind: int, payload: dict) -> tuple[int, dict, bool]:
        """Serve one request; returns (kind, payload, close_after)."""
        try:
            if kind == wire.HELLO:
                return self._serve_hello(payload)
            if kind == wire.UPLOAD_BATCH:
                return self._serve_upload(payload)
            if kind == wire.RESTORE:
                return self._serve_restore(payload)
            if kind == wire.STATS:
                return wire.OK, self.stats_payload(), False
            if kind == wire.CLOSE:
                return wire.OK, {"closed": True}, True
            # Unreachable for wire traffic (decode_body refuses unknown
            # kinds before they queue), kept for in-process callers.
            self.stats.count_error(wire.E_UNKNOWN_KIND)
            return (
                wire.ERROR,
                wire.error_payload(
                    wire.E_UNKNOWN_KIND, f"unknown frame kind 0x{kind:02x}"
                ),
                True,
            )
        except wire.ProtocolError as error:
            # A malformed payload in a well-framed message: answer the
            # error and keep the session — framing is still in sync.
            self.stats.count_error(error.code)
            return wire.ERROR, wire.error_payload(error.code, str(error)), False

    def _serve_hello(self, payload: dict) -> tuple[int, dict, bool]:
        version = payload.get("protocol")
        if version != wire.PROTOCOL_VERSION:
            self.stats.count_error(wire.E_PROTOCOL)
            return (
                wire.ERROR,
                wire.error_payload(
                    wire.E_PROTOCOL,
                    f"protocol {version!r} unsupported "
                    f"(server speaks {wire.PROTOCOL_VERSION})",
                ),
                True,
            )
        return (
            wire.OK,
            {
                "server": "freqdedup-frontend",
                "protocol": wire.PROTOCOL_VERSION,
                "scheme": self.service.scheme.value,
            },
            False,
        )

    # Bounded FIFO over remembered rid responses; old enough entries can
    # only belong to requests whose retries have long since resolved.
    _RID_CACHE_LIMIT = 4096

    def _replayed(self, payload: dict) -> tuple[int, dict] | None:
        """The remembered response for a retried rid, if any."""
        rid = payload.get("rid")
        if isinstance(rid, str) and rid in self._rid_cache:
            obs.counter("serve.rid_replays")
            return self._rid_cache[rid]
        return None

    def _remember(self, payload: dict, kind: int, response: dict) -> None:
        """Remember a rid request's final response for idempotent replay.

        Admission rejections are deliberately *not* remembered — a retry
        should re-attempt admission, not replay the rejection.
        """
        rid = payload.get("rid")
        if not isinstance(rid, str):
            return
        if len(self._rid_cache) >= self._RID_CACHE_LIMIT:
            self._rid_cache.pop(next(iter(self._rid_cache)))
        self._rid_cache[rid] = (kind, response)

    def _serve_upload(self, payload: dict) -> tuple[int, dict, bool]:
        tenant, round_index, label, backup = wire.parse_upload(payload)
        replayed = self._replayed(payload)
        if replayed is not None:
            return (*replayed, False)
        if not self.admission.admit_request(tenant):
            self.stats.count_error(wire.E_RATE_LIMITED)
            return (
                wire.ERROR,
                wire.error_payload(
                    wire.E_RATE_LIMITED,
                    f"tenant {tenant} exceeded "
                    f"{self.config.rate_limit:g} req/s",
                ),
                False,
            )
        request = Request(
            kind=UPLOAD,
            tenant=tenant,
            round=round_index,
            label=label,
            backup=backup,
        )
        try:
            result = self.service.upload(tenant, backup, label=label)
        except QuotaExceededError as error:
            self.rejected_uploads += 1
            self.stats.count_error(wire.E_QUOTA)
            response = wire.error_payload(wire.E_QUOTA, str(error))
            self._remember(payload, wire.ERROR, response)
            return wire.ERROR, response, False
        except ConfigurationError as error:
            self.stats.count_error(wire.E_CONFLICT)
            response = wire.error_payload(wire.E_CONFLICT, str(error))
            self._remember(payload, wire.ERROR, response)
            return wire.ERROR, response, False
        self.meter.observe_upload(request, result)
        self.stats.uploads += 1
        response = wire.observables_payload(result.observables)
        self._remember(payload, wire.OK, response)
        return wire.OK, response, False

    def _serve_restore(self, payload: dict) -> tuple[int, dict, bool]:
        tenant, label = wire.parse_restore(payload)
        replayed = self._replayed(payload)
        if replayed is not None:
            return (*replayed, False)
        if not self.admission.admit_request(tenant):
            self.stats.count_error(wire.E_RATE_LIMITED)
            return (
                wire.ERROR,
                wire.error_payload(
                    wire.E_RATE_LIMITED,
                    f"tenant {tenant} exceeded "
                    f"{self.config.rate_limit:g} req/s",
                ),
                False,
            )
        try:
            observables, _ = self.service.restore(tenant, label)
        except StorageError as error:
            # The in-process simulator skips restores whose upload was
            # quota-rejected; over the wire the same condition surfaces
            # as not_found — counted identically (skipped_restores).
            self.skipped_restores += 1
            self.stats.count_error(wire.E_NOT_FOUND)
            response = wire.error_payload(wire.E_NOT_FOUND, str(error))
            self._remember(payload, wire.ERROR, response)
            return wire.ERROR, response, False
        self.meter.observe_restore(observables)
        self.stats.restores += 1
        response = wire.observables_payload(observables)
        self._remember(payload, wire.OK, response)
        return wire.OK, response, False

    def stats_payload(self) -> dict[str, object]:
        """The STATS response: serving counters + store totals."""
        stats = self.stats
        payload: dict[str, object] = {
            "sessions_opened": stats.sessions_opened,
            "sessions_closed": stats.sessions_closed,
            "active_sessions": self.admission.active_sessions,
            "frames_in": stats.frames_in,
            "frames_out": stats.frames_out,
            "uploads": stats.uploads,
            "restores": stats.restores,
            "rejected_uploads": self.rejected_uploads,
            "skipped_restores": self.skipped_restores,
            "slow_reader_aborts": stats.slow_reader_aborts,
            "errors": dict(sorted(stats.errors.items())),
            "errors_by_class": dict(sorted(stats.errors_by_class.items())),
            "admission": self.admission.snapshot(),
            "tenants": len(self.service.tenants()),
            "stored_bytes": self.service.stored_bytes,
            "unique_chunks_stored": self.service.unique_chunks_stored(),
        }
        if obs.enabled():
            # Telemetry rides in the STATS frame only while metrics are
            # on, so the disabled-mode payload stays byte-identical.
            self.service.publish_metrics()
            payload["metrics"] = obs.snapshot()
        return payload


# -- running a frontend -------------------------------------------------------


async def start_frontend(
    frontend: DedupFrontend, address: Address
) -> tuple[asyncio.AbstractServer, Address]:
    """Bind ``frontend`` on ``address`` inside the running loop.

    Args:
        frontend: the frontend to serve.
        address: ``("unix", path)`` or ``("tcp", host, port)`` — port 0
            binds an ephemeral port, returned in the resolved address.

    Returns:
        The asyncio server plus the resolved (bound) address.
    """
    if address[0] == "unix":
        server = await asyncio.start_unix_server(
            frontend.handle_connection, path=address[1]
        )
        return server, ("unix", address[1])
    if address[0] == "tcp":
        host, port = address[1], address[2]
        server = await asyncio.start_server(
            frontend.handle_connection, host, port
        )
        bound = server.sockets[0].getsockname()
        return server, ("tcp", bound[0], bound[1])
    raise ConfigurationError(f"unknown address kind {address[0]!r}")


class FrontendServer:
    """Runs a :class:`DedupFrontend` on a background thread's event loop.

    The engine underneath is synchronous, so the serving loop lives on
    one dedicated thread; client processes (the load generator, the
    CLI, benchmarks) talk to it over the socket like any remote peer.
    Use as a context manager, or ``start()``/``stop()`` explicitly::

        with FrontendServer(frontend, ("unix", path)) as address:
            client = FrontendClient(address)

    ``stop()`` shuts the listener down and joins the thread; it does not
    close the underlying service (the caller may still want to inspect
    or report on the served trace first).
    """

    def __init__(self, frontend: DedupFrontend, address: Address):
        self.frontend = frontend
        self.requested = address
        self.address: Address | None = None
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Future | None = None
        self._started = threading.Event()
        self._error: BaseException | None = None

    def start(self) -> Address:
        """Start serving; returns the bound address."""
        self._thread = threading.Thread(
            target=self._run, name="freqdedup-frontend", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=30.0):
            raise StorageError("frontend server failed to start in 30s")
        if self._error is not None:
            raise StorageError(
                f"frontend server failed to start: {self._error}"
            )
        assert self.address is not None
        return self.address

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._main())
        except BaseException as error:  # surface bind failures to start()
            self._error = error
            self._started.set()
        finally:
            asyncio.set_event_loop(None)
            loop.close()

    async def _main(self) -> None:
        loop = asyncio.get_running_loop()
        self._stop = loop.create_future()
        server, self.address = await start_frontend(
            self.frontend, self.requested
        )
        self._started.set()
        try:
            await self._stop
        finally:
            # Graceful drain: the listener is closed first (no new
            # sessions), live sessions finish their queued batches up
            # to the grace period, and the final STATS snapshot lands
            # in ``frontend.final_stats``.
            server.close()
            await server.wait_closed()
            await self.frontend.drain()

    def stop(self) -> None:
        """Stop the listener and join the serving thread."""
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None:
            def _finish() -> None:
                if not stop.done():
                    stop.set_result(None)

            with contextlib.suppress(RuntimeError):
                loop.call_soon_threadsafe(_finish)
        if self._thread is not None:
            self._thread.join(timeout=30.0)

    def __enter__(self) -> Address:
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def build_frontend(
    service_config: ServiceConfig, config: FrontendConfig | None = None
) -> DedupFrontend:
    """A frontend over a freshly built service for ``service_config``."""
    return DedupFrontend(
        build_service(service_config),
        service_config=service_config,
        config=config,
    )


# -- identity mode ------------------------------------------------------------


def identity_check(frontend: DedupFrontend) -> dict[str, object]:
    """Compare a served trace with the in-process simulator, byte-for-byte.

    Both traces render through :func:`inline_report` — config echo,
    traffic totals, headline metrics, per-tenant usage, the bandwidth
    side-channel series, the full cross-tenant attack table, and (when
    clustered) the per-node load/skew and partial-view sections — and
    the two JSON documents are compared for equality.

    Returns:
        ``{"identical": bool, "served": report, "expected": report}``.
    """
    served = inline_report(frontend.as_trace())
    expected = inline_report(simulate(frontend.service_config))
    return {
        "identical": json.dumps(served, sort_keys=True)
        == json.dumps(expected, sort_keys=True),
        "served": served,
        "expected": expected,
    }
