"""Multi-tenant front-end over the shared deduplication engine.

:class:`DedupService` serves per-tenant upload/restore sessions against
one shared :class:`~repro.storage.ddfs.DDFSEngine` — the setting where
cross-user deduplication (and its side channels) exists at all.

The upload session runs the client-assisted dedup protocol of
source-based deduplication systems:

1. the client chunks and encrypts locally (the configured
   :class:`~repro.defenses.pipeline.DefenseScheme`) and sends the upload's
   ciphertext *fingerprint list*;
2. the server resolves duplicates — first against its in-memory state
   (fingerprint cache, open container buffer), then one **batched**
   lookup against the on-disk fingerprint index
   (:meth:`~repro.storage.fingerprint_index.OnDiskFingerprintIndex.lookup_batch`,
   i.e. through whatever :class:`~repro.index.backends.KVBackend` the
   index runs on);
3. the server responds with the needed-set; the client transfers only
   those chunk payloads, which flow through the engine's S1–S4 path and
   into shared containers.

Step 3 is the side channel the meter taps: an upload's *transferred
bytes* reveal how much of the tenant's data the store already held —
including other tenants' data (Zuo et al., arXiv:1703.05126).  Every
request yields a :class:`RequestObservables` record with the bandwidth
signal and a latency proxy in metadata bytes
(:class:`~repro.storage.metrics.MetadataAccessStats` deltas).

Namespaces are enforced at the recipe layer: tenants share physical
chunks but can only restore uploads recorded under their own namespace,
and per-tenant quotas bound *logical* (pre-dedup) bytes — the quantity a
provider bills.

The storage tier behind the dedup response is pluggable: a single shared
:class:`~repro.storage.ddfs.DDFSEngine` (the default, and the paper's
setting) or a :class:`~repro.cluster.cluster.DedupCluster` of N engines
behind a consistent-hash router (``nodes > 1``).  Both implement the same
three tier operations (:meth:`_SingleNodeTier.dedup_response`,
``ingest``, metadata accounting), so the upload protocol — and the
single-node byte stream — is identical either way.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import (
    ConfigurationError,
    QuotaExceededError,
    StorageError,
)
from repro.common.units import KiB, MiB
from repro.datasets.model import Backup
from repro.defenses.pipeline import (
    DefensePipeline,
    DefenseScheme,
    EncryptedBackup,
)
from repro.defenses.segmentation import SegmentationSpec
from repro.storage.ddfs import DDFSEngine
from repro.storage.metrics import publish_engine_metrics
from repro.service.shaping import ShapingPolicy, parse_policy, shape_response
from repro.service.traffic import RESTORE, UPLOAD


@dataclass(frozen=True)
class RequestObservables:
    """What the wire adversary sees of one request.

    For uploads, ``transferred_bytes`` counts only the chunk payloads the
    server actually requested (the dedup response's needed-set) — the
    bandwidth side channel.  Restores always transfer the full logical
    stream, so they carry no dedup signal.  ``metadata_bytes`` is the
    response-latency proxy: index/update/loading bytes the request moved.
    ``request_index`` is the service-order sequence number (the traffic
    round is a client-side notion; the meter tracks it per request).

    Under a response-shaping policy (:mod:`repro.service.shaping`),
    ``transferred_bytes`` is the *shaped* wire observable and
    ``shaped_extra_bytes`` counts the duplicate payload the policy
    requested anyway (0 under the honest policy — the field is inert on
    unshaped services).
    """

    kind: str
    tenant: int
    request_index: int
    label: str
    logical_bytes: int
    transferred_bytes: int
    metadata_bytes: int
    total_chunks: int
    unique_chunks: int
    unique_bytes: int
    stored_chunks: int
    shaped_extra_bytes: int = 0

    @property
    def deduped_bytes(self) -> int:
        """Bytes the dedup response saved (0 for restores)."""
        return self.logical_bytes - self.transferred_bytes

    @property
    def dedup_fraction(self) -> float:
        """Fraction of the logical bytes not transferred."""
        if self.logical_bytes == 0:
            return 0.0
        return self.deduped_bytes / self.logical_bytes


@dataclass(frozen=True)
class UploadResult:
    """Outcome of one upload session."""

    observables: RequestObservables
    encrypted: EncryptedBackup


@dataclass
class _Tenant:
    """Server-side tenant namespace state."""

    quota_bytes: int | None
    logical_bytes: int = 0
    transferred_bytes: int = 0
    uploads: int = 0
    restores: int = 0
    recipes: dict[str, Backup] = field(default_factory=dict)


class _SingleNodeTier:
    """Storage-tier operations over one shared engine.

    This is the pre-cluster upload path verbatim — the dedup response,
    ingest and metering below are byte-identical to the service's
    original inline implementation, which is what keeps single-node
    ``serve-sim`` reports byte-stable across the cluster refactor.
    """

    def __init__(self, engine: DDFSEngine):
        self.engine = engine

    @property
    def entry_bytes(self) -> int:
        return self.engine.index.entry_bytes

    @property
    def metadata_bytes(self) -> int:
        """Metadata bytes the index has moved so far (running total)."""
        return self.engine.index.stats.total_bytes

    def dedup_response(self, unique: dict[bytes, int]) -> set[bytes]:
        """Resolve an upload's unique fingerprints to the needed-set.

        In-memory state first (fingerprint cache, open container
        buffer), then one batched probe of the on-disk index (amortized
        through the KV backend), then step-S4 container prefetch for
        every confirmed duplicate.
        """
        engine = self.engine
        candidates = []
        for fingerprint in unique:
            if engine.cache.lookup(fingerprint) is not None:
                continue
            if engine.containers.in_open_buffer(fingerprint):
                continue
            candidates.append(fingerprint)
        known = engine.index.lookup_batch(candidates)
        needed = {fp for fp in candidates if fp not in known}

        # Confirmed duplicates mirror step S4: prefetch each hit
        # container's fingerprints into the cache (first-occurrence
        # order), so later uploads of co-located chunks resolve at S1
        # without re-probing the index — chunk locality, cross-tenant.
        prefetched: set[int] = set()
        for fingerprint in candidates:
            container_id = known.get(fingerprint)
            if container_id is not None and container_id not in prefetched:
                prefetched.add(container_id)
                engine.prefetch_container(container_id)
        return needed

    def ingest(self, fingerprints: list[bytes], sizes: list[int]) -> None:
        self.engine.ingest_unique_batch(fingerprints, sizes)

    @property
    def stored_bytes(self) -> int:
        return self.engine.containers.stored_bytes()

    def unique_chunks_stored(self) -> int:
        return len(self.engine.index) + self.engine.containers.open_chunks

    def close(self) -> None:
        self.engine.finish_backup()
        self.engine.index.close()


class DedupService:
    """A multi-tenant encrypted-dedup service over a shared storage tier.

    Args:
        scheme: encryption scheme tenants upload under.  Cross-user
            deduplication requires content-derived (deterministic)
            encryption, which every :class:`DefenseScheme` satisfies.
        index_backend: fingerprint-index backend — a
            :class:`~repro.index.backends.KVBackend` instance or a spec
            string (``"memory"``, ``"sqlite"``, ``"sharded[:N]"``, …).
            With ``nodes > 1`` only spec strings are accepted (each node
            opens its own backend).
        index_path: where a spec-string backend persists (per-node
            subpaths when clustered).
        default_quota_bytes: logical-byte quota applied to tenants that
            are auto-registered on first upload (``None`` = unlimited).
        segmentation: defense segmentation (scaled default).
        seed: determinises the scrambling defenses.
        nodes: storage-tier size — 1 (default) serves from one shared
            engine, exactly the pre-cluster service; N > 1 serves from a
            :class:`~repro.cluster.cluster.DedupCluster` of N engines.
        routing: cluster placement policy, ``"ring"`` (consistent hash)
            or ``"modulo"`` (ignored when ``nodes == 1``).
        shaping: dedup-response shaping policy — a
            :class:`~repro.service.shaping.ShapingPolicy` or a spec
            string (``"honest"``, ``"rr:0.25"``, ``"quantize:4096"``).
            The policy's decision hash is keyed with ``seed``.
        cache_budget_bytes / bloom_capacity / container_size /
        entry_bytes: engine knobs, per node (service-scale defaults).
    """

    def __init__(
        self,
        scheme: DefenseScheme | str = DefenseScheme.MLE,
        index_backend=None,
        index_path=None,
        default_quota_bytes: int | None = None,
        segmentation: SegmentationSpec | None = None,
        seed: int = 0,
        nodes: int = 1,
        routing: str = "ring",
        shaping: ShapingPolicy | str = "honest",
        cache_budget_bytes: int = 256 * KiB,
        bloom_capacity: int = 1_000_000,
        container_size: int = 1 * MiB,
        entry_bytes: int = 32,
    ):
        if nodes < 1:
            raise ConfigurationError("nodes must be >= 1")
        self.pipeline = DefensePipeline(
            scheme,
            segmentation=segmentation or SegmentationSpec.scaled(),
            seed=seed,
        )
        self.scheme = self.pipeline.scheme
        self.shaping = parse_policy(shaping, seed=seed)
        if nodes == 1:
            self.engine = DDFSEngine(
                cache_budget_bytes=cache_budget_bytes,
                bloom_capacity=bloom_capacity,
                container_size=container_size,
                entry_bytes=entry_bytes,
                index_backend=index_backend,
                index_path=index_path,
            )
            self.cluster = None
            self._tier = _SingleNodeTier(self.engine)
        else:
            from repro.cluster.cluster import DedupCluster

            if index_backend is not None and not isinstance(
                index_backend, str
            ):
                raise ConfigurationError(
                    "a clustered service needs a backend spec string "
                    "(each node opens its own backend)"
                )
            self.engine = None
            self.cluster = DedupCluster(
                nodes=nodes,
                routing=routing,
                index_backend=index_backend,
                index_path=index_path,
                cache_budget_bytes=cache_budget_bytes,
                bloom_capacity=bloom_capacity,
                container_size=container_size,
                entry_bytes=entry_bytes,
            )
            self._tier = self.cluster
        self.default_quota_bytes = default_quota_bytes
        self._tenants: dict[int, _Tenant] = {}
        self._request_counter = 0

    # -- tenant management --------------------------------------------------

    def register_tenant(
        self, tenant: int, quota_bytes: int | None = None
    ) -> None:
        """Create a tenant namespace with an explicit quota."""
        if tenant in self._tenants:
            raise ConfigurationError(f"tenant {tenant} already registered")
        self._tenants[tenant] = _Tenant(quota_bytes=quota_bytes)

    def _tenant(self, tenant: int) -> _Tenant:
        state = self._tenants.get(tenant)
        if state is None:
            state = _Tenant(quota_bytes=self.default_quota_bytes)
            self._tenants[tenant] = state
        return state

    def tenants(self) -> list[int]:
        return sorted(self._tenants)

    def tenant_usage(self, tenant: int) -> dict[str, object]:
        """Billing-grade usage for one tenant namespace."""
        state = self._tenants[tenant]
        return {
            "tenant": tenant,
            "uploads": state.uploads,
            "restores": state.restores,
            "logical_bytes": state.logical_bytes,
            "transferred_bytes": state.transferred_bytes,
            "quota_bytes": state.quota_bytes,
        }

    def has_upload(self, tenant: int, label: str) -> bool:
        state = self._tenants.get(tenant)
        return state is not None and label in state.recipes

    # -- upload session -----------------------------------------------------

    def upload(
        self, tenant: int, backup: Backup, label: str | None = None
    ) -> UploadResult:
        """Serve one upload session; returns observables + the ciphertext.

        Raises:
            QuotaExceededError: the upload would push the tenant's
                logical bytes past its quota (nothing is stored).
            ConfigurationError: the label is already taken in this
                tenant's namespace.
        """
        state = self._tenant(tenant)
        label = label if label is not None else backup.label
        if label in state.recipes:
            raise ConfigurationError(
                f"tenant {tenant} already stored an upload labelled {label!r}"
            )
        encrypted = self.pipeline.encrypt_backup(backup, self._request_counter)
        stream = encrypted.ciphertext
        logical_bytes = stream.logical_bytes
        if (
            state.quota_bytes is not None
            and state.logical_bytes + logical_bytes > state.quota_bytes
        ):
            raise QuotaExceededError(
                f"tenant {tenant} quota {state.quota_bytes} B exceeded by "
                f"upload {label!r} ({logical_bytes} B logical)"
            )

        metadata_before = self._tier.metadata_bytes

        # Dedup response: resolve the upload's unique fingerprints against
        # in-memory state first, then one batched probe of the on-disk
        # index for the rest (amortized through the KV backend; per owning
        # node when the tier is a cluster).
        unique: dict[bytes, int] = {}
        for fingerprint, size in zip(stream.fingerprints, stream.sizes):
            if fingerprint not in unique:
                unique[fingerprint] = size
        needed = self._tier.dedup_response(unique)

        # Transfer: only the needed chunks cross the wire, as one batch
        # (first occurrence of each, stream order). The dedup response
        # already proved them unique — not cached, not buffered, not in
        # the index — so they skip the per-chunk S1–S4 chain and take the
        # tier's batched unique-ingest path, with identical dedup
        # decisions and metered bytes.
        needed_fingerprints: list[bytes] = []
        needed_sizes: list[int] = []
        transferred_bytes = 0
        for fingerprint, size in unique.items():
            if fingerprint in needed:
                needed_fingerprints.append(fingerprint)
                needed_sizes.append(size)
                transferred_bytes += size
        self._tier.ingest(needed_fingerprints, needed_sizes)
        stored_chunks = len(needed_fingerprints)

        # Response shaping: the policy may request duplicate chunks on
        # top of the needed-set.  The extra payload crosses the wire
        # (perturbing the bandwidth observable) but is discarded — never
        # ingested — so storage state stays byte-identical to an honest
        # run.  Inactive policies skip the seam entirely.
        shaped_extra_bytes = 0
        if self.shaping.is_active():
            extra = shape_response(
                self.shaping, tenant, label, unique, needed
            )
            for fingerprint, size in unique.items():
                if fingerprint in extra:
                    shaped_extra_bytes += size
            transferred_bytes += shaped_extra_bytes

        metadata_bytes = self._tier.metadata_bytes - metadata_before
        state.recipes[label] = stream
        state.logical_bytes += logical_bytes
        state.transferred_bytes += transferred_bytes
        state.uploads += 1
        request_index = self._request_counter
        self._request_counter += 1
        observables = RequestObservables(
            kind=UPLOAD,
            tenant=tenant,
            request_index=request_index,
            label=label,
            logical_bytes=logical_bytes,
            transferred_bytes=transferred_bytes,
            metadata_bytes=metadata_bytes,
            total_chunks=len(stream),
            unique_chunks=len(unique),
            unique_bytes=sum(unique.values()),
            stored_chunks=stored_chunks,
            shaped_extra_bytes=shaped_extra_bytes,
        )
        return UploadResult(observables=observables, encrypted=encrypted)

    # -- restore session ----------------------------------------------------

    def restore(
        self, tenant: int, label: str
    ) -> tuple[RequestObservables, Backup]:
        """Serve one restore session from a tenant's own namespace.

        Raises:
            StorageError: the label is not in this tenant's namespace
                (including labels stored by *other* tenants — namespaces
                share chunks, never recipes).
        """
        state = self._tenants.get(tenant)
        recipe = state.recipes.get(label) if state is not None else None
        if recipe is None:
            raise StorageError(
                f"tenant {tenant} has no upload labelled {label!r}"
            )
        state.restores += 1
        logical_bytes = recipe.logical_bytes
        unique_sizes: dict[bytes, int] = {}
        for fingerprint, size in zip(recipe.fingerprints, recipe.sizes):
            unique_sizes.setdefault(fingerprint, size)
        observables = RequestObservables(
            kind=RESTORE,
            tenant=tenant,
            request_index=self._request_counter,
            label=label,
            logical_bytes=logical_bytes,
            # Restores serve the full stream regardless of deduplication —
            # restore bandwidth leaks nothing about cross-user overlap.
            transferred_bytes=logical_bytes,
            metadata_bytes=self._tier.entry_bytes * len(recipe),
            total_chunks=len(recipe),
            unique_chunks=len(unique_sizes),
            unique_bytes=sum(unique_sizes.values()),
            stored_chunks=0,
        )
        self._request_counter += 1
        return observables, recipe

    # -- bookkeeping --------------------------------------------------------

    @property
    def stored_bytes(self) -> int:
        """Physical bytes the storage tier holds (sealed + open)."""
        return self._tier.stored_bytes

    def unique_chunks_stored(self) -> int:
        """Unique chunks the shared store holds (all nodes)."""
        return self._tier.unique_chunks_stored()

    def publish_metrics(self) -> None:
        """Surface storage-tier running totals in the metrics registry
        (per node when clustered); no-op while metrics are off."""
        if self.engine is not None:
            publish_engine_metrics(self.engine)
        elif self.cluster is not None:
            for node_id in sorted(self.cluster.nodes):
                publish_engine_metrics(
                    self.cluster.nodes[node_id].engine, node=node_id
                )

    def close(self) -> None:
        """Seal open containers and release index-backend resources."""
        self._tier.close()
