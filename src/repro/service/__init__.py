"""Multi-tenant dedup service layer: traffic synthesis, serving, metering.

The paper's adversary observes a *shared* encrypted deduplication store,
but the trace path replays single-client backup series.  This package
provides the multi-tenant setting those attacks actually live in:

* :mod:`repro.service.traffic` — ``TrafficModel`` synthesizes a population
  of tenants (Zipf-popular shared content, configurable cross-user
  duplication, per-tenant churn) and emits a deterministic interleaved
  request stream;
* :mod:`repro.service.server` — ``DedupService`` serves per-tenant
  upload/restore sessions over a shared :class:`~repro.storage.ddfs.DDFSEngine`
  with batched fingerprint lookups, namespaces and quotas, recording
  per-request observables;
* :mod:`repro.service.meter` — ``SideChannelMeter`` turns those
  observables into the adversary's view (per-upload bandwidth signal,
  cross-tenant overlap matrix) and feeds service-generated traces to
  :class:`~repro.attacks.evaluation.AttackEvaluator`;
* :mod:`repro.service.simulate` — ``ServiceConfig`` + ``service_report``
  glue it all into the ``freqdedup serve-sim`` CLI command and the
  scenario engine's ``service`` / ``service_attack`` cell kinds
  (:mod:`repro.service.cells`);
* :mod:`repro.service.protocol` / :mod:`repro.service.frontend` — the
  length-prefixed framed wire protocol and the asyncio socket server
  that multiplexes concurrent per-tenant sessions onto one
  ``DedupService``, with token-bucket admission control
  (:mod:`repro.service.admission`) in front of the engine;
* :mod:`repro.service.loadgen` — the blocking protocol client plus the
  multi-process load generator behind ``freqdedup serve-net``.
"""

from repro.service.admission import AdmissionController, TokenBucket
from repro.service.frontend import (
    DedupFrontend,
    FrontendConfig,
    FrontendServer,
    build_frontend,
    identity_check,
)
from repro.service.loadgen import FrontendClient, replay_stream, run_loadgen
from repro.service.meter import SideChannelMeter
from repro.service.server import (
    DedupService,
    RequestObservables,
    UploadResult,
)
from repro.service.simulate import (
    SERVICE_GRID_COLUMNS,
    ServiceConfig,
    ServiceTrace,
    attack_cells,
    build_service,
    inline_report,
    service_grid_cells,
    service_report,
    simulate,
)
from repro.service.traffic import (
    RESTORE,
    UPLOAD,
    Request,
    TrafficConfig,
    TrafficModel,
)

__all__ = [
    "AdmissionController",
    "DedupFrontend",
    "DedupService",
    "FrontendClient",
    "FrontendConfig",
    "FrontendServer",
    "RESTORE",
    "Request",
    "RequestObservables",
    "SERVICE_GRID_COLUMNS",
    "ServiceConfig",
    "ServiceTrace",
    "SideChannelMeter",
    "TokenBucket",
    "TrafficConfig",
    "TrafficModel",
    "UPLOAD",
    "UploadResult",
    "attack_cells",
    "build_frontend",
    "build_service",
    "identity_check",
    "inline_report",
    "replay_stream",
    "run_loadgen",
    "service_grid_cells",
    "service_report",
    "simulate",
]
