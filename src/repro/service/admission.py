"""Admission control for the socket frontend: rate limits and caps.

Two small policies sit in front of the dedup engine:

* :class:`TokenBucket` — the classic leaky-bucket rate limiter.  A
  bucket holds at most ``burst`` tokens and refills at ``rate`` tokens
  per second; a request is admitted iff a token is available.  The
  clock is injectable, so unit tests drive the bucket on virtual time
  and the contention tests only need loose real-time tolerances.
* :class:`AdmissionController` — per-tenant buckets plus a global
  concurrent-session cap.  Buckets are created lazily on a tenant's
  first request, so the controller scales with *active* tenants, not
  the population size.

Quota enforcement is deliberately **not** here: logical-byte quotas are
tenant state the service already owns
(:class:`~repro.service.server.DedupService` raises
:class:`~repro.common.errors.QuotaExceededError`), and the frontend maps
that to the ``quota_exceeded`` wire error.  Admission control covers
what the in-process service cannot see — request *arrival*: how fast a
tenant sends, how many sessions are open, how deep a connection's
pipeline may run (the bounded queue lives in
:mod:`repro.service.frontend`).

A ``rate`` of 0 disables rate limiting (every request admitted), which
is the identity mode the differential tests rely on: with admission
disabled the frontend must be byte-identical to the in-process
simulator.
"""

from __future__ import annotations

import time
from typing import Callable

Clock = Callable[[], float]


class TokenBucket:
    """Token-bucket rate limiter on an injectable monotonic clock.

    Args:
        rate: refill rate in tokens per second; ``0`` (or negative)
            disables limiting — :meth:`try_acquire` always admits.
        burst: bucket capacity (maximum tokens; the initial balance).
        clock: monotonic time source (default :func:`time.monotonic`).
    """

    def __init__(
        self, rate: float, burst: float = 1.0, clock: Clock = time.monotonic
    ):
        self.rate = float(rate)
        self.burst = max(float(burst), 1.0)
        self._clock = clock
        self._tokens = self.burst
        self._updated = clock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = now - self._updated
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
            self._updated = now

    def tokens(self) -> float:
        """The current balance (after refill) — observability, not API."""
        self._refill()
        return self._tokens

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Admit a request costing ``tokens``, if the balance allows.

        Returns:
            True (and debits the bucket) when admitted; False otherwise.
            Always True when the bucket is unlimited (``rate <= 0``).
        """
        if self.rate <= 0:
            return True
        self._refill()
        if self._tokens >= tokens:
            self._tokens -= tokens
            return True
        return False


class AdmissionController:
    """Per-tenant request rate limits plus a global session cap.

    Args:
        rate_limit: per-tenant request rate (requests/second); ``0``
            disables rate limiting.
        burst: per-tenant bucket capacity.
        max_sessions: concurrent-session cap; a connection beyond the
            cap is refused at accept time (``busy``).
        clock: monotonic time source shared by every bucket.
    """

    def __init__(
        self,
        rate_limit: float = 0.0,
        burst: float = 32.0,
        max_sessions: int = 4096,
        clock: Clock = time.monotonic,
    ):
        self.rate_limit = float(rate_limit)
        self.burst = float(burst)
        self.max_sessions = int(max_sessions)
        self._clock = clock
        self._buckets: dict[int, TokenBucket] = {}
        self._sessions = 0
        self.throttled_requests = 0
        self.refused_sessions = 0

    # -- sessions -----------------------------------------------------------

    @property
    def active_sessions(self) -> int:
        return self._sessions

    def admit_session(self) -> bool:
        """Admit one new connection against the global cap."""
        if self._sessions >= self.max_sessions:
            self.refused_sessions += 1
            return False
        self._sessions += 1
        return True

    def release_session(self) -> None:
        self._sessions = max(0, self._sessions - 1)

    # -- requests -----------------------------------------------------------

    def bucket(self, tenant: int) -> TokenBucket:
        """The tenant's bucket, created on first use."""
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(
                self.rate_limit, self.burst, clock=self._clock
            )
            self._buckets[tenant] = bucket
        return bucket

    def admit_request(self, tenant: int) -> bool:
        """Admit one request from ``tenant`` against its rate limit."""
        if self.rate_limit <= 0:
            return True
        if self.bucket(tenant).try_acquire():
            return True
        self.throttled_requests += 1
        return False

    def snapshot(self) -> dict[str, object]:
        """Counters for the STATS frame (JSON-safe)."""
        return {
            "rate_limit": self.rate_limit,
            "burst": self.burst,
            "max_sessions": self.max_sessions,
            "active_sessions": self._sessions,
            "throttled_requests": self.throttled_requests,
            "refused_sessions": self.refused_sessions,
            "tenants_seen": len(self._buckets),
        }
