"""Population-scale traffic synthesis for the multi-tenant service.

A :class:`TrafficModel` synthesizes ``tenants`` users over one *shared*
chunk identity space (:mod:`repro.datasets.chunkspace`): cross-user
duplicate content is real duplicate content, so a shared dedup store
deduplicates it across tenants exactly as a real provider would.

Cross-user duplication has two sources, mirroring how the synthetic
dataset models intra-image redundancy (:mod:`repro.datasets.synthetic`):

* **shared templates** — a Zipf-popular whole-file template library
  (:class:`~repro.datasets.filesim.TemplateLibrary`); each tenant file is
  a template copy with probability ``duplication_factor``, so popular
  files (OS images, packages, media) recur across many tenants with
  ``popularity_exponent`` skew;
* **popular chunk runs** — a shared
  :class:`~repro.datasets.filesim.FileMutator` pool seeds high-frequency
  chunk runs into otherwise-private files at ``popular_rate``.

Between rounds each tenant's filesystem evolves with clustered,
locality-preserving edits (``modify_fraction`` of files, ``churn`` of
each edited file's chunks), the same mutation model the single-client
generators use.  The emitted request stream interleaves tenants within
each round in a seeded shuffled order, so the server observes realistic
mixed traffic while two models built from the same seed emit
byte-identical streams.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.common.rng import rng_from
from repro.datasets.chunkspace import ChunkSpace, PopularPool, SizeModel
from repro.datasets.filesim import (
    FileMutator,
    SimFileSystem,
    TemplateLibrary,
    snapshot,
)
from repro.datasets.model import Backup

UPLOAD = "upload"
RESTORE = "restore"


@dataclass(frozen=True)
class TrafficConfig:
    """Knobs for the tenant population and its request stream.

    Attributes:
        tenants: number of tenants in the population.
        rounds: upload rounds; every tenant uploads once per round.
        files_per_tenant: files in each tenant's initial filesystem.
        mean_file_chunks: mean file length in chunks (heavy-tailed).
        duplication_factor: probability a tenant file is a copy of a
            shared template (the cross-user duplication axis).
        popularity_exponent: Zipf exponent over shared-template ranks
            (the popularity-skew axis; larger → few templates dominate).
        num_templates: size of the shared template library.
        modify_fraction: fraction of each tenant's files edited per round.
        churn: fraction of an edited file's chunks rewritten.
        restore_probability: per tenant and round (>0), probability of a
            restore request for that tenant's previous-round upload.
        popular_rate: rate at which new content reuses shared popular
            chunk runs (intra-stream frequency skew, cross-user too).
        popular_pool_size: number of shared popular runs.
        fingerprint_bytes: fingerprint width of the shared chunk space.
    """

    tenants: int = 20
    rounds: int = 2
    files_per_tenant: int = 12
    mean_file_chunks: int = 16
    duplication_factor: float = 0.5
    popularity_exponent: float = 1.5
    num_templates: int = 40
    modify_fraction: float = 0.25
    churn: float = 0.2
    restore_probability: float = 0.1
    popular_rate: float = 0.08
    popular_pool_size: int = 24
    fingerprint_bytes: int = 8

    def __post_init__(self) -> None:
        if self.tenants < 1 or self.rounds < 1:
            raise ConfigurationError("tenants and rounds must be >= 1")
        if self.files_per_tenant < 1 or self.mean_file_chunks < 1:
            raise ConfigurationError(
                "files_per_tenant and mean_file_chunks must be >= 1"
            )
        for name in (
            "duplication_factor",
            "modify_fraction",
            "churn",
            "restore_probability",
            "popular_rate",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1]")


@dataclass(frozen=True)
class Request:
    """One service request in the interleaved stream.

    ``backup`` carries the plaintext chunk stream of an upload (the
    client encrypts before transfer; the service applies the configured
    scheme).  A restore instead names the stored upload to read via
    ``restore_label``.
    """

    kind: str
    tenant: int
    round: int
    label: str
    backup: Backup | None = None
    restore_label: str | None = None


def upload_label(tenant: int, round_index: int) -> str:
    """Canonical label of a tenant's upload in a given round."""
    return f"t{tenant:04d}/r{round_index:02d}"


class TrafficModel:
    """Synthesizes a tenant population and its request stream.

    Everything derives from ``seed`` through labelled child streams
    (:func:`repro.common.rng.rng_from`), so the stream is deterministic:
    same seed and config, byte-identical requests.  :meth:`requests`
    materializes the stream once and returns the same list thereafter
    (generation mutates the tenant filesystems, so it must not re-run).
    """

    def __init__(self, seed: int = 0, config: TrafficConfig | None = None):
        self.seed = seed
        self.config = config or TrafficConfig()
        cfg = self.config
        self.chunk_space = ChunkSpace(
            namespace=f"service-{seed}",
            fingerprint_bytes=cfg.fingerprint_bytes,
            size_model=SizeModel(kind="variable"),
        )
        if cfg.popular_rate > 0.0:
            # Strong skew: the attacks seed from top global frequency
            # ranks, which are only stable across *different* tenants'
            # streams when a few popular chunks clearly dominate (§4.2).
            pool = PopularPool.build(
                self.chunk_space,
                rng_from(seed, "service-pool"),
                num_runs=cfg.popular_pool_size,
                exponent=1.6,
            )
        else:
            pool = None
        self.mutator = FileMutator(self.chunk_space, pool, cfg.popular_rate)
        # Moderate length spread (sigma 0.5): with the library default the
        # most popular template can degenerate to a 2-chunk file, and the
        # cross-user duplication the grid axis sweeps would be dominated
        # by template-length luck instead of duplication_factor.
        self.library = TemplateLibrary(
            self.mutator,
            rng_from(seed, "service-templates"),
            num_templates=cfg.num_templates,
            mean_chunks=cfg.mean_file_chunks,
            exponent=cfg.popularity_exponent,
            length_sigma=0.5,
        )
        # Tenants are populated in index order from one shared chunk
        # space, so chunk-id allocation (hence every fingerprint) is
        # deterministic across runs.
        self._filesystems = [
            self._populate_tenant(tenant) for tenant in range(cfg.tenants)
        ]
        self._requests: list[Request] | None = None

    # -- population ---------------------------------------------------------

    def _file_length(self, rng: random.Random) -> int:
        mean = self.config.mean_file_chunks
        length = int(rng.lognormvariate(0.0, 0.7) * mean * 0.8)
        return max(2, min(length, mean * 6))

    def _populate_tenant(self, tenant: int) -> SimFileSystem:
        cfg = self.config
        rng = rng_from(self.seed, "service-tenant", tenant)
        filesystem = SimFileSystem()
        for index in range(cfg.files_per_tenant):
            path = f"t{tenant:04d}/f{index:04d}"
            if rng.random() < cfg.duplication_factor:
                filesystem.add(self.library.instantiate(path, rng))
            else:
                filesystem.add(
                    self.mutator.create_file(path, rng, self._file_length(rng))
                )
        return filesystem

    def _evolve_tenant(self, tenant: int, round_index: int) -> None:
        cfg = self.config
        if cfg.modify_fraction == 0.0 or cfg.churn == 0.0:
            return
        rng = rng_from(self.seed, "service-evolve", tenant, round_index)
        filesystem = self._filesystems[tenant]
        paths = filesystem.paths()
        num_modified = max(1, int(len(paths) * cfg.modify_fraction))
        for path in rng.sample(paths, num_modified):
            self.mutator.modify_file(filesystem.get(path), rng, churn=cfg.churn)

    # -- the stream ---------------------------------------------------------

    def requests(self) -> list[Request]:
        """The full interleaved request stream (materialized once)."""
        if self._requests is None:
            self._requests = self._generate()
        return self._requests

    def _generate(self) -> list[Request]:
        cfg = self.config
        stream: list[Request] = []
        for round_index in range(cfg.rounds):
            # Evolution runs in fixed tenant order (chunk allocation must
            # not depend on the interleaving); only the *serving* order
            # within the round is shuffled.
            if round_index > 0:
                for tenant in range(cfg.tenants):
                    self._evolve_tenant(tenant, round_index)
            round_requests: list[Request] = []
            for tenant in range(cfg.tenants):
                label = upload_label(tenant, round_index)
                backup = snapshot(
                    self._filesystems[tenant], self.chunk_space, label=label
                )
                round_requests.append(
                    Request(
                        kind=UPLOAD,
                        tenant=tenant,
                        round=round_index,
                        label=label,
                        backup=backup,
                    )
                )
                if round_index > 0 and cfg.restore_probability > 0.0:
                    rng = rng_from(
                        self.seed, "service-restore", tenant, round_index
                    )
                    if rng.random() < cfg.restore_probability:
                        # Restores read the previous round's upload, which
                        # is guaranteed to have been served already no
                        # matter how this round is interleaved.
                        round_requests.append(
                            Request(
                                kind=RESTORE,
                                tenant=tenant,
                                round=round_index,
                                label=f"{label}/restore",
                                restore_label=upload_label(
                                    tenant, round_index - 1
                                ),
                            )
                        )
            rng_from(self.seed, "service-interleave", round_index).shuffle(
                round_requests
            )
            stream.extend(round_requests)
        return stream
