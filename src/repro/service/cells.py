"""Scenario-engine cell kinds for the service layer.

Importing this module registers two cell kinds with
:mod:`repro.scenarios.cells` (the engine lazy-loads it on first use, so
specs and cells can name these kinds without importing the service):

* ``service_attack`` — one cross-tenant attack pair over one simulated
  trace.  All pairs of a report share one config, so the registered
  *warmer* runs the simulation in the parent before workers fork; each
  forked worker then inherits the memoised trace and only pays for its
  own attack runs.
* ``service`` — one full simulation per cell, reduced to the headline
  metrics row (:data:`repro.service.simulate.SERVICE_GRID_COLUMNS`).
  These cells fan a (tenants × popularity-skew × duplication-factor)
  grid across processes, so they deliberately have **no** warmer: each
  worker simulating its own cell's config *is* the parallel work.

Both kinds sit on the per-process memo pair in
:mod:`repro.service.simulate`: the trace memo (what the
``service_attack`` warmer fills before workers fork) and the traffic
memo, which lets cells whose configs differ only in service/backend/
attack knobs — not in population — reuse one synthesized request
stream instead of regenerating it per cell.
"""

from __future__ import annotations

from repro.scenarios.cells import register_cell_kind
from repro.service.simulate import (
    attack_pairs,
    config_from_params,
    evaluate_pair,
    headline_metrics,
    simulate,
)


def _run_service_attack(params: dict) -> tuple:
    config = config_from_params(params)
    trace = simulate(config)
    row = evaluate_pair(
        trace, params["auxiliary_tenant"], params["target_tenant"]
    )
    return (tuple(row.items()),)


def _warm_service_attack(params: dict) -> None:
    simulate(config_from_params(params))


def _run_service_grid(params: dict) -> tuple:
    config = config_from_params(params)
    trace = simulate(config)
    metrics = headline_metrics(trace)
    rates = [
        evaluate_pair(trace, auxiliary, target)["inference_rate"]
        for auxiliary, target in attack_pairs(config)
    ]
    row = (
        ("tenants", config.tenants),
        ("popularity_exponent", config.popularity_exponent),
        ("duplication_factor", config.duplication_factor),
        ("cross_user_dedup_rate", metrics["cross_user_dedup_rate"]),
        ("dedup_ratio", metrics["dedup_ratio"]),
        ("mean_overlap", trace.meter.overlap_summary()["mean"]),
        (
            "mean_inference_rate",
            round(sum(rates) / len(rates), 5) if rates else 0.0,
        ),
    )
    return (row,)


register_cell_kind(
    "service_attack", _run_service_attack, warmer=_warm_service_attack
)
register_cell_kind("service", _run_service_grid)
