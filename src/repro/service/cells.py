"""Scenario-engine cell kinds for the service layer.

Importing this module registers three cell kinds with
:mod:`repro.scenarios.cells` (the engine lazy-loads it on first use, so
specs and cells can name these kinds without importing the service):

* ``service_attack`` — one cross-tenant attack pair over one simulated
  trace.  All pairs of a report share one config, so the registered
  *warmer* runs the simulation in the parent before workers fork; each
  forked worker then inherits the memoised trace and only pays for its
  own attack runs.
* ``service`` — one full simulation per cell, reduced to the headline
  metrics row (:data:`repro.service.simulate.SERVICE_GRID_COLUMNS`).
  These cells fan a (tenants × popularity-skew × duplication-factor)
  grid across processes, so they deliberately have **no** warmer: each
  worker simulating its own cell's config *is* the parallel work.
* ``serve_net`` — one *served* run per cell: a real socket frontend
  (:mod:`repro.service.frontend`) over a Unix socket in a scratch
  directory, driven by an in-order :func:`replay_stream`, reduced to
  headline metrics plus the ``identical_to_sim`` differential verdict.
  Identity-ordered replay with admission disabled is deterministic, so
  these rows cache like any simulated cell.

Both kinds sit on the per-process memo pair in
:mod:`repro.service.simulate`: the trace memo (what the
``service_attack`` warmer fills before workers fork) and the traffic
memo, which lets cells whose configs differ only in service/backend/
attack knobs — not in population — reuse one synthesized request
stream instead of regenerating it per cell.
"""

from __future__ import annotations

import os
import shutil
import tempfile

from repro.scenarios.cells import register_cell_kind
from repro.scenarios.spec import Cell
from repro.service.simulate import (
    ServiceConfig,
    attack_pairs,
    config_from_params,
    config_params,
    evaluate_pair,
    headline_metrics,
    simulate,
)


def _run_service_attack(params: dict) -> tuple:
    config = config_from_params(params)
    trace = simulate(config)
    row = evaluate_pair(
        trace, params["auxiliary_tenant"], params["target_tenant"]
    )
    return (tuple(row.items()),)


def _warm_service_attack(params: dict) -> None:
    simulate(config_from_params(params))


def _run_service_grid(params: dict) -> tuple:
    config = config_from_params(params)
    trace = simulate(config)
    metrics = headline_metrics(trace)
    rates = [
        evaluate_pair(trace, auxiliary, target)["inference_rate"]
        for auxiliary, target in attack_pairs(config)
    ]
    row = (
        ("tenants", config.tenants),
        ("popularity_exponent", config.popularity_exponent),
        ("duplication_factor", config.duplication_factor),
        ("cross_user_dedup_rate", metrics["cross_user_dedup_rate"]),
        ("dedup_ratio", metrics["dedup_ratio"]),
        ("mean_overlap", trace.meter.overlap_summary()["mean"]),
        (
            "mean_inference_rate",
            round(sum(rates) / len(rates), 5) if rates else 0.0,
        ),
    )
    return (row,)


SERVE_NET_COLUMNS = (
    "tenants",
    "scheme",
    "requests",
    "uploads",
    "restores",
    "rejected_uploads",
    "skipped_restores",
    "dedup_ratio",
    "cross_user_dedup_rate",
    "identical_to_sim",
)


def _run_serve_net(params: dict) -> tuple:
    """Serve one config over a real socket and diff it against the sim.

    Heavy imports stay inside the executor so merely registering the
    kind never drags asyncio/socket machinery into scenario workers
    that run other kinds.
    """
    from repro.service.frontend import (
        FrontendServer,
        build_frontend,
        identity_check,
    )
    from repro.service.loadgen import replay_stream

    config = config_from_params(params)
    frontend = build_frontend(config)
    scratch = tempfile.mkdtemp(prefix="serve-net-")
    try:
        address = ("unix", os.path.join(scratch, "frontend.sock"))
        with FrontendServer(frontend, address) as bound:
            counts = replay_stream(bound, config)
        identical = identity_check(frontend)["identical"]
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    metrics = headline_metrics(frontend.as_trace())
    row = (
        ("tenants", config.tenants),
        ("scheme", config.scheme),
        ("requests", counts["requests"]),
        ("uploads", counts["uploads"]),
        ("restores", counts["restores"]),
        ("rejected_uploads", counts["rejected_uploads"]),
        ("skipped_restores", counts["skipped_restores"]),
        ("dedup_ratio", metrics["dedup_ratio"]),
        ("cross_user_dedup_rate", metrics["cross_user_dedup_rate"]),
        ("identical_to_sim", identical),
    )
    return (row,)


def serve_net_cells(configs) -> tuple[Cell, ...]:
    """One ``serve_net`` cell per :class:`ServiceConfig`."""
    cells = []
    for config in configs:
        if not isinstance(config, ServiceConfig):
            config = config_from_params(dict(config))
        cells.append(
            Cell(
                kind="serve_net",
                params=config_params(config),
                tags=(("tenants", config.tenants), ("seed", config.seed)),
            )
        )
    return tuple(cells)


register_cell_kind(
    "service_attack", _run_service_attack, warmer=_warm_service_attack
)
register_cell_kind("service", _run_service_grid)
register_cell_kind("serve_net", _run_serve_net)
