"""Backend-backed attack state (the paper's LevelDB implementation, §5.2).

The paper's attack code keeps its three associative-array families — chunk
frequencies F, left/right co-occurrence tables L/R — in LevelDB, keyed by
fingerprint, with each neighbor table stored as a *sequential list* of
(neighbor fingerprint, count) pairs. That layout is what lets the attack
process multi-TB traces whose tables exceed RAM, and its insertion-ordered
lists are the reason ties break in first-occurrence order (see
:mod:`repro.attacks.frequency`).

This module reproduces that design on the pluggable
:class:`~repro.index.backends.KVBackend` layer (the streaming COUNT itself
lives in :mod:`repro.attacks.streaming`):

* :func:`persist_chunk_stats` — streams the COUNT output for a backup into
  backend stores under a directory;
* :func:`load_chunk_stats` — reopens persisted stores via the completion
  marker written when a COUNT run finishes (partial state from an
  interrupted run is never loaded — it is wiped and recounted);
* :class:`PersistentLocalityAttack` / :class:`PersistentAdvancedAttack` —
  the locality-based attacks running against on-disk state, on any
  backend. Results are bit-identical to the in-memory attacks
  (property-tested).
"""

from __future__ import annotations

import os
import shutil
from pathlib import Path

from repro.attacks.advanced import AdvancedLocalityAttack
from repro.attacks.base import AttackResult
from repro.attacks.frequency import ChunkStats
from repro.attacks.locality import LocalityAttack
from repro.attacks.streaming import (
    BackendChunkStats,
    CountStores,
    NeighborStore,
    StreamingCount,
)
from repro.common.errors import ConfigurationError
from repro.datasets.model import Backup
from repro.index.backends import DEFAULT_SHARDS

__all__ = [
    "NeighborStore",
    "PersistentAdvancedAttack",
    "PersistentChunkStats",
    "PersistentLocalityAttack",
    "load_chunk_stats",
    "persist_chunk_stats",
    "persist_columnar_stats",
]

# Backwards-compatible name: the stats object now lives in the streaming
# module and works over any backend, not just the WAL KVStore.
PersistentChunkStats = BackendChunkStats

# Written (with the backend spec as content) only after a COUNT run
# completes; its absence marks a directory as empty or partial.
_MARKER = "COUNT_STATE"
_STORE_STEMS = ("meta", "left", "right")


def _canonical_spec(backend: str, shards: int | None) -> str:
    name, _, option = backend.partition(":")
    if name != "sharded":
        return name
    if shards is None:
        shards = int(option) if option else DEFAULT_SHARDS
    return f"sharded:{shards}"


def _clear_partial_state(directory: Path) -> None:
    """Drop store files left behind by an interrupted COUNT run.

    The streaming COUNT *merges* into its stores, so counting into
    leftover state would corrupt every table. Only the known store
    layouts are removed (``meta*``/``left*``/``right*`` files, their WAL
    sidecars, and shard directories).
    """
    if not directory.is_dir():
        return
    for stem in _STORE_STEMS:
        for path in directory.glob(f"{stem}*"):
            if path.is_dir():
                shutil.rmtree(path)
            else:
                path.unlink()


def persist_chunk_stats(
    backup: Backup,
    directory: str | os.PathLike,
    backend: str = "kvstore",
    shards: int | None = None,
) -> BackendChunkStats:
    """Run the streaming COUNT over ``backup``, persisted under ``directory``.

    A completion marker (recording the backend spec) is written only after
    the full stream is counted; a directory holding partial state from an
    interrupted run is wiped and recounted, never loaded. Reopening a
    completed directory later (:func:`load_chunk_stats`) skips the
    counting pass — useful when the same auxiliary backup is attacked
    against many targets, as in the Figure 6 sweep.

    Args:
        backup: the logical chunk stream to count.
        directory: where the stores live (one subdirectory per backup).
        backend: backend spec (``"kvstore"``, ``"sqlite"``, ``"sharded"``,
            ``"sharded:N"``; see :func:`repro.index.backends.open_backend`).
        shards: shard count for the sharded backend.

    Raises:
        ConfigurationError: for an empty backup, or when the directory
            already holds completed stats (reopen those with
            :func:`load_chunk_stats` instead — recounting would merge
            into them and double every frequency).
    """
    if not backup.fingerprints:
        raise ConfigurationError("cannot persist stats of an empty backup")
    directory = Path(directory)
    marker = directory / _MARKER
    if marker.exists():
        raise ConfigurationError(
            f"stats already persisted under {directory}; "
            "use load_chunk_stats to reopen them"
        )
    _clear_partial_state(directory)
    spec = _canonical_spec(backend, shards)
    stores = CountStores.open(directory, spec)
    counter = StreamingCount(stores)
    counter.ingest_backup(backup)
    stats = counter.finalize()
    if spec != "memory":
        marker.write_text(spec + "\n")
    return stats


def persist_columnar_stats(
    view,
    directory: str | os.PathLike,
    backend: str = "kvstore",
    shards: int | None = None,
    batch_size: int = 64 * 1024,
) -> BackendChunkStats:
    """Run the streaming COUNT over one columnar backup view, persisted
    under ``directory``.

    The batched decode adapter
    (:meth:`repro.datasets.columnar.ColumnarBackupView.iter_batches`)
    feeds :class:`StreamingCount` unchanged, so a memory-mapped trace
    flows into on-disk stores without ever materializing the backup. The
    completion-marker discipline is the same as
    :func:`persist_chunk_stats`: the marker is written only after the
    full stream is counted, so partial state from an interrupted run is
    wiped and recounted on the next call, never loaded.
    """
    if view.num_chunks == 0:
        raise ConfigurationError("cannot persist stats of an empty backup")
    directory = Path(directory)
    marker = directory / _MARKER
    if marker.exists():
        raise ConfigurationError(
            f"stats already persisted under {directory}; "
            "use load_chunk_stats to reopen them"
        )
    _clear_partial_state(directory)
    spec = _canonical_spec(backend, shards)
    stores = CountStores.open(directory, spec)
    counter = StreamingCount(stores)
    for fingerprints, sizes in view.iter_batches(batch_size):
        counter.ingest(fingerprints, sizes)
    stats = counter.finalize()
    if spec != "memory":
        marker.write_text(spec + "\n")
    return stats


def load_chunk_stats(directory: str | os.PathLike) -> BackendChunkStats:
    """Reopen stats persisted by :func:`persist_chunk_stats`.

    The backend is read from the completion marker, so partial state from
    an interrupted run is never loaded (missing marker raises, and the
    next :func:`persist_chunk_stats` recounts from scratch). Frequencies
    and sizes are rebuilt into memory in first-insertion order of the
    original stream, keeping tie-break behaviour identical.
    """
    directory = Path(directory)
    marker = directory / _MARKER
    if not marker.exists():
        raise ConfigurationError(
            f"no completed persisted stats under {directory}"
        )
    stores = CountStores.open(directory, marker.read_text().strip())
    return BackendChunkStats.from_stores(stores)


class _PersistentCountMixin:
    """Shares the backend-backed COUNT pass between the attack variants.

    ``workdir`` holds one store per (side, backup label); pre-existing
    stores are reused, mirroring the paper's reuse of LevelDB state across
    experiments (e.g. one auxiliary backup attacked against many targets).
    """

    def _init_persistence(
        self,
        workdir: str | os.PathLike,
        backend: str = "kvstore",
        shards: int | None = None,
    ) -> None:
        self.workdir = Path(workdir)
        self.backend = backend
        self.shards = shards
        self._side = "ciphertext"

    def _count(self, backup: Backup) -> ChunkStats:
        directory = self.workdir / self._side / backup.label.replace(" ", "_")
        self._side = "auxiliary"  # second _count call is the auxiliary
        try:
            stats = load_chunk_stats(directory)
        except ConfigurationError:
            stats = persist_chunk_stats(
                backup, directory, self.backend, self.shards
            )
        return stats  # type: ignore[return-value]

    def run(
        self,
        ciphertext: Backup,
        auxiliary: Backup,
        leaked_pairs: dict[bytes, bytes] | None = None,
    ) -> AttackResult:
        self._side = "ciphertext"
        result = super().run(ciphertext, auxiliary, leaked_pairs)  # type: ignore[misc]
        result.attack_name = self.name
        return result


class PersistentLocalityAttack(_PersistentCountMixin, LocalityAttack):
    """Locality-based attack with backend-backed COUNT state."""

    name = "locality-persistent"

    def __init__(
        self,
        workdir: str | os.PathLike,
        u: int = 1,
        v: int = 15,
        w: int = 200_000,
        backend: str = "kvstore",
        shards: int | None = None,
        **kwargs,
    ):
        super().__init__(u=u, v=v, w=w, **kwargs)
        self._init_persistence(workdir, backend, shards)


class PersistentAdvancedAttack(_PersistentCountMixin, AdvancedLocalityAttack):
    """Advanced locality-based attack with backend-backed COUNT state."""

    name = "advanced-persistent"

    def __init__(
        self,
        workdir: str | os.PathLike,
        u: int = 1,
        v: int = 15,
        w: int = 200_000,
        backend: str = "kvstore",
        shards: int | None = None,
        **kwargs,
    ):
        super().__init__(u=u, v=v, w=w, **kwargs)
        self._init_persistence(workdir, backend, shards)
