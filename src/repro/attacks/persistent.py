"""KVStore-backed attack state (the paper's LevelDB implementation, §5.2).

The paper's attack code keeps its three associative-array families — chunk
frequencies F, left/right co-occurrence tables L/R — in LevelDB, keyed by
fingerprint, with each neighbor table stored as a *sequential list* of
(neighbor fingerprint, count) pairs. That layout is what lets the attack
process multi-TB traces whose tables exceed RAM, and its insertion-ordered
lists are the reason ties break in first-occurrence order (see
:mod:`repro.attacks.frequency`).

This module reproduces that design on :class:`repro.index.kvstore.KVStore`:

* :class:`NeighborStore` — serialized, insertion-ordered neighbor tables
  loaded lazily per chunk;
* :func:`persist_chunk_stats` — builds and persists the COUNT output for a
  backup;
* :class:`PersistentLocalityAttack` / :class:`PersistentAdvancedAttack` —
  the locality-based attacks running against on-disk state. Results are
  bit-identical to the in-memory attacks (property-tested).
"""

from __future__ import annotations

import os
import struct
from pathlib import Path

from repro.attacks.advanced import AdvancedLocalityAttack
from repro.attacks.base import AttackResult
from repro.attacks.frequency import ChunkStats
from repro.attacks.locality import LocalityAttack
from repro.common.errors import ConfigurationError
from repro.datasets.model import Backup
from repro.index.kvstore import KVStore

_COUNT = struct.Struct(">I")
_META = struct.Struct(">IQ")  # size, frequency


class NeighborStore:
    """Insertion-ordered neighbor tables serialized into a KVStore.

    Each record is ``fingerprint -> [(neighbor, count), ...]`` with the
    neighbors in first-occurrence order, exactly like the sequential lists
    of the paper's implementation.
    """

    def __init__(self, store: KVStore, fingerprint_bytes: int):
        if fingerprint_bytes <= 0:
            raise ConfigurationError("fingerprint_bytes must be positive")
        self._store = store
        self._fp_len = fingerprint_bytes
        self._record = struct.Struct(f">{fingerprint_bytes}sI")

    def write_table(self, fingerprint: bytes, table: dict[bytes, int]) -> None:
        packed = b"".join(
            self._record.pack(neighbor, count)
            for neighbor, count in table.items()
        )
        self._store.put(fingerprint, packed)

    def get(
        self, fingerprint: bytes, default: dict[bytes, int] | None = None
    ) -> dict[bytes, int]:
        raw = self._store.get(fingerprint)
        if raw is None:
            return default if default is not None else {}
        table: dict[bytes, int] = {}
        for offset in range(0, len(raw), self._record.size):
            neighbor, count = self._record.unpack_from(raw, offset)
            table[neighbor] = count
        return table

    def __contains__(self, fingerprint: bytes) -> bool:
        return fingerprint in self._store

    def __len__(self) -> int:
        return len(self._store)


class PersistentChunkStats:
    """COUNT output with on-disk neighbor tables.

    ``frequencies`` and ``sizes`` stay in memory (they are needed in full
    for the global ranking anyway); the much larger ``left``/``right``
    co-occurrence tables are loaded lazily per chunk. The interface matches
    :class:`~repro.attacks.frequency.ChunkStats` where the attacks use it.
    """

    def __init__(
        self,
        frequencies: dict[bytes, int],
        sizes: dict[bytes, int],
        left: NeighborStore,
        right: NeighborStore,
    ):
        self.frequencies = frequencies
        self.sizes = sizes
        self.left = left
        self.right = right

    @property
    def unique_chunks(self) -> int:
        return len(self.frequencies)


def persist_chunk_stats(
    backup: Backup,
    directory: str | os.PathLike,
) -> PersistentChunkStats:
    """Run COUNT over ``backup`` and persist the tables under ``directory``.

    Reopening the same directory later (``load_chunk_stats``) skips the
    counting pass — useful when the same auxiliary backup is attacked
    against many targets, as in the Figure 6 sweep.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    if not backup.fingerprints:
        raise ConfigurationError("cannot persist stats of an empty backup")
    fp_len = len(backup.fingerprints[0])

    # In-memory COUNT pass (transient), then flush to the stores.
    from repro.attacks.frequency import count_with_neighbors

    stats = count_with_neighbors(backup)
    meta_store = KVStore.open(directory / "meta.kv")
    left_store = KVStore.open(directory / "left.kv")
    right_store = KVStore.open(directory / "right.kv")
    left = NeighborStore(left_store, fp_len)
    right = NeighborStore(right_store, fp_len)
    for fingerprint, frequency in stats.frequencies.items():
        meta_store.put(
            fingerprint, _META.pack(stats.sizes[fingerprint], frequency)
        )
    for fingerprint, table in stats.left.items():
        left.write_table(fingerprint, table)
    for fingerprint, table in stats.right.items():
        right.write_table(fingerprint, table)
    for store in (meta_store, left_store, right_store):
        store.flush()
    return PersistentChunkStats(stats.frequencies, stats.sizes, left, right)


def load_chunk_stats(directory: str | os.PathLike) -> PersistentChunkStats:
    """Reopen stats persisted by :func:`persist_chunk_stats`.

    Frequencies and sizes are rebuilt into memory from the meta store
    (insertion order of the original stream is preserved by the log
    replay, keeping tie-break behaviour identical).
    """
    directory = Path(directory)
    meta_path = directory / "meta.kv"
    if not meta_path.exists():
        raise ConfigurationError(f"no persisted stats under {directory}")
    meta_store = KVStore.open(meta_path)
    if len(meta_store) == 0:
        raise ConfigurationError(f"no persisted stats under {directory}")
    frequencies: dict[bytes, int] = {}
    sizes: dict[bytes, int] = {}
    # Replay in insertion order so tie-break behaviour stays identical.
    for fingerprint, raw in meta_store.insertion_items():
        size, frequency = _META.unpack(raw)
        frequencies[fingerprint] = frequency
        sizes[fingerprint] = size
    fp_len = len(next(iter(frequencies)))
    left = NeighborStore(KVStore.open(directory / "left.kv"), fp_len)
    right = NeighborStore(KVStore.open(directory / "right.kv"), fp_len)
    return PersistentChunkStats(frequencies, sizes, left, right)


class _PersistentCountMixin:
    """Shares the KVStore-backed COUNT pass between the attack variants.

    ``workdir`` holds one store per (side, backup label); pre-existing
    stores are reused, mirroring the paper's reuse of LevelDB state across
    experiments (e.g. one auxiliary backup attacked against many targets).
    """

    def _init_persistence(self, workdir: str | os.PathLike) -> None:
        self.workdir = Path(workdir)
        self._side = "ciphertext"

    def _count(self, backup: Backup) -> ChunkStats:
        directory = self.workdir / self._side / backup.label.replace(" ", "_")
        self._side = "auxiliary"  # second _count call is the auxiliary
        try:
            stats = load_chunk_stats(directory)
        except ConfigurationError:
            stats = persist_chunk_stats(backup, directory)
        return stats  # type: ignore[return-value]

    def run(
        self,
        ciphertext: Backup,
        auxiliary: Backup,
        leaked_pairs: dict[bytes, bytes] | None = None,
    ) -> AttackResult:
        self._side = "ciphertext"
        result = super().run(ciphertext, auxiliary, leaked_pairs)  # type: ignore[misc]
        result.attack_name = self.name
        return result


class PersistentLocalityAttack(_PersistentCountMixin, LocalityAttack):
    """Locality-based attack with KVStore-backed COUNT state."""

    name = "locality-persistent"

    def __init__(
        self,
        workdir: str | os.PathLike,
        u: int = 1,
        v: int = 15,
        w: int = 200_000,
        **kwargs,
    ):
        super().__init__(u=u, v=v, w=w, **kwargs)
        self._init_persistence(workdir)


class PersistentAdvancedAttack(_PersistentCountMixin, AdvancedLocalityAttack):
    """Advanced locality-based attack with KVStore-backed COUNT state."""

    name = "advanced-persistent"

    def __init__(
        self,
        workdir: str | os.PathLike,
        u: int = 1,
        v: int = 15,
        w: int = 200_000,
        **kwargs,
    ):
        super().__init__(u=u, v=v, w=w, **kwargs)
        self._init_persistence(workdir)
