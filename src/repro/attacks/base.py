"""Common attack interface and result type.

An attack consumes the adversary's view from the threat model (§3): the
logical-order ciphertext chunk sequence ``C`` of the target backup, the
plaintext chunk sequence ``M`` of an auxiliary (prior) backup and — in
known-plaintext mode — a small set of leaked ciphertext–plaintext pairs.
It produces the inferred set ``T`` of ciphertext → plaintext fingerprint
pairs.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.datasets.model import Backup


@dataclass
class AttackResult:
    """The inferred set ``T``: ciphertext fingerprint → inferred plaintext
    fingerprint, plus bookkeeping about the run."""

    pairs: dict[bytes, bytes] = field(default_factory=dict)
    attack_name: str = ""
    iterations: int = 0

    def __len__(self) -> int:
        return len(self.pairs)


class Attack(ABC):
    """Base class for the paper's inference attacks."""

    name: str = "attack"

    @abstractmethod
    def run(
        self,
        ciphertext: Backup,
        auxiliary: Backup,
        leaked_pairs: dict[bytes, bytes] | None = None,
    ) -> AttackResult:
        """Infer plaintext chunks of ``ciphertext`` using ``auxiliary``.

        Args:
            ciphertext: the target backup as observed by the adversary
                (ciphertext fingerprints, ciphertext sizes, logical order).
            auxiliary: the prior backup's plaintext chunk sequence.
            leaked_pairs: known-plaintext mode seed pairs
                (ciphertext fingerprint → plaintext fingerprint); ``None``
                or empty selects ciphertext-only mode.
        """
