"""Interned COUNT: the hot-path form of the attacks' counting pass.

The reference COUNT (:func:`repro.attacks.frequency.count_with_neighbors`)
keys three nested dicts on 20-byte fingerprint strings for every chunk
occurrence — six bytes-keyed dict operations per chunk, all driven from a
Python-level loop. At the multi-million-chunk scale of the journal
follow-up (Li et al., TDSC'19) that dominates every attack run. This
module interns fingerprints into dense integer chunk ids once
(:class:`ChunkVocabulary`) and counts over the id stream with C-level
primitives only — no per-chunk Python bytecode:

* the id stream itself comes from ``map(ids.__getitem__, fingerprints)``
  over an interning dict whose ``__missing__`` assigns the next id, so
  known fingerprints never leave the C dict lookup;
* frequencies are a ``Counter`` over the id stream (C-accelerated
  counting, iteration order = stream first occurrence);
* first-occurrence sizes fall out of ``dict(zip(reversed(ids),
  reversed(sizes)))`` — the earliest occurrence is written last and wins;
* the left/right co-occurrence tables collapse into **one** ``Counter``
  over ``(previous_id, current_id)`` pairs from ``zip(ids, ids[1:])``,
  from which both directed tables are regrouped on demand.

Decoding back to fingerprint bytes happens only at the rank/report
boundary: :class:`InternedChunkStats` exposes the same
``frequencies``/``left``/``right``/``sizes`` mapping interface as
:class:`~repro.attacks.frequency.ChunkStats` through lazy views, so the
locality/advanced attacks and FREQ-ANALYSIS run unchanged — and, because
every dict the views materialize preserves first-occurrence order, with
byte-identical output (pinned by the equivalence property tests against
``count_with_neighbors`` and ``StreamingCount``).
"""

from __future__ import annotations

import gc
from bisect import bisect_left, bisect_right
from collections import Counter
from contextlib import contextmanager
from itertools import chain

from repro.common import accel
from repro.common.errors import ConfigurationError
from repro.datasets.model import Backup

__all__ = [
    "ChunkVocabulary",
    "InternedArrayStats",
    "InternedChunkStats",
    "InternedCount",
    "MAX_VOCABULARY",
    "check_vocabulary_capacity",
    "interned_count",
]

#: Adjacent chunk ids are packed two to an int for the pair counter, so a
#: vocabulary can hold at most 2**PAIR_SHIFT ids before (prev << PAIR_SHIFT)
#: | cur would alias distinct pairs. 2**32 unique chunks is ~32 TB of
#: logical data at the FSL 8 KB average chunk size — beyond it, shard the
#: trace into multiple vocabularies (see docs/attacks.md, "Scaling COUNT
#: to trace scale").
PAIR_SHIFT = 32
_PAIR_MASK = (1 << PAIR_SHIFT) - 1
MAX_VOCABULARY = 1 << PAIR_SHIFT


def check_vocabulary_capacity(size: int, source: str = "chunk vocabulary") -> None:
    """Reject vocabularies the packed-pair encoding cannot represent.

    Ids at or above 2**PAIR_SHIFT would silently alias other pairs inside
    the packed ``(prev << PAIR_SHIFT) | cur`` adjacency key, corrupting
    the co-occurrence tables; every packed-pair consumer calls this up
    front so the failure is a clear error instead of wrong counts.
    """
    if size > MAX_VOCABULARY:
        raise ConfigurationError(
            f"{source} holds {size} unique fingerprints, more than the "
            f"2**{PAIR_SHIFT} ids the packed (prev << {PAIR_SHIFT}) | cur "
            "adjacency encoding supports; split the trace across "
            "vocabularies (docs/attacks.md, 'Scaling COUNT to trace scale')"
        )


@contextmanager
def _gc_paused():
    """Pause the cyclic collector across an allocation burst.

    The COUNT decode sections allocate hundreds of thousands of container
    objects in a tight stretch; with a multi-million-object live heap the
    generational collector otherwise fires repeatedly mid-burst and
    dominates the wall clock. Nothing here creates reference cycles, so
    deferring collection is safe; the previous collector state is always
    restored.
    """
    if gc.isenabled():
        gc.disable()
        try:
            yield
        finally:
            gc.enable()
    else:
        yield


def group_pairs(pair_counts, decode=None) -> tuple[dict, dict]:
    """Split packed ``(prev << PAIR_SHIFT) | cur`` pair counts into the
    two directed adjacency tables ``(left, right)``.

    Iterating the pair mapping visits pairs in first-occurrence order, so
    each grouped outer/inner dict comes out in exactly the order the
    reference COUNT would have inserted it — the order-sensitive loop the
    in-memory stats and the streaming COUNT's backend merge both rely on.
    ``decode`` optionally maps each id to the caller's key type (e.g.
    fingerprint bytes); by default keys stay dense ints.
    """
    left: dict = {}
    right: dict = {}
    for key, count in pair_counts.items():
        previous = key >> PAIR_SHIFT
        current = key & _PAIR_MASK
        if decode is not None:
            previous = decode(previous)
            current = decode(current)
        table = right.get(previous)
        if table is None:
            table = right[previous] = {}
        table[current] = count
        table = left.get(current)
        if table is None:
            table = left[current] = {}
        table[previous] = count
    return left, right


class _Interner(dict):
    """Fingerprint → dense id dict that assigns ids on first lookup.

    ``__missing__`` keeps interning inside the C dict-subscript path:
    ``map(interner.__getitem__, stream)`` resolves known fingerprints
    without entering Python and only calls back here for new ones.
    """

    __slots__ = ("fingerprints",)

    def __init__(self, fingerprints: list[bytes]):
        super().__init__()
        self.fingerprints = fingerprints

    def __missing__(self, fingerprint: bytes) -> int:
        chunk_id = len(self.fingerprints)
        if chunk_id > _PAIR_MASK:
            raise ConfigurationError(
                "chunk vocabulary exhausted: the packed "
                f"(prev << {PAIR_SHIFT}) | cur adjacency encoding supports "
                f"at most 2**{PAIR_SHIFT} unique fingerprints per "
                "vocabulary (docs/attacks.md, 'Scaling COUNT to trace "
                "scale')"
            )
        self[fingerprint] = chunk_id
        self.fingerprints.append(fingerprint)
        return chunk_id


class ChunkVocabulary:
    """Bidirectional fingerprint-bytes ↔ dense-int-id mapping.

    One vocabulary may be shared by any number of counters (e.g. the
    streaming COUNT interns every batch through a single vocabulary, and
    an attack may share one across both of its COUNT passes), so ids are
    stable for the lifetime of the vocabulary and new fingerprints always
    intern to ``len(vocabulary) - 1``.
    """

    __slots__ = ("_ids", "_fingerprints")

    def __init__(self) -> None:
        self._fingerprints: list[bytes] = []
        self._ids = _Interner(self._fingerprints)

    def __len__(self) -> int:
        return len(self._fingerprints)

    def __contains__(self, fingerprint: bytes) -> bool:
        return fingerprint in self._ids

    def intern(self, fingerprint: bytes) -> int:
        """The id for ``fingerprint``, assigning the next free one if new."""
        return self._ids[fingerprint]

    def intern_stream(self, fingerprints: list[bytes]) -> list[int]:
        """Intern a whole fingerprint sequence (the hot path)."""
        return list(map(self._ids.__getitem__, fingerprints))

    def id_of(self, fingerprint: bytes) -> int | None:
        """The id for ``fingerprint``, or ``None`` if never interned."""
        return self._ids.get(fingerprint)

    def fingerprint(self, chunk_id: int) -> bytes:
        """The fingerprint bytes behind ``chunk_id``."""
        return self._fingerprints[chunk_id]


class _NeighborView:
    """Lazy ``fingerprint -> {neighbor fingerprint: count}`` mapping over
    one direction of the grouped adjacency tables.

    Tables decode to bytes-keyed dicts per fingerprint on first access
    (then cached), in first-occurrence order — identical to the eagerly
    built dicts of the reference COUNT. Only the mapping surface the
    attacks use is provided (``get``/``in``/indexing/iteration).
    """

    __slots__ = ("_vocabulary", "_tables", "_decoded")

    def __init__(
        self, vocabulary: ChunkVocabulary, tables: dict[int, dict[int, int]]
    ):
        self._vocabulary = vocabulary
        self._tables = tables
        self._decoded: dict[bytes, dict[bytes, int]] = {}

    def _decode(self, fingerprint: bytes, table: dict[int, int]) -> dict[bytes, int]:
        fingerprints = self._vocabulary._fingerprints
        decoded = {
            fingerprints[neighbor]: count for neighbor, count in table.items()
        }
        self._decoded[fingerprint] = decoded
        return decoded

    def get(
        self, fingerprint: bytes, default: dict[bytes, int] | None = None
    ) -> dict[bytes, int] | None:
        decoded = self._decoded.get(fingerprint)
        if decoded is not None:
            return decoded
        chunk_id = self._vocabulary._ids.get(fingerprint)
        if chunk_id is None:
            return default
        table = self._tables.get(chunk_id)
        if table is None:
            return default
        return self._decode(fingerprint, table)

    def __getitem__(self, fingerprint: bytes) -> dict[bytes, int]:
        table = self.get(fingerprint)
        if table is None:
            raise KeyError(fingerprint)
        return table

    def __contains__(self, fingerprint: bytes) -> bool:
        chunk_id = self._vocabulary._ids.get(fingerprint)
        return chunk_id is not None and chunk_id in self._tables

    def __len__(self) -> int:
        return len(self._tables)

    def keys(self):
        fingerprints = self._vocabulary._fingerprints
        return (fingerprints[chunk_id] for chunk_id in self._tables)

    def __iter__(self):
        return self.keys()

    def items(self):
        fingerprints = self._vocabulary._fingerprints
        for chunk_id, table in self._tables.items():
            fingerprint = fingerprints[chunk_id]
            decoded = self._decoded.get(fingerprint)
            if decoded is None:
                decoded = self._decode(fingerprint, table)
            yield fingerprint, decoded


class InternedChunkStats:
    """COUNT output over interned ids, presenting the
    :class:`~repro.attacks.frequency.ChunkStats` mapping interface.

    ``frequencies``/``sizes`` materialize (cached) as plain dicts in
    stream-first-occurrence order; ``left``/``right`` are
    :class:`_NeighborView` lazy mappings that decode per fingerprint at
    the rank boundary.
    """

    def __init__(
        self,
        vocabulary: ChunkVocabulary,
        frequency_counts: Counter,
        size_by_id: dict[int, int],
        pair_counts: Counter,
    ):
        self.vocabulary = vocabulary
        self._frequency_counts = frequency_counts
        self._size_by_id = size_by_id
        self._pair_counts = pair_counts
        self._frequencies: dict[bytes, int] | None = None
        self._sizes: dict[bytes, int] | None = None
        self._left: _NeighborView | None = None
        self._right: _NeighborView | None = None

    @property
    def unique_chunks(self) -> int:
        return len(self._frequency_counts)

    @property
    def frequencies(self) -> dict[bytes, int]:
        if self._frequencies is None:
            fingerprints = self.vocabulary._fingerprints
            self._frequencies = {
                fingerprints[chunk_id]: count
                for chunk_id, count in self._frequency_counts.items()
            }
        return self._frequencies

    @property
    def sizes(self) -> dict[bytes, int]:
        if self._sizes is None:
            fingerprints = self.vocabulary._fingerprints
            size_by_id = self._size_by_id
            self._sizes = {
                fingerprints[chunk_id]: size_by_id[chunk_id]
                for chunk_id in self._frequency_counts
            }
        return self._sizes

    def _group_pairs(self) -> None:
        left, right = group_pairs(self._pair_counts)
        self._left = _NeighborView(self.vocabulary, left)
        self._right = _NeighborView(self.vocabulary, right)

    @property
    def left(self) -> _NeighborView:
        if self._left is None:
            self._group_pairs()
        assert self._left is not None
        return self._left

    @property
    def right(self) -> _NeighborView:
        if self._right is None:
            self._group_pairs()
        assert self._right is not None
        return self._right


class InternedCount:
    """Accumulating interned COUNT pass (any batching, order-sensitive).

    Feed the logical chunk stream through :meth:`ingest`; adjacency is
    carried across calls, so any batch alignment accumulates the same
    tables as one whole-stream pass. :meth:`take_pairs` hands out (and
    resets) the per-batch adjacency deltas, which is what lets the
    streaming COUNT run this loop per batch while merging neighbor tables
    through a KV backend.
    """

    def __init__(self, vocabulary: ChunkVocabulary | None = None):
        self.vocabulary = vocabulary if vocabulary is not None else ChunkVocabulary()
        self._frequency_counts: Counter = Counter()
        self._size_by_id: dict[int, int] = {}
        self._pair_counts: Counter = Counter()
        self._previous = -1
        self._total_chunks = 0

    @property
    def total_chunks(self) -> int:
        """Logical chunk records ingested so far."""
        return self._total_chunks

    def seed(self, fingerprint: bytes, size: int, frequency: int) -> None:
        """Pre-load one chunk's accumulated state (resuming a persisted
        COUNT): the fingerprint is interned and its frequency/size set as
        if already counted, without contributing adjacency."""
        chunk_id = self.vocabulary.intern(fingerprint)
        self._frequency_counts[chunk_id] = frequency
        self._size_by_id[chunk_id] = size

    def ingest(self, fingerprints: list[bytes], chunk_sizes: list[int]) -> None:
        """One COUNT pass over a (sub-)stream — no per-chunk Python loop."""
        if len(fingerprints) != len(chunk_sizes):
            raise ConfigurationError(
                "fingerprints and sizes must have equal length"
            )
        if not fingerprints:
            return
        if accel.numpy is not None:
            self._ingest_vectorized(fingerprints, chunk_sizes)
        else:
            self._ingest_python(fingerprints, chunk_sizes)
        self._total_chunks += len(fingerprints)

    def _ingest_vectorized(
        self, fingerprints: list[bytes], chunk_sizes: list[int]
    ) -> None:
        """Count the interned id stream with numpy.

        ``numpy.unique(..., return_index=True)`` yields each distinct
        value's count and first position; re-ordering by first position
        (``argsort``) recovers the stream-first-occurrence insertion order
        the reference COUNT produces, so the accumulated counters stay
        byte-identical to the pure-Python path.
        """
        numpy = accel.numpy
        ids = self.vocabulary._ids
        id_array = numpy.fromiter(
            map(ids.__getitem__, fingerprints),
            dtype=numpy.uint64,
            count=len(fingerprints),
        )
        unique_ids, first_index, counts = numpy.unique(
            id_array, return_index=True, return_counts=True
        )
        order = numpy.argsort(first_index)
        ordered_ids = unique_ids[order].tolist()
        self._frequency_counts.update(
            dict(zip(ordered_ids, counts[order].tolist()))
        )
        size_by_id = self._size_by_id
        for chunk_id, index in zip(ordered_ids, first_index[order].tolist()):
            if chunk_id not in size_by_id:
                size_by_id[chunk_id] = chunk_sizes[index]
        previous = self._previous
        if previous >= 0:
            # The cross-batch boundary pair comes first in stream order.
            self._pair_counts[(previous << PAIR_SHIFT) | int(id_array[0])] += 1
        if len(id_array) > 1:
            packed = (id_array[:-1] << numpy.uint64(PAIR_SHIFT)) | id_array[1:]
            unique_pairs, first_pair, pair_counts = numpy.unique(
                packed, return_index=True, return_counts=True
            )
            pair_order = numpy.argsort(first_pair)
            self._pair_counts.update(
                dict(
                    zip(
                        unique_pairs[pair_order].tolist(),
                        pair_counts[pair_order].tolist(),
                    )
                )
            )
        self._previous = int(id_array[-1])

    def _ingest_python(
        self, fingerprints: list[bytes], chunk_sizes: list[int]
    ) -> None:
        """Fallback ingest built from C-level dict/Counter primitives."""
        id_stream = self.vocabulary.intern_stream(fingerprints)
        self._frequency_counts.update(id_stream)
        # Reversed zip: the earliest occurrence is written last and wins,
        # giving this batch's first-occurrence size per id in one C pass.
        batch_sizes = dict(zip(reversed(id_stream), reversed(chunk_sizes)))
        size_by_id = self._size_by_id
        for chunk_id, size in batch_sizes.items():
            if chunk_id not in size_by_id:
                size_by_id[chunk_id] = size
        previous = self._previous
        if previous >= 0:
            pairs = zip(chain((previous,), id_stream), id_stream)
        else:
            pairs = zip(id_stream, id_stream[1:])
        self._pair_counts.update(
            [(left << PAIR_SHIFT) | right for left, right in pairs]
        )
        self._previous = id_stream[-1]

    def ingest_backup(self, backup: Backup) -> None:
        """Ingest a whole backup's logical chunk sequence."""
        self.ingest(backup.fingerprints, backup.sizes)

    def take_pairs(self) -> Counter:
        """Hand out the adjacency pair counts accumulated since the last
        call (stream-first-occurrence ordered) and reset them; the
        carried ``previous`` id is kept so adjacency still spans the
        batch boundary."""
        pairs = self._pair_counts
        self._pair_counts = Counter()
        return pairs

    def stats(self) -> InternedChunkStats:
        """The accumulated tables as a ChunkStats-compatible view."""
        return InternedChunkStats(
            self.vocabulary,
            self._frequency_counts,
            self._size_by_id,
            self._pair_counts,
        )


class _ArrayNeighborView:
    """Lazy ``fingerprint -> {neighbor fingerprint: count}`` mapping over
    segment-sorted flat arrays (the numpy single-pass layout).

    ``keys`` is an ascending list with equal keys contiguous; a probe
    bisects to its segment and decodes only that slice of the parallel
    ``neighbors``/``counts`` arrays (cached per fingerprint). The
    first-occurrence iteration order the reference COUNT would have is
    recovered lazily from ``ordered_keys`` (owning ids in pair
    first-occurrence order) only when something iterates the view.
    """

    __slots__ = (
        "_vocabulary",
        "_keys",
        "_neighbors",
        "_counts",
        "_ordered_keys",
        "_outer_keys",
        "_decoded",
    )

    def __init__(
        self,
        vocabulary: ChunkVocabulary,
        keys: list[int],
        neighbors,
        counts,
        ordered_keys,
    ):
        self._vocabulary = vocabulary
        self._keys = keys
        self._neighbors = neighbors
        self._counts = counts
        self._ordered_keys = ordered_keys
        self._outer_keys: list[int] | None = None
        self._decoded: dict[bytes, dict[bytes, int]] = {}

    def _decode_segment(self, fingerprint: bytes, chunk_id: int) -> dict[bytes, int] | None:
        keys = self._keys
        low = bisect_left(keys, chunk_id)
        if low == len(keys) or keys[low] != chunk_id:
            return None
        high = bisect_right(keys, chunk_id, low)
        fingerprints = self._vocabulary._fingerprints
        decoded = dict(
            zip(
                map(
                    fingerprints.__getitem__,
                    self._neighbors[low:high].tolist(),
                ),
                self._counts[low:high].tolist(),
            )
        )
        self._decoded[fingerprint] = decoded
        return decoded

    def _outer(self) -> list[int]:
        if self._outer_keys is None:
            ordered = self._ordered_keys
            if ordered is None:
                self._outer_keys = []
            else:
                self._outer_keys = list(dict.fromkeys(ordered.tolist()))
        return self._outer_keys

    def get(
        self, fingerprint: bytes, default: dict[bytes, int] | None = None
    ) -> dict[bytes, int] | None:
        decoded = self._decoded.get(fingerprint)
        if decoded is not None:
            return decoded
        chunk_id = self._vocabulary._ids.get(fingerprint)
        if chunk_id is None:
            return default
        decoded = self._decode_segment(fingerprint, chunk_id)
        return default if decoded is None else decoded

    def __getitem__(self, fingerprint: bytes) -> dict[bytes, int]:
        table = self.get(fingerprint)
        if table is None:
            raise KeyError(fingerprint)
        return table

    def __contains__(self, fingerprint: bytes) -> bool:
        chunk_id = self._vocabulary._ids.get(fingerprint)
        if chunk_id is None:
            return False
        keys = self._keys
        low = bisect_left(keys, chunk_id)
        return low < len(keys) and keys[low] == chunk_id

    def __len__(self) -> int:
        return len(self._outer())

    def keys(self):
        fingerprints = self._vocabulary._fingerprints
        return (fingerprints[chunk_id] for chunk_id in self._outer())

    def __iter__(self):
        return self.keys()

    def items(self):
        fingerprints = self._vocabulary._fingerprints
        for chunk_id in self._outer():
            fingerprint = fingerprints[chunk_id]
            decoded = self._decoded.get(fingerprint)
            if decoded is None:
                decoded = self._decode_segment(fingerprint, chunk_id)
                assert decoded is not None
            yield fingerprint, decoded


class InternedArrayStats:
    """Single-pass COUNT held in flat numpy-derived arrays.

    The fast path behind :func:`interned_count` when numpy is available:
    frequencies come from one ``bincount`` over the interned id stream,
    first-occurrence positions from one reversed scatter (the earliest
    write lands last and wins), and the packed adjacency pairs stay a raw
    array until the first neighbor access groups them (``unique`` +
    two stable segment sorts). Every materialized mapping preserves the
    reference COUNT's first-occurrence insertion order.
    """

    def __init__(
        self,
        vocabulary: ChunkVocabulary,
        ordered_ids: list[int],
        ordered_counts: list[int],
        ordered_first: list[int],
        chunk_sizes: list[int],
        packed_pairs,
    ):
        self.vocabulary = vocabulary
        self._ordered_ids = ordered_ids
        self._ordered_counts = ordered_counts
        self._ordered_first = ordered_first
        self._chunk_sizes = chunk_sizes
        self._packed_pairs = packed_pairs
        self._frequencies: dict[bytes, int] | None = None
        self._sizes: dict[bytes, int] | None = None
        self._left: _ArrayNeighborView | None = None
        self._right: _ArrayNeighborView | None = None

    @classmethod
    def count(
        cls, backup: Backup, vocabulary: ChunkVocabulary | None = None
    ) -> "InternedArrayStats":
        numpy = accel.numpy
        vocabulary = vocabulary if vocabulary is not None else ChunkVocabulary()
        check_vocabulary_capacity(len(vocabulary))
        fingerprints = backup.fingerprints
        total = len(fingerprints)
        if not total:
            return cls(vocabulary, [], [], [], [], None)
        ids = vocabulary._ids
        with _gc_paused():
            id_array = numpy.fromiter(
            map(ids.__getitem__, fingerprints),
                dtype=numpy.intp,
                count=total,
            )
            counts = numpy.bincount(id_array, minlength=len(vocabulary))
            # Reversed scatter: the earliest occurrence is written last
            # and wins, giving each id's first stream position in one
            # pass.
            first = numpy.zeros(len(counts), dtype=numpy.intp)
            first[id_array[::-1]] = numpy.arange(total - 1, -1, -1)
            present = numpy.flatnonzero(counts)
            order = present[numpy.argsort(first[present])]
            packed = None
            if total > 1:
                unsigned = id_array.astype(numpy.uint64)
                packed = (unsigned[:-1] << numpy.uint64(PAIR_SHIFT)) | unsigned[1:]
        return cls(
            vocabulary,
            order.tolist(),
            counts[order].tolist(),
            first[order].tolist(),
            backup.sizes,
            packed,
        )

    @property
    def unique_chunks(self) -> int:
        return len(self._ordered_ids)

    @property
    def frequencies(self) -> dict[bytes, int]:
        if self._frequencies is None:
            fingerprints = self.vocabulary._fingerprints
            with _gc_paused():
                self._frequencies = {
                    fingerprints[chunk_id]: count
                    for chunk_id, count in zip(
                        self._ordered_ids, self._ordered_counts
                    )
                }
        return self._frequencies

    @property
    def sizes(self) -> dict[bytes, int]:
        if self._sizes is None:
            fingerprints = self.vocabulary._fingerprints
            chunk_sizes = self._chunk_sizes
            with _gc_paused():
                self._sizes = {
                    fingerprints[chunk_id]: chunk_sizes[index]
                    for chunk_id, index in zip(
                        self._ordered_ids, self._ordered_first
                    )
                }
        return self._sizes

    def _group_pairs(self) -> None:
        numpy = accel.numpy
        vocabulary = self.vocabulary
        packed = self._packed_pairs
        if packed is None or not len(packed):
            self._left = _ArrayNeighborView(vocabulary, [], None, None, None)
            self._right = _ArrayNeighborView(vocabulary, [], None, None, None)
            return
        with _gc_paused():
            self._group_pairs_inner(numpy, vocabulary, packed)

    def _group_pairs_inner(self, numpy, vocabulary, packed) -> None:
        unique_pairs, first_index, counts = numpy.unique(
            packed, return_index=True, return_counts=True
        )
        order = numpy.argsort(first_index)
        self._left, self._right = segment_neighbor_views(
            numpy, vocabulary, unique_pairs[order], counts[order]
        )

    @property
    def left(self) -> _ArrayNeighborView:
        if self._left is None:
            self._group_pairs()
        assert self._left is not None
        return self._left

    @property
    def right(self) -> _ArrayNeighborView:
        if self._right is None:
            self._group_pairs()
        assert self._right is not None
        return self._right


def segment_neighbor_views(
    numpy, vocabulary, ordered_pairs, ordered_counts, keys_as_arrays=False
) -> tuple[_ArrayNeighborView, _ArrayNeighborView]:
    """Build the two directed neighbor views from packed pairs that are
    already aggregated and in pair-first-occurrence order.

    Stable segment sorts keep the first-occurrence suborder within each
    segment; the pre-sort id arrays carry the outer first-occurrence
    order for (lazy) iteration. ``keys_as_arrays`` keeps the bisect keys
    as numpy arrays instead of Python lists — the trace-scale choice: a
    probe pays a few numpy scalar reads, but 10⁷ pair keys never become
    10⁷ boxed ints.
    """
    previous_ids = (ordered_pairs >> numpy.uint64(PAIR_SHIFT)).astype(numpy.intp)
    current_ids = (ordered_pairs & numpy.uint64(_PAIR_MASK)).astype(numpy.intp)

    def keys_of(sorted_ids):
        return sorted_ids if keys_as_arrays else sorted_ids.tolist()

    segments = numpy.argsort(previous_ids, kind="stable")
    right = _ArrayNeighborView(
        vocabulary,
        keys_of(previous_ids[segments]),
        current_ids[segments],
        ordered_counts[segments],
        previous_ids,
    )
    segments = numpy.argsort(current_ids, kind="stable")
    left = _ArrayNeighborView(
        vocabulary,
        keys_of(current_ids[segments]),
        previous_ids[segments],
        ordered_counts[segments],
        current_ids,
    )
    return left, right


def interned_count(backup: Backup, vocabulary: ChunkVocabulary | None = None):
    """The locality-based attacks' COUNT (Algorithm 2's COUNT),
    byte-identical to
    :func:`~repro.attacks.frequency.count_with_neighbors` through the
    ChunkStats-compatible lazy views.

    With numpy this is the vectorized single-pass
    :class:`InternedArrayStats`; without it the reference COUNT itself
    runs (interning pays off through vectorized counting — the
    pure-Python :class:`InternedCount` exists for the streaming COUNT's
    batch deltas, where the backend dominates, not to beat the reference
    dict loop at attack scale).
    """
    if accel.numpy is not None:
        return InternedArrayStats.count(backup, vocabulary)
    from repro.attacks.frequency import count_with_neighbors

    return count_with_neighbors(backup)
