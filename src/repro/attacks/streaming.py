"""Streaming, backend-backed COUNT (the paper's LevelDB mode, §5.2).

The paper's attack implementation scales frequency analysis to
multi-million-chunk FSL traces by keeping the COUNT tables — frequencies F,
left/right co-occurrence tables L/R — in LevelDB rather than RAM. This
module reproduces that design on top of the pluggable
:class:`~repro.index.backends.KVBackend` layer:

* :class:`CountStores` — the three backend handles one COUNT run writes to
  (``meta`` for per-chunk size+frequency, ``left``/``right`` for the
  neighbor tables), built from a backend spec or supplied directly;
* :class:`NeighborStore` — serialized, insertion-ordered neighbor tables
  loaded lazily per chunk (the paper's sequential LevelDB lists);
* :class:`StreamingCount` — batch-ingesting COUNT: each batch runs the
  interned hot loop (:class:`~repro.attacks.interning.InternedCount`,
  one shared :class:`~repro.attacks.interning.ChunkVocabulary` across
  all batches), whose pair deltas are decoded back to fingerprint bytes
  and merged through the backend with batched writes;
* :class:`BackendChunkStats` — the result object the locality/advanced
  attacks consume in place of :class:`~repro.attacks.frequency.ChunkStats`.

Because every backend preserves first-insertion order and the delta merge
appends new keys in stream order, the COUNT output — including the
tie-break-sensitive iteration order — is byte-identical across backends
and identical to the single-pass in-memory COUNT. The equivalence tests in
``tests/unit/test_backends.py`` pin this down.
"""

from __future__ import annotations

import os
import struct
from pathlib import Path

from repro.attacks.interning import InternedCount, group_pairs
from repro.common.errors import ConfigurationError
from repro.datasets.model import Backup
from repro.index.backends import KVBackend, open_backend

__all__ = [
    "BackendChunkStats",
    "CountStores",
    "DEFAULT_BATCH_SIZE",
    "NeighborStore",
    "StreamingCount",
    "streaming_count",
]

_META = struct.Struct(">IQ")  # size, frequency

#: Chunks accumulated per dict delta before a flush through the backend.
#: 64 Ki records keeps the delta dicts comfortably in cache while giving
#: the SQLite/sharded backends large ``executemany`` batches.
DEFAULT_BATCH_SIZE = 64 * 1024


class NeighborStore:
    """Insertion-ordered neighbor tables serialized into a backend.

    Each record is ``fingerprint -> [(neighbor, count), ...]`` with the
    neighbors in first-occurrence order, exactly like the sequential lists
    of the paper's LevelDB implementation.
    """

    def __init__(self, store: KVBackend, fingerprint_bytes: int):
        if fingerprint_bytes <= 0:
            raise ConfigurationError("fingerprint_bytes must be positive")
        self._store = store
        self._fp_len = fingerprint_bytes
        self._record = struct.Struct(f">{fingerprint_bytes}sI")

    def write_table(self, fingerprint: bytes, table: dict[bytes, int]) -> None:
        self._store.put(fingerprint, self.encode(table))

    def write_tables(self, tables: dict[bytes, dict[bytes, int]]) -> None:
        """Batch-write many tables through the backend's batched path."""
        self._store.put_batch(
            (fingerprint, self.encode(table))
            for fingerprint, table in tables.items()
        )

    def encode(self, table: dict[bytes, int]) -> bytes:
        return b"".join(
            self._record.pack(neighbor, count)
            for neighbor, count in table.items()
        )

    def decode(self, raw: bytes) -> dict[bytes, int]:
        table: dict[bytes, int] = {}
        for offset in range(0, len(raw), self._record.size):
            neighbor, count = self._record.unpack_from(raw, offset)
            table[neighbor] = count
        return table

    def get(
        self, fingerprint: bytes, default: dict[bytes, int] | None = None
    ) -> dict[bytes, int]:
        raw = self._store.get(fingerprint)
        if raw is None:
            return default if default is not None else {}
        return self.decode(raw)

    def __contains__(self, fingerprint: bytes) -> bool:
        return fingerprint in self._store

    def __len__(self) -> int:
        return len(self._store)


class CountStores:
    """The three backends one COUNT run writes to.

    Args:
        meta: ``fingerprint -> (size, frequency)`` records, first-insertion
            ordered (this order is what preserves the attacks' tie-break
            behaviour).
        left / right: serialized neighbor tables (see
            :class:`NeighborStore`).
    """

    def __init__(self, meta: KVBackend, left: KVBackend, right: KVBackend):
        self.meta = meta
        self.left = left
        self.right = right

    @classmethod
    def in_memory(cls) -> "CountStores":
        """Three dict-backed stores (no persistence)."""
        return cls(open_backend("memory"), open_backend("memory"), open_backend("memory"))

    @classmethod
    def open(
        cls,
        directory: str | os.PathLike,
        backend: str = "kvstore",
        shards: int | None = None,
    ) -> "CountStores":
        """Open (or create) persistent stores under ``directory``.

        Layout per backend spec: ``meta.kv``/``left.kv``/``right.kv`` log
        files for ``kvstore``, ``meta.db``/… SQLite files for ``sqlite``,
        and ``meta/``/… shard directories for ``sharded``.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        name = backend.partition(":")[0]
        if name == "memory":
            return cls.in_memory()
        if name == "kvstore":
            suffix = ".kv"
        elif name == "sqlite":
            suffix = ".db"
        elif name == "sharded":
            suffix = ""
        else:
            raise ConfigurationError(f"unknown backend spec {backend!r}")
        return cls(
            *(
                open_backend(backend, directory / f"{table}{suffix}", shards)
                for table in ("meta", "left", "right")
            )
        )

    @classmethod
    def detect(cls, directory: str | os.PathLike) -> "CountStores":
        """Reopen whichever persistent layout exists under ``directory``.

        Raises :class:`~repro.common.errors.ConfigurationError` when no
        persisted COUNT state is found.
        """
        directory = Path(directory)
        if (directory / "meta.kv").exists():
            return cls.open(directory, "kvstore")
        if (directory / "meta.db").exists():
            return cls.open(directory, "sqlite")
        meta_dir = directory / "meta"
        if meta_dir.is_dir():
            shard_files = sorted(meta_dir.glob("shard-*.db"))
            if shard_files:
                return cls.open(directory, "sharded", shards=len(shard_files))
        raise ConfigurationError(f"no persisted stats under {directory}")

    def flush(self) -> None:
        for store in (self.meta, self.left, self.right):
            store.flush()

    def close(self) -> None:
        for store in (self.meta, self.left, self.right):
            store.close()


class BackendChunkStats:
    """COUNT output with backend-resident neighbor tables.

    ``frequencies`` and ``sizes`` stay in memory (they are needed in full
    for the global ranking anyway); the much larger ``left``/``right``
    co-occurrence tables are loaded lazily per chunk. The interface
    matches :class:`~repro.attacks.frequency.ChunkStats` where the attacks
    use it, so :class:`~repro.attacks.locality.LocalityAttack` and
    :class:`~repro.attacks.advanced.AdvancedLocalityAttack` run against
    any backend unchanged.
    """

    def __init__(
        self,
        frequencies: dict[bytes, int],
        sizes: dict[bytes, int],
        left: NeighborStore,
        right: NeighborStore,
    ):
        self.frequencies = frequencies
        self.sizes = sizes
        self.left = left
        self.right = right

    @property
    def unique_chunks(self) -> int:
        return len(self.frequencies)

    @classmethod
    def from_stores(cls, stores: CountStores) -> "BackendChunkStats":
        """Materialize the ranking tables from persisted stores.

        Frequencies and sizes are rebuilt in first-insertion order (the
        backends preserve it), keeping tie-break behaviour identical to
        the in-memory COUNT.
        """
        frequencies: dict[bytes, int] = {}
        sizes: dict[bytes, int] = {}
        for fingerprint, raw in stores.meta.insertion_items():
            size, frequency = _META.unpack(raw)
            frequencies[fingerprint] = frequency
            sizes[fingerprint] = size
        if not frequencies:
            raise ConfigurationError("no persisted COUNT state in stores")
        fp_len = len(next(iter(frequencies)))
        return cls(
            frequencies,
            sizes,
            NeighborStore(stores.left, fp_len),
            NeighborStore(stores.right, fp_len),
        )


class StreamingCount:
    """Batch-ingesting COUNT that flushes dict deltas through a backend.

    Feed the logical chunk stream through :meth:`ingest` (any number of
    calls, any batch alignment); each internal batch runs the interned
    COUNT hot loop (:class:`~repro.attacks.interning.InternedCount`) and
    is then merged:

    * frequencies/sizes accumulate interned in RAM (they are needed in
      full for the global ranking anyway) and are written to the ``meta``
      store once, at :meth:`finalize`, in first-occurrence order;
    * ``left``/``right``: the existing serialized table is decoded, delta
      counts added, new neighbors appended in delta order — which equals
      global first-occurrence order, so the merge is associative across
      any batching.

    Call :meth:`finalize` once to flush and obtain the
    :class:`BackendChunkStats`.

    Args:
        stores: backend handles; defaults to fresh in-memory stores.
        batch_size: chunk records accumulated per flush.
    """

    def __init__(
        self,
        stores: CountStores | None = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ):
        if batch_size < 1:
            raise ConfigurationError("batch_size must be >= 1")
        self.stores = stores if stores is not None else CountStores.in_memory()
        self.batch_size = batch_size
        self._neighbors: tuple[NeighborStore, NeighborStore] | None = None
        self._total_chunks = 0
        # The ranking tables are needed in full at finalize anyway, so they
        # accumulate in RAM — interned through one shared vocabulary
        # (seeded from any pre-existing meta records) — and hit the
        # backend once, instead of a point read per fingerprint per batch.
        # Only the much larger neighbor tables round-trip per batch.
        self._counter = InternedCount()
        for fingerprint, raw in self.stores.meta.insertion_items():
            size, frequency = _META.unpack(raw)
            self._counter.seed(fingerprint, size, frequency)

    @property
    def total_chunks(self) -> int:
        """Logical chunk records ingested so far."""
        return self._total_chunks

    def ingest_backup(self, backup: Backup) -> None:
        """Ingest a whole backup's logical chunk sequence."""
        self.ingest(backup.fingerprints, backup.sizes)

    def ingest(self, fingerprints: list[bytes], sizes: list[int]) -> None:
        """Ingest a slice of the logical stream (order matters)."""
        if len(fingerprints) != len(sizes):
            raise ConfigurationError("fingerprints and sizes must have equal length")
        if not fingerprints:
            return
        if self._neighbors is None:
            fp_len = len(fingerprints[0])
            self._neighbors = (
                NeighborStore(self.stores.left, fp_len),
                NeighborStore(self.stores.right, fp_len),
            )
        for start in range(0, len(fingerprints), self.batch_size):
            stop = start + self.batch_size
            self._flush_batch(fingerprints[start:stop], sizes[start:stop])
        self._total_chunks += len(fingerprints)

    def _flush_batch(self, fingerprints: list[bytes], sizes: list[int]) -> None:
        counter = self._counter
        counter.ingest(fingerprints, sizes)
        # Regroup the batch's packed pair deltas into the two directed
        # delta tables, decoded back to fingerprint bytes. The shared
        # first-occurrence-ordered grouping reproduces exactly the
        # insertion order the old dict-based delta COUNT produced, so the
        # backend merge stays byte-identical.
        delta_left, delta_right = group_pairs(
            counter.take_pairs(),
            decode=counter.vocabulary._fingerprints.__getitem__,
        )
        assert self._neighbors is not None
        for neighbor_store, delta_tables in zip(
            self._neighbors, (delta_left, delta_right)
        ):
            merged: dict[bytes, dict[bytes, int]] = {}
            for fingerprint, delta_table in delta_tables.items():
                table = neighbor_store.get(fingerprint)
                if table:
                    for neighbor, count in delta_table.items():
                        table[neighbor] = table.get(neighbor, 0) + count
                else:
                    table = delta_table
                merged[fingerprint] = table
            neighbor_store.write_tables(merged)

    def finalize(self) -> BackendChunkStats:
        """Write the ranking tables, flush, and return the stats object.

        An empty ingest finalizes to empty stats, matching
        :func:`~repro.attacks.frequency.count_with_neighbors` on an empty
        backup.
        """
        stats = self._counter.stats()
        frequencies = stats.frequencies
        sizes = stats.sizes
        self.stores.meta.put_batch(
            (fingerprint, _META.pack(sizes[fingerprint], frequency))
            for fingerprint, frequency in frequencies.items()
        )
        self.stores.flush()
        if self._neighbors is None:  # nothing ingested
            placeholder = 1
            return BackendChunkStats(
                {},
                {},
                NeighborStore(self.stores.left, placeholder),
                NeighborStore(self.stores.right, placeholder),
            )
        left, right = self._neighbors
        return BackendChunkStats(frequencies, sizes, left, right)


def streaming_count(
    backup: Backup,
    stores: CountStores | None = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> BackendChunkStats:
    """Run the streaming COUNT over one backup (convenience wrapper)."""
    counter = StreamingCount(stores, batch_size)
    counter.ingest_backup(backup)
    return counter.finalize()
