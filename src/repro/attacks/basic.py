"""The basic attack (Algorithm 1): classical frequency analysis.

Ranks every unique ciphertext chunk of the target backup and every unique
plaintext chunk of the auxiliary backup by frequency and pairs equal ranks.
As the paper shows (§5.3), this is almost completely ineffective against
backup workloads — updates perturb ranks and most chunks tie at low
frequencies — but it motivates and seeds the locality-based attack.
"""

from __future__ import annotations

from repro.attacks.base import Attack, AttackResult
from repro.attacks.frequency import FINGERPRINT, count_frequencies, freq_analysis
from repro.datasets.model import Backup


class BasicAttack(Attack):
    """Classical frequency analysis over whole backups.

    The whole-backup frequency table is a fingerprint-keyed store (LevelDB
    in the paper's implementation, §5.2), so equal frequencies are ranked in
    fingerprint order — uncorrelated between ciphertext and plaintext —
    which is one of the two reasons the basic attack is ineffective (§4.1).
    """

    name = "basic"

    def __init__(self, tie_break: str = FINGERPRINT):
        self.tie_break = tie_break

    def run(
        self,
        ciphertext: Backup,
        auxiliary: Backup,
        leaked_pairs: dict[bytes, bytes] | None = None,
    ) -> AttackResult:
        ciphertext_freq = count_frequencies(ciphertext)
        plaintext_freq = count_frequencies(auxiliary)
        pairs = dict(
            freq_analysis(
                ciphertext_freq, plaintext_freq, tie_break=self.tie_break
            )
        )
        if leaked_pairs:
            # Known plaintext overrides whatever rank-pairing produced.
            pairs.update(leaked_pairs)
        return AttackResult(pairs=pairs, attack_name=self.name, iterations=1)
