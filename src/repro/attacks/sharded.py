"""Sharded parallel COUNT over columnar traces (trace-scale attacks).

:func:`sharded_count` runs the attacks' COUNT pass over one backup of a
memory-mapped :class:`~repro.datasets.columnar.ColumnarTrace` by splitting
the uint32 id column into contiguous shards, counting each shard in a
worker process, and merging the per-shard deltas deterministically:

* **frequencies** add; **first-occurrence positions** take the minimum
  (shard positions are global stream positions, so the minimum is the true
  first occurrence);
* **adjacency** is complete because every shard after the first reads one
  *lead* element before its range — the boundary pair belongs to exactly
  one shard, so packed pair counts add and pair first positions take the
  minimum;
* the merged tables are re-ordered by global first-occurrence position
  (the *insertion-sequence trick*): first positions are unique stream
  indices, so one ``argsort`` reconstructs exactly the insertion order a
  single-threaded COUNT would have produced — which is why the output is
  byte-identical to :func:`~repro.attacks.interning.interned_count` at any
  ``--jobs`` (pinned by the differential tests).

The numpy path returns :class:`ColumnarArrayStats`, which never
materializes the full frequency table: ``frequencies``/``sizes`` are lazy
rank-indexed views over flat arrays, neighbor tables decode per probed
fingerprint, and the attacks' global seeding goes through
:meth:`ColumnarArrayStats.top_ranked` / :meth:`ColumnarArrayStats.class_tops`
— a C-level partial ranking instead of sorting a 10⁷-entry dict. The
pure-Python fallback (:data:`repro.common.accel` seam) counts shards with
``Counter`` primitives and merges in shard order (``Counter.update``
preserves first-seen key order), returning a plain
:class:`~repro.attacks.interning.InternedChunkStats`.

:func:`columnar_attack_report` is the end-to-end driver: it derives the
MLE ciphertext side at the *vocabulary* level (the ciphertext id stream of
a deterministic per-chunk encryption is the plaintext id stream, so the
counted arrays are reused verbatim — only the fingerprint decode and the
padded sizes differ), samples known-plaintext leakage without building the
fingerprint set, runs the locality/advanced attack on the counted stats,
and scores against the vocabulary-level ground truth.
"""

from __future__ import annotations

import hashlib
import os
import time
from collections import Counter
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from itertools import islice
from multiprocessing import get_context

from repro import faults, obs
from repro.faults import WorkerCrashError

from repro.attacks.evaluation import InferenceReport
from repro.attacks.frequency import FINGERPRINT, INSERTION
from repro.attacks.interning import (
    PAIR_SHIFT,
    InternedArrayStats,
    InternedChunkStats,
    _ArrayNeighborView,
    _gc_paused,
    check_vocabulary_capacity,
    segment_neighbor_views,
)
from repro.common import accel
from repro.common.errors import ConfigurationError
from repro.common.rng import rng_from
from repro.datasets.columnar import (
    IDS_FILE,
    ColumnarBackupView,
    ColumnarTrace,
    PackedVocabulary,
    _u32_array,
)

__all__ = [
    "ColumnarArrayStats",
    "columnar_attack_report",
    "encrypt_vocabulary",
    "sample_columnar_leakage",
    "seed_freq_pairs",
    "sharded_count",
    "sized_seed_pairs",
]

_TIE_BREAKS = (INSERTION, FINGERPRINT)


# ---------------------------------------------------------------------------
# Shard workers (top-level so they pickle under multiprocessing)


def _shard_ranges(total: int, jobs: int) -> list[tuple[int, int]]:
    """Split ``[0, total)`` into ``jobs`` contiguous near-equal ranges."""
    jobs = max(1, min(jobs, total))
    step, extra = divmod(total, jobs)
    ranges = []
    start = 0
    for index in range(jobs):
        stop = start + step + (1 if index < extra else 0)
        ranges.append((start, stop))
        start = stop
    return ranges


def _count_shard(task):
    """Count one contiguous shard of a backup's id column.

    ``task`` is ``(ids_path, span_start, start, stop, lead, vocab_size,
    use_numpy, shard)`` with ``start``/``stop`` view-relative. A shard
    with ``start > 0`` reads one *lead* element before its range so the
    boundary adjacency pair is counted by exactly one shard; the lead
    element itself is excluded from the frequency/first tables (it belongs
    to the previous shard).

    Returns ``(payload, telemetry)``: the count tables plus, when
    observability is on, ``(metrics snapshot, span records)`` recorded
    into **fresh** worker-local structures (forked workers inherit the
    parent's globals; recording there would double-count after the
    parent merges the shipped snapshot).
    """
    ids_path, span_start, start, stop, lead, vocab_size, use_numpy, shard = task
    registry = obs.worker_registry()
    ring = obs.SpanRing() if obs.tracing_enabled() else None
    span = ring.span if ring is not None else _null_span
    with span("count.shard", shard=shard):
        read_started = time.perf_counter()
        with open(ids_path, "rb") as handle:
            handle.seek((span_start + start - lead) * 4)
            raw = handle.read((stop - start + lead) * 4)
        count_started = time.perf_counter()
        if use_numpy:
            payload = _count_shard_numpy(raw, start, stop, lead, vocab_size)
        else:
            payload = _count_shard_python(raw, start, stop, lead)
    if registry is not None:
        finished = time.perf_counter()
        registry.counter("count.chunks", stop - start)
        registry.observe(
            "count.shard.phase_s", count_started - read_started, phase="read"
        )
        registry.observe(
            "count.shard.phase_s", finished - count_started, phase="bincount"
        )
        from repro.analysis.benchmeta import peak_rss_bytes

        rss = peak_rss_bytes()
        if rss is not None:
            registry.gauge_max("count.shard.peak_rss_bytes", rss, stable=False)
    telemetry = None
    if registry is not None or ring is not None:
        telemetry = (
            registry.snapshot() if registry is not None else None,
            ring.records() if ring is not None else None,
        )
    return payload, telemetry


def _null_span(name, **tags):
    return obs.NULL_SPAN


def _count_shard_numpy(raw, start, stop, lead, vocab_size):
    numpy = accel.numpy
    seg = numpy.frombuffer(raw, dtype="<u4")
    ids = seg[lead:].astype(numpy.intp)
    counts = numpy.bincount(ids, minlength=vocab_size)
    # Reversed scatter: the earliest occurrence is written last and wins.
    first = numpy.zeros(vocab_size, dtype=numpy.int64)
    first[ids[::-1]] = numpy.arange(stop - 1, start - 1, -1, dtype=numpy.int64)
    present = numpy.flatnonzero(counts)
    pairs = pair_first = pair_counts = None
    if len(seg) > 1:
        wide = seg.astype(numpy.uint64)
        packed = (wide[:-1] << numpy.uint64(PAIR_SHIFT)) | wide[1:]
        pairs, first_index, pair_counts = numpy.unique(
            packed, return_index=True, return_counts=True
        )
        pair_first = first_index.astype(numpy.int64) + (start - lead)
    return (
        present.astype(numpy.int64),
        counts[present].astype(numpy.int64),
        first[present],
        pairs,
        pair_first,
        pair_counts,
    )


def _count_shard_python(raw, start, stop, lead):
    seg = _u32_array(raw)
    ids = seg[lead:] if lead else seg
    # Counter over the shard's id stream: first-seen key order.
    frequency = Counter(ids)
    # Reversed zip: the earliest occurrence is written last and wins.
    firsts = dict(zip(reversed(ids), reversed(range(start, stop))))
    pairs: Counter = Counter()
    if len(seg) > 1:
        pairs.update(
            (previous << PAIR_SHIFT) | current
            for previous, current in zip(seg, islice(seg, 1, None))
        )
    return (frequency, firsts, pairs)


# How many times a crashed shard is re-submitted before the count gives up.
_WORKER_RETRIES = 3


def _count_shard_guarded(task, crash=None):
    """:func:`_count_shard` behind a parent-decided crash switch.

    The ``count.worker`` fault site is consulted in the *parent* at
    submission time and the decision shipped here as ``crash`` — forked
    workers inherit the injector's counters, so evaluating rules in the
    children would let per-rule ``times`` caps diverge across forks.
    ``"exit"`` dies the way a real segfault/OOM-kill does (the pool
    breaks); any other mode raises the detectable
    :class:`~repro.faults.WorkerCrashError`.
    """
    if crash is not None:
        if crash == "exit":
            os._exit(3)
        raise WorkerCrashError(f"injected worker crash (shard {task[7]})")
    return _count_shard(task)


def _run_inline(task):
    """One shard in-process, with the same crash/retry semantics.

    There is no worker process to sacrifice here, so every crash mode
    degrades to the detectable error — the retry accounting stays
    identical between the inline and pooled paths.
    """
    for attempt in range(_WORKER_RETRIES + 1):
        action = faults.fire("count.worker", shard=task[7])
        if action is None:
            return _count_shard(task)
        if attempt == _WORKER_RETRIES:
            raise WorkerCrashError(
                f"shard {task[7]} crashed {attempt + 1} times; giving up"
            )
        obs.counter("faults.retries", site="count.worker")
    raise AssertionError("unreachable")


def _run_tasks(tasks):
    """Run every count task, surviving injected/real worker crashes.

    Tasks fan out over a fork-context process pool; a shard whose
    worker raises :class:`~repro.faults.WorkerCrashError` or dies hard
    (``BrokenProcessPool``) is re-submitted up to ``_WORKER_RETRIES``
    times, rebuilding the executor when a hard death poisoned it.
    Results are returned **in task order** regardless of completion or
    retry order, so the downstream merge stays byte-identical to a
    fault-free run.
    """
    try:
        context = get_context("fork")
    except ValueError:  # pragma: no cover - no fork on this platform
        context = None
    if len(tasks) == 1 or context is None:
        return [_run_inline(task) for task in tasks]
    results = [None] * len(tasks)
    attempts = [0] * len(tasks)
    pending = list(range(len(tasks)))
    executor = ProcessPoolExecutor(max_workers=len(tasks), mp_context=context)
    try:
        while pending:
            submissions = []
            for index in pending:
                task = tasks[index]
                action = faults.fire("count.worker", shard=task[7])
                crash = (
                    None if action is None else str(action.get("mode", "raise"))
                )
                submissions.append(
                    (executor.submit(_count_shard_guarded, task, crash), index)
                )
            pending = []
            broken = False
            for future, index in submissions:
                try:
                    results[index] = future.result()
                except (WorkerCrashError, BrokenProcessPool) as error:
                    # A hard exit breaks the whole pool: innocent shards
                    # in this round fail alongside the crasher and are
                    # retried with it.
                    broken = broken or isinstance(error, BrokenProcessPool)
                    attempts[index] += 1
                    if attempts[index] > _WORKER_RETRIES:
                        raise WorkerCrashError(
                            f"shard {tasks[index][7]} crashed "
                            f"{attempts[index]} times; giving up"
                        ) from error
                    obs.counter("faults.retries", site="count.worker")
                    pending.append(index)
            if broken and pending:
                executor.shutdown(wait=False, cancel_futures=True)
                executor = ProcessPoolExecutor(
                    max_workers=len(tasks), mp_context=context
                )
    finally:
        executor.shutdown(wait=False, cancel_futures=True)
    return results


# ---------------------------------------------------------------------------
# Trace-scale stats: lazy rank-indexed views over flat arrays


class _LazyVocabMapping:
    """Base for the ``fingerprint -> value`` views of
    :class:`ColumnarArrayStats`: a probe resolves the fingerprint to its
    chunk id through the mmap-backed vocabulary index, then to its
    frequency rank; nothing per-fingerprint is ever materialized unless
    something iterates the view."""

    __slots__ = ("_stats",)

    def __init__(self, stats: "ColumnarArrayStats"):
        self._stats = stats

    def _value_at(self, rank: int) -> int:
        raise NotImplementedError

    def get(self, fingerprint: bytes, default=None):
        stats = self._stats
        chunk_id = stats.vocabulary._ids.get(fingerprint)
        if chunk_id is None:
            return default
        rank = int(stats._rank_of()[chunk_id])
        if rank < 0:
            return default
        return self._value_at(rank)

    def __getitem__(self, fingerprint: bytes) -> int:
        value = self.get(fingerprint)
        if value is None:
            raise KeyError(fingerprint)
        return value

    def __contains__(self, fingerprint: bytes) -> bool:
        return self.get(fingerprint) is not None

    def __len__(self) -> int:
        return len(self._stats._ordered_ids)

    def keys(self):
        fingerprints = self._stats.vocabulary._fingerprints
        return (
            fingerprints[int(chunk_id)] for chunk_id in self._stats._ordered_ids
        )

    def __iter__(self):
        return self.keys()

    def values(self):
        return (self._value_at(rank) for rank in range(len(self)))

    def items(self):
        fingerprints = self._stats.vocabulary._fingerprints
        for rank, chunk_id in enumerate(self._stats._ordered_ids):
            yield fingerprints[int(chunk_id)], self._value_at(rank)


class _LazyFrequencies(_LazyVocabMapping):
    def _value_at(self, rank: int) -> int:
        return int(self._stats._ordered_counts[rank])


class _LazySizes(_LazyVocabMapping):
    def _value_at(self, rank: int) -> int:
        return int(self._stats._first_sizes[rank])


class ColumnarArrayStats(InternedArrayStats):
    """Merged sharded COUNT over a columnar backup, held in flat arrays.

    Same mapping surface as :class:`InternedArrayStats` (so the
    locality/advanced attacks run unchanged), but nothing scales with the
    full table: ``frequencies``/``sizes`` are lazy rank-indexed views,
    neighbor tables decode per probed fingerprint, and global frequency
    ranking goes through :meth:`top_ranked`/:meth:`class_tops`. All
    ordering is first-occurrence order, byte-identical to the in-RAM
    interned COUNT (differential tests).

    ``ordered_ids``/``ordered_counts``/``ordered_first`` are int64 arrays
    in global first-occurrence order; ``first_sizes`` holds each present
    id's first-occurrence chunk size aligned with them; ``ordered_pairs``/
    ``ordered_pair_counts`` are the aggregated packed adjacency pairs in
    pair-first-occurrence order (``None`` when the stream has no pairs).
    """

    def __init__(
        self,
        vocabulary,
        ordered_ids,
        ordered_counts,
        ordered_first,
        first_sizes,
        ordered_pairs,
        ordered_pair_counts,
    ):
        super().__init__(
            vocabulary, ordered_ids, ordered_counts, ordered_first, [], None
        )
        self._first_sizes = first_sizes
        self._ordered_pairs = ordered_pairs
        self._ordered_pair_counts = ordered_pair_counts
        self._rank_lookup = None
        self._tie_orders: dict[str, object] = {}
        self._lazy_frequencies: _LazyFrequencies | None = None
        self._lazy_sizes: _LazySizes | None = None

    def _rank_of(self):
        """Chunk id → frequency-table rank (-1 if absent), built lazily."""
        if self._rank_lookup is None:
            numpy = accel.numpy
            lookup = numpy.full(
                max(len(self.vocabulary), 1), -1, dtype=numpy.int64
            )
            if len(self._ordered_ids):
                lookup[self._ordered_ids] = numpy.arange(
                    len(self._ordered_ids), dtype=numpy.int64
                )
            self._rank_lookup = lookup
        return self._rank_lookup

    @property
    def frequencies(self) -> _LazyFrequencies:  # type: ignore[override]
        if self._lazy_frequencies is None:
            self._lazy_frequencies = _LazyFrequencies(self)
        return self._lazy_frequencies

    @property
    def sizes(self) -> _LazySizes:  # type: ignore[override]
        if self._lazy_sizes is None:
            self._lazy_sizes = _LazySizes(self)
        return self._lazy_sizes

    def _group_pairs(self) -> None:
        numpy = accel.numpy
        pairs = self._ordered_pairs
        if pairs is None or not len(pairs):
            self._left = _ArrayNeighborView(self.vocabulary, [], None, None, None)
            self._right = _ArrayNeighborView(self.vocabulary, [], None, None, None)
            return
        with _gc_paused():
            self._left, self._right = segment_neighbor_views(
                numpy,
                self.vocabulary,
                pairs,
                self._ordered_pair_counts,
                keys_as_arrays=True,
            )

    # -- streaming rank extraction ------------------------------------------

    def _tie_order(self, tie_break: str):
        """The full frequency ranking as index positions into the
        ordered arrays, under ``tie_break`` (cached).

        ``insertion``: the arrays are already in first-occurrence order,
        so a stable sort on descending count reproduces
        :func:`~repro.attacks.frequency.rank_by_frequency` exactly.
        ``fingerprint``: ties order by fingerprint bytes, recovered from
        the vocabulary index's lexicographic ranks without decoding.
        """
        cached = self._tie_orders.get(tie_break)
        if cached is not None:
            return cached
        numpy = accel.numpy
        counts = self._ordered_counts
        if tie_break == INSERTION:
            order = numpy.argsort(-counts, kind="stable")
        elif tie_break == FINGERPRINT:
            ranks = self.vocabulary._ids.sort_ranks()[self._ordered_ids]
            order = numpy.lexsort((ranks, -counts))
        else:
            raise ValueError(
                f"unknown tie_break {tie_break!r}; use one of {_TIE_BREAKS}"
            )
        self._tie_orders[tie_break] = order
        return order

    def top_ranked(
        self, limit: int | None = None, tie_break: str = INSERTION
    ) -> list[bytes]:
        """The ``limit`` top-frequency fingerprints, identical to
        ``rank_by_frequency(self.frequencies, tie_break)[:limit]`` but
        decoding only the returned prefix."""
        count = len(self._ordered_ids)
        take = count if limit is None else min(limit, count)
        if take <= 0:
            return []
        order = self._tie_order(tie_break)[:take]
        fingerprints = self.vocabulary._fingerprints
        ids = self._ordered_ids
        return [
            fingerprints[int(ids[int(position)])] for position in order
        ]

    def class_tops(
        self,
        limit: int,
        block_size: int,
        is_plaintext: bool,
        tie_break: str = INSERTION,
    ) -> tuple[dict[int, list[bytes]], dict[int, int]]:
        """Per cipher-block-count class: the top-``limit`` fingerprints and
        the class population.

        Because a stable sort of a subsequence equals the stably-sorted
        full sequence filtered to it, slicing the global ranking by class
        reproduces exactly the per-class ranking
        :func:`~repro.attacks.frequency.sized_freq_analysis` computes over
        materialized class buckets.
        """
        if not len(self._ordered_ids):
            return {}, {}
        numpy = accel.numpy
        order = self._tie_order(tie_break)
        blocks = self._first_sizes // block_size
        if is_plaintext:
            blocks = blocks + 1
        ranked_blocks = blocks[order]
        class_order = numpy.argsort(ranked_blocks, kind="stable")
        sorted_blocks = ranked_blocks[class_order]
        boundaries = (
            numpy.flatnonzero(sorted_blocks[1:] != sorted_blocks[:-1]) + 1
        ).tolist()
        fingerprints = self.vocabulary._fingerprints
        ids = self._ordered_ids
        tops: dict[int, list[bytes]] = {}
        populations: dict[int, int] = {}
        for low, high in zip(
            [0, *boundaries], [*boundaries, len(sorted_blocks)]
        ):
            block = int(sorted_blocks[low])
            populations[block] = high - low
            chosen = order[class_order[low : low + min(limit, high - low)]]
            tops[block] = [
                fingerprints[int(ids[int(position)])] for position in chosen
            ]
        return tops, populations

    def with_vocabulary(self, vocabulary, first_sizes) -> "ColumnarArrayStats":
        """The same counted stream under another fingerprint decode.

        A deterministic per-chunk encryption maps the plaintext id stream
        to the ciphertext id stream unchanged, so the ciphertext COUNT
        *is* this COUNT — only the vocabulary (ciphertext fingerprints)
        and the per-chunk sizes (padded) differ. Sharing the arrays makes
        deriving the ciphertext stats O(unique), not a second pass.
        """
        return ColumnarArrayStats(
            vocabulary,
            self._ordered_ids,
            self._ordered_counts,
            self._ordered_first,
            first_sizes,
            self._ordered_pairs,
            self._ordered_pair_counts,
        )


# ---------------------------------------------------------------------------
# The sharded COUNT itself


def sharded_count(view: ColumnarBackupView, jobs: int = 1):
    """COUNT one columnar backup with ``jobs`` parallel shard workers.

    Byte-identical to :func:`~repro.attacks.interning.interned_count`
    over the materialized backup at any ``jobs`` (the merge re-derives
    insertion order from global first-occurrence positions). With numpy,
    returns a :class:`ColumnarArrayStats`; the pure-Python fallback
    returns an :class:`~repro.attacks.interning.InternedChunkStats` whose
    tables materialize on access (correct, but RAM-bound — trace scale
    assumes the accelerated path).
    """
    if jobs < 1:
        raise ConfigurationError("jobs must be >= 1")
    trace = view.trace
    vocabulary = trace.vocabulary
    check_vocabulary_capacity(trace.num_unique, "columnar trace vocabulary")
    numpy = accel.numpy
    total = view.num_chunks
    if total == 0:
        if numpy is not None:
            empty = numpy.empty(0, dtype=numpy.int64)
            return ColumnarArrayStats(
                vocabulary, empty, empty, empty, empty, None, None
            )
        return InternedChunkStats(vocabulary, Counter(), {}, Counter())
    ids_path = os.fspath(trace.directory / IDS_FILE)
    use_numpy = numpy is not None
    tasks = [
        (ids_path, view.start, start, stop, 1 if start else 0,
         trace.num_unique, use_numpy, shard)
        for shard, (start, stop) in enumerate(_shard_ranges(total, jobs))
    ]
    obs.counter("count.backups")
    obs.gauge_max("count.shards", len(tasks), stable=False)
    results = []
    for payload, telemetry in _run_tasks(tasks):
        if telemetry is not None:
            snapshot, spans = telemetry
            obs.merge_snapshot(snapshot)
            obs.merge_spans(spans)
        results.append(payload)
    merge_started = time.perf_counter()
    with obs.span("count.merge", label=view.label, shards=len(tasks)):
        if use_numpy:
            merged = _merge_numpy(view, results, total)
        else:
            merged = _merge_python(view, results)
    obs.observe(
        "count.shard.phase_s", time.perf_counter() - merge_started,
        phase="merge",
    )
    return merged


def _merge_numpy(view, results, total):
    numpy = accel.numpy
    trace = view.trace
    vocab_size = trace.num_unique
    counts = numpy.zeros(vocab_size, dtype=numpy.int64)
    # ``total`` is a sentinel above every real stream position.
    first = numpy.full(vocab_size, total, dtype=numpy.int64)
    pair_parts, pair_first_parts, pair_count_parts = [], [], []
    for present, shard_counts, shard_first, pairs, pair_first, pair_counts in results:
        counts[present] += shard_counts
        # ``present`` is duplicate-free within a shard, so fancy-index
        # assignment (not ``minimum.at``) is safe.
        first[present] = numpy.minimum(first[present], shard_first)
        if pairs is not None:
            pair_parts.append(pairs)
            pair_first_parts.append(pair_first)
            pair_count_parts.append(pair_counts)
    present = numpy.flatnonzero(counts)
    # First positions are unique stream indices: this argsort IS the
    # insertion sequence of a single-threaded COUNT.
    argsort_started = time.perf_counter()
    order = present[numpy.argsort(first[present], kind="stable")]
    obs.observe(
        "count.shard.phase_s", time.perf_counter() - argsort_started,
        phase="argsort",
    )
    ordered_ids = order
    ordered_counts = counts[order]
    ordered_first = first[order]
    ordered_pairs = ordered_pair_counts = None
    if pair_parts:
        all_pairs = numpy.concatenate(pair_parts)
        unique_pairs, inverse = numpy.unique(all_pairs, return_inverse=True)
        agg_counts = numpy.zeros(len(unique_pairs), dtype=numpy.int64)
        numpy.add.at(agg_counts, inverse, numpy.concatenate(pair_count_parts))
        agg_first = numpy.full(len(unique_pairs), total, dtype=numpy.int64)
        numpy.minimum.at(
            agg_first, inverse, numpy.concatenate(pair_first_parts)
        )
        pair_order = numpy.argsort(agg_first, kind="stable")
        ordered_pairs = unique_pairs[pair_order]
        ordered_pair_counts = agg_counts[pair_order]
    first_sizes = (
        numpy.asarray(view.sizes_array())[ordered_first].astype(numpy.int64)
    )
    return ColumnarArrayStats(
        trace.vocabulary,
        ordered_ids,
        ordered_counts,
        ordered_first,
        first_sizes,
        ordered_pairs,
        ordered_pair_counts,
    )


def _merge_python(view, results):
    frequency: Counter = Counter()
    firsts: dict[int, int] = {}
    pairs: Counter = Counter()
    # Shards merge in ascending stream order, so Counter.update appends
    # new keys in global first-occurrence order and setdefault-style
    # insertion keeps the earliest first position.
    for shard_frequency, shard_firsts, shard_pairs in results:
        frequency.update(shard_frequency)
        for chunk_id, position in shard_firsts.items():
            if chunk_id not in firsts:
                firsts[chunk_id] = position
        pairs.update(shard_pairs)
    size_by_id = {
        chunk_id: view.size_at(position)
        for chunk_id, position in firsts.items()
    }
    return InternedChunkStats(view.trace.vocabulary, frequency, size_by_id, pairs)


# ---------------------------------------------------------------------------
# Streaming seed extraction (consumed by the attacks' _seed_analyse hooks)


def seed_freq_pairs(
    ciphertext_stats, plaintext_stats, limit: int | None, tie_break: str
) -> list[tuple[bytes, bytes]]:
    """FREQ-ANALYSIS over two full frequency tables without materializing
    either: rank-``i`` ciphertext chunk pairs with rank-``i`` plaintext
    chunk, identical to :func:`~repro.attacks.frequency.freq_analysis`
    over the dict tables."""
    pair_count = min(
        ciphertext_stats.unique_chunks, plaintext_stats.unique_chunks
    )
    if limit is not None:
        pair_count = min(pair_count, limit)
    if pair_count == 0:
        return []
    return list(
        zip(
            ciphertext_stats.top_ranked(pair_count, tie_break),
            plaintext_stats.top_ranked(pair_count, tie_break),
        )
    )


def sized_seed_pairs(
    ciphertext_stats,
    plaintext_stats,
    limit: int,
    block_size: int,
    tie_break: str,
) -> list[tuple[bytes, bytes]]:
    """Size-classified FREQ-ANALYSIS over the full tables (Algorithm 3's
    seeding), identical to
    :func:`~repro.attacks.frequency.sized_freq_analysis` over the dict
    tables but pairing only the per-class top ``limit`` ranks."""
    cipher_tops, _ = ciphertext_stats.class_tops(
        limit, block_size, is_plaintext=False, tie_break=tie_break
    )
    plain_tops, _ = plaintext_stats.class_tops(
        limit, block_size, is_plaintext=True, tie_break=tie_break
    )
    pairs: list[tuple[bytes, bytes]] = []
    for block in sorted(cipher_tops):
        plain_top = plain_tops.get(block)
        if not plain_top:
            continue
        take = min(len(cipher_tops[block]), len(plain_top))
        pairs.extend(zip(cipher_tops[block][:take], plain_top[:take]))
    return pairs


# ---------------------------------------------------------------------------
# MLE ciphertext side at the vocabulary level


def encrypt_vocabulary(trace: ColumnarTrace) -> PackedVocabulary:
    """The trace's vocabulary under the MLE pipeline's deterministic
    per-chunk encryption (same truncated-hash fingerprints as
    :class:`repro.defenses.pipeline.DefensePipeline`).

    Deterministic encryption maps each plaintext fingerprint to one
    ciphertext fingerprint, so encrypting the vocabulary once stands in
    for encrypting the whole stream: chunk ids are unchanged. A truncation
    collision would break the id bijection, so it is rejected exactly like
    the pipeline rejects it.
    """
    width = trace.fingerprint_bytes
    blob = bytearray(width * trace.num_unique)
    sha256 = hashlib.sha256
    offset = 0
    for fingerprint in trace.vocabulary._fingerprints:
        blob[offset : offset + width] = sha256(
            b"mle|" + fingerprint
        ).digest()[:width]
        offset += width
    vocabulary = PackedVocabulary(bytes(blob), width, trace.num_unique)
    if vocabulary._ids.has_duplicates():
        raise ConfigurationError(
            "ciphertext fingerprint collision; increase fingerprint_bytes"
        )
    return vocabulary


class _VocabTruth:
    """Lazy ciphertext → plaintext ground truth through the shared ids."""

    __slots__ = ("_cipher", "_plain")

    def __init__(self, cipher_vocabulary, plain_vocabulary):
        self._cipher = cipher_vocabulary
        self._plain = plain_vocabulary

    def get(self, cipher_fingerprint: bytes, default=None):
        chunk_id = self._cipher._ids.get(cipher_fingerprint)
        if chunk_id is None:
            return default
        return self._plain._fingerprints[chunk_id]


def sample_columnar_leakage(
    ciphertext_stats,
    plain_vocabulary,
    target_label: str,
    leakage_rate: float,
    seed: int = 0,
) -> dict[bytes, bytes]:
    """Known-plaintext leakage over a columnar target, byte-identical to
    :func:`~repro.attacks.evaluation.sample_leakage`.

    The reference samples from the sorted unique ciphertext fingerprints;
    ``random.sample`` picks *positions* independently of element values,
    so sampling positions into the fingerprint-sorted present ids (via the
    vocabulary index's lexicographic ranks) draws the identical leaked set
    without materializing the fingerprint list.
    """
    if not 0.0 <= leakage_rate <= 1.0:
        raise ConfigurationError("leakage_rate must be in [0, 1]")
    if leakage_rate == 0.0:
        return {}
    cipher_vocabulary = ciphertext_stats.vocabulary
    plain_fingerprints = plain_vocabulary._fingerprints
    rng = rng_from(seed, "leakage", target_label, leakage_rate)
    if isinstance(ciphertext_stats, ColumnarArrayStats):
        numpy = accel.numpy
        present = ciphertext_stats._ordered_ids
        total = len(present)
        count = int(round(leakage_rate * total))
        if count == 0:
            return {}
        by_fingerprint = present[
            numpy.argsort(cipher_vocabulary._ids.sort_ranks()[present])
        ]
        positions = rng.sample(range(total), min(count, total))
        cipher_fingerprints = cipher_vocabulary._fingerprints
        return {
            cipher_fingerprints[chunk_id]: plain_fingerprints[chunk_id]
            for chunk_id in (
                int(by_fingerprint[position]) for position in positions
            )
        }
    unique = sorted(ciphertext_stats.frequencies)
    count = int(round(leakage_rate * len(unique)))
    if count == 0:
        return {}
    sampled = rng.sample(unique, min(count, len(unique)))
    return {
        cipher_fp: plain_fingerprints[cipher_vocabulary._ids.get(cipher_fp)]
        for cipher_fp in sampled
    }


# ---------------------------------------------------------------------------
# End-to-end driver


def _encrypted_stats(plain_stats, cipher_vocabulary):
    """Derive the MLE ciphertext-side stats from the plaintext COUNT.

    The ciphertext stream is the plaintext stream mapped through the
    encryption bijection: counts, first positions and adjacency are
    identical arrays; only the decode vocabulary and the sizes (padded to
    the pipeline's cipher block, exactly like
    :func:`repro.defenses.pipeline.padded_size`) change. No second COUNT
    pass runs.
    """
    from repro.defenses.pipeline import BLOCK_SIZE

    if isinstance(plain_stats, ColumnarArrayStats):
        padded = (plain_stats._first_sizes // BLOCK_SIZE + 1) * BLOCK_SIZE
        return plain_stats.with_vocabulary(cipher_vocabulary, padded)
    padded_by_id = {
        chunk_id: (size // BLOCK_SIZE + 1) * BLOCK_SIZE
        for chunk_id, size in plain_stats._size_by_id.items()
    }
    return InternedChunkStats(
        cipher_vocabulary,
        plain_stats._frequency_counts,
        padded_by_id,
        plain_stats._pair_counts,
    )


def _build_attack(name: str, u: int, v: int, w: int, block_size: int):
    from repro.attacks.advanced import AdvancedLocalityAttack
    from repro.attacks.locality import LocalityAttack

    if name == "locality":
        return LocalityAttack(u=u, v=v, w=w)
    if name == "advanced":
        return AdvancedLocalityAttack(u=u, v=v, w=w, block_size=block_size)
    raise ConfigurationError(
        f"unknown columnar attack {name!r}; the sharded COUNT drives the "
        "counted-stats attacks ('locality', 'advanced')"
    )


def columnar_attack_report(
    trace: ColumnarTrace | str | os.PathLike,
    attack: str = "locality",
    *,
    auxiliary: int = -2,
    target: int = -1,
    leakage_rate: float = 0.0,
    seed: int = 0,
    u: int = 1,
    v: int = 15,
    w: int = 200_000,
    jobs: int = 1,
    block_size: int = 16,
) -> InferenceReport:
    """Run one locality/advanced attack end-to-end over an on-disk
    columnar trace under the MLE scheme, without materializing the trace
    (or any full frequency table) in RAM.

    Equivalent to encrypting the series with the MLE
    :class:`~repro.defenses.pipeline.DefensePipeline` and scoring through
    :class:`~repro.attacks.evaluation.AttackEvaluator` — the differential
    tests pin report equality at small scales — but the ciphertext side is
    derived at the vocabulary level and both COUNT passes run sharded.
    """
    from repro.defenses.pipeline import DefenseScheme

    opened = None
    if not isinstance(trace, ColumnarTrace):
        opened = trace = ColumnarTrace.open(trace)
    try:
        built = _build_attack(attack, u, v, w, block_size)
        try:
            auxiliary_view = trace.view(auxiliary)
            target_view = trace.view(target)
        except IndexError:
            raise ConfigurationError(
                f"backup index out of range for the {len(trace.backups)}-"
                f"backup trace (auxiliary={auxiliary}, target={target})"
            ) from None
        target_plain_stats = sharded_count(target_view, jobs=jobs)
        auxiliary_stats = sharded_count(auxiliary_view, jobs=jobs)
        cipher_vocabulary = encrypt_vocabulary(trace)
        ciphertext_stats = _encrypted_stats(
            target_plain_stats, cipher_vocabulary
        )
        leaked = sample_columnar_leakage(
            ciphertext_stats,
            trace.vocabulary,
            target_view.label,
            leakage_rate,
            seed,
        )
        result = built.run_counted(
            ciphertext_stats, auxiliary_stats, leaked or None
        )
        truth = _VocabTruth(cipher_vocabulary, trace.vocabulary)
        correct = sum(
            1
            for cipher_fp, plain_fp in result.pairs.items()
            if truth.get(cipher_fp) == plain_fp
        )
        return InferenceReport(
            attack=result.attack_name,
            scheme=DefenseScheme.MLE.value,
            auxiliary_label=auxiliary_view.label,
            target_label=target_view.label,
            unique_ciphertext_chunks=ciphertext_stats.unique_chunks,
            inferred_pairs=len(result.pairs),
            correct_pairs=correct,
            leakage_rate=leakage_rate,
            leaked_pairs=len(leaked),
            iterations=result.iterations,
        )
    finally:
        if opened is not None:
            opened.close()


# ---------------------------------------------------------------------------
# Scenario-engine integration: the ``columnar_attack`` cell kind


def _cell_trace_directory(params: dict):
    """Deterministic scratch directory for a cell's generated trace.

    Cells must be re-runnable from any worker process, so the trace lives
    at a path derived purely from the generation parameters — every cell
    with the same trace knobs shares one on-disk trace (generate once,
    mmap thereafter via :func:`ensure_columnar`'s manifest check).
    """
    import tempfile
    from pathlib import Path

    if params.get("directory"):
        return Path(params["directory"])
    key = "-".join(
        str(params.get(name, default))
        for name, default in (
            ("trace_seed", 7),
            ("chunks", 1_000_000),
            ("backups", 2),
            ("fingerprint_bytes", 16),
        )
    )
    return Path(tempfile.gettempdir()) / f"repro-columnar-{key}"


def _run_columnar_attack(params: dict):
    """One ``columnar_attack`` cell: generate (once) an on-disk columnar
    stream trace, then run the sharded-COUNT attack end-to-end over it.

    Rows mirror the ``attack`` kind field-for-field, so sweep tooling and
    caches treat trace-scale cells like any other attack cell.
    """
    from repro.datasets.columnar import StreamConfig, ensure_stream_columnar

    config = StreamConfig(
        chunks=params.get("chunks", 1_000_000),
        backups=params.get("backups", 2),
        fingerprint_bytes=params.get("fingerprint_bytes", 16),
    )
    trace = ensure_stream_columnar(
        _cell_trace_directory(params), config, seed=params.get("trace_seed", 7)
    )
    try:
        report = columnar_attack_report(
            trace,
            params.get("attack", "locality"),
            auxiliary=params.get("auxiliary", -2),
            target=params.get("target", -1),
            leakage_rate=params.get("leakage_rate", 0.0),
            seed=params.get("seed", 0),
            u=params.get("u", 1),
            v=params.get("v", 15),
            w=params.get("w", 200_000),
            jobs=params.get("jobs", 1),
        )
    finally:
        trace.close()
    return (
        (
            ("auxiliary", report.auxiliary_label),
            ("target", report.target_label),
            ("inference_rate", round(report.inference_rate, 5)),
            ("precision", round(report.precision, 5)),
            ("correct_pairs", report.correct_pairs),
            ("inferred_pairs", report.inferred_pairs),
            ("unique_ciphertext_chunks", report.unique_ciphertext_chunks),
            ("leaked_pairs", report.leaked_pairs),
            ("iterations", report.iterations),
        ),
    )


def _register_cell_kind() -> None:
    from repro.scenarios.cells import register_cell_kind

    register_cell_kind("columnar_attack", _run_columnar_attack)


_register_cell_kind()
