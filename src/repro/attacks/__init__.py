"""Inference attacks against encrypted deduplication (§4).

* :class:`BasicAttack` — classical frequency analysis (Algorithm 1).
* :class:`LocalityAttack` — chunk-locality-driven frequency analysis
  (Algorithm 2) with parameters ``u``, ``v``, ``w``.
* :class:`AdvancedLocalityAttack` — adds the chunk-size side channel
  (Algorithm 3) for variable-size chunking.
* :class:`AttackEvaluator` / :class:`InferenceReport` — run attacks against
  encrypted series in ciphertext-only or known-plaintext mode and compute
  inference rates.
* :class:`StreamingCount` / :func:`streaming_count` — batch-ingesting COUNT
  flushing through a pluggable :class:`~repro.index.backends.KVBackend`,
  with the persistent attack variants running on top of it.
"""

from repro.attacks.advanced import AdvancedLocalityAttack
from repro.attacks.base import Attack, AttackResult
from repro.attacks.basic import BasicAttack
from repro.attacks.evaluation import (
    AttackEvaluator,
    InferenceReport,
    sample_leakage,
)
from repro.attacks.frequency import (
    ChunkStats,
    classify_by_blocks,
    count_frequencies,
    count_with_neighbors,
    freq_analysis,
    rank_by_frequency,
    sized_freq_analysis,
)
from repro.attacks.interning import (
    ChunkVocabulary,
    InternedArrayStats,
    InternedChunkStats,
    InternedCount,
    interned_count,
)
from repro.attacks.locality import LocalityAttack
from repro.attacks.persistent import (
    PersistentAdvancedAttack,
    PersistentLocalityAttack,
    load_chunk_stats,
    persist_chunk_stats,
    persist_columnar_stats,
)
from repro.attacks.sharded import (
    ColumnarArrayStats,
    columnar_attack_report,
    sharded_count,
)
from repro.attacks.streaming import (
    BackendChunkStats,
    CountStores,
    StreamingCount,
    streaming_count,
)

__all__ = [
    "BackendChunkStats",
    "CountStores",
    "StreamingCount",
    "streaming_count",
    "PersistentAdvancedAttack",
    "PersistentLocalityAttack",
    "load_chunk_stats",
    "persist_chunk_stats",
    "persist_columnar_stats",
    "ColumnarArrayStats",
    "columnar_attack_report",
    "sharded_count",
    "AdvancedLocalityAttack",
    "Attack",
    "AttackResult",
    "BasicAttack",
    "AttackEvaluator",
    "InferenceReport",
    "sample_leakage",
    "ChunkStats",
    "ChunkVocabulary",
    "InternedArrayStats",
    "InternedChunkStats",
    "InternedCount",
    "classify_by_blocks",
    "count_frequencies",
    "count_with_neighbors",
    "interned_count",
    "freq_analysis",
    "rank_by_frequency",
    "sized_freq_analysis",
    "LocalityAttack",
]
