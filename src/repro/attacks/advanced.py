"""The advanced locality-based attack (Algorithm 3).

Variable-size chunking leaks chunk sizes: under a block cipher, a ciphertext
chunk occupies exactly the block count of its plaintext chunk, observable
before deduplication. The advanced attack therefore replaces every
FREQ-ANALYSIS call of the locality-based attack with a *size-classified*
variant: chunks are grouped by cipher-block count and frequency ranks are
paired only within a class, which removes cross-size mismatches and raises
the inference rate on variable-size datasets (Figs. 5–9).

On fixed-size datasets every chunk falls into the same class, so this attack
is exactly the locality-based attack (the paper's VM results).
"""

from __future__ import annotations

from repro.attacks.frequency import INSERTION, ChunkStats, sized_freq_analysis
from repro.attacks.locality import LocalityAttack


class AdvancedLocalityAttack(LocalityAttack):
    """Locality-based attack augmented with the chunk-size side channel."""

    name = "advanced"

    def __init__(
        self,
        u: int = 1,
        v: int = 15,
        w: int = 200_000,
        block_size: int = 16,
        tie_break: str = INSERTION,
    ):
        super().__init__(u=u, v=v, w=w, tie_break=tie_break)
        self.block_size = block_size

    def _analyse(
        self,
        ciphertext_table: dict[bytes, int],
        plaintext_table: dict[bytes, int],
        limit: int,
        ciphertext_stats: ChunkStats,
        plaintext_stats: ChunkStats,
    ) -> list[tuple[bytes, bytes]]:
        return sized_freq_analysis(
            ciphertext_table,
            plaintext_table,
            ciphertext_stats.sizes,
            plaintext_stats.sizes,
            limit,
            self.block_size,
            self.tie_break,
        )

    def _seed_analyse(
        self,
        ciphertext_stats: ChunkStats,
        plaintext_stats: ChunkStats,
    ) -> list[tuple[bytes, bytes]]:
        # Algorithm 3 also size-classifies the seeding analysis (the paper
        # modifies the FREQ-ANALYSIS called at Algorithm 2's line 5): the u
        # top-frequency pairs are taken per block-count class.
        if hasattr(ciphertext_stats, "class_tops") and hasattr(
            plaintext_stats, "class_tops"
        ):
            from repro.attacks.sharded import sized_seed_pairs

            return sized_seed_pairs(
                ciphertext_stats,
                plaintext_stats,
                self.u,
                self.block_size,
                self.seed_tie_break,
            )
        return sized_freq_analysis(
            ciphertext_stats.frequencies,
            plaintext_stats.frequencies,
            ciphertext_stats.sizes,
            plaintext_stats.sizes,
            self.u,
            self.block_size,
            self.seed_tie_break,
        )
