"""The locality-based attack (Algorithm 2).

Chunk locality — chunks re-occurring together with the same neighbors
across backup versions — lets an adversary grow a small set of confidently
inferred ciphertext–plaintext pairs into a large one: if ``(C, M)`` is
inferred, frequency analysis *restricted to the neighbors of C and the
neighbors of M* yields further pairs, which are processed in turn (BFS over
the co-occurrence graphs).

Parameters (paper defaults in §5.3 parentheses):

* ``u`` (1) — number of top-frequency pairs used to seed the inferred set
  in ciphertext-only mode; top-frequency chunks keep stable ranks across
  backups, so small ``u`` keeps seeds accurate.
* ``v`` (15) — number of top co-occurrence pairs taken from each neighbor
  analysis; larger ``v`` infers more but admits more errors (Fig. 4b).
* ``w`` (200 000; 500 000 in known-plaintext mode) — bound on the pending
  FIFO queue ``G`` (memory cap; Fig. 4c).

In known-plaintext mode the inferred set is seeded with the leaked pairs
that also appear in the auxiliary backup (§4.2).
"""

from __future__ import annotations

from collections import deque

from repro.attacks.base import Attack, AttackResult
from repro.attacks.frequency import (
    FINGERPRINT,
    INSERTION,
    ChunkStats,
    freq_analysis,
)
from repro.attacks.interning import interned_count
from repro.common.errors import ConfigurationError
from repro.datasets.model import Backup

_EMPTY: dict[bytes, int] = {}


class LocalityAttack(Attack):
    """The paper's locality-based attack."""

    name = "locality"

    def __init__(
        self,
        u: int = 1,
        v: int = 15,
        w: int = 200_000,
        tie_break: str = INSERTION,
        seed_tie_break: str = FINGERPRINT,
    ):
        """``tie_break`` orders ties in the per-neighbor co-occurrence
        analyses (the paper keeps neighbor lists sequentially, i.e.
        insertion order). ``seed_tie_break`` orders ties in the global
        frequency analysis used to seed G (a fingerprint-keyed table in the
        paper, hence fingerprint order)."""
        if u < 1 or v < 1 or w < 1:
            raise ConfigurationError("u, v and w must all be >= 1")
        self.u = u
        self.v = v
        self.w = w
        self.tie_break = tie_break
        self.seed_tie_break = seed_tie_break

    # Subclass hooks ---------------------------------------------------------

    def _count(self, backup: Backup) -> ChunkStats:
        # Interned fast path; byte-identical to count_with_neighbors (the
        # reference COUNT) through the ChunkStats-compatible lazy views.
        return interned_count(backup)  # type: ignore[return-value]

    def _seed_analyse(
        self,
        ciphertext_stats: ChunkStats,
        plaintext_stats: ChunkStats,
    ) -> list[tuple[bytes, bytes]]:
        if hasattr(ciphertext_stats, "top_ranked") and hasattr(
            plaintext_stats, "top_ranked"
        ):
            # Trace-scale stats rank their flat count arrays directly
            # (byte-identical, but never materializes the full tables).
            from repro.attacks.sharded import seed_freq_pairs

            return seed_freq_pairs(
                ciphertext_stats, plaintext_stats, self.u, self.seed_tie_break
            )
        return freq_analysis(
            ciphertext_stats.frequencies,
            plaintext_stats.frequencies,
            self.u,
            self.seed_tie_break,
        )

    def _analyse(
        self,
        ciphertext_table: dict[bytes, int],
        plaintext_table: dict[bytes, int],
        limit: int,
        ciphertext_stats: ChunkStats,
        plaintext_stats: ChunkStats,
    ) -> list[tuple[bytes, bytes]]:
        return freq_analysis(
            ciphertext_table, plaintext_table, limit, self.tie_break
        )

    # Main algorithm ----------------------------------------------------------

    def run(
        self,
        ciphertext: Backup,
        auxiliary: Backup,
        leaked_pairs: dict[bytes, bytes] | None = None,
    ) -> AttackResult:
        ciphertext_stats = self._count(ciphertext)
        plaintext_stats = self._count(auxiliary)
        return self.run_counted(ciphertext_stats, plaintext_stats, leaked_pairs)

    def run_counted(
        self,
        ciphertext_stats: ChunkStats,
        plaintext_stats: ChunkStats,
        leaked_pairs: dict[bytes, bytes] | None = None,
    ) -> AttackResult:
        """Run the attack over already-counted stats.

        This is the whole algorithm after its two COUNT passes — any
        ChunkStats-shaped object works, which is how the sharded columnar
        COUNT (:mod:`repro.attacks.sharded`) drives the attack without
        materializing backups.
        """
        inferred: dict[bytes, bytes] = {}
        pending: deque[tuple[bytes, bytes]] = deque()
        if leaked_pairs:
            # Known-plaintext mode: every leaked pair is known (and counts
            # toward the inference rate, §5.3.3), but only pairs appearing
            # in both the target and the auxiliary backups can propagate
            # through neighbor analysis (Algorithm 2, line 7).
            auxiliary_chunks = plaintext_stats.frequencies
            for cipher_fp, plain_fp in leaked_pairs.items():
                if cipher_fp in inferred:
                    continue
                inferred[cipher_fp] = plain_fp
                if (
                    cipher_fp in ciphertext_stats.frequencies
                    and plain_fp in auxiliary_chunks
                ):
                    pending.append((cipher_fp, plain_fp))
        else:
            # Ciphertext-only mode: seed from global frequency analysis.
            seeds = self._seed_analyse(ciphertext_stats, plaintext_stats)
            for cipher_fp, plain_fp in seeds:
                if cipher_fp not in inferred:
                    inferred[cipher_fp] = plain_fp
                    pending.append((cipher_fp, plain_fp))

        left_c = ciphertext_stats.left
        right_c = ciphertext_stats.right
        left_m = plaintext_stats.left
        right_m = plaintext_stats.right
        iterations = 0
        while pending:
            cipher_fp, plain_fp = pending.popleft()
            iterations += 1
            left_pairs = self._analyse(
                left_c.get(cipher_fp, _EMPTY),
                left_m.get(plain_fp, _EMPTY),
                self.v,
                ciphertext_stats,
                plaintext_stats,
            )
            right_pairs = self._analyse(
                right_c.get(cipher_fp, _EMPTY),
                right_m.get(plain_fp, _EMPTY),
                self.v,
                ciphertext_stats,
                plaintext_stats,
            )
            for new_cipher, new_plain in left_pairs + right_pairs:
                if new_cipher not in inferred:
                    inferred[new_cipher] = new_plain
                    if len(pending) <= self.w:
                        pending.append((new_cipher, new_plain))
        return AttackResult(
            pairs=inferred, attack_name=self.name, iterations=iterations
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(u={self.u}, v={self.v}, w={self.w})"
