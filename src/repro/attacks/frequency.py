"""Frequency-analysis building blocks (the COUNT and FREQ-ANALYSIS
functions shared by Algorithms 1–3).

``COUNT`` scans a logical chunk sequence once and produces:

* ``frequencies`` — occurrences of each unique chunk (by fingerprint);
* ``left`` / ``right`` — co-occurrence tables: for each chunk, how often
  each other chunk appeared immediately before / after it;
* ``sizes`` — the size of each unique chunk (used by the advanced attack's
  size classifier).

``FREQ-ANALYSIS`` ranks two frequency tables and pairs equal ranks. How ties
are broken matters (the paper discusses this in §4.1):

* ``insertion`` (default) — ties keep first-occurrence order. This mirrors
  the paper's implementation, which stores each chunk's neighbor lists
  *sequentially* in LevelDB (§5.2): a stable frequency sort leaves tied
  entries in stream order, and stream positions are temporally correlated
  between the auxiliary and target backups wherever content is unmodified.
* ``fingerprint`` — ties ordered by fingerprint bytes. Ciphertext and
  plaintext fingerprints of the same chunk are unrelated, so tied ranks pair
  essentially at random; the ablation bench quantifies how much of the
  locality-based attack's power this destroys.

Both orders are deterministic, so every experiment is exactly reproducible.

COUNT exists in three forms with byte-identical output: the dict-only
:func:`count_with_neighbors` (this module) is the *reference oracle* the
property tests pin everything against; the interned fast path
(:func:`repro.attacks.interning.interned_count`) is what the attacks run;
and the batch-ingesting :class:`repro.attacks.streaming.StreamingCount`
flushes interned per-batch deltas through a pluggable
:class:`~repro.index.backends.KVBackend` so the tables can spill to disk
(the paper's LevelDB mode, §5.2).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.datasets.model import Backup


@dataclass
class ChunkStats:
    """Output of COUNT over one backup stream."""

    frequencies: dict[bytes, int] = field(default_factory=dict)
    left: dict[bytes, dict[bytes, int]] = field(default_factory=dict)
    right: dict[bytes, dict[bytes, int]] = field(default_factory=dict)
    sizes: dict[bytes, int] = field(default_factory=dict)

    @property
    def unique_chunks(self) -> int:
        return len(self.frequencies)


def count_frequencies(backup: Backup) -> dict[bytes, int]:
    """The basic attack's COUNT: frequency of each unique chunk.

    ``Counter`` counts at C speed and, like the hand-rolled dict loop it
    replaced, preserves first-occurrence key order (it is a dict).
    """
    return Counter(backup.fingerprints)


def accumulate_counts(
    stats: ChunkStats,
    fingerprints: list[bytes],
    chunk_sizes: list[int],
    previous: bytes | None = None,
) -> bytes | None:
    """One COUNT pass over a (sub-)stream, accumulated into ``stats``.

    This is the reference COUNT loop behind :func:`count_with_neighbors`
    — the equivalence oracle the interned fast path
    (:mod:`repro.attacks.interning`) is property-tested against.
    ``previous`` carries the adjacency across batch boundaries: pass the
    return value of one call as the ``previous`` of the next and the
    accumulated tables are identical to a single whole-stream pass.

    Returns the last fingerprint of the sub-stream (the next call's
    ``previous``), or the ``previous`` argument unchanged if the
    sub-stream is empty.
    """
    frequencies = stats.frequencies
    left = stats.left
    right = stats.right
    sizes = stats.sizes
    for index, fingerprint in enumerate(fingerprints):
        frequencies[fingerprint] = frequencies.get(fingerprint, 0) + 1
        if fingerprint not in sizes:
            sizes[fingerprint] = chunk_sizes[index]
        if previous is not None:
            left_table = left.get(fingerprint)
            if left_table is None:
                left_table = left[fingerprint] = {}
            left_table[previous] = left_table.get(previous, 0) + 1
            right_table = right.get(previous)
            if right_table is None:
                right_table = right[previous] = {}
            right_table[fingerprint] = right_table.get(fingerprint, 0) + 1
        previous = fingerprint
    return previous


def count_with_neighbors(backup: Backup) -> ChunkStats:
    """The locality-based attack's COUNT: frequencies plus left/right
    neighbor co-occurrence tables and per-chunk sizes (Algorithm 2).

    Everything stays in plain bytes-keyed dicts — this is the reference
    implementation kept as the equivalence oracle. The attacks run the
    interned fast path (:func:`repro.attacks.interning.interned_count`);
    for traces whose tables exceed RAM there is the backend-flushing
    :class:`repro.attacks.streaming.StreamingCount`. All three produce
    byte-identical output.
    """
    stats = ChunkStats()
    accumulate_counts(stats, backup.fingerprints, backup.sizes)
    return stats


INSERTION = "insertion"
FINGERPRINT = "fingerprint"
_TIE_BREAKS = (INSERTION, FINGERPRINT)


def rank_by_frequency(
    table: dict[bytes, int], tie_break: str = INSERTION
) -> list[bytes]:
    """Fingerprints sorted by descending frequency.

    ``tie_break`` selects the order of equal-frequency entries: first
    occurrence in the stream (``insertion``, the paper's sequential-list
    behaviour) or fingerprint bytes (``fingerprint``). Both are
    deterministic.
    """
    if tie_break == INSERTION:
        # dicts preserve insertion order and sorted() is stable.
        return sorted(table, key=lambda fp: -table[fp])
    if tie_break == FINGERPRINT:
        return sorted(table, key=lambda fp: (-table[fp], fp))
    raise ValueError(f"unknown tie_break {tie_break!r}; use one of {_TIE_BREAKS}")


def freq_analysis(
    ciphertext_table: dict[bytes, int],
    plaintext_table: dict[bytes, int],
    limit: int | None = None,
    tie_break: str = INSERTION,
) -> list[tuple[bytes, bytes]]:
    """Pair the i-th most frequent ciphertext chunk with the i-th most
    frequent plaintext chunk (FREQ-ANALYSIS in Algorithms 1 and 2).

    Args:
        ciphertext_table: chunk → frequency for the ciphertext side.
        plaintext_table: chunk → frequency for the plaintext side.
        limit: return at most this many top pairs (``u``/``v`` in the
            paper); ``None`` pairs every rank up to the shorter table.
        tie_break: tie ordering, see :func:`rank_by_frequency`.
    """
    pair_count = min(len(ciphertext_table), len(plaintext_table))
    if limit is not None:
        pair_count = min(pair_count, limit)
    if pair_count == 0:
        return []
    ciphertext_ranked = rank_by_frequency(ciphertext_table, tie_break)[:pair_count]
    plaintext_ranked = rank_by_frequency(plaintext_table, tie_break)[:pair_count]
    return list(zip(ciphertext_ranked, plaintext_ranked))


def classify_by_blocks(
    table: dict[bytes, int],
    sizes: dict[bytes, int],
    block_size: int = 16,
    is_plaintext: bool = True,
) -> dict[int, dict[bytes, int]]:
    """Group a frequency table by cipher-block count (CLASSIFY, Algorithm 3).

    Plaintext chunks of ``n`` bytes occupy ``n // block + 1`` cipher blocks
    under PKCS#7 padding; ciphertext sizes are already padded multiples, so
    their block count is ``n // block``. Grouping both sides this way puts a
    ciphertext chunk and its original plaintext chunk in the same class.
    """
    classes: dict[int, dict[bytes, int]] = {}
    for fingerprint, frequency in table.items():
        size = sizes[fingerprint]
        if is_plaintext:
            blocks = size // block_size + 1
        else:
            blocks = size // block_size
        bucket = classes.get(blocks)
        if bucket is None:
            bucket = classes[blocks] = {}
        bucket[fingerprint] = frequency
    return classes


def sized_freq_analysis(
    ciphertext_table: dict[bytes, int],
    plaintext_table: dict[bytes, int],
    ciphertext_sizes: dict[bytes, int],
    plaintext_sizes: dict[bytes, int],
    limit: int | None = None,
    block_size: int = 16,
    tie_break: str = INSERTION,
) -> list[tuple[bytes, bytes]]:
    """Size-aware FREQ-ANALYSIS (Algorithm 3): run plain frequency pairing
    independently inside every cipher-block-count class."""
    ciphertext_classes = classify_by_blocks(
        ciphertext_table, ciphertext_sizes, block_size, is_plaintext=False
    )
    plaintext_classes = classify_by_blocks(
        plaintext_table, plaintext_sizes, block_size, is_plaintext=True
    )
    pairs: list[tuple[bytes, bytes]] = []
    for blocks in sorted(ciphertext_classes):
        plaintext_bucket = plaintext_classes.get(blocks)
        if not plaintext_bucket:
            continue
        pairs.extend(
            freq_analysis(
                ciphertext_classes[blocks], plaintext_bucket, limit, tie_break
            )
        )
    return pairs
