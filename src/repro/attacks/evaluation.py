"""Attack evaluation harness: attack modes, leakage sampling, inference
rate (§3.3, §5).

The *inference rate* is the fraction of the target backup's unique
ciphertext chunks whose original plaintext chunk the attack inferred
correctly. In known-plaintext mode an adversary additionally knows a small
fraction of ciphertext–plaintext pairs of the target (the *leakage rate*,
relative to the unique ciphertext chunk count); leaked pairs count toward
the inference rate, as in the paper's Figs. 8–10.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.attacks.base import Attack
from repro.common.errors import ConfigurationError
from repro.common.rng import rng_from
from repro.defenses.pipeline import EncryptedBackup, EncryptedSeries


@dataclass(frozen=True)
class InferenceReport:
    """Outcome of one attack run.

    Attributes:
        attack: name of the attack that produced this report (e.g.
            ``"locality"``).
        scheme: defense scheme the target series was encrypted under.
        auxiliary_label: label of the auxiliary (plaintext) backup.
        target_label: label of the target (ciphertext) backup.
        unique_ciphertext_chunks: unique ciphertext chunks in the target —
            the denominator of the inference rate.
        inferred_pairs: ciphertext–plaintext pairs the attack output.
        correct_pairs: inferred pairs that match the ground truth.
        leakage_rate: requested known-plaintext leakage (0 for
            ciphertext-only mode).
        leaked_pairs: pairs actually leaked to the attack.
        iterations: neighbor-analysis iterations the attack performed.
    """

    attack: str
    scheme: str
    auxiliary_label: str
    target_label: str
    unique_ciphertext_chunks: int
    inferred_pairs: int
    correct_pairs: int
    leakage_rate: float
    leaked_pairs: int
    iterations: int

    @property
    def inference_rate(self) -> float:
        """Correctly inferred unique ciphertext chunks over all unique
        ciphertext chunks in the target backup (§4)."""
        if self.unique_ciphertext_chunks == 0:
            return 0.0
        return self.correct_pairs / self.unique_ciphertext_chunks

    @property
    def precision(self) -> float:
        """Fraction of the attack's output pairs that are correct."""
        if self.inferred_pairs == 0:
            return 0.0
        return self.correct_pairs / self.inferred_pairs

    def __str__(self) -> str:
        return (
            f"{self.attack} [{self.scheme}] aux={self.auxiliary_label} "
            f"target={self.target_label} leak={self.leakage_rate:.2%}: "
            f"rate={self.inference_rate:.2%} "
            f"({self.correct_pairs}/{self.unique_ciphertext_chunks}, "
            f"precision {self.precision:.2%})"
        )


def sample_leakage(
    target: EncryptedBackup,
    leakage_rate: float,
    seed: int = 0,
) -> dict[bytes, bytes]:
    """Sample leaked ciphertext–plaintext pairs of the target backup.

    ``leakage_rate`` is relative to the number of unique ciphertext chunks;
    the sample is drawn uniformly over unique ciphertext chunks (stolen-
    device leakage does not favour any particular chunk).

    Args:
        target: the encrypted backup whose pairs leak.
        leakage_rate: fraction of unique ciphertext chunks leaked, in
            ``[0, 1]``.
        seed: determinises the sample (same seed, same leaked set).

    Returns:
        A ``ciphertext fingerprint -> plaintext fingerprint`` dict; empty
        when the rate rounds down to zero pairs.

    Raises:
        ConfigurationError: if ``leakage_rate`` is outside ``[0, 1]``.
    """
    if not 0.0 <= leakage_rate <= 1.0:
        raise ConfigurationError("leakage_rate must be in [0, 1]")
    if leakage_rate == 0.0:
        return {}
    unique = sorted(set(target.ciphertext.fingerprints))
    count = int(round(leakage_rate * len(unique)))
    if count == 0:
        return {}
    rng = rng_from(seed, "leakage", target.label, leakage_rate)
    sampled = rng.sample(unique, min(count, len(unique)))
    return {cipher_fp: target.truth[cipher_fp] for cipher_fp in sampled}


class AttackEvaluator:
    """Runs attacks against an :class:`EncryptedSeries` and scores them."""

    def __init__(self, encrypted: EncryptedSeries):
        self.encrypted = encrypted

    def run(
        self,
        attack: Attack,
        auxiliary: int,
        target: int,
        leakage_rate: float = 0.0,
        seed: int = 0,
    ) -> InferenceReport:
        """Run ``attack`` with backup ``auxiliary`` as the adversary's prior
        knowledge against backup ``target``.

        Args:
            auxiliary: index into the series of the auxiliary backup (the
                adversary's plaintext knowledge). Negative indices count
                from the end.
            target: index of the target backup (adversary sees ciphertext).
            leakage_rate: fraction of the target's unique ciphertext chunks
                leaked as known pairs (0 = ciphertext-only mode).
            seed: determinises the leakage sample.

        Returns:
            An :class:`InferenceReport` scoring the attack's output pairs
            against the series' ground truth.
        """
        plaintext_aux = self.encrypted.plaintext[auxiliary]
        encrypted_target = self.encrypted[target]
        leaked = sample_leakage(encrypted_target, leakage_rate, seed)
        result = attack.run(
            encrypted_target.ciphertext, plaintext_aux, leaked or None
        )
        truth = encrypted_target.truth
        correct = sum(
            1
            for cipher_fp, plain_fp in result.pairs.items()
            if truth.get(cipher_fp) == plain_fp
        )
        return InferenceReport(
            attack=result.attack_name,
            scheme=self.encrypted.scheme.value,
            auxiliary_label=plaintext_aux.label,
            target_label=encrypted_target.label,
            unique_ciphertext_chunks=encrypted_target.unique_ciphertext_chunks,
            inferred_pairs=len(result.pairs),
            correct_pairs=correct,
            leakage_rate=leakage_rate,
            leaked_pairs=len(leaked),
            iterations=result.iterations,
        )
