"""Structured JSON logging on stdlib ``logging``.

All repro loggers hang off the ``"repro"`` root (``get_logger("serve")``
→ ``repro.serve``), so one handler/formatter pair configured on that
root covers every subsystem.  At import time the root gets a
``NullHandler`` and ``propagate = False`` — with observability disabled
nothing reaches stderr and library users keep full control.

:func:`configure` (called from ``obs.enable``) attaches a
:class:`JsonFormatter` handler writing one JSON object per line:
``{"lvl", "logger", "msg", ...extra}``.  Call-site fields ride in the
standard ``extra=`` dict and are merged flat into the record, so
``log.info("cell done", extra={"cell": key, "dur_s": d})`` renders as a
machine-parseable event without a custom API.
"""

from __future__ import annotations

import json
import logging
import sys

ROOT_NAME = "repro"

#: LogRecord attributes that are plumbing, not payload — everything else
#: on the record (i.e. ``extra=`` fields) is exported.
_RESERVED = frozenset(
    logging.LogRecord(
        "", 0, "", 0, "", (), None
    ).__dict__
) | {"message", "asctime", "taskName"}


class JsonFormatter(logging.Formatter):
    """One JSON object per line; ``extra=`` fields merged flat."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "lvl": record.levelname,
            "logger": record.name,
            "msg": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key not in _RESERVED:
                payload[key] = value
        if record.exc_info and record.exc_info[0] is not None:
            payload["exc"] = record.exc_info[0].__name__
        return json.dumps(payload, sort_keys=True, default=str)


_root = logging.getLogger(ROOT_NAME)
_root.addHandler(logging.NullHandler())
_root.propagate = False

_active_handler: logging.Handler | None = None


def get_logger(subsystem: str) -> logging.Logger:
    """The logger for one subsystem: ``get_logger("serve")`` → ``repro.serve``."""
    if not subsystem:
        return _root
    return _root.getChild(subsystem)


def configure(level: int = logging.INFO, stream=None) -> None:
    """Attach the JSON handler to the repro root (idempotent)."""
    global _active_handler
    if _active_handler is not None:
        return
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(JsonFormatter())
    _root.addHandler(handler)
    _root.setLevel(level)
    _active_handler = handler


def deconfigure() -> None:
    """Detach the JSON handler (back to import-time silence)."""
    global _active_handler
    if _active_handler is not None:
        _root.removeHandler(_active_handler)
        _active_handler = None
    _root.setLevel(logging.NOTSET)
