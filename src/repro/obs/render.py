"""Render and diff metrics snapshots for the ``freqdedup obs`` CLI."""

from __future__ import annotations

import json
from pathlib import Path

from repro.common.errors import ConfigurationError
from repro.obs.metrics import SNAPSHOT_SCHEMA, Histogram


def load_snapshot(path: str | Path) -> dict:
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigurationError(f"cannot read snapshot {path}: {exc}") from exc
    if not isinstance(data, dict) or "counters" not in data:
        raise ConfigurationError(f"{path} is not a metrics snapshot")
    schema = data.get("schema")
    if schema != SNAPSHOT_SCHEMA:
        raise ConfigurationError(
            f"{path}: snapshot schema {schema!r}, expected {SNAPSHOT_SCHEMA}"
        )
    return data


def _histogram_from_state(state: dict) -> Histogram:
    histogram = Histogram(tuple(state["buckets"]))
    histogram.merge(state)
    return histogram


def _format_value(value: float) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def render_snapshot(snapshot: dict) -> str:
    """Human-oriented text table: counters, gauges, histogram summaries."""
    lines: list[str] = []
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    histograms = snapshot.get("histograms", {})
    volatile = set(snapshot.get("volatile", ()))

    def mark(key: str) -> str:
        return " ~" if key in volatile else ""

    if counters:
        lines.append("counters:")
        width = max(len(key) for key in counters)
        for key, value in counters.items():
            lines.append(f"  {key:<{width}}  {value}{mark(key)}")
    if gauges:
        lines.append("gauges:")
        width = max(len(key) for key in gauges)
        for key, value in gauges.items():
            lines.append(f"  {key:<{width}}  {_format_value(value)}{mark(key)}")
    if histograms:
        lines.append("histograms:")
        for key, state in histograms.items():
            histogram = _histogram_from_state(state)
            count = state["count"]
            mean = state["total"] / count if count else 0.0
            lines.append(
                f"  {key}{mark(key)}: n={count} mean={mean:.6g}"
                f" min={_format_value(state['min'])}"
                f" p50<={_format_value(histogram.quantile(0.50))}"
                f" p99<={_format_value(histogram.quantile(0.99))}"
                f" max={_format_value(state['max'])}"
            )
    if not lines:
        lines.append("(empty snapshot)")
    return "\n".join(lines)


def diff_snapshots(left: dict, right: dict) -> str:
    """Per-metric delta between two snapshots (right minus left).

    Counters and gauges report numeric deltas; histograms report the
    count/total delta.  Metrics present on only one side are flagged.
    Returns ``"(no differences)"`` when everything matches.
    """
    lines: list[str] = []
    for section in ("counters", "gauges"):
        left_map = left.get(section, {})
        right_map = right.get(section, {})
        for key in sorted(set(left_map) | set(right_map)):
            if key not in left_map:
                lines.append(
                    f"{section}/{key}: only right"
                    f" ({_format_value(right_map[key])})"
                )
            elif key not in right_map:
                lines.append(
                    f"{section}/{key}: only left"
                    f" ({_format_value(left_map[key])})"
                )
            elif left_map[key] != right_map[key]:
                delta = right_map[key] - left_map[key]
                lines.append(
                    f"{section}/{key}: {_format_value(left_map[key])}"
                    f" -> {_format_value(right_map[key])}"
                    f" ({'+' if delta >= 0 else ''}{_format_value(delta)})"
                )
    left_hists = left.get("histograms", {})
    right_hists = right.get("histograms", {})
    for key in sorted(set(left_hists) | set(right_hists)):
        if key not in left_hists:
            lines.append(f"histograms/{key}: only right")
        elif key not in right_hists:
            lines.append(f"histograms/{key}: only left")
        else:
            lstate, rstate = left_hists[key], right_hists[key]
            if lstate != rstate:
                dcount = rstate["count"] - lstate["count"]
                dtotal = rstate["total"] - lstate["total"]
                lines.append(
                    f"histograms/{key}: n {lstate['count']} -> {rstate['count']}"
                    f" ({'+' if dcount >= 0 else ''}{dcount}),"
                    f" total {_format_value(lstate['total'])}"
                    f" -> {_format_value(rstate['total'])}"
                    f" ({'+' if dtotal >= 0 else ''}{_format_value(dtotal)})"
                )
    if not lines:
        return "(no differences)"
    return "\n".join(lines)
