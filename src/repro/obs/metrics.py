"""Process-local metrics registry with deterministic snapshot/merge.

Three instrument kinds, all held in one :class:`MetricsRegistry`:

* **counters** — monotonically increasing integers (requests served,
  chunks counted); merge by addition.
* **gauges** — last-known absolute values (stored bytes, queue depth);
  merge by **maximum**, so merging N worker snapshots reports the
  high-water mark rather than an order-dependent last-writer value.
* **histograms** — fixed-bucket distributions (request latency, shard
  phase timings); bucket counts and totals add, min/max take min/max.
  Buckets are pinned per metric at first observation, so every process
  observing ``serve.latency_s`` aggregates into the same boundaries and
  shard/worker snapshots merge without resampling.

Determinism is the design constraint, not an afterthought: the sharded
COUNT and the scenario runner must produce the **same snapshot bytes at
any ``--jobs`` value** for everything that is a property of the workload
rather than of the schedule.  Two mechanisms deliver that:

* snapshots serialize metrics in sorted key order with plain-JSON
  values, so equal registries render equal bytes;
* every metric is recorded as either **stable** (schedule-invariant:
  totals, unique counts, cache hits) or **volatile** (wall-clock
  timings, RSS, per-shard splits).  :meth:`MetricsRegistry.snapshot`
  with ``stable_only=True`` drops the volatile section — that filtered
  snapshot is what the ``--jobs 1`` vs ``--jobs 4`` identity tests
  compare, while the full snapshot keeps the timings an operator wants.

Label sets attach to any metric (``counter("serve.errors", code=...,
cls=...)``) and become part of the flat snapshot key
(``name|k=v,k2=v2``), keeping the JSON schema one level deep and
mergeable with a dict union.
"""

from __future__ import annotations

import json
from bisect import bisect_left

from repro.common.errors import ConfigurationError

#: Bump when the snapshot layout changes shape (not when values change).
SNAPSHOT_SCHEMA = 1

#: Default histogram buckets for second-valued timings: ~100 µs to ~100 s
#: in quarter-decade steps — wide enough for a socket round-trip and a
#: 10⁷-chunk COUNT phase alike.
LATENCY_BUCKETS_S = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0,
)

#: Default buckets for byte-valued sizes: 1 KiB to 64 GiB in powers of 4.
SIZE_BUCKETS_BYTES = tuple(1024 * 4**exponent for exponent in range(13))

_SECTIONS = ("counters", "gauges", "histograms")


def metric_key(name: str, labels: dict | None = None) -> str:
    """The flat snapshot key for ``name`` under ``labels``.

    ``name|k=v,k2=v2`` with labels sorted by key — equal (name, labels)
    pairs always render the same key, whatever order call sites pass
    keyword labels in.
    """
    if not labels:
        return name
    rendered = ",".join(
        f"{key}={labels[key]}" for key in sorted(labels)
    )
    return f"{name}|{rendered}"


class Histogram:
    """One fixed-bucket distribution.

    ``buckets`` are inclusive upper bounds; values above the last bound
    land in an implicit overflow bucket, so ``counts`` has
    ``len(buckets) + 1`` slots and never loses an observation.
    """

    __slots__ = ("buckets", "counts", "count", "total", "low", "high")

    def __init__(self, buckets: tuple[float, ...]):
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)
        self.count = 0
        self.total = 0.0
        self.low: float | None = None
        self.high: float | None = None

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.total += value
        if self.low is None or value < self.low:
            self.low = value
        if self.high is None or value > self.high:
            self.high = value

    def merge(self, state: dict) -> None:
        """Fold a snapshot-form histogram (same buckets) into this one."""
        if tuple(state["buckets"]) != self.buckets:
            raise ConfigurationError(
                "cannot merge histograms with different bucket boundaries"
            )
        for index, count in enumerate(state["counts"]):
            self.counts[index] += count
        self.count += state["count"]
        self.total += state["total"]
        if state["count"]:
            if self.low is None or state["min"] < self.low:
                self.low = state["min"]
            if self.high is None or state["max"] > self.high:
                self.high = state["max"]

    def quantile(self, fraction: float) -> float:
        """The upper bound of the bucket holding the ``fraction``-quantile
        observation (bucket-resolution percentiles for rendering)."""
        if self.count == 0:
            return 0.0
        rank = max(1, round(fraction * self.count))
        seen = 0
        for index, count in enumerate(self.counts):
            seen += count
            if seen >= rank:
                if index < len(self.buckets):
                    return self.buckets[index]
                return self.high if self.high is not None else 0.0
        return self.high if self.high is not None else 0.0

    def state(self) -> dict:
        """The JSON-safe snapshot form (what :meth:`merge` consumes)."""
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "total": round(self.total, 9),
            "min": self.low,
            "max": self.high,
        }


class MetricsRegistry:
    """Counters, gauges, and histograms behind one snapshot/merge seam."""

    def __init__(self):
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}
        self._volatile: set[str] = set()

    # -- recording ----------------------------------------------------------

    def counter(
        self, name: str, value: int = 1, *, stable: bool = True, **labels
    ) -> None:
        """Add ``value`` to a counter (defaults to +1)."""
        key = metric_key(name, labels)
        self._counters[key] = self._counters.get(key, 0) + value
        if not stable:
            self._volatile.add(key)

    def gauge(
        self, name: str, value: float, *, stable: bool = True, **labels
    ) -> None:
        """Set a gauge to ``value`` (absolute, last observation wins)."""
        key = metric_key(name, labels)
        self._gauges[key] = value
        if not stable:
            self._volatile.add(key)

    def gauge_max(
        self, name: str, value: float, *, stable: bool = True, **labels
    ) -> None:
        """Raise a gauge to ``value`` if it exceeds the current reading
        (high-water marks: queue depth, peak RSS)."""
        key = metric_key(name, labels)
        current = self._gauges.get(key)
        if current is None or value > current:
            self._gauges[key] = value
        if not stable:
            self._volatile.add(key)

    def observe(
        self,
        name: str,
        value: float,
        *,
        buckets: tuple[float, ...] = LATENCY_BUCKETS_S,
        stable: bool = False,
        **labels,
    ) -> None:
        """Record one histogram observation.

        Histograms default to **volatile** — the common case is a timing —
        pass ``stable=True`` for schedule-invariant distributions (sizes,
        per-request chunk counts).
        """
        key = metric_key(name, labels)
        histogram = self._histograms.get(key)
        if histogram is None:
            histogram = self._histograms[key] = Histogram(tuple(buckets))
        histogram.observe(value)
        if not stable:
            self._volatile.add(key)

    # -- snapshot / merge ---------------------------------------------------

    def snapshot(self, stable_only: bool = False) -> dict:
        """The registry as a deterministic JSON-safe dict.

        Keys in every section are sorted; ``stable_only=True`` drops the
        volatile metrics (timings, RSS, per-shard splits) — the form the
        ``--jobs`` identity tests compare byte-for-byte.
        """
        volatile = self._volatile

        def keep(key: str) -> bool:
            return not (stable_only and key in volatile)

        return {
            "schema": SNAPSHOT_SCHEMA,
            "counters": {
                key: value
                for key, value in sorted(self._counters.items())
                if keep(key)
            },
            "gauges": {
                key: value
                for key, value in sorted(self._gauges.items())
                if keep(key)
            },
            "histograms": {
                key: histogram.state()
                for key, histogram in sorted(self._histograms.items())
                if keep(key)
            },
            "volatile": sorted(
                key for key in volatile if not stable_only
            ),
        }

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold another registry's snapshot into this one.

        Counters add, gauges take the maximum, histograms add bucket-wise
        (same boundaries required).  Merging is commutative and
        associative over these semantics, so shard/worker snapshots can
        arrive in any completion order and still produce identical
        merged state.
        """
        for key, value in snapshot.get("counters", {}).items():
            self._counters[key] = self._counters.get(key, 0) + value
        for key, value in snapshot.get("gauges", {}).items():
            current = self._gauges.get(key)
            if current is None or value > current:
                self._gauges[key] = value
        for key, state in snapshot.get("histograms", {}).items():
            histogram = self._histograms.get(key)
            if histogram is None:
                histogram = self._histograms[key] = Histogram(
                    tuple(state["buckets"])
                )
            histogram.merge(state)
        self._volatile.update(snapshot.get("volatile", ()))

    def clear(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self._volatile.clear()

    def __len__(self) -> int:
        return (
            len(self._counters) + len(self._gauges) + len(self._histograms)
        )


def snapshot_bytes(snapshot: dict) -> bytes:
    """Canonical serialized form (sorted keys, compact separators) — what
    the determinism tests compare and ``--metrics`` writes."""
    return json.dumps(
        snapshot, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
