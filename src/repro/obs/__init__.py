"""``repro.obs`` — unified observability: metrics, spans, structured logs.

One process-global switchboard.  Everything is **off by default** and
every recording call is a cheap no-op while disabled, so instrumentation
lives unconditionally in the hot paths without perturbing the
byte-identity guarantees the rest of the repo is built on:

    from repro import obs

    obs.counter("serve.frames", kind="UPLOAD_BATCH")
    obs.observe("serve.latency_s", dt, kind="UPLOAD_BATCH")
    with obs.span("count.shard", shard=i):
        ...
    obs.get_logger("runner").info("cell done", extra={"cell": key})

Enable with :func:`enable` (the CLI's ``--metrics``/``--trace-out``
flags call it) or via the ``REPRO_OBS`` environment variable
(``metrics``, ``trace``, ``logs``, or a comma list; ``all`` / ``1`` for
everything).  ``enable`` also exports ``REPRO_OBS`` so worker processes
started with the *spawn* method see the same switches; *fork* workers
(the repo default) inherit the flags as live memory state.

Worker processes must not report into their inherited copy of the global
registry — the parent would never see it.  The pattern, used by the
sharded COUNT, scenario cells, and loadgen workers, is
:func:`worker_registry` → record locally → ship ``registry.snapshot()``
back in the return value → parent calls :func:`merge_snapshot`.
"""

from __future__ import annotations

import os

from repro.obs import logs as _logs
from repro.obs.metrics import (
    LATENCY_BUCKETS_S,
    SIZE_BUCKETS_BYTES,
    SNAPSHOT_SCHEMA,
    MetricsRegistry,
    snapshot_bytes,
)
from repro.obs.tracing import (
    NULL_SPAN,
    SpanRing,
    export_jsonl,
)

__all__ = [
    "LATENCY_BUCKETS_S",
    "SIZE_BUCKETS_BYTES",
    "SNAPSHOT_SCHEMA",
    "MetricsRegistry",
    "SpanRing",
    "counter",
    "disable",
    "enable",
    "enabled",
    "export_trace",
    "gauge",
    "gauge_max",
    "get_logger",
    "merge_snapshot",
    "observe",
    "registry",
    "reset",
    "snapshot",
    "snapshot_bytes",
    "span",
    "span_ring",
    "tracing_enabled",
    "worker_registry",
]

ENV_VAR = "REPRO_OBS"

_metrics_on = False
_tracing_on = False
_registry = MetricsRegistry()
_ring = SpanRing()

get_logger = _logs.get_logger


def _parse_env(value: str) -> tuple[bool, bool, bool]:
    tokens = {token.strip() for token in value.lower().split(",") if token.strip()}
    if tokens & {"1", "all", "on", "true"}:
        return True, True, True
    return "metrics" in tokens, "trace" in tokens, "logs" in tokens


def enable(
    *,
    metrics: bool = True,
    tracing: bool = False,
    logging: bool = False,
) -> None:
    """Turn on the requested subsystems (additive; never turns one off)."""
    global _metrics_on, _tracing_on
    _metrics_on = _metrics_on or metrics
    _tracing_on = _tracing_on or tracing
    if logging:
        _logs.configure()
    tokens = []
    if _metrics_on:
        tokens.append("metrics")
    if _tracing_on:
        tokens.append("trace")
    if logging:
        tokens.append("logs")
    if tokens:
        os.environ[ENV_VAR] = ",".join(tokens)


def disable() -> None:
    """All subsystems off; recorded state is kept until :func:`reset`."""
    global _metrics_on, _tracing_on
    _metrics_on = False
    _tracing_on = False
    _logs.deconfigure()
    os.environ.pop(ENV_VAR, None)


def reset() -> None:
    """Clear recorded metrics and spans (switch state unchanged)."""
    _registry.clear()
    _ring.clear()


def enabled() -> bool:
    return _metrics_on


def tracing_enabled() -> bool:
    return _tracing_on


# -- recording facade (no-ops while disabled) -------------------------------


def counter(name: str, value: int = 1, *, stable: bool = True, **labels) -> None:
    if _metrics_on:
        _registry.counter(name, value, stable=stable, **labels)


def gauge(name: str, value: float, *, stable: bool = True, **labels) -> None:
    if _metrics_on:
        _registry.gauge(name, value, stable=stable, **labels)


def gauge_max(name: str, value: float, *, stable: bool = True, **labels) -> None:
    if _metrics_on:
        _registry.gauge_max(name, value, stable=stable, **labels)


def observe(
    name: str,
    value: float,
    *,
    buckets: tuple[float, ...] = LATENCY_BUCKETS_S,
    stable: bool = False,
    **labels,
) -> None:
    if _metrics_on:
        _registry.observe(name, value, buckets=buckets, stable=stable, **labels)


def span(name: str, **tags):
    if _tracing_on:
        return _ring.span(name, **tags)
    return NULL_SPAN


# -- snapshot / merge / export ----------------------------------------------


def registry() -> MetricsRegistry:
    return _registry


def span_ring() -> SpanRing:
    return _ring


def snapshot(stable_only: bool = False) -> dict:
    return _registry.snapshot(stable_only=stable_only)


def merge_snapshot(snap: dict | None) -> None:
    if snap:
        _registry.merge_snapshot(snap)


def merge_spans(records: list[dict] | None) -> None:
    if records:
        _ring.extend(records)


def export_trace(path) -> int:
    return export_jsonl(_ring, path)


def worker_registry() -> MetricsRegistry | None:
    """A fresh registry for a worker process to record into, or ``None``
    when metrics are off.

    Forked workers inherit the parent's global registry *contents*;
    recording there would double-count once the parent merges the
    shipped snapshot.  Workers record into this fresh registry and
    return ``registry.snapshot()`` alongside their payload.
    """
    if _metrics_on:
        return MetricsRegistry()
    return None


# Honor REPRO_OBS at import so fork/spawn children and test subprocesses
# come up with the same switches as the parent that exported it.
_env_value = os.environ.get(ENV_VAR)
if _env_value:
    _env_metrics, _env_trace, _env_logs = _parse_env(_env_value)
    if _env_metrics or _env_trace or _env_logs:
        enable(metrics=_env_metrics, tracing=_env_trace, logging=_env_logs)
