"""Lightweight span tracing into a bounded ring buffer.

``with span("count.shard", shard=3):`` times a region and appends one
record to a process-local ring (a ``deque(maxlen=...)``), so tracing is
safe to leave on indefinitely — memory is bounded and old spans fall off
the back.  When tracing is disabled the context manager is a shared
singleton no-op: the per-span cost is one attribute load and a truthiness
check, cheap enough to leave call sites unconditional.

Records are plain dicts ``{"seq", "name", "dur_s", **tags}`` where
``seq`` is a process-local monotonic index (ordering without wall-clock
timestamps, which would break reproducible exports).  Export is JSONL —
one span per line, in ring order — via :func:`export_jsonl`.
"""

from __future__ import annotations

import json
import time
from collections import deque
from contextlib import contextmanager

#: Ring capacity: big enough to hold a full loadgen run's serve spans,
#: small enough (~1 MB of dicts) to never matter.
DEFAULT_RING_CAPACITY = 4096


class _NullSpan:
    """The shared disabled-mode context manager."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


NULL_SPAN = _NullSpan()


class SpanRing:
    """Bounded span buffer for one process."""

    def __init__(self, capacity: int = DEFAULT_RING_CAPACITY):
        self._ring: deque[dict] = deque(maxlen=capacity)
        self._seq = 0
        self._dropped = 0

    @contextmanager
    def span(self, name: str, **tags):
        start = time.perf_counter()
        try:
            yield
        finally:
            duration = time.perf_counter() - start
            if len(self._ring) == self._ring.maxlen:
                self._dropped += 1
            record = {"seq": self._seq, "name": name}
            if tags:
                record.update(tags)
            record["dur_s"] = round(duration, 9)
            self._ring.append(record)
            self._seq += 1

    def records(self) -> list[dict]:
        return list(self._ring)

    def extend(self, records: list[dict]) -> None:
        """Absorb spans shipped back from a worker process.

        Worker ``seq`` values are remapped onto this ring's sequence so
        the merged export stays monotonically ordered.
        """
        for record in records:
            if len(self._ring) == self._ring.maxlen:
                self._dropped += 1
            merged = dict(record)
            merged["seq"] = self._seq
            self._ring.append(merged)
            self._seq += 1

    @property
    def dropped(self) -> int:
        return self._dropped

    def clear(self) -> None:
        self._ring.clear()
        self._seq = 0
        self._dropped = 0

    def __len__(self) -> int:
        return len(self._ring)


def export_jsonl(ring: SpanRing, path) -> int:
    """Write the ring to ``path`` as JSONL; returns the span count."""
    records = ring.records()
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True))
            handle.write("\n")
    return len(records)
