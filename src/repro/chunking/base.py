"""Common chunking interface.

A :class:`Chunker` maps a byte string to a sequence of :class:`Chunk` objects
whose concatenation reproduces the input exactly — this reassembly invariant
is property-tested for every implementation.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.common.errors import ConfigurationError


@dataclass(frozen=True)
class Chunk:
    """A contiguous piece of an input buffer.

    Attributes:
        offset: byte offset of the chunk within the original input.
        data: the chunk content.
    """

    offset: int
    data: bytes

    @property
    def size(self) -> int:
        return len(self.data)

    def __len__(self) -> int:
        return len(self.data)


@dataclass(frozen=True)
class ChunkerSpec:
    """Size bounds for content-defined chunking.

    ``avg_size`` must be a power of two (it becomes the boundary-test mask);
    ``min_size`` and ``max_size`` bound the produced chunk sizes. The paper's
    FSL dataset uses an 8 KB average; the segmentation scheme of §7.1 reuses
    the same mechanism at 512 KB / 1 MB / 2 MB granularity.

    Invariants every chunker honours (and the fast paths rely on):

    * no boundary test fires before ``min_size`` bytes have accumulated,
      so boundary-hash state covering the trailing bytes at the first
      eligible position is independent of the chunk start;
    * a cut is **forced** at exactly ``max_size`` bytes when no content
      boundary fired earlier, so no chunk ever exceeds ``max_size`` and
      cut decisions never depend on bytes more than ``max_size`` back —
      which is what lets :class:`~repro.chunking.stream.StreamChunker`
      emit all-but-the-last chunk of a bounded window as final;
    * the final chunk of a buffer may be shorter than ``min_size`` (the
      stream simply ended).
    """

    min_size: int
    avg_size: int
    max_size: int

    def __post_init__(self) -> None:
        if self.min_size <= 0:
            raise ConfigurationError("min_size must be positive")
        if self.avg_size & (self.avg_size - 1):
            raise ConfigurationError("avg_size must be a power of two")
        if not self.min_size <= self.avg_size <= self.max_size:
            raise ConfigurationError(
                "require min_size <= avg_size <= max_size, got "
                f"{self.min_size}/{self.avg_size}/{self.max_size}"
            )

    @property
    def mask(self) -> int:
        return self.avg_size - 1


class Chunker(ABC):
    """Splits byte strings into chunks."""

    @abstractmethod
    def cut_points(self, data: bytes) -> list[int]:
        """Return the sorted chunk end offsets for ``data``.

        The final element is always ``len(data)`` for non-empty input; empty
        input yields an empty list.
        """

    def split(self, data: bytes) -> list[Chunk]:
        """Split ``data`` into chunks at :meth:`cut_points`."""
        chunks: list[Chunk] = []
        start = 0
        for end in self.cut_points(data):
            chunks.append(Chunk(offset=start, data=data[start:end]))
            start = end
        return chunks

    def iter_split(self, data: bytes) -> Iterator[Chunk]:
        """Iterator variant of :meth:`split`."""
        return iter(self.split(data))


def reassemble(chunks: Iterable[Chunk]) -> bytes:
    """Concatenate chunks back into the original buffer (test helper)."""
    return b"".join(chunk.data for chunk in chunks)
