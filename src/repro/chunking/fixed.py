"""Fixed-size chunking.

The paper's VM dataset uses 4 KB fixed-size chunks (§5.1); with fixed sizes
the advanced locality-based attack degenerates to the plain locality-based
attack because the size side channel carries no information.
"""

from __future__ import annotations

from repro.chunking.base import Chunker
from repro.common.errors import ConfigurationError


class FixedSizeChunker(Chunker):
    """Splits input into consecutive blocks of ``block_size`` bytes.

    The final chunk may be shorter than ``block_size``.
    """

    def __init__(self, block_size: int = 4096):
        if block_size <= 0:
            raise ConfigurationError("block_size must be positive")
        self.block_size = block_size

    def cut_points(self, data: bytes) -> list[int]:
        length = len(data)
        cuts = list(range(self.block_size, length, self.block_size))
        if length:
            cuts.append(length)
        return cuts

    def __repr__(self) -> str:
        return f"FixedSizeChunker(block_size={self.block_size})"
