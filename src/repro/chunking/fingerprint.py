"""Chunk fingerprinting (§2.1).

A fingerprint is the cryptographic hash of a chunk's content; two chunks are
treated as identical iff their fingerprints match (collision probability is
negligible for cryptographic hashes [16]). The FSL traces identify chunks by
48-bit truncated fingerprints; :class:`Fingerprinter` supports the same
truncation.
"""

from __future__ import annotations

import hashlib

from repro.common.errors import ConfigurationError

_SUPPORTED = {"sha1", "sha256", "blake2b", "md5"}


class Fingerprinter:
    """Computes (optionally truncated) cryptographic chunk fingerprints.

    Args:
        algorithm: one of ``sha1``, ``sha256``, ``blake2b``, ``md5``.
        truncate_bytes: keep only the first N bytes of the digest
            (e.g. 6 for FSL-style 48-bit fingerprints). ``None`` keeps the
            full digest.
    """

    def __init__(self, algorithm: str = "sha256", truncate_bytes: int | None = None):
        if algorithm not in _SUPPORTED:
            raise ConfigurationError(
                f"unsupported fingerprint algorithm {algorithm!r}; "
                f"choose from {sorted(_SUPPORTED)}"
            )
        digest_len = hashlib.new(algorithm).digest_size
        if truncate_bytes is not None and not 1 <= truncate_bytes <= digest_len:
            raise ConfigurationError(
                f"truncate_bytes must be in [1, {digest_len}] for {algorithm}"
            )
        self.algorithm = algorithm
        self.truncate_bytes = truncate_bytes

    def __call__(self, data: bytes) -> bytes:
        digest = hashlib.new(self.algorithm, data).digest()
        if self.truncate_bytes is not None:
            return digest[: self.truncate_bytes]
        return digest

    def hex(self, data: bytes) -> str:
        """Hex rendering of :meth:`__call__`."""
        return self(data).hex()

    @property
    def digest_size(self) -> int:
        """Size in bytes of the fingerprints this instance produces."""
        if self.truncate_bytes is not None:
            return self.truncate_bytes
        return hashlib.new(self.algorithm).digest_size

    def __repr__(self) -> str:
        return (
            f"Fingerprinter(algorithm={self.algorithm!r}, "
            f"truncate_bytes={self.truncate_bytes})"
        )
