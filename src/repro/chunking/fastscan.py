"""Vectorized boundary-candidate scanning for content-defined chunking.

The boundary tests of both CDC algorithms read only a *position-local*
hash: the Rabin fingerprint at position ``i`` covers exactly the trailing
``window`` bytes, and the gear hash's low ``log2(avg_size)`` bits cover
the trailing ``log2(avg_size)`` bytes. Neither depends on where the
current chunk started (chunk starts only gate *which* positions are
eligible). That makes the per-position boundary test computable for the
whole buffer at once — independent of the sequential cut walk — with a
handful of table gathers over a 16-bit byte-pair key stream, after which
cut selection is a cheap walk over the (sparse) candidate list.

This module holds the shared, dependency-gated plumbing; the per-
algorithm table construction lives next to each chunker. NumPy is an
optional accelerator: when it is not importable the chunkers fall back
to their pure-Python skip-ahead loops, with identical output (pinned by
the fastpath-vs-reference property tests).
"""

from __future__ import annotations

from repro.common.accel import numpy


def available() -> bool:
    """Whether the vectorized scan path can run."""
    return numpy is not None


def pair_key_stream(data: bytes) -> "numpy.ndarray":
    """16-bit keys ``(data[j] << 8) | data[j - 1]`` for ``j >= 1``.

    Returned as index-ready ``intp`` so each table gather skips the
    implicit index-cast pass. Entry ``k`` of the result is the key for
    position ``j = k + 1``.
    """
    raw = numpy.frombuffer(data, dtype=numpy.uint8)
    keys = raw[1:].astype(numpy.intp)
    keys <<= 8
    keys |= raw[:-1]
    return keys


def mask_dtype(mask: int) -> "numpy.dtype":
    """Smallest unsigned dtype holding ``mask``-masked hash values."""
    return numpy.dtype(numpy.uint16 if mask < (1 << 16) else numpy.uint32)
