"""Gear-hash content-defined chunking.

Gear hashing (the core of FastCDC-style chunkers) replaces Rabin's polynomial
arithmetic with ``h = (h << 1) + gear[byte]`` over a table of random 64-bit
values. The low ``log2(avg_size)`` bits of ``h`` depend only on the most
recent ``log2(avg_size)`` bytes, so boundaries remain content-defined and
shift-robust while the per-byte work is a single shift/add.

We use it as the default chunker for the content-level dataset pipeline
because it is several times faster than :class:`~repro.chunking.rabin.
RabinChunker` in pure Python while producing statistically equivalent chunk
size distributions.
"""

from __future__ import annotations

import random

from repro.chunking.base import Chunker, ChunkerSpec

_GEAR_TABLE_SEED = 0x9E3779B97F4A7C15
_MASK64 = (1 << 64) - 1


def _build_gear_table(seed: int) -> list[int]:
    rng = random.Random(seed)
    return [rng.getrandbits(64) for _ in range(256)]


class GearChunker(Chunker):
    """Content-defined chunking with a gear rolling hash.

    A boundary is placed once ``spec.min_size`` bytes have accumulated and
    ``hash & spec.mask == 0``; a cut is forced at ``spec.max_size``. The hash
    state resets at every boundary, so each chunk's cuts depend only on its
    own content.
    """

    def __init__(self, spec: ChunkerSpec | None = None, table_seed: int = _GEAR_TABLE_SEED):
        self.spec = spec or ChunkerSpec(
            min_size=2048, avg_size=8192, max_size=65536
        )
        self._gear = _build_gear_table(table_seed)

    def cut_points(self, data: bytes) -> list[int]:
        spec = self.spec
        gear = self._gear
        mask = spec.mask
        min_size = spec.min_size
        max_size = spec.max_size

        cuts: list[int] = []
        length = len(data)
        start = 0
        while start < length:
            end = min(start + max_size, length)
            # Skip the first min_size bytes: no boundary may fall there, and
            # the hash over fewer than 64 bytes is fully determined by the
            # bytes we do feed below.
            pos = start + min_size
            if pos >= end:
                cuts.append(end)
                start = end
                continue
            hash_value = 0
            # Warm the hash with the min-size prefix tail so the first
            # eligible boundary decision sees a full-entropy state.
            warm_from = max(start, pos - 64)
            for i in range(warm_from, pos):
                hash_value = ((hash_value << 1) + gear[data[i]]) & _MASK64
            cut = end
            for i in range(pos, end):
                hash_value = ((hash_value << 1) + gear[data[i]]) & _MASK64
                if (hash_value & mask) == 0:
                    cut = i + 1
                    break
            cuts.append(cut)
            start = cut
        return cuts

    def __repr__(self) -> str:
        return (
            f"GearChunker(min={self.spec.min_size}, avg={self.spec.avg_size}, "
            f"max={self.spec.max_size})"
        )
