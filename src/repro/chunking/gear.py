"""Gear-hash content-defined chunking.

Gear hashing (the core of FastCDC-style chunkers) replaces Rabin's polynomial
arithmetic with ``h = (h << 1) + gear[byte]`` over a table of random 64-bit
values. The low ``log2(avg_size)`` bits of ``h`` depend only on the most
recent ``log2(avg_size)`` bytes, so boundaries remain content-defined and
shift-robust while the per-byte work is a single shift/add.

We use it as the default chunker for the content-level dataset pipeline
because it is several times faster than :class:`~repro.chunking.rabin.
RabinChunker` in pure Python while producing statistically equivalent chunk
size distributions.

:meth:`GearChunker.cut_points` exploits the bounded effective width: the
boundary test reads only ``mask.bit_length()`` low bits, whose carries
propagate strictly upward, so the test value at every position is a
position-local sum over the trailing ``mask.bit_length()`` bytes — either
vectorized for the whole buffer (byte-pair table gathers, when numpy is
available) or scanned with a skip-ahead loop whose warm-up feeds only that
many bytes. Both are byte-identical to
:meth:`GearChunker.cut_points_reference`, the pre-optimization loop kept as
the equivalence oracle.
"""

from __future__ import annotations

import random
from functools import lru_cache

from repro.chunking import fastscan
from repro.chunking.base import Chunker, ChunkerSpec

_GEAR_TABLE_SEED = 0x9E3779B97F4A7C15
_MASK64 = (1 << 64) - 1


def _build_gear_table(seed: int) -> list[int]:
    rng = random.Random(seed)
    return [rng.getrandbits(64) for _ in range(256)]


@lru_cache(maxsize=8)
def _gear_scan_tables(table_seed: int, mask: int):
    """Byte-pair gather tables for the vectorized gear boundary scan.

    ``h & mask`` at position ``i`` equals ``sum_j gear[data[i - j]] << j``
    truncated to the mask bits (addition carries only travel upward, and
    terms shifted past the mask width contribute nothing), so the test
    stream is an overflow-wrapping sum of ``ceil(mask_bits / 2)`` pair
    gathers, each keyed on ``(data[j] << 8) | data[j - 1]``.
    """
    numpy = fastscan.numpy
    mask_bits = mask.bit_length()
    dtype = fastscan.mask_dtype(mask)
    width_mask = (1 << (8 * dtype.itemsize)) - 1
    gear = numpy.array(_build_gear_table(table_seed), dtype=numpy.uint64)
    gear = (gear & width_mask).astype(numpy.uint32)
    high = numpy.arange(65536, dtype=numpy.uint32) >> 8
    low = numpy.arange(65536, dtype=numpy.uint32) & 255
    pairs = (mask_bits + 1) // 2
    pair_tables = [
        # Key high byte = the later position (shift 2t, applied here so the
        # scan loop is a bare gather-and-add), low byte = shift 2t + 1.
        (
            ((gear[high] << (2 * t)) + (gear[low] << (2 * t + 1)))
            & width_mask
        ).astype(dtype)
        for t in range(pairs)
    ]
    return pair_tables


class GearChunker(Chunker):
    """Content-defined chunking with a gear rolling hash.

    A boundary is placed once ``spec.min_size`` bytes have accumulated and
    ``hash & spec.mask == 0``; a cut is forced at ``spec.max_size``. The hash
    state resets at every boundary, so each chunk's cuts depend only on its
    own content.
    """

    def __init__(self, spec: ChunkerSpec | None = None, table_seed: int = _GEAR_TABLE_SEED):
        self.spec = spec or ChunkerSpec(
            min_size=2048, avg_size=8192, max_size=65536
        )
        self._table_seed = table_seed
        self._gear = _build_gear_table(table_seed)
        # Effective width of the gear hash for the boundary test: bit i of
        # ``h = (h << 1) + gear[byte]`` depends only on the most recent
        # ``i + 1`` bytes (carries propagate strictly upward), so the low
        # ``log2(avg_size)`` bits the test reads are fully warmed after
        # ``mask.bit_length()`` bytes.
        self._warm_width = self.spec.mask.bit_length()

    def cut_points(self, data: bytes) -> list[int]:
        length = len(data)
        if not length:
            return []
        min_size = self.spec.min_size
        if length <= min_size:
            # Single short chunk: no eligible boundary, cut at the end.
            return [length]
        # The vectorized scan pairs warm bytes two at a time, so it needs
        # the paired warm span to fit inside the min-size prefix (always
        # true for real specs; degenerate tiny specs take the scan loop).
        if (
            fastscan.numpy is not None
            and self._warm_width > 0
            and min_size >= 2 * ((self._warm_width + 1) // 2)
        ):
            return self._cut_points_vectorized(data)
        return self._cut_points_skip_ahead(data)

    # -- fast paths -----------------------------------------------------------

    def _cut_points_vectorized(self, data: bytes) -> list[int]:
        """Whole-buffer candidate scan (numpy), then the cut walk."""
        numpy = fastscan.numpy
        from bisect import bisect_left

        spec = self.spec
        mask = spec.mask
        pair_tables = _gear_scan_tables(self._table_seed, mask)
        warm_span = 2 * len(pair_tables)
        length = len(data)
        keys = fastscan.pair_key_stream(data)
        # tested[k] = low bits of the gear hash at position i = k +
        # warm_span - 1 (positions whose trailing warm bytes all exist;
        # earlier ones are never tested because min_size >= warm_span).
        span = length - warm_span + 1
        tested = numpy.zeros(span, dtype=pair_tables[0].dtype)
        for t, table in enumerate(pair_tables):
            offset = warm_span - 2 * t - 2
            tested += table[keys[offset : offset + span]]
        candidates = (
            numpy.flatnonzero((tested & mask) == 0) + (warm_span - 1)
        ).tolist()

        min_size = spec.min_size
        max_size = spec.max_size
        num_candidates = len(candidates)
        cuts: list[int] = []
        start = 0
        while start < length:
            end = start + max_size
            if end > length:
                end = length
            first = start + min_size
            if first >= end:
                cuts.append(end)
                start = end
                continue
            index = bisect_left(candidates, first)
            if index < num_candidates and candidates[index] < end:
                cut = candidates[index] + 1
            else:
                # No content boundary: forced cut at max_size, or the tail.
                cut = end
            cuts.append(cut)
            start = cut
        return cuts

    def _cut_points_skip_ahead(self, data: bytes) -> list[int]:
        """Pure-Python fallback: per-chunk scan warming only the effective
        hash width."""
        spec = self.spec
        gear = self._gear
        mask = spec.mask
        min_size = spec.min_size
        max_size = spec.max_size
        warm_width = self._warm_width

        cuts: list[int] = []
        length = len(data)
        start = 0
        while start < length:
            end = min(start + max_size, length)
            # Skip the first min_size bytes: no boundary may fall there, and
            # the low mask bits the boundary test reads are fully determined
            # by the warm_width bytes fed below.
            pos = start + min_size
            if pos >= end:
                cuts.append(end)
                start = end
                continue
            hash_value = 0
            for byte in data[max(start, pos - warm_width) : pos]:
                hash_value = ((hash_value << 1) + gear[byte]) & _MASK64
            cut = 0
            for byte in data[pos:end]:
                hash_value = ((hash_value << 1) + gear[byte]) & _MASK64
                pos += 1
                if hash_value & mask == 0:
                    cut = pos
                    break
            if not cut:
                cut = end
            cuts.append(cut)
            start = cut
        return cuts

    # -- reference ------------------------------------------------------------

    def cut_points_reference(self, data: bytes) -> list[int]:
        """Byte-indexing reference loop with the fixed 64-byte warm-up (the
        pre-optimization behaviour; the equivalence oracle for
        :meth:`cut_points`)."""
        spec = self.spec
        gear = self._gear
        mask = spec.mask
        min_size = spec.min_size
        max_size = spec.max_size

        cuts: list[int] = []
        length = len(data)
        start = 0
        while start < length:
            end = min(start + max_size, length)
            pos = start + min_size
            if pos >= end:
                cuts.append(end)
                start = end
                continue
            hash_value = 0
            warm_from = max(start, pos - 64)
            for i in range(warm_from, pos):
                hash_value = ((hash_value << 1) + gear[data[i]]) & _MASK64
            cut = end
            for i in range(pos, end):
                hash_value = ((hash_value << 1) + gear[data[i]]) & _MASK64
                if (hash_value & mask) == 0:
                    cut = i + 1
                    break
            cuts.append(cut)
            start = cut
        return cuts

    def __repr__(self) -> str:
        return (
            f"GearChunker(min={self.spec.min_size}, avg={self.spec.avg_size}, "
            f"max={self.spec.max_size})"
        )
