"""Streaming chunking for file-like sources.

``Chunker.split`` needs the whole buffer in memory; backup clients read
multi-GB files. :class:`StreamChunker` wraps any chunker and emits chunks
incrementally from a binary stream while holding only a bounded window:
it reads ``read_size`` bytes at a time, cuts everything the wrapped
chunker is *certain* about (every cut except the last, which might move
once more data arrives), and carries the tail over to the next read.

Because content-defined cut decisions depend only on content within one
chunk (bounded by ``max_size``), cutting all-but-the-last chunk of each
window reproduces exactly the offline cut sequence — property-tested
against ``Chunker.split`` on random streams.
"""

from __future__ import annotations

from typing import BinaryIO, Iterator

from repro.chunking.base import Chunk, Chunker
from repro.common.errors import ConfigurationError


class StreamChunker:
    """Incremental chunking over binary streams.

    Args:
        chunker: the underlying (content-defined or fixed) chunker.
        read_size: how many bytes to pull from the stream per read; must
            comfortably exceed the chunker's maximum chunk size so every
            window yields at least one certain cut.
    """

    def __init__(self, chunker: Chunker, read_size: int = 1 << 20):
        max_size = getattr(getattr(chunker, "spec", None), "max_size", None)
        if max_size is None:
            max_size = getattr(chunker, "block_size", None)
        if max_size is not None and read_size < 2 * max_size:
            raise ConfigurationError(
                f"read_size {read_size} too small for max chunk size "
                f"{max_size}; use at least {2 * max_size}"
            )
        self.chunker = chunker
        self.read_size = read_size

    def iter_chunks(self, stream: BinaryIO) -> Iterator[Chunk]:
        """Yield chunks of ``stream`` in order; offsets are stream-global.

        The uncertain tail carried between reads is a zero-copy
        ``memoryview`` of the previous window, so each carried byte is
        copied once (into the next window) instead of twice, and a read
        with no carried tail reuses the read buffer as the window
        outright.
        """
        pending: memoryview | bytes = b""
        base_offset = 0
        while True:
            data = stream.read(self.read_size)
            at_eof = not data
            if pending:
                # Single copy: the carried view and the fresh read land
                # directly in the new window buffer.
                window = b"".join((pending, data))
            else:
                window = data
            if not window:
                return
            cuts = self.chunker.cut_points(window)
            if at_eof:
                # Every cut is final; the last one always lands on
                # len(window), so nothing is carried.
                for start, end in zip([0, *cuts], cuts):
                    yield Chunk(offset=base_offset + start, data=window[start:end])
                return
            # The final cut may shift once more bytes arrive; keep it.
            start = 0
            for end in cuts[:-1]:
                yield Chunk(offset=base_offset + start, data=window[start:end])
                start = end
            pending = memoryview(window)[start:]
            base_offset += start

    def split_stream(self, stream: BinaryIO) -> list[Chunk]:
        """Materialised :meth:`iter_chunks` (small inputs / tests)."""
        return list(self.iter_chunks(stream))
