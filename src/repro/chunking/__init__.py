"""Chunking substrate (§2.1 of the paper).

Deduplication operates on *chunks*: either fixed-size blocks (the VM dataset
uses 4 KB blocks) or variable-size chunks produced by content-defined
chunking, which places boundaries where a rolling hash of the content matches
a pattern so that boundaries survive insertions and deletions ("content
shifts").

Exports:

* :class:`Chunk` / :class:`Chunker` — the common interface.
* :class:`FixedSizeChunker` — fixed-size blocks.
* :class:`RabinChunker` — true Rabin-fingerprint content-defined chunking
  (the algorithm the paper cites, [54]).
* :class:`GearChunker` — gear-hash CDC, a faster modern alternative used by
  the content-level dataset pipeline.
* :class:`Fingerprinter` — cryptographic chunk fingerprints with optional
  truncation (the FSL traces use 48-bit fingerprints).
"""

from repro.chunking.base import Chunk, Chunker, ChunkerSpec
from repro.chunking.fixed import FixedSizeChunker
from repro.chunking.fingerprint import Fingerprinter
from repro.chunking.gear import GearChunker
from repro.chunking.rabin import RabinChunker, RabinRolling
from repro.chunking.stream import StreamChunker

__all__ = [
    "Chunk",
    "Chunker",
    "ChunkerSpec",
    "FixedSizeChunker",
    "Fingerprinter",
    "GearChunker",
    "RabinChunker",
    "RabinRolling",
    "StreamChunker",
]
