"""Rabin-fingerprint content-defined chunking.

This is the chunking algorithm the paper cites ([54], Rabin 1981): a rolling
fingerprint is computed over a sliding window of the input, interpreting
bytes as coefficients of a polynomial over GF(2) reduced modulo a fixed
irreducible polynomial. A chunk boundary is declared whenever the low bits of
the fingerprint match a magic pattern, which makes boundaries depend only on
local content and therefore robust to insertions and deletions elsewhere.

The implementation is a faithful polynomial-arithmetic version (table-driven,
as in LBFS) rather than an approximation; :class:`RabinRolling` exposes the
raw rolling fingerprint so tests can check it against a naive recomputation.

:meth:`RabinChunker.cut_points` is a fast path that exploits two facts the
byte-at-a-time loop ignores:

* no boundary may fall inside the ``min_size`` prefix of a chunk, so after
  each cut the scan can *skip ahead* to ``min_size - window`` and warm the
  rolling state over exactly one window;
* once the window is full, the fingerprint at position ``i`` depends only on
  ``data[i - window + 1 : i + 1]`` — not on the chunk start — so the
  boundary test for *every* position can be evaluated in one vectorized
  pass (GF(2) linearity turns it into XORs of byte-pair table gathers),
  after which cut selection is a walk over the sparse candidate list.

Both fast paths produce boundaries byte-identical to
:meth:`RabinChunker.cut_points_reference`, which stays as the equivalence
oracle for the property tests.
"""

from __future__ import annotations

from bisect import bisect_left
from functools import lru_cache

from repro.chunking import fastscan
from repro.chunking.base import Chunker, ChunkerSpec
from repro.common.errors import ConfigurationError

# Degree-53 irreducible polynomial over GF(2), the classic LBFS choice.
DEFAULT_POLYNOMIAL = 0x3DA3358B4DC173
DEFAULT_WINDOW = 48


def _degree(value: int) -> int:
    return value.bit_length() - 1


def poly_mod(value: int, polynomial: int) -> int:
    """Reduce ``value`` modulo ``polynomial`` in GF(2)[x]."""
    poly_deg = _degree(polynomial)
    while _degree(value) >= poly_deg:
        value ^= polynomial << (_degree(value) - poly_deg)
    return value


class RabinRolling:
    """Rolling Rabin fingerprint over a fixed-size byte window."""

    def __init__(
        self,
        window: int = DEFAULT_WINDOW,
        polynomial: int = DEFAULT_POLYNOMIAL,
    ):
        if window <= 0:
            raise ConfigurationError("window must be positive")
        if polynomial <= 1:
            raise ConfigurationError("polynomial must have positive degree")
        self.window = window
        self.polynomial = polynomial
        self.degree = _degree(polynomial)
        self._fp_mask = (1 << self.degree) - 1
        shift = self.degree - 8
        if shift < 0:
            raise ConfigurationError("polynomial degree must be at least 8")
        self._shift = shift
        # (top << degree) mod P, for reducing the byte shifted out on append.
        self._mod_table = [
            poly_mod(top << self.degree, polynomial) for top in range(256)
        ]
        # (b << 8*window) mod P, for cancelling the byte leaving the window.
        self._out_table = [
            poly_mod(b << (8 * window), polynomial) for b in range(256)
        ]

    def append(self, fingerprint: int, byte: int) -> int:
        """Fingerprint after appending ``byte`` (no window eviction)."""
        top = fingerprint >> self._shift
        return (((fingerprint << 8) | byte) & self._fp_mask) ^ self._mod_table[top]

    def slide(self, fingerprint: int, incoming: int, outgoing: int) -> int:
        """Fingerprint after sliding the window one byte forward."""
        return self.append(fingerprint, incoming) ^ self._out_table[outgoing]

    def fingerprint(self, data: bytes) -> int:
        """Non-rolling fingerprint of ``data`` (naive, for verification)."""
        value = 0
        for byte in data:
            value = (value << 8) | byte
        return poly_mod(value, self.polynomial)


@lru_cache(maxsize=8)
def _rabin_scan_tables(polynomial: int, window: int, mask: int):
    """Byte-pair gather tables for the vectorized boundary scan.

    The windowed fingerprint at position ``i`` is the GF(2) sum
    ``XOR_m (data[i - m] << 8m) mod P`` over ``m in [0, window)``. Masked
    to the boundary-test bits, consecutive byte positions pair into one
    16-bit-keyed table each (key ``(data[j] << 8) | data[j - 1]``), so the
    whole test stream needs only ``window // 2`` gathers (plus one 256-way
    gather when the window is odd).
    """
    numpy = fastscan.numpy
    dtype = fastscan.mask_dtype(mask)
    byte_tables = [
        numpy.array(
            [poly_mod(b << (8 * m), polynomial) & mask for b in range(256)],
            dtype=numpy.uint32,
        )
        for m in range(window)
    ]
    high = numpy.arange(65536, dtype=numpy.uint32) >> 8
    low = numpy.arange(65536, dtype=numpy.uint32) & 255
    pair_tables = [
        # Key high byte = the later position (offset 2t), low = 2t + 1.
        (byte_tables[2 * t][high] ^ byte_tables[2 * t + 1][low]).astype(dtype)
        for t in range(window // 2)
    ]
    tail_table = (
        byte_tables[window - 1].astype(dtype) if window % 2 else None
    )
    return pair_tables, tail_table


class RabinChunker(Chunker):
    """Content-defined chunking driven by a rolling Rabin fingerprint.

    A boundary is placed at position ``i`` (cutting *after* byte ``i``) when
    at least ``spec.min_size`` bytes have accumulated and
    ``fingerprint & spec.mask == magic``; a cut is forced at
    ``spec.max_size``. ``magic`` defaults to ``spec.mask`` (all ones) so that
    all-zero regions, whose fingerprint is zero, do not cut at every byte.
    """

    def __init__(
        self,
        spec: ChunkerSpec | None = None,
        window: int = DEFAULT_WINDOW,
        polynomial: int = DEFAULT_POLYNOMIAL,
        magic: int | None = None,
    ):
        self.spec = spec or ChunkerSpec(
            min_size=2048, avg_size=8192, max_size=65536
        )
        self.rolling = RabinRolling(window=window, polynomial=polynomial)
        self.magic = self.spec.mask if magic is None else magic
        if self.magic > self.spec.mask:
            raise ConfigurationError("magic must fit within the average-size mask")

    def cut_points(self, data: bytes) -> list[int]:
        length = len(data)
        if not length:
            return []
        window = self.rolling.window
        min_size = self.spec.min_size
        # The skip-ahead warm-up replays exactly one full window before the
        # first eligible boundary, which requires the window (plus the byte
        # it evicts) to fit inside the min-size prefix.
        if min_size <= window:
            return self.cut_points_reference(data)
        if length <= min_size:
            # Single short chunk: the only possible cut is at the end.
            return [length]
        if fastscan.numpy is not None:
            return self._cut_points_vectorized(data)
        return self._cut_points_skip_ahead(data)

    # -- fast paths -----------------------------------------------------------

    def _cut_points_vectorized(self, data: bytes) -> list[int]:
        """Whole-buffer candidate scan (numpy), then the cut walk."""
        numpy = fastscan.numpy
        rolling = self.rolling
        window = rolling.window
        spec = self.spec
        mask = spec.mask
        pair_tables, tail_table = _rabin_scan_tables(
            rolling.polynomial, window, mask
        )
        length = len(data)
        keys = fastscan.pair_key_stream(data)
        # tested[k] = masked fingerprint at position i = k + window - 1
        # (positions with a full window; earlier ones are never tested
        # because min_size > window).
        span = length - window + 1
        tested = numpy.zeros(span, dtype=pair_tables[0].dtype)
        for t, table in enumerate(pair_tables):
            offset = window - 2 * t - 2
            tested ^= table[keys[offset : offset + span]]
        if tail_table is not None:
            raw = numpy.frombuffer(data, dtype=numpy.uint8)
            tested ^= tail_table[raw[:span]]
        candidates = (
            numpy.flatnonzero(tested == self.magic) + (window - 1)
        ).tolist()

        min_size = spec.min_size
        max_size = spec.max_size
        num_candidates = len(candidates)
        cuts: list[int] = []
        start = 0
        while start < length:
            if length - start <= min_size:
                cuts.append(length)
                break
            limit = start + max_size
            if limit > length:
                limit = length
            index = bisect_left(candidates, start + min_size - 1)
            if index < num_candidates and candidates[index] < limit:
                cut = candidates[index] + 1
            else:
                # No content boundary: forced cut at max_size, or the tail.
                cut = limit
            cuts.append(cut)
            start = cut
        return cuts

    def _cut_points_skip_ahead(self, data: bytes) -> list[int]:
        """Pure-Python fallback: per-chunk skip-ahead scan."""
        spec = self.spec
        rolling = self.rolling
        window = rolling.window
        min_size = spec.min_size
        max_size = spec.max_size
        mask = spec.mask
        magic = self.magic
        mod_table = rolling._mod_table
        out_table = rolling._out_table
        fp_mask = rolling._fp_mask
        shift = rolling._shift

        cuts: list[int] = []
        length = len(data)
        start = 0
        while start < length:
            if length - start <= min_size:
                # Tail no longer than min_size: the only possible cut is
                # at the end of the data either way.
                cuts.append(length)
                break
            limit = start + max_size
            if limit > length:
                limit = length
            # First eligible boundary position (cut after this byte gives a
            # min_size chunk). The fingerprint there covers only the last
            # `window` bytes, so warm the rolling state over exactly that
            # window and skip the min-size prefix entirely.
            first = start + min_size - 1
            fingerprint = 0
            for byte in data[first - window : first]:
                fingerprint = (
                    ((fingerprint << 8) | byte) & fp_mask
                ) ^ mod_table[fingerprint >> shift]
            cut = 0
            pos = first
            for byte, outgoing in zip(
                data[first:limit], data[first - window : limit - window]
            ):
                fingerprint = (
                    (((fingerprint << 8) | byte) & fp_mask)
                    ^ mod_table[fingerprint >> shift]
                    ^ out_table[outgoing]
                )
                pos += 1
                if fingerprint & mask == magic:
                    cut = pos
                    break
            if not cut:
                cut = limit
            cuts.append(cut)
            start = cut
        return cuts

    # -- reference ------------------------------------------------------------

    def cut_points_reference(self, data: bytes) -> list[int]:
        """Byte-at-a-time reference implementation (the equivalence oracle
        for :meth:`cut_points`, and the fallback when the rolling window
        does not fit inside the min-size prefix)."""
        spec = self.spec
        rolling = self.rolling
        window = rolling.window
        append = rolling.append
        out_table = rolling._out_table
        mask = spec.mask
        magic = self.magic

        cuts: list[int] = []
        length = len(data)
        fingerprint = 0
        chunk_len = 0
        for pos in range(length):
            fingerprint = append(fingerprint, data[pos])
            if chunk_len >= window:
                fingerprint ^= out_table[data[pos - window]]
            chunk_len += 1
            if chunk_len >= spec.min_size and (fingerprint & mask) == magic:
                cuts.append(pos + 1)
                fingerprint = 0
                chunk_len = 0
            elif chunk_len >= spec.max_size:
                cuts.append(pos + 1)
                fingerprint = 0
                chunk_len = 0
        if length and (not cuts or cuts[-1] != length):
            cuts.append(length)
        return cuts

    def __repr__(self) -> str:
        return (
            f"RabinChunker(min={self.spec.min_size}, avg={self.spec.avg_size}, "
            f"max={self.spec.max_size}, window={self.rolling.window})"
        )
