"""Rabin-fingerprint content-defined chunking.

This is the chunking algorithm the paper cites ([54], Rabin 1981): a rolling
fingerprint is computed over a sliding window of the input, interpreting
bytes as coefficients of a polynomial over GF(2) reduced modulo a fixed
irreducible polynomial. A chunk boundary is declared whenever the low bits of
the fingerprint match a magic pattern, which makes boundaries depend only on
local content and therefore robust to insertions and deletions elsewhere.

The implementation is a faithful polynomial-arithmetic version (table-driven,
as in LBFS) rather than an approximation; :class:`RabinRolling` exposes the
raw rolling fingerprint so tests can check it against a naive recomputation.
"""

from __future__ import annotations

from repro.chunking.base import Chunker, ChunkerSpec
from repro.common.errors import ConfigurationError

# Degree-53 irreducible polynomial over GF(2), the classic LBFS choice.
DEFAULT_POLYNOMIAL = 0x3DA3358B4DC173
DEFAULT_WINDOW = 48


def _degree(value: int) -> int:
    return value.bit_length() - 1


def poly_mod(value: int, polynomial: int) -> int:
    """Reduce ``value`` modulo ``polynomial`` in GF(2)[x]."""
    poly_deg = _degree(polynomial)
    while _degree(value) >= poly_deg:
        value ^= polynomial << (_degree(value) - poly_deg)
    return value


class RabinRolling:
    """Rolling Rabin fingerprint over a fixed-size byte window."""

    def __init__(
        self,
        window: int = DEFAULT_WINDOW,
        polynomial: int = DEFAULT_POLYNOMIAL,
    ):
        if window <= 0:
            raise ConfigurationError("window must be positive")
        if polynomial <= 1:
            raise ConfigurationError("polynomial must have positive degree")
        self.window = window
        self.polynomial = polynomial
        self.degree = _degree(polynomial)
        self._fp_mask = (1 << self.degree) - 1
        shift = self.degree - 8
        if shift < 0:
            raise ConfigurationError("polynomial degree must be at least 8")
        self._shift = shift
        # (top << degree) mod P, for reducing the byte shifted out on append.
        self._mod_table = [
            poly_mod(top << self.degree, polynomial) for top in range(256)
        ]
        # (b << 8*window) mod P, for cancelling the byte leaving the window.
        self._out_table = [
            poly_mod(b << (8 * window), polynomial) for b in range(256)
        ]

    def append(self, fingerprint: int, byte: int) -> int:
        """Fingerprint after appending ``byte`` (no window eviction)."""
        top = fingerprint >> self._shift
        return (((fingerprint << 8) | byte) & self._fp_mask) ^ self._mod_table[top]

    def slide(self, fingerprint: int, incoming: int, outgoing: int) -> int:
        """Fingerprint after sliding the window one byte forward."""
        return self.append(fingerprint, incoming) ^ self._out_table[outgoing]

    def fingerprint(self, data: bytes) -> int:
        """Non-rolling fingerprint of ``data`` (naive, for verification)."""
        value = 0
        for byte in data:
            value = (value << 8) | byte
        return poly_mod(value, self.polynomial)


class RabinChunker(Chunker):
    """Content-defined chunking driven by a rolling Rabin fingerprint.

    A boundary is placed at position ``i`` (cutting *after* byte ``i``) when
    at least ``spec.min_size`` bytes have accumulated and
    ``fingerprint & spec.mask == magic``; a cut is forced at
    ``spec.max_size``. ``magic`` defaults to ``spec.mask`` (all ones) so that
    all-zero regions, whose fingerprint is zero, do not cut at every byte.
    """

    def __init__(
        self,
        spec: ChunkerSpec | None = None,
        window: int = DEFAULT_WINDOW,
        polynomial: int = DEFAULT_POLYNOMIAL,
        magic: int | None = None,
    ):
        self.spec = spec or ChunkerSpec(
            min_size=2048, avg_size=8192, max_size=65536
        )
        self.rolling = RabinRolling(window=window, polynomial=polynomial)
        self.magic = self.spec.mask if magic is None else magic
        if self.magic > self.spec.mask:
            raise ConfigurationError("magic must fit within the average-size mask")

    def cut_points(self, data: bytes) -> list[int]:
        spec = self.spec
        rolling = self.rolling
        window = rolling.window
        append = rolling.append
        out_table = rolling._out_table
        mask = spec.mask
        magic = self.magic

        cuts: list[int] = []
        length = len(data)
        start = 0
        fingerprint = 0
        chunk_len = 0
        for pos in range(length):
            fingerprint = append(fingerprint, data[pos])
            if chunk_len >= window:
                fingerprint ^= out_table[data[pos - window]]
            chunk_len += 1
            if chunk_len >= spec.min_size and (fingerprint & mask) == magic:
                cuts.append(pos + 1)
                start = pos + 1
                fingerprint = 0
                chunk_len = 0
            elif chunk_len >= spec.max_size:
                cuts.append(pos + 1)
                start = pos + 1
                fingerprint = 0
                chunk_len = 0
        if start < length or (length and not cuts):
            cuts.append(length)
        return cuts

    def __repr__(self) -> str:
        return (
            f"RabinChunker(min={self.spec.min_size}, avg={self.spec.avg_size}, "
            f"max={self.spec.max_size}, window={self.rolling.window})"
        )
