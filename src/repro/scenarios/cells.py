"""Cell executors: one function per cell kind, runnable in any process.

``execute_cell`` is the single entry point the runner fans out (it is a
top-level function, so it pickles cleanly into ``ProcessPoolExecutor``
workers).  Each kind's executor resolves its workload through the memoised
canonical registry (:mod:`repro.analysis.workloads`) — a worker generates a
dataset at most once, no matter how many of its cells it executes — and
returns rows of plain ``(field, value)`` pairs, which survive the JSON
round-trip through the on-disk result cache bit-for-bit.

Rounding happens here (5 decimals for inference rates, 4 for storage and
metadata figures, matching the pre-engine figure drivers) so cached and
freshly-computed rows are byte-identical.
"""

from __future__ import annotations

import importlib
from typing import Callable

from repro.common.errors import ConfigurationError
from repro.common.units import MiB
from repro.scenarios.spec import (
    ATTACK,
    FREQUENCY,
    METADATA,
    STORAGE_SAVING,
    Cell,
    Tags,
)

FieldRows = tuple[Tags, ...]
CellExecutor = Callable[[dict], FieldRows]

# The attacks build_attack knows; CLI validation derives from this.
KNOWN_ATTACKS = ("basic", "locality", "advanced")


def build_attack(name: str, u: int, v: int, w: int):
    """Instantiate a paper attack by CLI-friendly name.

    Args:
        name: one of :data:`KNOWN_ATTACKS` (``"basic"`` ignores the
            locality parameters).
        u / v / w: the locality-attack knobs of §4 (seed pairs, accepted
            co-occurrence pairs per neighbor analysis, queue bound).

    Returns:
        A ready-to-run :class:`~repro.attacks.base.Attack`.

    Raises:
        ConfigurationError: the name is not a known attack.
    """
    from repro.attacks.advanced import AdvancedLocalityAttack
    from repro.attacks.basic import BasicAttack
    from repro.attacks.locality import LocalityAttack

    if name == "basic":
        return BasicAttack()
    if name == "locality":
        return LocalityAttack(u=u, v=v, w=w)
    if name == "advanced":
        return AdvancedLocalityAttack(u=u, v=v, w=w)
    raise ConfigurationError(
        f"unknown attack {name!r}; choose from {sorted(KNOWN_ATTACKS)}"
    )


def _encrypted(dataset: str, scheme: str):
    # Scheme specs pass through verbatim (the pipeline parses plain
    # names and parameterized "obfuscate:t" specs alike).
    from repro.analysis.workloads import encrypted_series

    return encrypted_series(dataset, scheme)


def _run_attack(params: dict) -> FieldRows:
    """One evaluator run: the ``attack`` kind behind Figs. 4–10."""
    from repro.attacks.evaluation import AttackEvaluator

    evaluator = AttackEvaluator(_encrypted(params["dataset"], params["scheme"]))
    attack = build_attack(
        params["attack"], params["u"], params["v"], params["w"]
    )
    report = evaluator.run(
        attack,
        auxiliary=params["auxiliary"],
        target=params["target"],
        leakage_rate=params["leakage_rate"],
        seed=params.get("seed", 0),
    )
    return (
        (
            ("auxiliary", report.auxiliary_label),
            ("target", report.target_label),
            ("inference_rate", round(report.inference_rate, 5)),
            ("precision", round(report.precision, 5)),
            ("correct_pairs", report.correct_pairs),
            ("inferred_pairs", report.inferred_pairs),
            ("unique_ciphertext_chunks", report.unique_ciphertext_chunks),
            ("leaked_pairs", report.leaked_pairs),
            ("iterations", report.iterations),
        ),
    )


def _run_frequency(params: dict) -> FieldRows:
    """Frequency-skew statistics of one dataset (Fig. 1's row)."""
    from repro.analysis.workloads import series_by_name
    from repro.datasets.stats import frequency_cdf, series_frequencies

    series = series_by_name(params["dataset"])
    cdf = frequency_cdf(series_frequencies(series))
    p99 = cdf.frequencies[int(0.99 * (len(cdf.frequencies) - 1))]
    return (
        (
            ("unique_chunks", len(cdf.frequencies)),
            ("frac_below_10", round(cdf.fraction_below(10), 4)),
            ("frac_below_100", round(cdf.fraction_below(100), 4)),
            ("p50_freq", cdf.median_frequency),
            ("p99_freq", p99),
            ("max_freq", cdf.max_frequency),
        ),
    )


def _run_storage_saving(params: dict) -> FieldRows:
    """Cumulative storage saving per backup under one scheme (Fig. 11);
    one row per backup in series order."""
    from repro.datasets.stats import storage_savings

    encrypted = _encrypted(params["dataset"], params["scheme"])
    savings = storage_savings(
        [backup.ciphertext for backup in encrypted.backups]
    )
    return tuple(
        (("backup", backup.label), ("storage_saving", round(saving, 4)))
        for backup, saving in zip(encrypted.backups, savings)
    )


def _run_metadata(params: dict) -> FieldRows:
    """DDFS metadata access per backup (Figs. 13/14).  One cell covers a
    *whole series* — the engine is stateful across backups, so the cell
    is the unit that keeps cache/Bloom/index state coherent."""
    from repro.storage.ddfs import DDFSEngine

    encrypted = _encrypted(params["dataset"], params["scheme"])
    # All engine knobs must come through cell params (specs attach them
    # via `extra`) so they are part of the cache identity — no silent
    # defaults here that could diverge from the spec side.
    engine = DDFSEngine(
        cache_budget_bytes=params["cache_budget_bytes"],
        bloom_capacity=params["bloom_capacity"],
        container_size=params["container_size"],
    )
    rows = []
    for backup in encrypted.backups:
        meta = engine.process_backup(backup.ciphertext).metadata
        rows.append(
            (
                ("backup", backup.label),
                ("update_MiB", round(meta.update_bytes / MiB, 4)),
                ("index_MiB", round(meta.index_bytes / MiB, 4)),
                ("loading_MiB", round(meta.loading_bytes / MiB, 4)),
                ("total_MiB", round(meta.total_bytes / MiB, 4)),
            )
        )
    return tuple(rows)


CELL_EXECUTORS: dict[str, CellExecutor] = {
    ATTACK: _run_attack,
    FREQUENCY: _run_frequency,
    STORAGE_SAVING: _run_storage_saving,
    METADATA: _run_metadata,
}

# Per-kind warmers: called by warm_workloads in the parent process before
# workers fork, for kinds whose cells share expensive state (the service
# attack cells share one simulated trace, for example).
CELL_WARMERS: dict[str, Callable[[dict], None]] = {}

# Kinds registered by subsystems on import.  ensure_cell_kind imports the
# owning module on first use, so specs and cached cells can name these
# kinds without the caller importing the subsystem — including inside
# spawned worker processes, which start from a fresh interpreter.
_LAZY_KIND_MODULES = {
    "service": "repro.service.cells",
    "service_attack": "repro.service.cells",
    "serve_net": "repro.service.cells",
    "cluster": "repro.cluster.cells",
    "columnar_attack": "repro.attacks.sharded",
    "defense_frontier": "repro.analysis.frontier",
}


def register_cell_kind(
    kind: str,
    executor: CellExecutor,
    warmer: Callable[[dict], None] | None = None,
) -> None:
    """Register an additional cell kind (tests and other subsystems).

    ``warmer`` optionally pre-materializes state shared by cells of this
    kind, in the parent process, before workers fork (see
    :func:`warm_workloads`).
    """
    CELL_EXECUTORS[kind] = executor
    if warmer is not None:
        CELL_WARMERS[kind] = warmer


def ensure_cell_kind(kind: str) -> bool:
    """Whether ``kind`` is executable, importing its module if deferred.

    Args:
        kind: the cell kind name.

    Returns:
        True once an executor for ``kind`` is registered; importing the
        owning module from :data:`_LAZY_KIND_MODULES` as a side effect
        (safe in spawned workers, which start from a fresh interpreter).
    """
    if kind not in CELL_EXECUTORS:
        module_name = _LAZY_KIND_MODULES.get(kind)
        if module_name is not None:
            importlib.import_module(module_name)
    return kind in CELL_EXECUTORS


def known_cell_kinds() -> list[str]:
    """Every nameable kind: registered executors plus deferred kinds."""
    return sorted(set(CELL_EXECUTORS) | set(_LAZY_KIND_MODULES))


def warm_workloads(cells) -> None:
    """Materialize every workload the cells touch, in the calling process.

    The runner calls this before forking workers: with the fork start
    method the children inherit the parent's memoised series, so no worker
    pays dataset generation or encryption for work the parent already did.
    Kinds with a registered warmer (see :func:`register_cell_kind`) warm
    through it instead; kinds with neither a ``dataset`` param nor a
    warmer are skipped.
    """
    from repro.analysis.workloads import series_by_name

    for cell in cells:
        params = dict(cell.params)
        ensure_cell_kind(cell.kind)
        warmer = CELL_WARMERS.get(cell.kind)
        if warmer is not None:
            warmer(params)
            continue
        dataset = params.get("dataset")
        if not isinstance(dataset, str):
            continue
        scheme = params.get("scheme")
        if isinstance(scheme, str):
            _encrypted(dataset, scheme)
        else:
            series_by_name(dataset)


def execute_cell(cell: Cell) -> FieldRows:
    """Run one cell in the current process.

    This is the single entry point the runner submits to workers (a
    top-level function, so it pickles cleanly).

    Args:
        cell: the cell to execute; its params fully determine the
            computation.

    Returns:
        The cell's rows as ``(field, value)`` tuples — plain primitives
        that survive the JSON round-trip through the result cache
        bit-for-bit.

    Raises:
        ConfigurationError: the cell names an unknown kind.
    """
    if not ensure_cell_kind(cell.kind):
        raise ConfigurationError(f"unknown cell kind {cell.kind!r}")
    return CELL_EXECUTORS[cell.kind](dict(cell.params))
