"""Declarative scenario engine: specs → cells → (parallel, cached) runs.

``ScenarioSpec`` declares an experiment grid and expands into atomic
``Cell``s; ``Runner`` executes them serially or across a process pool and
merges rows back in spec order; ``ResultCache`` content-addresses completed
cells on disk.  Every figure driver in :mod:`repro.analysis.figures` and
the ``freqdedup sweep`` CLI are built on this package.
"""

from repro.scenarios.cache import CACHE_VERSION, ResultCache, cell_key
from repro.scenarios.cells import (
    CELL_EXECUTORS,
    CELL_WARMERS,
    KNOWN_ATTACKS,
    build_attack,
    ensure_cell_kind,
    execute_cell,
    known_cell_kinds,
    register_cell_kind,
    warm_workloads,
)
from repro.scenarios.runner import (
    CellResult,
    Runner,
    RunStats,
    ScenarioRun,
    rows_from,
    run_scenario,
)
from repro.scenarios.spec import (
    Anchor,
    AttackParams,
    Cell,
    Scenario,
    ScenarioSpec,
)

__all__ = [
    "Anchor",
    "AttackParams",
    "CACHE_VERSION",
    "CELL_EXECUTORS",
    "CELL_WARMERS",
    "Cell",
    "CellResult",
    "KNOWN_ATTACKS",
    "ResultCache",
    "RunStats",
    "Runner",
    "Scenario",
    "ScenarioRun",
    "ScenarioSpec",
    "build_attack",
    "cell_key",
    "ensure_cell_kind",
    "execute_cell",
    "known_cell_kinds",
    "register_cell_kind",
    "rows_from",
    "run_scenario",
    "warm_workloads",
]
