"""Cache-aware scenario runner: serial baseline + process-pool fan-out.

The runner takes the cells a :class:`~repro.scenarios.spec.Scenario`
expands to and produces their rows **in spec order**, whatever executes
where: results are merged back positionally, so the output is
byte-identical at ``jobs=1`` and ``jobs=N`` (the figure benches assert
this).  Three layers of work avoidance stack:

1. **Result cache** — cells whose content hash is already on disk
   (:class:`~repro.scenarios.cache.ResultCache`) are never executed;
   completed cells are persisted as they finish, so an interrupted run
   resumes where it stopped.
2. **In-run deduplication** — identical cells appearing in several specs
   (figures share anchor pairs) execute once per run.
3. **Per-process workload memoisation** — executors resolve datasets and
   encrypted series through :mod:`repro.analysis.workloads`' ``lru_cache``,
   so each worker process regenerates a given workload at most once.

Determinism does not depend on scheduling: every cell carries its own
explicit seed (specs thread it through), and leakage sampling already
derives an independent stream per (seed, target, rate) via
:func:`repro.common.rng.rng_from` — there is no shared RNG state to race.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro import faults, obs
from repro.faults import WorkerCrashError
from repro.scenarios.cache import ResultCache, cell_key
from repro.scenarios.cells import execute_cell, warm_workloads
from repro.scenarios.spec import Cell, Scenario, Tags

_log = obs.get_logger("runner")

#: A cell slower than this multiple of the batch mean is logged as a
#: straggler (process mode only — serial runs have no co-runners to lag).
_STRAGGLER_FACTOR = 2.0

#: How many times a crashed cell is re-run before the scenario gives up.
_CELL_RETRIES = 3


@dataclass(frozen=True)
class CellResult:
    """One cell's computed rows plus where they came from."""

    cell: Cell
    rows: tuple[Tags, ...]
    source: str = "executed"  # "executed" | "cache" | "duplicate"


@dataclass
class RunStats:
    """Execution accounting for one ``run_cells`` call."""

    total: int = 0
    executed: int = 0
    cache_hits: int = 0
    duplicates: int = 0

    def note(self, source: str) -> None:
        self.total += 1
        obs.counter("runner.cells", source=source)
        if source == "executed":
            self.executed += 1
        elif source == "cache":
            self.cache_hits += 1
        else:
            self.duplicates += 1


@dataclass
class ScenarioRun:
    """The outcome of :func:`run_scenario`: assembled rows + provenance."""

    scenario: Scenario
    rows: list[list[object]] = field(default_factory=list)
    results: list[CellResult] = field(default_factory=list)
    stats: RunStats = field(default_factory=RunStats)


def rows_from(
    results: Iterable[CellResult], columns: Sequence[str]
) -> list[list[object]]:
    """Assemble output rows: computed fields first, cell tags as fallback."""
    rows: list[list[object]] = []
    for result in results:
        tag_map = dict(result.cell.tags)
        for fields in result.rows:
            field_map = dict(fields)
            row: list[object] = []
            for column in columns:
                if column in field_map:
                    row.append(field_map[column])
                elif column in tag_map:
                    row.append(tag_map[column])
                else:
                    raise KeyError(
                        f"column {column!r} is neither computed by "
                        f"{result.cell.kind!r} cells nor tagged on the spec"
                    )
            rows.append(row)
    return rows


def _record_cell_metrics(cell: Cell, rows, elapsed: float) -> None:
    """The per-cell registry marks, identical on the serial and process
    paths so stable snapshots match at any ``jobs``."""
    obs.counter("runner.cells_executed", kind=cell.kind)
    obs.counter("runner.rows", len(rows), kind=cell.kind)
    obs.observe("runner.cell_s", elapsed, kind=cell.kind)


def _run_cell_job(cell: Cell, crash: str | None = None):
    """Worker-side cell execution; returns ``(rows, metrics snapshot)``.

    The fork-inherited global registry is cleared first, so the snapshot
    shipped back contains exactly this cell's recordings (including
    metrics the cell body itself records, e.g. the sharded COUNT's) —
    the parent merge then sees the same stable content a serial run
    records directly.  Pool workers run jobs sequentially, so clearing
    per job cannot race another cell in this process.

    ``crash`` is the parent's ``cell.crash`` fault decision, made at
    submission time so per-rule state never diverges across forks:
    ``"exit"`` dies like a segfault (breaking the pool), any other mode
    raises the detectable :class:`~repro.faults.WorkerCrashError`.
    """
    if crash is not None:
        if crash == "exit":
            os._exit(3)
        raise WorkerCrashError(f"injected cell crash ({cell.kind})")
    observing = obs.enabled()
    if observing:
        obs.registry().clear()
    started = time.perf_counter()
    rows = execute_cell(cell)
    if not observing:
        return rows, None
    _record_cell_metrics(cell, rows, time.perf_counter() - started)
    return rows, obs.snapshot()


class Runner:
    """Executes cells through a pluggable executor and merges in order.

    Args:
        jobs: worker processes; ``1`` (default) runs serially in-process,
            sharing the caller's memoised workloads.
        cache: a :class:`ResultCache`, a directory path to open one in, or
            ``None`` to disable on-disk caching.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: ResultCache | str | os.PathLike | None = None,
    ):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        if cache is not None and not isinstance(cache, ResultCache):
            cache = ResultCache(cache)
        self.cache = cache

    def run_cells(
        self, cells: Sequence[Cell], stats: RunStats | None = None
    ) -> list[CellResult]:
        """Run ``cells``, returning one result per cell in input order."""
        stats = stats if stats is not None else RunStats()
        results: list[CellResult | None] = [None] * len(cells)

        # Layer 1+2: satisfy from the on-disk cache, dedupe the remainder.
        # The content hash is computed once per cell and threaded through
        # cache lookup, dedup, and persistence.
        pending: dict[str, list[int]] = {}
        pending_cells: dict[str, Cell] = {}
        for index, cell in enumerate(cells):
            key = cell_key(cell)
            if self.cache is not None:
                rows = self.cache.load(cell, key=key)
                if rows is not None:
                    results[index] = CellResult(cell, rows, source="cache")
                    stats.note("cache")
                    continue
            siblings = pending.setdefault(key, [])
            if siblings:
                stats.note("duplicate")
            else:
                pending_cells[key] = cell
                stats.note("executed")
            siblings.append(index)

        if pending:
            computed = self._execute(pending_cells)
            for key, rows in computed.items():
                first, *rest = pending[key]
                results[first] = CellResult(cells[first], rows)
                for index in rest:
                    results[index] = CellResult(
                        cells[index], rows, source="duplicate"
                    )
        return [result for result in results if result is not None]

    # -- executors ----------------------------------------------------------

    def _execute(
        self, keyed_cells: dict[str, Cell]
    ) -> dict[str, tuple[Tags, ...]]:
        if self.jobs == 1 or len(keyed_cells) == 1:
            computed = {}
            for key, cell in keyed_cells.items():
                _log.info("cell start", extra={"kind": cell.kind})
                self._survive_serial_crashes(cell)
                started = time.perf_counter()
                with obs.span("runner.cell", kind=cell.kind):
                    rows = execute_cell(cell)
                elapsed = time.perf_counter() - started
                if obs.enabled():
                    _record_cell_metrics(cell, rows, elapsed)
                _log.info(
                    "cell done",
                    extra={"kind": cell.kind, "dur_s": round(elapsed, 6)},
                )
                computed[key] = rows
                self._persist(cell, rows, key=key)
            return computed
        return self._execute_processes(keyed_cells)

    @staticmethod
    def _survive_serial_crashes(cell: Cell) -> None:
        """The serial path's ``cell.crash`` seam: there is no worker to
        kill in-process, so every crash mode degrades to a detectable
        pre-execution failure — retried with the same cap and counters
        as the pool path, keeping retry accounting identical."""
        for attempt in range(_CELL_RETRIES + 1):
            action = faults.fire("cell.crash", kind=cell.kind)
            if action is None:
                return
            if attempt == _CELL_RETRIES:
                raise WorkerCrashError(
                    f"cell {cell.kind} crashed {attempt + 1} times; giving up"
                )
            obs.counter("faults.retries", site="cell.crash")

    def _submit_cell(self, executor: ProcessPoolExecutor, cell: Cell):
        """Submit one cell, consulting the ``cell.crash`` site in the
        parent (see :func:`_run_cell_job` for why)."""
        action = faults.fire("cell.crash", kind=cell.kind)
        crash = None if action is None else str(action.get("mode", "raise"))
        return executor.submit(_run_cell_job, cell, crash)

    def _execute_processes(
        self, keyed_cells: dict[str, Cell]
    ) -> dict[str, tuple[Tags, ...]]:
        # The engine's worker-side economics (parent-warmed workloads,
        # kinds registered at runtime) rely on fork semantics; pin the
        # start method rather than trusting the platform default, which
        # is spawn on macOS and forkserver on new Python versions.  Where
        # fork does not exist (Windows) workers fall back to the default
        # and simply regenerate workloads themselves.
        if "fork" in multiprocessing.get_all_start_methods():
            context = multiprocessing.get_context("fork")
            warm_workloads(keyed_cells.values())
        else:
            context = None
        computed: dict[str, tuple[Tags, ...]] = {}
        workers = min(self.jobs, len(keyed_cells))
        durations: dict[str, float] = {}
        attempts: dict[str, int] = {}
        deferred: list[str] = []
        executor = ProcessPoolExecutor(max_workers=workers, mp_context=context)
        try:
            submitted = time.perf_counter()
            futures = {
                self._submit_cell(executor, cell): key
                for key, cell in keyed_cells.items()
            }
            _log.info(
                "batch start",
                extra={"cells": len(futures), "workers": workers},
            )
            first_error: BaseException | None = None
            while futures or deferred:
                if not futures:
                    # A hard worker death poisoned the pool; it is fully
                    # drained now, so rebuild and resubmit every cell it
                    # took down.
                    executor.shutdown(wait=False, cancel_futures=True)
                    executor = ProcessPoolExecutor(
                        max_workers=workers, mp_context=context
                    )
                    futures = {
                        self._submit_cell(executor, keyed_cells[key]): key
                        for key in deferred
                    }
                    deferred = []
                    continue
                done, _ = wait(set(futures), return_when=FIRST_COMPLETED)
                for future in done:
                    key = futures.pop(future)
                    try:
                        rows, snapshot = future.result()
                    except (WorkerCrashError, BrokenProcessPool) as error:
                        # A crashed worker is survivable: re-run the
                        # cell up to the retry cap.  A hard exit breaks
                        # the whole pool, so its victims are deferred
                        # until the pool drains and is rebuilt.
                        count = attempts.get(key, 0) + 1
                        attempts[key] = count
                        if count > _CELL_RETRIES:
                            if first_error is None:
                                first_error = error
                            continue
                        obs.counter("faults.retries", site="cell.crash")
                        _log.warning(
                            "cell crashed; retrying",
                            extra={
                                "kind": keyed_cells[key].kind,
                                "attempt": count,
                            },
                        )
                        if isinstance(error, BrokenProcessPool):
                            deferred.append(key)
                        else:
                            try:
                                futures[
                                    self._submit_cell(
                                        executor, keyed_cells[key]
                                    )
                                ] = key
                            except BrokenProcessPool:
                                deferred.append(key)
                        continue
                    except BaseException as error:  # noqa: BLE001
                        # Keep persisting the cells that did complete —
                        # the retry then resumes instead of recomputing
                        # them — and re-raise after the pool drains.
                        if first_error is None:
                            first_error = error
                        continue
                    obs.merge_snapshot(snapshot)
                    # Parent-side wall time since submission: includes
                    # pool queueing, which is what straggler detection
                    # should see.
                    elapsed = time.perf_counter() - submitted
                    durations[key] = elapsed
                    _log.info(
                        "cell done",
                        extra={
                            "kind": keyed_cells[key].kind,
                            "dur_s": round(elapsed, 6),
                            "pending": len(futures),
                        },
                    )
                    computed[key] = rows
                    # Persist as results arrive, not at the end: an
                    # interrupted run keeps every completed cell.
                    self._persist(keyed_cells[key], rows, key=key)
            if first_error is not None:
                raise first_error
        finally:
            executor.shutdown(wait=False, cancel_futures=True)
        if len(durations) > 1:
            mean = sum(durations.values()) / len(durations)
            for key, elapsed in durations.items():
                if elapsed > _STRAGGLER_FACTOR * mean:
                    obs.counter("runner.stragglers", stable=False)
                    _log.warning(
                        "straggler cell",
                        extra={
                            "kind": keyed_cells[key].kind,
                            "dur_s": round(elapsed, 6),
                            "mean_s": round(mean, 6),
                        },
                    )
        return computed

    def _persist(
        self, cell: Cell, rows: tuple[Tags, ...], key: str | None = None
    ) -> None:
        if self.cache is not None:
            self.cache.store(cell, rows, key=key)


def run_scenario(
    scenario: Scenario,
    jobs: int = 1,
    cache: ResultCache | str | os.PathLike | None = None,
    lengths: Mapping[str, int] | None = None,
) -> ScenarioRun:
    """Expand, execute and assemble one scenario."""
    runner = Runner(jobs=jobs, cache=cache)
    run = ScenarioRun(scenario=scenario)
    cells = scenario.cells(lengths)
    run.results = runner.run_cells(cells, stats=run.stats)
    run.rows = rows_from(run.results, scenario.columns)
    return run
