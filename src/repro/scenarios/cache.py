"""On-disk result cache: cells are content-addressed by what they compute.

A cell's cache key hashes its kind, its full parameter set and a format
version — everything that determines the computed rows, and nothing that
doesn't (row-label tags are excluded, so the same computation reached from
two different figures shares one entry).  Bump :data:`CACHE_VERSION`
whenever an executor's output format or semantics change; stale entries
then miss instead of serving wrong rows.

Entries are one JSON file per cell, written atomically (temp file +
``os.replace``) so concurrent runners and interrupted runs can never leave
a half-written entry that later loads: a torn or corrupt file is treated
as a miss and recomputed.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path

from repro.scenarios.spec import Cell, Tags

CACHE_VERSION = 1

_PRIMITIVES = (str, int, float, bool, type(None))


def cell_key(cell: Cell) -> str:
    """Content hash of a cell's computation (hex, stable across processes)."""
    for _, value in cell.params:
        if not isinstance(value, _PRIMITIVES):
            raise TypeError(
                f"cell params must be JSON primitives, got {value!r}"
            )
    payload = json.dumps(
        {
            "version": CACHE_VERSION,
            "kind": cell.kind,
            "params": [[key, value] for key, value in cell.params],
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _freeze_rows(rows: object) -> tuple[Tags, ...]:
    return tuple(
        tuple((str(key), value) for key, value in row) for row in rows
    )


class ResultCache:
    """A directory of completed cell results, keyed by :func:`cell_key`."""

    def __init__(self, directory: str | os.PathLike):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def load(self, cell: Cell, key: str | None = None) -> tuple[Tags, ...] | None:
        """Return the cell's cached field rows, or ``None`` on any miss
        (absent, torn, corrupt, or belonging to a different cell).

        ``key`` is the cell's precomputed :func:`cell_key`, if the caller
        already has it."""
        path = self._path(key or cell_key(cell))
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("kind") != cell.kind
            or payload.get("params") != [list(pair) for pair in cell.params]
        ):
            return None
        try:
            return _freeze_rows(payload["rows"])
        except (KeyError, TypeError, ValueError):
            return None

    def store(
        self, cell: Cell, rows: tuple[Tags, ...], key: str | None = None
    ) -> Path:
        """Persist a completed cell's rows atomically; returns the path."""
        path = self._path(key or cell_key(cell))
        payload = json.dumps(
            {
                "kind": cell.kind,
                "params": [[key, value] for key, value in cell.params],
                "rows": [[[key, value] for key, value in row] for row in rows],
            },
            separators=(",", ":"),
        )
        # ".tmp" suffix: never matches the "*.json" glob in __len__, so a
        # killed writer can't inflate the completed-cell count.
        fd, tmp_name = tempfile.mkstemp(
            dir=self.directory, prefix=".partial-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json"))
