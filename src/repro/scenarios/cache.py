"""On-disk result cache: cells are content-addressed by what they compute.

A cell's cache key hashes its kind, its full parameter set and a format
version — everything that determines the computed rows, and nothing that
doesn't (row-label tags are excluded, so the same computation reached from
two different figures shares one entry).  Bump :data:`CACHE_VERSION`
whenever an executor's output format or semantics change; stale entries
then miss instead of serving wrong rows.

Entries are one JSON file per cell, written atomically (temp file +
``os.replace``) so concurrent runners and interrupted runs can never leave
a half-written entry that later loads.  Each entry additionally carries a
SHA-256 checksum of its rows payload, verified on load: a torn, truncated
or bit-flipped file — anything that survives JSON parsing but is not what
was written — is treated as a miss and recomputed, never served.

Persistence itself is best-effort: a cache that cannot be written
(injected via the ``disk.write`` fault site, or a genuinely full/broken
disk) degrades the run to uncached, it does not fail it — one bounded
retry, then :meth:`ResultCache.store` returns ``None`` and the rows flow
on unpersisted.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path

from repro import faults, obs
from repro.scenarios.spec import Cell, Tags

# Version 2: entries carry a rows checksum (verified on load).
CACHE_VERSION = 2

_PRIMITIVES = (str, int, float, bool, type(None))

#: One retry before a failing store degrades to not-persisting.
_STORE_RETRIES = 1

_log = obs.get_logger("cache")


def cell_key(cell: Cell) -> str:
    """Content hash of a cell's computation (hex, stable across processes)."""
    for _, value in cell.params:
        if not isinstance(value, _PRIMITIVES):
            raise TypeError(
                f"cell params must be JSON primitives, got {value!r}"
            )
    payload = json.dumps(
        {
            "version": CACHE_VERSION,
            "kind": cell.kind,
            "params": [[key, value] for key, value in cell.params],
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _freeze_rows(rows: object) -> tuple[Tags, ...]:
    return tuple(
        tuple((str(key), value) for key, value in row) for row in rows
    )


def _rows_payload(rows: object) -> str:
    """The canonical JSON encoding of an entry's rows — what the entry
    checksum covers, identical at store and load time."""
    return json.dumps(rows, separators=(",", ":"))


def _rows_checksum(rows_json: str) -> str:
    return hashlib.sha256(rows_json.encode("utf-8")).hexdigest()


class ResultCache:
    """A directory of completed cell results, keyed by :func:`cell_key`."""

    def __init__(self, directory: str | os.PathLike):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def load(self, cell: Cell, key: str | None = None) -> tuple[Tags, ...] | None:
        """Return the cell's cached field rows, or ``None`` on any miss
        (absent, torn, corrupt, checksum mismatch, or belonging to a
        different cell).

        ``key`` is the cell's precomputed :func:`cell_key`, if the caller
        already has it."""
        path = self._path(key or cell_key(cell))
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("kind") != cell.kind
            or payload.get("params") != [list(pair) for pair in cell.params]
        ):
            return None
        rows = payload.get("rows")
        if rows is None:
            return None
        if payload.get("checksum") != _rows_checksum(_rows_payload(rows)):
            # A corrupted entry (truncation caught above by the JSON
            # parse; bit flips caught here) is discarded so the runner
            # recomputes instead of serving damaged rows.
            obs.counter("cache.corrupt_entries")
            _log.warning("corrupt cache entry", extra={"path": str(path)})
            try:
                path.unlink()
            except OSError:
                pass
            return None
        try:
            return _freeze_rows(rows)
        except (TypeError, ValueError):
            return None

    def store(
        self, cell: Cell, rows: tuple[Tags, ...], key: str | None = None
    ) -> Path | None:
        """Persist a completed cell's rows atomically; returns the path.

        A write failure (the ``disk.write`` fault site, or a real
        ``OSError``) is retried once, then the store degrades to a
        no-op (``None``): caching is an optimisation, never a reason to
        lose an already-computed result.
        """
        path = self._path(key or cell_key(cell))
        rows_raw = [[[key, value] for key, value in row] for row in rows]
        rows_json = _rows_payload(rows_raw)
        payload = json.dumps(
            {
                "kind": cell.kind,
                "params": [[key, value] for key, value in cell.params],
                "rows": rows_raw,
                "checksum": _rows_checksum(rows_json),
            },
            separators=(",", ":"),
        )
        for attempt in range(_STORE_RETRIES + 1):
            try:
                if faults.fire("disk.write", key=path.name) is not None:
                    raise OSError("injected disk write failure")
                self._write_atomic(path, payload)
                return path
            except OSError as error:
                obs.counter("cache.store_errors")
                if attempt < _STORE_RETRIES:
                    obs.counter("faults.retries", site="disk.write")
                    continue
                _log.warning(
                    "cache store failed; continuing uncached",
                    extra={"path": str(path), "error": str(error)},
                )
        return None

    def _write_atomic(self, path: Path, payload: str) -> None:
        # ".tmp" suffix: never matches the "*.json" glob in __len__, so a
        # killed writer can't inflate the completed-cell count.
        fd, tmp_name = tempfile.mkstemp(
            dir=self.directory, prefix=".partial-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json"))
