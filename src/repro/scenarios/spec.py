"""Declarative experiment grids: ``ScenarioSpec`` → atomic ``Cell``s.

The paper's evaluation is a grid — dataset × defense scheme × attack ×
(u, v, w) × auxiliary/target anchor × leakage rate.  A
:class:`ScenarioSpec` declares one such grid; :meth:`ScenarioSpec.expand`
deterministically flattens it into atomic :class:`Cell`s, the unit of
execution, caching and parallelism for :class:`repro.scenarios.runner.Runner`.

Expansion nests the axes in one canonical order —

    datasets → schemes → attacks → params → anchor pairs → leakage rates

— which reproduces the row order of every figure driver in
:mod:`repro.analysis.figures` (verified byte-for-byte by the figure
benches).  Figures that interleave axes differently (e.g. Figure 4's
per-parameter sweeps) concatenate several specs instead.

Everything here is a frozen dataclass of primitives and tuples: hashable,
picklable (cells cross process boundaries), and JSON-canonicalizable (cells
are content-hashed into cache keys).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping

from repro.common.errors import ConfigurationError

# Cell kinds understood by repro.scenarios.cells.
ATTACK = "attack"
FREQUENCY = "frequency"
STORAGE_SAVING = "storage_saving"
METADATA = "metadata"

# Anchor modes.
PAIR = "pair"
VARY_AUXILIARY = "vary_auxiliary"
VARY_TARGET = "vary_target"
SLIDING = "sliding"

Tags = tuple[tuple[str, object], ...]


@dataclass(frozen=True)
class AttackParams:
    """The locality-attack knobs (u, v, w) of §4."""

    u: int = 1
    v: int = 15
    w: int = 200_000


def _resolve_index(index: int, length: int) -> int:
    resolved = index if index >= 0 else length + index
    if not 0 <= resolved < length:
        raise ConfigurationError(
            f"backup index {index} out of range for series of length {length}"
        )
    return resolved


@dataclass(frozen=True)
class Anchor:
    """How a spec picks (auxiliary, target) backup pairs from a series.

    Modes:

    * ``pair`` — the single ``(auxiliary, target)`` pair; negative indices
      count from the end of the series (the default is the paper's
      "previous backup attacks latest").
    * ``vary_auxiliary`` — fix ``target``, sweep the auxiliary over
      ``range(target)``, capped at ``max_auxiliary`` when set (Figs. 5
      and 9; Fig. 9's synthetic sweep pins the cap at 5).
    * ``vary_target`` — fix ``auxiliary``, sweep the target over every
      later backup: Fig. 6.
    * ``sliding`` — for each shift ``s`` in ``shifts``, pair every backup
      ``t`` with ``t + s``; each pair is tagged ``("s", s)``: Fig. 7.
    """

    mode: str = PAIR
    auxiliary: int = -2
    target: int = -1
    max_auxiliary: int | None = None
    shifts: tuple[int, ...] = (1,)

    def __post_init__(self) -> None:
        if self.mode not in (PAIR, VARY_AUXILIARY, VARY_TARGET, SLIDING):
            raise ConfigurationError(f"unknown anchor mode {self.mode!r}")

    def resolve(self, length: int) -> list[tuple[int, int, Tags]]:
        """Expand to concrete ``(auxiliary, target, extra_tags)`` triples.

        Args:
            length: the backup series' length, used to resolve negative
                indices and to bound the sweeps.

        Returns:
            One triple per anchor pair, in sweep order; ``extra_tags``
            carries per-pair row labels (only the ``sliding`` mode emits
            any — its shift ``s``).

        Raises:
            ConfigurationError: an index falls outside the series, or a
                sliding shift is not positive.
        """
        if self.mode == PAIR:
            return [
                (
                    _resolve_index(self.auxiliary, length),
                    _resolve_index(self.target, length),
                    (),
                )
            ]
        if self.mode == VARY_AUXILIARY:
            target = _resolve_index(self.target, length)
            stop = target if self.max_auxiliary is None else min(
                target, self.max_auxiliary
            )
            return [(aux, target, ()) for aux in range(stop)]
        if self.mode == VARY_TARGET:
            auxiliary = _resolve_index(self.auxiliary, length)
            return [
                (auxiliary, target, ())
                for target in range(auxiliary + 1, length)
            ]
        # SLIDING
        triples: list[tuple[int, int, Tags]] = []
        for shift in self.shifts:
            if shift <= 0:
                raise ConfigurationError("sliding shifts must be positive")
            for aux in range(length - shift):
                triples.append((aux, aux + shift, (("s", shift),)))
        return triples


@dataclass(frozen=True)
class Cell:
    """One atomic experiment: the unit of execution, caching and fan-out.

    ``params`` fully determine the computation (they feed the cache key);
    ``tags`` are constant row labels merged into the output at assembly
    time and deliberately excluded from the key, so identical computations
    reached from different specs share one cache entry.
    """

    kind: str
    params: Tags
    tags: Tags = ()

    def param(self, name: str) -> object:
        """Look up one parameter by name.

        Args:
            name: the parameter key.

        Returns:
            The parameter's value.

        Raises:
            KeyError: the cell has no parameter of that name.
        """
        for key, value in self.params:
            if key == name:
                return value
        raise KeyError(name)


def _as_tags(mapping: Mapping[str, object]) -> Tags:
    return tuple(sorted(mapping.items()))


@dataclass(frozen=True)
class ScenarioSpec:
    """A declarative experiment grid.

    The attack axes (``attacks``, ``params``, ``anchor``,
    ``leakage_rates``) only apply to ``kind="attack"`` specs; the workload
    axes (``datasets``, ``schemes``) apply to every kind.  ``extra`` params
    are merged into every cell (e.g. the DDFS cache budget for
    ``metadata`` cells).  Per-dataset overrides express the paper's
    irregularities: per-dataset anchors (Figs. 4/8/9/10) and the omission
    of the advanced attack on fixed-size datasets (Figs. 5/6).
    """

    name: str
    kind: str = ATTACK
    datasets: tuple[str, ...] = ("fsl",)
    schemes: tuple[str, ...] = ("mle",)
    attacks: tuple[str, ...] = ("locality",)
    params: tuple[AttackParams, ...] = (AttackParams(),)
    param_tags: tuple[Tags, ...] | None = None
    anchor: Anchor = field(default_factory=Anchor)
    anchors_by_dataset: tuple[tuple[str, Anchor], ...] = ()
    attacks_by_dataset: tuple[tuple[str, tuple[str, ...]], ...] = ()
    leakage_rates: tuple[float, ...] = (0.0,)
    seed: int = 0
    extra: Tags = ()
    tags: Tags = ()

    def __post_init__(self) -> None:
        from repro.scenarios.cells import ensure_cell_kind, known_cell_kinds

        if not ensure_cell_kind(self.kind):
            raise ConfigurationError(
                f"unknown cell kind {self.kind!r}; choose from "
                f"{known_cell_kinds()} (see register_cell_kind)"
            )
        if self.param_tags is not None and len(self.param_tags) != len(self.params):
            raise ConfigurationError(
                "param_tags must align one-to-one with params"
            )

    # -- expansion ----------------------------------------------------------

    def expand(self, lengths: Mapping[str, int] | None = None) -> tuple[Cell, ...]:
        """Flatten the grid into cells, in canonical nesting order.

        Args:
            lengths: dataset name → series length, used to resolve
                anchor indices; when omitted it is looked up from the
                canonical workload registry
                (:func:`repro.analysis.workloads.series_length`, which
                reads generator configs — no dataset is generated).

        Returns:
            The grid's cells in canonical nesting order (see module
            docs) — ready for
            :meth:`repro.scenarios.runner.Runner.run_cells`.
        """
        if self.kind == ATTACK:
            return self._expand_attack(lengths)
        cells: list[Cell] = []
        for dataset in self.datasets:
            if self.kind == FREQUENCY:
                cells.append(self._cell({"dataset": dataset}))
                continue
            for scheme in self.schemes:
                cells.append(self._cell({"dataset": dataset, "scheme": scheme}))
        return tuple(cells)

    def _expand_attack(self, lengths: Mapping[str, int] | None) -> tuple[Cell, ...]:
        anchor_overrides = dict(self.anchors_by_dataset)
        attack_overrides = dict(self.attacks_by_dataset)
        param_tags = self.param_tags or ((),) * len(self.params)
        cells: list[Cell] = []
        for dataset in self.datasets:
            length = self._length(dataset, lengths)
            anchor = anchor_overrides.get(dataset, self.anchor)
            attacks = attack_overrides.get(dataset, self.attacks)
            pairs = anchor.resolve(length)
            for scheme in self.schemes:
                for attack in attacks:
                    for params, ptags in zip(self.params, param_tags):
                        # The basic attack ignores (u, v, w): normalize
                        # them out of the cell params so equivalent cells
                        # share one execution and one cache entry.  The
                        # requested values stay as row tags.
                        if attack == "basic":
                            effective = AttackParams(u=0, v=0, w=0)
                        else:
                            effective = params
                        display = (
                            ("u", params.u),
                            ("v", params.v),
                            ("w", params.w),
                        )
                        for auxiliary, target, atags in pairs:
                            for rate in self.leakage_rates:
                                # The seed only feeds the leakage sample;
                                # at rate 0 nothing is sampled, so
                                # normalize it out of the cache identity.
                                seed = self.seed if rate else 0
                                cells.append(
                                    self._cell(
                                        {
                                            "dataset": dataset,
                                            "scheme": scheme,
                                            "attack": attack,
                                            "u": effective.u,
                                            "v": effective.v,
                                            "w": effective.w,
                                            "auxiliary": auxiliary,
                                            "target": target,
                                            "leakage_rate": rate,
                                            "seed": seed,
                                        },
                                        extra_tags=display + ptags + atags,
                                    )
                                )
        return tuple(cells)

    def _cell(
        self, params: dict[str, object], extra_tags: Tags = ()
    ) -> Cell:
        tags: dict[str, object] = dict(self.tags)
        # Grid coordinates double as row labels; computed fields of the
        # same name (e.g. the auxiliary backup *label*) shadow them at
        # assembly time (see runner.rows_from).
        for key, value in params.items():
            if key not in ("auxiliary", "target", "seed"):
                tags[key] = value
        tags.update(extra_tags)
        return Cell(
            kind=self.kind,
            params=_as_tags({**params, **dict(self.extra)}),
            tags=tuple(tags.items()),
        )

    @staticmethod
    def _length(dataset: str, lengths: Mapping[str, int] | None) -> int:
        if lengths is not None and dataset in lengths:
            return lengths[dataset]
        from repro.analysis.workloads import series_length

        return series_length(dataset)

    # -- convenience --------------------------------------------------------

    def with_datasets(self, datasets: tuple[str, ...]) -> "ScenarioSpec":
        """A copy of this spec over different datasets (figure drivers
        re-anchor one declared grid across workloads this way)."""
        return replace(self, datasets=datasets)


@dataclass(frozen=True)
class Scenario:
    """A presentable experiment: ordered specs plus table shape.

    This is what a figure driver (or a CLI sweep) hands to
    :func:`repro.scenarios.runner.run_scenario`: the specs' cells run —
    possibly out of order, across processes — and the rows come back in
    spec order under ``columns``.
    """

    name: str
    title: str
    columns: tuple[str, ...]
    specs: tuple[ScenarioSpec, ...]
    notes: tuple[str, ...] = ()

    def cells(self, lengths: Mapping[str, int] | None = None) -> tuple[Cell, ...]:
        """All specs' cells concatenated in spec order (the scenario's
        row order — what :func:`repro.scenarios.runner.run_scenario`
        executes and merges)."""
        expanded: list[Cell] = []
        for spec in self.specs:
            expanded.extend(spec.expand(lengths))
        return tuple(expanded)
