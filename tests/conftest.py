"""Shared fixtures: small, fast workloads for unit/integration tests.

The bench-scale canonical workloads live in ``repro.analysis.workloads``;
tests use miniature variants so the whole suite stays fast.
"""

from __future__ import annotations

import pytest

from repro.datasets.fsl import FSLConfig, FSLDatasetGenerator


def pytest_configure(config):
    # No pytest.ini/pyproject table exists, so markers register here.
    config.addinivalue_line(
        "markers", "integration: end-to-end pipeline tests"
    )
    config.addinivalue_line(
        "markers",
        "frontend: socket-frontend tests (CI runs them as a separate "
        "timeout-bounded job via `pytest -m frontend`)",
    )

from repro.datasets.model import Backup, BackupSeries
from repro.datasets.synthetic import SyntheticConfig, SyntheticDatasetGenerator
from repro.datasets.vm import VMConfig, VMDatasetGenerator
from repro.defenses.pipeline import DefensePipeline, DefenseScheme
from repro.defenses.segmentation import SegmentationSpec


@pytest.fixture(scope="session")
def tiny_fsl_series() -> BackupSeries:
    # Scaled so the u=1 locality-attack seed reliably lands (the attack is
    # all-or-nothing below a few thousand chunks per backup).
    config = FSLConfig(
        num_users=4,
        num_backups=4,
        files_per_user=60,
        mean_file_chunks=24,
        num_templates=40,
        popular_pool_size=80,
    )
    return FSLDatasetGenerator(seed=11, config=config).generate()


@pytest.fixture(scope="session")
def tiny_vm_series() -> BackupSeries:
    config = VMConfig(
        num_vms=4,
        num_backups=6,
        base_image_chunks=400,
        user_region_chunks=150,
        heavy_weeks=(2, 3),
        quiet_weeks=(0,),
        popular_pool_size=20,
    )
    return VMDatasetGenerator(seed=13, config=config).generate()


@pytest.fixture(scope="session")
def tiny_synthetic_series() -> BackupSeries:
    config = SyntheticConfig(
        num_files=60,
        mean_file_chunks=16,
        num_snapshots=4,
        num_templates=12,
        popular_pool_size=20,
    )
    return SyntheticDatasetGenerator(seed=17, config=config).generate()


@pytest.fixture(scope="session")
def tiny_segmentation() -> SegmentationSpec:
    """Segments of roughly 8-32 chunks for the tiny workloads."""
    return SegmentationSpec.scaled(8192)


@pytest.fixture(scope="session")
def tiny_encrypted_mle(tiny_fsl_series, tiny_segmentation):
    return DefensePipeline(
        DefenseScheme.MLE, segmentation=tiny_segmentation, seed=5
    ).encrypt_series(tiny_fsl_series)


@pytest.fixture(scope="session")
def tiny_encrypted_combined(tiny_fsl_series, tiny_segmentation):
    return DefensePipeline(
        DefenseScheme.COMBINED, segmentation=tiny_segmentation, seed=5
    ).encrypt_series(tiny_fsl_series)


def make_backup(label: str, tokens: list[str], size: int = 4096) -> Backup:
    """Build a backup whose fingerprints are readable ASCII tokens."""
    return Backup(
        label=label,
        fingerprints=[token.encode() for token in tokens],
        sizes=[size] * len(tokens),
    )


@pytest.fixture()
def backup_factory():
    return make_backup
