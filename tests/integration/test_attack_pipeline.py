"""Integration: dataset → defense pipeline → attack → evaluation.

These run the paper's core claims end-to-end on the tiny test workloads:
the locality-based attack beats the basic attack by orders of magnitude
under deterministic MLE, and the combined defense suppresses it.
"""

import pytest

from repro.attacks import (
    AdvancedLocalityAttack,
    AttackEvaluator,
    BasicAttack,
    LocalityAttack,
)
from repro.defenses.pipeline import DefensePipeline, DefenseScheme

pytestmark = pytest.mark.integration


class TestAttackHierarchy:
    def test_locality_beats_basic_on_fsl(self, tiny_encrypted_mle):
        evaluator = AttackEvaluator(tiny_encrypted_mle)
        basic = evaluator.run(BasicAttack(), auxiliary=-2, target=-1)
        locality = evaluator.run(
            LocalityAttack(u=1, v=15, w=50_000), auxiliary=-2, target=-1
        )
        assert locality.inference_rate > 10 * max(basic.inference_rate, 1e-6)
        assert locality.inference_rate > 0.02

    def test_advanced_at_least_matches_locality(self, tiny_encrypted_mle):
        evaluator = AttackEvaluator(tiny_encrypted_mle)
        locality = evaluator.run(
            LocalityAttack(u=1, v=15, w=50_000), auxiliary=-2, target=-1
        )
        advanced = evaluator.run(
            AdvancedLocalityAttack(u=1, v=15, w=50_000), auxiliary=-2, target=-1
        )
        assert advanced.inference_rate >= locality.inference_rate

    def test_recent_auxiliary_beats_stale(self, tiny_encrypted_mle):
        evaluator = AttackEvaluator(tiny_encrypted_mle)
        attack = AdvancedLocalityAttack(u=1, v=15, w=50_000)
        recent = evaluator.run(attack, auxiliary=-2, target=-1)
        stale = evaluator.run(attack, auxiliary=0, target=-1)
        assert recent.inference_rate > stale.inference_rate

    def test_leakage_strictly_helps(self, tiny_encrypted_mle):
        evaluator = AttackEvaluator(tiny_encrypted_mle)
        attack = LocalityAttack(u=1, v=15, w=50_000)
        without = evaluator.run(attack, auxiliary=1, target=-1)
        with_leak = evaluator.run(
            attack, auxiliary=1, target=-1, leakage_rate=0.01
        )
        assert with_leak.inference_rate > without.inference_rate


class TestDefenseSuppression:
    def test_combined_suppresses_advanced_attack(
        self, tiny_encrypted_mle, tiny_encrypted_combined
    ):
        attack = AdvancedLocalityAttack(u=1, v=15, w=50_000)
        undefended = AttackEvaluator(tiny_encrypted_mle).run(
            attack, auxiliary=-2, target=-1, leakage_rate=0.002
        )
        defended = AttackEvaluator(tiny_encrypted_combined).run(
            attack, auxiliary=-2, target=-1, leakage_rate=0.002
        )
        assert defended.inference_rate < undefended.inference_rate / 5
        assert defended.inference_rate < 0.02

    def test_minhash_alone_weaker_than_combined(
        self, tiny_fsl_series, tiny_segmentation, tiny_encrypted_combined
    ):
        minhash = DefensePipeline(
            DefenseScheme.MINHASH, segmentation=tiny_segmentation, seed=5
        ).encrypt_series(tiny_fsl_series)
        attack = AdvancedLocalityAttack(u=1, v=15, w=50_000)
        minhash_report = AttackEvaluator(minhash).run(
            attack, auxiliary=-2, target=-1, leakage_rate=0.002
        )
        combined_report = AttackEvaluator(tiny_encrypted_combined).run(
            attack, auxiliary=-2, target=-1, leakage_rate=0.002
        )
        assert combined_report.inference_rate <= minhash_report.inference_rate

    def test_storage_saving_loss_is_bounded(
        self, tiny_fsl_series, tiny_segmentation
    ):
        from repro.datasets.stats import storage_savings

        mle = DefensePipeline(
            DefenseScheme.MLE, segmentation=tiny_segmentation
        ).encrypt_series(tiny_fsl_series)
        combined = DefensePipeline(
            DefenseScheme.COMBINED, segmentation=tiny_segmentation
        ).encrypt_series(tiny_fsl_series)
        saving_mle = storage_savings(
            [b.ciphertext for b in mle.backups]
        )[-1]
        saving_combined = storage_savings(
            [b.ciphertext for b in combined.backups]
        )[-1]
        assert saving_combined <= saving_mle
        assert saving_mle - saving_combined < 0.25


class TestVMDataset:
    def test_advanced_equals_locality_on_fixed_chunks(self, tiny_vm_series):
        encrypted = DefensePipeline(DefenseScheme.MLE).encrypt_series(
            tiny_vm_series
        )
        evaluator = AttackEvaluator(encrypted)
        locality = evaluator.run(
            LocalityAttack(u=1, v=15, w=50_000), auxiliary=-2, target=-1
        )
        advanced = evaluator.run(
            AdvancedLocalityAttack(u=1, v=15, w=50_000), auxiliary=-2, target=-1
        )
        assert locality.inference_rate == advanced.inference_rate
