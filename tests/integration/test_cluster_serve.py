"""Cluster serving end to end: serve-sim over a 2-node ring, pinned.

``tests/integration`` previously had no cluster coverage — the PR 5
routing/rebalance path was only exercised by unit tests and benches.
These tests pin it end to end through the *service* entry points:

* a 2-node ring ``serve-sim`` report (cluster section present, chunks
  placed on both nodes, partial-view rows bounded by the full view);
* the socket frontend serving the same clustered config byte-identically
  to the simulator (the cluster tier sits behind the same
  ``DedupService`` seam, so identity must hold there too);
* the consistent-hash rebalance path (add a node to a served cluster,
  movement within the theoretical bound);
* a ``cluster`` partial-view attack cell through the scenario Runner.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile

import pytest

from repro.service.frontend import (
    FrontendServer,
    build_frontend,
    identity_check,
)
from repro.service.loadgen import replay_stream
from repro.service.simulate import ServiceConfig, service_report

pytestmark = [pytest.mark.integration, pytest.mark.frontend]

CLUSTER_CONFIG = ServiceConfig(tenants=8, rounds=3, nodes=2, routing="ring", seed=4)


class TestClusterServeSim:
    def test_two_node_ring_report_has_cluster_section(self):
        report = service_report(CLUSTER_CONFIG, jobs=1)
        cluster = report["cluster"]
        assert cluster["nodes"] == 2
        assert cluster["routing"] == "ring"
        # Both nodes actually hold chunks — the ring really shards.
        per_node = {entry["node"]: entry for entry in cluster["per_node"]}
        assert set(per_node) == {0, 1}
        assert all(entry["chunks"] > 0 for entry in per_node.values())
        assert cluster["total_chunks"] == sum(
            entry["chunks"] for entry in per_node.values()
        )
        assert cluster["skew"]["imbalance"] >= 1.0

    def test_partial_view_rows_bounded_by_full_view(self):
        """A one-node shard adversary never beats the full-store one."""
        report = service_report(CLUSTER_CONFIG, jobs=1)
        partial = report["cluster"]["partial_view"]
        assert partial["compromised_node"] == 0
        assert partial["pairs"], "attack pairs must be evaluated"
        full_rate = report["attack"]["mean_inference_rate"]
        assert 0.0 <= partial["mean_inference_rate"] <= full_rate
        for pair in partial["pairs"]:
            assert 0.0 <= pair["shard_fraction"] <= 1.0

    def test_report_deterministic_across_jobs(self):
        serial = service_report(CLUSTER_CONFIG, jobs=1)
        fanned = service_report(CLUSTER_CONFIG, jobs=2)
        assert json.dumps(serial, sort_keys=True) == json.dumps(
            fanned, sort_keys=True
        )


class TestClusterFrontend:
    def test_served_cluster_identical_to_simulator(self):
        """Identity holds with the cluster tier behind the frontend."""
        frontend = build_frontend(CLUSTER_CONFIG)
        scratch = tempfile.mkdtemp(prefix="fe-cluster-")
        try:
            address = ("unix", os.path.join(scratch, "frontend.sock"))
            with FrontendServer(frontend, address) as bound:
                counts = replay_stream(bound, CLUSTER_CONFIG)
            assert counts["errors"] == 0
            check = identity_check(frontend)
        finally:
            shutil.rmtree(scratch, ignore_errors=True)
        assert check["identical"]
        # The served report carries the full cluster section too.
        assert check["served"]["cluster"]["nodes"] == 2

    def test_rebalance_after_serving_within_bound(self):
        """Joining a node moves ~1/new_nodes of keys, never much more."""
        frontend = build_frontend(CLUSTER_CONFIG)
        scratch = tempfile.mkdtemp(prefix="fe-rebal-")
        try:
            address = ("unix", os.path.join(scratch, "frontend.sock"))
            with FrontendServer(frontend, address) as bound:
                replay_stream(bound, CLUSTER_CONFIG)
            cluster = frontend.service.cluster
            before = sum(
                len(node.chunks) for node in cluster.nodes.values()
            )
            report = cluster.add_node()
            assert report.within_bound(), (
                f"moved {report.moved_fraction:.2%} vs theoretical "
                f"{report.theoretical_fraction:.2%}"
            )
            after = sum(len(node.chunks) for node in cluster.nodes.values())
            assert after == before, "rebalance must not lose chunks"
            assert len(cluster.nodes) == 3
        finally:
            shutil.rmtree(scratch, ignore_errors=True)


class TestClusterCell:
    def test_partial_view_attack_cell_through_runner(self):
        """One `cluster` cell end to end via the scenario engine."""
        from repro.cluster.cells import (
            CLUSTER_GRID_COLUMNS,
            cluster_grid_cells,
        )
        from repro.scenarios.runner import Runner, rows_from

        cells = cluster_grid_cells(
            dataset="fsl",
            schemes=("mle",),
            attacks=("locality",),
            nodes=(2,),
            routings=("ring",),
        )
        assert len(cells) == 1
        rows = rows_from(Runner(jobs=1).run_cells(cells), CLUSTER_GRID_COLUMNS)
        (row,) = rows
        record = dict(zip(CLUSTER_GRID_COLUMNS, row))
        assert record["nodes"] == 2
        assert record["routing"] == "ring"
        assert 0.0 < record["shard_fraction"] < 1.0
        assert 0.0 <= record["inference_rate"] <= 1.0
