"""Chaos tests: the seeded fault plane, survived end to end.

The contract under test is the PR's headline guarantee: a run under a
deterministic :class:`~repro.faults.FaultPlan` — connection drops,
stalls, corrupt frames, node kills and rejoins, worker crashes — with
retries enabled produces **byte-identical results** to the fault-free
run, while the fault/retry/failover accounting shows the storm actually
happened.  Three layers:

* **serving** — the retrying client survives injected server-side drops
  and stalls plus client-side drops/corruption, and the served trace
  stays identical to the in-process simulator; the rid replay cache
  makes retries of already-served uploads idempotent; graceful drain
  captures final stats.
* **cluster** — a node kill mid-ingest fails placement over to ring
  successors, the metadata plane (and so the load report) never
  flinches, and the rejoin move respects the K/N bound.
* **COUNT / scenarios** — crashed shard workers (soft raise and hard
  ``os._exit``) are detected and re-run; the merged tables match the
  fault-free run exactly.
"""

from __future__ import annotations

import json

import pytest

from repro import faults
from repro.attacks.frequency import count_with_neighbors
from repro.attacks.sharded import sharded_count
from repro.cluster.cluster import DedupCluster
from repro.common.errors import StorageError
from repro.datasets.columnar import StreamConfig, ensure_stream_columnar
from repro.faults import FaultPlan, WorkerCrashError
from repro.service import protocol as wire
from repro.service.frontend import identity_check
from repro.service.loadgen import FrontendClient, RetryPolicy, replay_stream
from repro.service.simulate import ServiceConfig

from tests.integration.test_serve_frontend import make_backup, served

pytestmark = [pytest.mark.integration, pytest.mark.frontend]


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    faults.clear()
    yield
    faults.clear()


def install(*rules, seed=0):
    return faults.install(
        FaultPlan.from_dict({"seed": seed, "rules": list(rules)})
    )


# -- serving under fire -------------------------------------------------------


class TestServeChaos:
    def test_replay_identical_under_drops_stalls_and_corruption(self):
        config = ServiceConfig(tenants=6, rounds=3, seed=5)
        injector = install(
            {"site": "serve.drop", "every": 11, "times": 3},
            {"site": "serve.drop", "times": 1, "when": "after"},
            {"site": "serve.stall", "at": 7, "times": 1, "delay_s": 0.01},
            {"site": "client.drop", "at": 5, "times": 1},
            {"site": "client.corrupt", "at": 20, "times": 1},
            seed=7,
        )
        with served(config) as (frontend, address):
            counts = replay_stream(
                address, config, retry=RetryPolicy(seed=1)
            )
            check = identity_check(frontend)
        fired = sum(
            site["fired"] for site in injector.summary()["sites"].values()
        )
        assert fired > 0, "the plan must actually inject faults"
        assert counts["retries"] > 0
        assert counts["gave_up"] == 0
        assert counts["errors"] == 0
        assert check["identical"], "faulted replay diverged from simulator"

    def test_clean_run_report_shape_unchanged(self):
        # Without a retry policy the replay report carries no retry
        # section at all — fault-free output stays byte-identical to
        # the pre-fault-plane stack.
        config = ServiceConfig(tenants=4, rounds=2, seed=5)
        with served(config) as (frontend, address):
            counts = replay_stream(address, config)
        assert "retries" not in counts
        assert "gave_up" not in counts

    def test_drop_after_serving_replays_from_rid_cache(self):
        # The nastiest drop: the server processed the upload but the
        # answer was lost.  The retry re-sends under the same rid and
        # must be answered from the replay cache — served exactly once.
        config = ServiceConfig(tenants=4, rounds=2, seed=5)
        install(
            {
                "site": "serve.drop",
                "times": 1,
                "match": {"kind": "upload_batch"},
                "when": "after",
            }
        )
        with served(config) as (frontend, address):
            with FrontendClient(address) as client:
                client.hello()
                backup = make_backup("b0", ["aa", "bb", "cc"])
                kind, payload = client.request_with_retry(
                    wire.UPLOAD_BATCH,
                    wire.upload_payload(0, 0, "b0", backup),
                    RetryPolicy(seed=2),
                    rid="rid-upload-0",
                )
                assert kind == wire.OK
                assert client.retries == 1
                assert client.reconnects == 1
            assert frontend.stats.uploads == 1
            assert len(frontend.meter.observables) == 1

    def test_retry_exhaustion_reports_gave_up(self):
        config = ServiceConfig(tenants=4, rounds=2, seed=5)
        install({"site": "client.drop"})  # every attempt, forever
        with served(config) as (frontend, address):
            client = FrontendClient(address)
            try:
                client.hello()
                with pytest.raises(StorageError):
                    client.request_with_retry(
                        wire.STATS,
                        {},
                        RetryPolicy(attempts=3, seed=2),
                        rid="rid-stats",
                    )
                assert client.gave_up == 1
                assert client.retries == 2  # attempts - 1
            finally:
                client.close()

    def test_drain_captures_final_stats(self):
        config = ServiceConfig(tenants=4, rounds=2, seed=5)
        with served(config) as (frontend, address):
            with FrontendClient(address) as client:
                client.hello()
                client.request(
                    wire.UPLOAD_BATCH,
                    wire.upload_payload(
                        0, 0, "b0", make_backup("b0", ["aa", "bb"])
                    ),
                )
            assert frontend.final_stats is None  # not drained yet
        # FrontendServer's exit path drains: stop accepting, let live
        # sessions finish, then capture one last STATS payload.
        assert frontend.final_stats is not None
        assert frontend.final_stats["uploads"] == 1
        assert frontend.final_stats["sessions_opened"] == 1


# -- cluster failover ---------------------------------------------------------


def _fill(cluster: DedupCluster, batches: int = 5, keys: int = 50):
    import hashlib

    for batch in range(batches):
        fingerprints = [
            hashlib.blake2b(
                b"%d:%d" % (batch, index), digest_size=8
            ).digest()
            for index in range(keys)
        ]
        cluster.store_stream(fingerprints, [1024] * keys)


class TestClusterFailover:
    def test_kill_failover_rejoin_and_identical_load_report(self):
        install(
            {"site": "node.kill", "at": 2, "times": 1, "node": 1},
            {"site": "node.restart", "at": 4, "times": 1, "node": 1},
        )
        faulted = DedupCluster(nodes=3)
        _fill(faulted)
        faults.clear()
        clean = DedupCluster(nodes=3)
        _fill(clean)

        # The metadata plane is modeled as replicated, so the load
        # report — every leakage observable derives from it — is
        # byte-identical despite the outage.
        assert json.dumps(faulted.load_report(), sort_keys=True) == (
            json.dumps(clean.load_report(), sort_keys=True)
        )

        # The data plane did degrade, and the report accounts for it.
        assert faulted.health_report()["health"] == {
            "0": "up", "1": "up", "2": "up"
        }
        assert faulted.health_report()["parked_chunks"] == 0
        (report,) = faulted.degraded_reports
        assert report.node_id == 1
        assert report.killed_after_ingests == 2
        assert report.rejoined_after_ingests == 4
        assert report.unreachable_keys > 0
        assert report.failover_keys > 0
        assert report.failover_probes >= report.failover_keys
        assert report.rejoin_moved_keys == report.failover_keys
        # Ingest calls 2 and 3 (2 batches x 50 unique keys) happened
        # while node 1 was down; it owns an expected 1/3 of them.
        assert report.within_bound(total_keys=100, nodes=3)

    def test_ring_successors_start_at_owner_and_cover_members(self):
        cluster = DedupCluster(nodes=4)
        key = b"fp-probe"
        successors = list(cluster.router.successors(key))
        assert successors[0] == cluster.router.node_of(key)
        assert sorted(successors) == [0, 1, 2, 3]

    def test_parked_chunks_live_on_healthy_successors_only(self):
        install({"site": "node.kill", "at": 1, "times": 1, "node": 0})
        cluster = DedupCluster(nodes=3)
        _fill(cluster, batches=2)
        faults.clear()
        assert cluster.nodes[0].health == "down"
        assert not cluster.nodes[0].failover_chunks
        parked = sum(
            len(node.failover_chunks) for node in cluster.nodes.values()
        )
        assert parked == cluster.health_report()["parked_chunks"] > 0

    def test_no_healthy_node_left_raises(self):
        cluster = DedupCluster(nodes=2)
        cluster.kill_node(0)
        cluster.kill_node(1)
        with pytest.raises(StorageError):
            cluster.ingest([b"fp-alone"], [64])


# -- crash-safe COUNT ---------------------------------------------------------


def _tables(stats):
    return (
        list(stats.frequencies.items()),
        {
            side: {
                key: list(table.items())
                for key, table in getattr(stats, side).items()
            }
            for side in ("left", "right")
        },
    )


class TestShardedCountChaos:
    @pytest.mark.parametrize("mode", ["raise", "exit"])
    def test_worker_crash_recovery_byte_identical(self, tmp_path, mode):
        config = StreamConfig(chunks=6_000, backups=2)
        trace = ensure_stream_columnar(tmp_path / "trace", config, seed=5)
        try:
            view = trace.view(0)
            clean = _tables(sharded_count(view, jobs=4))
            injector = install(
                {"site": "count.worker", "at": 2, "times": 1, "mode": mode}
            )
            faulted = _tables(sharded_count(view, jobs=4))
            assert injector.summary()["sites"]["count.worker"]["fired"] == 1
            assert faulted == clean
            # And the recovered tables still match the in-RAM oracle.
            reference = count_with_neighbors(view.to_backup())
            assert faulted[0] == list(reference.frequencies.items())
        finally:
            trace.close()

    def test_crash_every_time_gives_up(self, tmp_path):
        config = StreamConfig(chunks=500, backups=1)
        trace = ensure_stream_columnar(tmp_path / "trace", config, seed=5)
        try:
            install({"site": "count.worker"})  # crash on every attempt
            with pytest.raises(WorkerCrashError):
                sharded_count(trace.view(0), jobs=1)
        finally:
            trace.close()
