"""Socket-frontend integration tests: identity, robustness, concurrency.

Three layers, matching the serving tier's three claims:

* **differential identity** — the same seeded trace served over a real
  socket is byte-identical to the in-process simulator: dedup decisions,
  quota outcomes, meter observables, and the full attack report;
* **protocol robustness** — malformed/truncated/oversized frames, abrupt
  disconnects mid-batch, idle-timeout eviction, and version mismatches
  each leave the engine consistent and never wedge the server;
* **concurrency** — ~100 concurrent tenant sessions multiplex onto one
  engine with no cross-tenant session-state bleed, and per-tenant
  token-bucket rate limits hold (exactly on a virtual clock, within
  tolerance under real-clock contention).
"""

from __future__ import annotations

import asyncio
import json
import os
import shutil
import tempfile
import time
from contextlib import contextmanager

import pytest

from repro.datasets.model import Backup
from repro.service import protocol as wire
from repro.service.admission import AdmissionController, TokenBucket
from repro.service.frontend import (
    DedupFrontend,
    FrontendConfig,
    FrontendServer,
    build_frontend,
    identity_check,
    start_frontend,
)
from repro.service.loadgen import FrontendClient, replay_stream
from repro.service.simulate import (
    ServiceConfig,
    build_service,
    inline_report,
    service_report,
    simulate,
)

pytestmark = [pytest.mark.integration, pytest.mark.frontend]


def make_backup(label: str, tokens: list[str], size: int = 1024) -> Backup:
    fingerprints = [token.encode().ljust(8, b"\0") for token in tokens]
    return Backup(
        label=label, fingerprints=fingerprints, sizes=[size] * len(tokens)
    )


@contextmanager
def served(config: ServiceConfig, frontend_config: FrontendConfig = None):
    """A frontend for ``config`` served on a scratch Unix socket."""
    frontend = build_frontend(config, frontend_config)
    scratch = tempfile.mkdtemp(prefix="fe-test-")
    try:
        address = ("unix", os.path.join(scratch, "frontend.sock"))
        with FrontendServer(frontend, address) as bound:
            yield frontend, bound
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


# -- differential identity ----------------------------------------------------


class TestIdentity:
    def test_served_trace_byte_identical_to_simulator(self):
        config = ServiceConfig(tenants=6, rounds=3, seed=5)
        with served(config) as (frontend, address):
            counts = replay_stream(address, config)
            assert counts["errors"] == 0
            check = identity_check(frontend)
        assert check["identical"], "served trace diverged from simulator"
        # The reports really carry the full adversary view, not stubs.
        assert check["served"]["attack"]["pairs"]
        assert check["served"]["side_channel"]["bandwidth_signal"]

    def test_quota_outcomes_identical(self):
        """Quota rejections and the restores they void match exactly."""
        config = ServiceConfig(
            tenants=6, rounds=4, quota_bytes=2_000_000, seed=5
        )
        expected = simulate(config)
        assert expected.rejected_uploads > 0, "config must trip quotas"
        with served(config) as (frontend, address):
            counts = replay_stream(address, config)
            assert counts["rejected_uploads"] == expected.rejected_uploads
            assert counts["skipped_restores"] == expected.skipped_restores
            assert counts["errors"] == 0
            assert identity_check(frontend)["identical"]

    def test_meter_observables_identical_per_request(self):
        """Every served wire observable equals the simulator's, in order."""
        from dataclasses import asdict

        config = ServiceConfig(tenants=5, rounds=2, seed=9)
        with served(config) as (frontend, address):
            replay_stream(address, config)
            served_obs = [asdict(o) for o in frontend.meter.observables]
        expected_obs = [asdict(o) for o in simulate(config).meter.observables]
        assert served_obs == expected_obs

    def test_inline_report_matches_service_report(self):
        """The inline attack-pair path is the runner path, byte for byte."""
        config = ServiceConfig(tenants=5, rounds=2, seed=3)
        via_runner = service_report(config, jobs=2)
        via_inline = inline_report(simulate(config))
        assert json.dumps(via_inline, sort_keys=True) == json.dumps(
            via_runner, sort_keys=True
        )

    def test_identity_over_tcp(self):
        config = ServiceConfig(tenants=4, rounds=2, seed=2)
        frontend = build_frontend(config)
        with FrontendServer(frontend, ("tcp", "127.0.0.1", 0)) as address:
            assert address[0] == "tcp" and address[2] > 0
            counts = replay_stream(address, config)
            assert counts["errors"] == 0
            assert identity_check(frontend)["identical"]


# -- protocol robustness ------------------------------------------------------


def upload_ok(address, tenant: int, label: str) -> dict:
    """One well-formed upload; asserts it is served and returns the payload."""
    with FrontendClient(address) as client:
        client.hello()
        kind, payload = client.upload(
            tenant, 0, label, make_backup(label, [f"{label}-{i}" for i in range(4)])
        )
    assert kind == wire.OK, payload
    return payload


class TestProtocolRobustness:
    @pytest.fixture()
    def frontend_address(self):
        config = ServiceConfig(tenants=4, rounds=2, seed=1)
        with served(config) as (frontend, address):
            yield frontend, address

    def test_malformed_json_keeps_session(self, frontend_address):
        """Bad payload in a well-framed message: error, session survives."""
        _, address = frontend_address
        with FrontendClient(address) as client:
            client.hello()
            body = bytes([wire.UPLOAD_BATCH]) + b"{not json"
            client.send_raw(wire.HEADER.pack(len(body)) + body)
            kind, payload = client.recv_frame()
            assert kind == wire.ERROR
            assert payload["code"] == wire.E_BAD_REQUEST
            # Framing stayed in sync: the session still serves requests.
            kind, payload = client.upload(
                0, 0, "after-garbage", make_backup("after-garbage", ["a", "b"])
            )
            assert kind == wire.OK

    def test_invalid_upload_fields_keep_session(self, frontend_address):
        _, address = frontend_address
        with FrontendClient(address) as client:
            client.hello()
            kind, payload = client.request(
                wire.UPLOAD_BATCH, {"tenant": "zero", "round": 0}
            )
            assert kind == wire.ERROR
            assert payload["code"] == wire.E_BAD_REQUEST
            kind, _ = client.request(wire.STATS, {})
            assert kind == wire.OK

    def test_unknown_frame_kind_is_fatal(self, frontend_address):
        # An undefined kind byte means the stream is garbage (corrupt,
        # or not this protocol at all): dedicated code, fatal, and
        # classed as "garbage" rather than generic transport abuse.
        frontend, address = frontend_address
        with FrontendClient(address) as client:
            client.hello()
            kind, payload = client.request(0x7F, {})
            assert kind == wire.ERROR
            assert payload["code"] == wire.E_UNKNOWN_KIND
            with pytest.raises(ConnectionError):
                client.request(wire.STATS, {})
        assert frontend.stats.errors_by_class[wire.CLASS_GARBAGE] == 1

    def test_oversized_frame_refused_without_reading(self):
        config = ServiceConfig(tenants=4, rounds=2, seed=1)
        with served(
            config, FrontendConfig(max_frame_bytes=512)
        ) as (frontend, address):
            with FrontendClient(address) as client:
                client.hello()
                client.send_raw(wire.HEADER.pack(100_000))
                kind, payload = client.recv_frame()
                assert kind == wire.ERROR
                assert payload["code"] == wire.E_OVERSIZED
                with pytest.raises(ConnectionError):
                    client.recv_frame()
            assert frontend.stats.errors[wire.E_OVERSIZED] == 1
            # The refusal never touched the engine.
            assert frontend.service.stored_bytes == 0

    def test_truncated_frame_then_disconnect(self, frontend_address):
        """A frame cut off by disconnect is an EOF, not a wedge."""
        frontend, address = frontend_address
        client = FrontendClient(address)
        client.hello()
        # Claim 500 body bytes, deliver 10, vanish.
        client.send_raw(wire.HEADER.pack(500) + b"x" * 10)
        client.close(polite=False)
        # The server still serves new sessions afterwards.
        upload_ok(address, 0, "after-truncation")
        assert frontend.stats.uploads == 1

    def test_abrupt_disconnect_mid_batch_keeps_engine_consistent(self):
        """Dropping dead between pipelined uploads loses nothing served."""
        config = ServiceConfig(tenants=4, rounds=2, seed=1)
        with served(config) as (frontend, address):
            client = FrontendClient(address)
            client.hello()
            kind, first = client.upload(
                1, 0, "kept", make_backup("kept", ["k1", "k2", "k3"])
            )
            assert kind == wire.OK
            # Fire a second upload and slam the connection before reading
            # the response (mid-batch abort).
            client.send_raw(
                wire.encode_frame(
                    wire.UPLOAD_BATCH,
                    wire.upload_payload(
                        1, 0, "maybe", make_backup("maybe", ["m1", "m2"])
                    ),
                )
            )
            client.close(polite=False)
            # Served state is still coherent: the first upload is
            # restorable on a fresh session, and the engine serves on.
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if frontend.stats.sessions_closed >= 1:
                    break
                time.sleep(0.01)
            with FrontendClient(address) as probe:
                probe.hello()
                kind, payload = probe.restore(1, "kept")
                assert kind == wire.OK
                assert payload["logical_bytes"] == first["logical_bytes"]
                usage = probe.stats()
                assert usage["active_sessions"] == 1

    def test_idle_timeout_evicts_session(self):
        config = ServiceConfig(tenants=4, rounds=2, seed=1)
        with served(
            config, FrontendConfig(idle_timeout=0.2)
        ) as (frontend, address):
            with FrontendClient(address) as client:
                client.hello()
                kind, payload = client.recv_frame()  # blocks until eviction
                assert kind == wire.ERROR
                assert payload["code"] == wire.E_IDLE
                with pytest.raises(ConnectionError):
                    client.recv_frame()
            assert frontend.stats.errors[wire.E_IDLE] == 1
            # Eviction released the session; new connections serve fine.
            upload_ok(address, 0, "after-idle")

    def test_hello_version_mismatch_closes(self, frontend_address):
        _, address = frontend_address
        with FrontendClient(address) as client:
            kind, payload = client.request(wire.HELLO, {"protocol": 99})
            assert kind == wire.ERROR
            assert payload["code"] == wire.E_PROTOCOL
            with pytest.raises(ConnectionError):
                client.request(wire.STATS, {})

    def test_label_conflict_and_not_found_errors(self, frontend_address):
        _, address = frontend_address
        with FrontendClient(address) as client:
            client.hello()
            backup = make_backup("dup", ["d1", "d2"])
            assert client.upload(2, 0, "dup", backup)[0] == wire.OK
            kind, payload = client.upload(2, 1, "dup", backup)
            assert (kind, payload["code"]) == (wire.ERROR, wire.E_CONFLICT)
            # Cross-tenant restore: namespaces share chunks, never recipes.
            kind, payload = client.restore(3, "dup")
            assert (kind, payload["code"]) == (wire.ERROR, wire.E_NOT_FOUND)
            kind, _ = client.restore(2, "dup")
            assert kind == wire.OK

    def test_session_cap_refuses_with_busy(self):
        config = ServiceConfig(tenants=4, rounds=2, seed=1)
        with served(
            config, FrontendConfig(max_sessions=1)
        ) as (frontend, address):
            with FrontendClient(address) as first:
                first.hello()
                second = FrontendClient(address)
                kind, payload = second.recv_frame()
                assert kind == wire.ERROR
                assert payload["code"] == wire.E_BUSY
                second.close(polite=False)
                # The admitted session is unaffected.
                assert first.request(wire.STATS, {})[0] == wire.OK
            assert frontend.admission.refused_sessions == 1


# -- concurrency --------------------------------------------------------------


async def _tenant_session(path: str, tenant: int) -> dict:
    """One tenant's session: hello, upload own data, restore it back."""
    reader, writer = await asyncio.open_unix_connection(path)

    async def call(kind: int, payload: dict) -> tuple[int, dict]:
        writer.write(wire.encode_frame(kind, payload))
        await writer.drain()
        (length,) = wire.HEADER.unpack(await reader.readexactly(4))
        return wire.decode_body(await reader.readexactly(length))

    label = f"own-{tenant}"
    backup = make_backup(
        label, [f"t{tenant}-c{i}" for i in range(6)], size=512
    )
    try:
        kind, _ = await call(wire.HELLO, wire.hello_payload())
        assert kind == wire.OK
        kind, up = await call(
            wire.UPLOAD_BATCH, wire.upload_payload(tenant, 0, label, backup)
        )
        assert kind == wire.OK, up
        kind, down = await call(
            wire.RESTORE, wire.restore_payload(tenant, label)
        )
        assert kind == wire.OK, down
        await call(wire.CLOSE, {})
    finally:
        writer.close()
    return {"tenant": tenant, "upload": up, "restore": down}


class TestConcurrency:
    def test_hundred_concurrent_sessions_no_state_bleed(self):
        """~100 tenants at once: every session sees only its own state."""
        tenants = 100
        config = ServiceConfig(tenants=tenants, rounds=1, seed=1)
        frontend = DedupFrontend(
            build_service(config), service_config=config
        )
        scratch = tempfile.mkdtemp(prefix="fe-stress-")
        path = os.path.join(scratch, "frontend.sock")

        async def drive():
            server, _ = await start_frontend(frontend, ("unix", path))
            try:
                return await asyncio.gather(
                    *(_tenant_session(path, t) for t in range(tenants))
                )
            finally:
                server.close()
                await server.wait_closed()
                await frontend.shutdown()

        try:
            results = asyncio.run(drive())
        finally:
            shutil.rmtree(scratch, ignore_errors=True)

        assert len(results) == tenants
        for result in results:
            tenant = result["tenant"]
            # The response belongs to this tenant's request — not another
            # session's — and the restore round-trips this tenant's own
            # upload exactly (same logical stream, all 6 chunks).
            assert result["upload"]["tenant"] == tenant
            assert result["upload"]["label"] == f"own-{tenant}"
            assert result["upload"]["total_chunks"] == 6
            assert result["restore"]["tenant"] == tenant
            assert result["restore"]["label"] == f"own-{tenant}"
            assert (
                result["restore"]["logical_bytes"]
                == result["upload"]["logical_bytes"]
            )
            assert result["restore"]["total_chunks"] == 6
        # Serving order is nondeterministic under concurrency, but the
        # request indices are a permutation — every request serialized
        # through the engine exactly once.
        indices = sorted(
            r[key]["request_index"]
            for r in results
            for key in ("upload", "restore")
        )
        assert indices == list(range(2 * tenants))
        assert frontend.service.tenants() == list(range(tenants))
        for tenant in range(tenants):
            usage = frontend.service.tenant_usage(tenant)
            assert usage["uploads"] == 1
            assert usage["restores"] == 1
        assert frontend.stats.sessions_opened == tenants

    def test_rate_limit_exact_on_virtual_clock(self):
        """Token buckets admit exactly burst + rate x elapsed requests."""
        now = [1000.0]
        config = ServiceConfig(tenants=2, rounds=1, seed=1)
        frontend = DedupFrontend(
            build_service(config),
            service_config=config,
            config=FrontendConfig(rate_limit=1.0, burst=2.0),
            clock=lambda: now[0],
        )
        scratch = tempfile.mkdtemp(prefix="fe-rate-")
        path = os.path.join(scratch, "frontend.sock")
        try:
            with FrontendServer(frontend, ("unix", path)) as address:
                with FrontendClient(address) as client:
                    client.hello()

                    def attempt(i: int) -> str:
                        kind, payload = client.upload(
                            0, 0, f"r{i}", make_backup(f"r{i}", [f"c{i}"])
                        )
                        return "ok" if kind == wire.OK else payload["code"]

                    # Frozen clock: exactly `burst` admissions.
                    outcomes = [attempt(i) for i in range(4)]
                    assert outcomes == [
                        "ok", "ok", wire.E_RATE_LIMITED, wire.E_RATE_LIMITED
                    ]
                    # +3 virtual seconds at 1 req/s refills min(3, burst).
                    now[0] += 3.0
                    outcomes = [attempt(10 + i) for i in range(3)]
                    assert outcomes == [
                        "ok", "ok", wire.E_RATE_LIMITED
                    ]
                    # Other tenants have their own buckets: tenant 1 is
                    # untouched by tenant 0's exhaustion.
                    kind, _ = client.upload(
                        1, 0, "other", make_backup("other", ["oc"])
                    )
                    assert kind == wire.OK
            assert frontend.admission.throttled_requests == 3
        finally:
            shutil.rmtree(scratch, ignore_errors=True)

    def test_rate_limit_holds_under_real_contention(self):
        """Hammering tenants stay within bucket math, within tolerance."""
        tenants, attempts = 4, 25
        rate, burst = 20.0, 3.0
        config = ServiceConfig(tenants=tenants, rounds=1, seed=1)
        frontend_config = FrontendConfig(rate_limit=rate, burst=burst)
        with served(config, frontend_config) as (frontend, address):
            started = time.monotonic()

            def hammer(tenant: int) -> int:
                admitted = 0
                with FrontendClient(address) as client:
                    client.hello()
                    for i in range(attempts):
                        kind, _ = client.upload(
                            tenant,
                            0,
                            f"h{tenant}-{i}",
                            make_backup(f"h{tenant}-{i}", ["x"]),
                        )
                        admitted += kind == wire.OK
                return admitted

            from concurrent.futures import ThreadPoolExecutor

            with ThreadPoolExecutor(max_workers=tenants) as pool:
                admitted = list(pool.map(hammer, range(tenants)))
            elapsed = time.monotonic() - started
        # Each tenant's bucket guarantees its burst and bounds its rate:
        # admitted in [burst, burst + rate x elapsed] (+1 slack for a
        # refill racing the last probe).  Loose on purpose — real clock.
        ceiling = burst + rate * elapsed + 1
        for count in admitted:
            assert burst <= count <= ceiling
        assert frontend.admission.throttled_requests > 0


# -- admission units (virtual clock) -----------------------------------------


class TestTokenBucket:
    def test_burst_then_refill(self):
        now = [0.0]
        bucket = TokenBucket(rate=2.0, burst=5.0, clock=lambda: now[0])
        assert sum(bucket.try_acquire() for _ in range(7)) == 5
        now[0] += 1.0  # 2 tokens back
        assert [bucket.try_acquire() for _ in range(3)] == [True, True, False]
        now[0] += 100.0  # refill caps at burst
        assert sum(bucket.try_acquire() for _ in range(10)) == 5

    def test_zero_rate_is_unlimited(self):
        bucket = TokenBucket(rate=0.0, burst=1.0, clock=lambda: 0.0)
        assert all(bucket.try_acquire() for _ in range(1000))

    def test_controller_isolates_tenants_and_caps_sessions(self):
        now = [0.0]
        controller = AdmissionController(
            rate_limit=1.0, burst=1.0, max_sessions=2, clock=lambda: now[0]
        )
        assert controller.admit_request(0)
        assert not controller.admit_request(0)
        assert controller.admit_request(1)  # separate bucket
        assert controller.throttled_requests == 1
        assert controller.admit_session()
        assert controller.admit_session()
        assert not controller.admit_session()
        controller.release_session()
        assert controller.admit_session()
        assert controller.refused_sessions == 1
