"""Integration: chunking → MLE/MinHash → DDFS store → restore, plus the
trace-driven metadata experiment on generated workloads."""

import pytest

from repro.chunking import ChunkerSpec, GearChunker
from repro.common.errors import IntegrityError
from repro.crypto.mle import ConvergentEncryption
from repro.datasets.filesystem import build_tree
from repro.datasets.mutate import evolve_tree
from repro.defenses.pipeline import DefensePipeline, DefenseScheme
from repro.defenses.segmentation import SegmentationSpec
from repro.storage.ddfs import DDFSEngine
from repro.storage.system import EncryptedDedupSystem

pytestmark = pytest.mark.integration

SMALL_CHUNKS = ChunkerSpec(min_size=512, avg_size=2048, max_size=8192)
SMALL_SEGMENTS = SegmentationSpec(
    min_bytes=8 * 1024, avg_bytes=16 * 1024, max_bytes=32 * 1024
)


def make_system(**kwargs):
    return EncryptedDedupSystem(
        scheme=ConvergentEncryption(),
        chunker=GearChunker(SMALL_CHUNKS),
        segmentation=SMALL_SEGMENTS,
        container_size=64 * 1024,
        **kwargs,
    )


class TestBackupGenerationsEndToEnd:
    def test_three_generations_store_and_restore(self):
        system = make_system(use_minhash=True, use_scramble=True)
        tree = build_tree(seed=20, num_files=6, mean_file_size=24_000)
        handles = {}
        trees = [tree]
        for generation in (1, 2):
            trees.append(
                evolve_tree(trees[-1], seed=20, generation=generation)
            )
        for generation, snapshot in enumerate(trees):
            for file in snapshot.iter_files():
                handles[(generation, file.path)] = system.put_file(
                    file.path, file.data
                )
        system.flush()
        for (generation, path), handle in handles.items():
            assert system.get_file(handle) == trees[generation].get(path).data

    def test_temporal_dedup_saves_storage(self):
        system = make_system()
        tree = build_tree(seed=21, num_files=6, mean_file_size=24_000)
        for file in tree.iter_files():
            system.put_file(file.path, file.data)
        system.flush()
        first_gen = system.stored_bytes
        evolved = evolve_tree(tree, seed=21, generation=1, modify_fraction=0.2)
        for file in evolved.iter_files():
            system.put_file(file.path, file.data)
        system.flush()
        second_gen_added = system.stored_bytes - first_gen
        assert second_gen_added < 0.5 * first_gen

    def test_corrupted_container_detected_on_restore(self):
        system = make_system()
        tree = build_tree(seed=22, num_files=2, mean_file_size=16_000)
        handles = [
            system.put_file(file.path, file.data) for file in tree.iter_files()
        ]
        system.flush()
        # Flip a payload byte in the first container.
        container = system.engine.containers.get(0)
        corrupted = bytearray(container.payload)
        corrupted[0] ^= 0xFF
        container.payload = bytes(corrupted)
        with pytest.raises(IntegrityError):
            for handle in handles:
                system.get_file(handle)


class TestTraceDrivenMetadata:
    def test_mle_vs_combined_metadata_profile(self, tiny_fsl_series, tiny_segmentation):
        results = {}
        for scheme in (DefenseScheme.MLE, DefenseScheme.COMBINED):
            encrypted = DefensePipeline(
                scheme, segmentation=tiny_segmentation
            ).encrypt_series(tiny_fsl_series)
            engine = DDFSEngine(
                cache_budget_bytes=16 * 1024,
                bloom_capacity=60_000,
                container_size=32 * 4096,
            )
            reports = engine.process_series(
                [b.ciphertext for b in encrypted.backups]
            )
            results[scheme] = reports
        # Combined stores more unique chunks (MinHash variants)...
        mle_unique = sum(r.unique_chunks for r in results[DefenseScheme.MLE])
        combined_unique = sum(
            r.unique_chunks for r in results[DefenseScheme.COMBINED]
        )
        assert combined_unique >= mle_unique
        # ...and update access scales with unique chunks for both schemes.
        for scheme, reports in results.items():
            for report in reports:
                assert report.metadata.update_bytes == 32 * report.unique_chunks

    def test_larger_cache_reduces_loading(self, tiny_encrypted_mle):
        backups = [b.ciphertext for b in tiny_encrypted_mle.backups]
        loading = {}
        for budget in (8 * 1024, 1024 * 1024):
            engine = DDFSEngine(
                cache_budget_bytes=budget,
                bloom_capacity=60_000,
                container_size=32 * 4096,
            )
            reports = engine.process_series(backups)
            loading[budget] = sum(r.metadata.loading_bytes for r in reports)
        assert loading[1024 * 1024] < loading[8 * 1024]
