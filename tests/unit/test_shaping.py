"""Dedup-response shaping: policy parsing, the pure shaping function,
and the side-channel meter's view of a shaped service.

The load-bearing invariants, each tested at the level where it lives:

* shaping only ever *adds* duplicates to the transfer set — storage,
  dedup decisions and the store-view side channel (overlap matrix) are
  byte-identical to the honest run;
* the per-chunk decision hash couples the ``rr:p`` sweep (monotone
  sample-for-sample, not just in expectation);
* honest traces keep every pre-shaping report byte-for-byte (no
  ``shaped_extra_bytes`` column, no ``shaping`` config echo).
"""

import dataclasses

import pytest

from repro.common.errors import ConfigurationError
from repro.service.shaping import (
    HONEST,
    QUANTIZED_BANDWIDTH,
    RANDOMIZED_RESPONSE,
    ShapingPolicy,
    parse_policy,
    shape_response,
)
from repro.service.simulate import (
    ServiceConfig,
    _simulate,
    evaluate_pair,
    trace_report,
)

BASE = ServiceConfig(tenants=5, rounds=2, files_per_tenant=6, seed=11)


def _uploads(trace):
    return [
        record
        for record in trace.meter.observables
        if record.kind == "upload"
    ]


def _shaped(policy: str):
    return _simulate(dataclasses.replace(BASE, shaping=policy))


class TestParsePolicy:
    def test_honest_default(self):
        policy = parse_policy("honest")
        assert policy.mode == HONEST
        assert not policy.is_active()
        assert policy.spec() == "honest"

    @pytest.mark.parametrize("spec", ["rr:0.25", "randomized-response:0.25"])
    def test_rr_aliases(self, spec):
        policy = parse_policy(spec, seed=3)
        assert policy.mode == RANDOMIZED_RESPONSE
        assert policy.flip_probability == 0.25
        assert policy.seed == 3
        assert policy.spec() == "rr:0.25"

    @pytest.mark.parametrize(
        "spec", ["quantize:4096", "quantized-bandwidth:4096"]
    )
    def test_quantize_aliases(self, spec):
        policy = parse_policy(spec)
        assert policy.mode == QUANTIZED_BANDWIDTH
        assert policy.bucket_bytes == 4096
        assert policy.spec() == "quantize:4096"

    def test_rr_zero_is_inactive(self):
        assert not parse_policy("rr:0").is_active()
        assert parse_policy("rr:0.01").is_active()
        assert parse_policy("quantize:1").is_active()

    def test_existing_policy_is_rekeyed(self):
        policy = parse_policy("rr:0.5", seed=1)
        rekeyed = parse_policy(policy, seed=9)
        assert rekeyed.flip_probability == 0.5
        assert rekeyed.seed == 9

    @pytest.mark.parametrize(
        "spec",
        [
            "nope",
            "rr",
            "rr:x",
            "rr:1.5",
            "rr:-0.1",
            "quantize",
            "quantize:0",
            "quantize:x",
            "honest:1",
        ],
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ConfigurationError):
            parse_policy(spec)

    def test_bad_mode_rejected_by_dataclass(self):
        with pytest.raises(ConfigurationError):
            ShapingPolicy(mode="weird")


class TestShapeResponse:
    UNIQUE = {f"fp{i}".encode(): 1000 + i for i in range(8)}
    NEEDED = {b"fp0", b"fp3"}

    def test_honest_and_rr_zero_add_nothing(self):
        for spec in ("honest", "rr:0"):
            policy = parse_policy(spec, seed=1)
            assert (
                shape_response(policy, 0, "u", self.UNIQUE, self.NEEDED)
                == set()
            )

    def test_rr_one_transfers_every_duplicate(self):
        policy = parse_policy("rr:1", seed=1)
        extra = shape_response(policy, 0, "u", self.UNIQUE, self.NEEDED)
        assert extra == set(self.UNIQUE) - self.NEEDED

    def test_extra_is_always_duplicates_only(self):
        for spec in ("rr:0.5", "quantize:3000"):
            policy = parse_policy(spec, seed=4)
            extra = shape_response(policy, 2, "u", self.UNIQUE, self.NEEDED)
            assert extra <= set(self.UNIQUE) - self.NEEDED

    def test_rr_sweep_is_monotone_samplewise(self):
        # Common-random-numbers coupling: the flip set at a smaller p is
        # a subset of the flip set at any larger p, chunk for chunk.
        sets = [
            shape_response(
                parse_policy(f"rr:{p}", seed=7), 1, "u",
                self.UNIQUE, self.NEEDED,
            )
            for p in (0.1, 0.3, 0.6, 0.9, 1.0)
        ]
        for smaller, larger in zip(sets, sets[1:]):
            assert smaller <= larger

    def test_rr_is_order_independent(self):
        policy = parse_policy("rr:0.5", seed=7)
        reversed_unique = dict(reversed(list(self.UNIQUE.items())))
        assert shape_response(
            policy, 1, "u", self.UNIQUE, self.NEEDED
        ) == shape_response(policy, 1, "u", reversed_unique, self.NEEDED)

    def test_quantize_exact_boundary_pads_nothing(self):
        # Honest transfer = fp0 (1000) + fp3 (1003) = 2003 bytes.
        unique = {b"fp0": 1000, b"fp3": 1024, b"dup": 500}
        policy = parse_policy("quantize:2024", seed=0)
        assert shape_response(policy, 0, "u", unique, {b"fp0", b"fp3"}) == (
            set()
        )

    def test_quantize_pads_to_next_bucket(self):
        unique = {b"a": 100, b"b": 100, b"c": 100}
        policy = parse_policy("quantize:250", seed=0)
        extra = shape_response(policy, 0, "u", unique, {b"a"})
        # 100 honest bytes pad toward the 250 target in stream order.
        assert extra == {b"b", b"c"}

    def test_fully_deduplicated_upload_pads_one_bucket(self):
        # An honest 0-byte transfer would leak full duplication exactly.
        unique = {b"a": 100, b"b": 100}
        policy = parse_policy("quantize:150", seed=0)
        extra = shape_response(policy, 0, "u", unique, set())
        assert extra == {b"a", b"b"}

    def test_empty_upload_stays_empty(self):
        policy = parse_policy("quantize:4096", seed=0)
        assert shape_response(policy, 0, "u", {}, set()) == set()


class TestShapedService:
    def test_storage_identical_under_every_policy(self):
        honest = _shaped("honest")
        for spec in ("rr:0.5", "rr:1", "quantize:4096"):
            shaped = _shaped(spec)
            assert shaped.service.stored_bytes == honest.service.stored_bytes
            assert shaped.service.unique_chunks_stored() == (
                honest.service.unique_chunks_stored()
            )

    def test_overlap_matrix_identical_under_shaping(self):
        # The store-view side channel reads dedup decisions, which
        # shaping never touches.
        honest = _shaped("honest")
        shaped = _shaped("rr:0.5")
        assert shaped.meter.overlap_matrix() == honest.meter.overlap_matrix()

    def test_inference_rates_identical_under_shaping(self):
        honest = _shaped("honest")
        shaped = _shaped("rr:1")
        assert evaluate_pair(shaped, -1, 0) == evaluate_pair(honest, -1, 0)

    def test_transfer_monotone_in_flip_probability(self):
        previous = None
        for p in (0.0, 0.25, 0.5, 1.0):
            uploads = _uploads(_shaped(f"rr:{p:g}"))
            if previous is not None:
                assert all(
                    later.transferred_bytes >= earlier.transferred_bytes
                    for earlier, later in zip(previous, uploads)
                )
            previous = uploads

    def test_rr_one_transfers_unique_stream(self):
        for record in _uploads(_shaped("rr:1")):
            assert record.transferred_bytes == record.unique_bytes

    def test_shaped_bytes_reconcile(self):
        honest = _uploads(_shaped("honest"))
        shaped = _uploads(_shaped("rr:0.5"))
        for before, after in zip(honest, shaped):
            assert after.transferred_bytes == (
                before.transferred_bytes + after.shaped_extra_bytes
            )

    def test_quantized_transfers_land_on_bucket_boundaries(self):
        bucket = 4096
        for record in _uploads(_shaped(f"quantize:{bucket}")):
            # Boundary alignment holds whenever enough duplicates exist
            # to finish the padding; it can only undershoot, never skip
            # past a boundary.
            assert record.transferred_bytes <= (
                -(-max(record.transferred_bytes, 1) // bucket) * bucket
            )
            assert record.transferred_bytes >= (
                record.transferred_bytes - record.shaped_extra_bytes
            )

    def test_bandwidth_rows_gain_column_only_when_shaped(self):
        honest_rows = _shaped("honest").meter.bandwidth_signal()
        assert all(
            "shaped_extra_bytes" not in row for row in honest_rows
        )
        shaped_rows = _shaped("rr:1").meter.bandwidth_signal()
        assert all("shaped_extra_bytes" in row for row in shaped_rows)

    def test_config_echo_elides_honest_shaping(self):
        honest = trace_report(_shaped("honest"), [])
        assert "shaping" not in honest["config"]
        shaped = trace_report(_shaped("rr:0.5"), [])
        assert shaped["config"]["shaping"] == "rr:0.5"
