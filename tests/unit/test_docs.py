"""Tests for the docs suite tooling (generated CLI reference + links)."""

import sys
from pathlib import Path

from repro.analysis.docs import (
    PINNED_PYTHON,
    check_cli_doc,
    check_links,
    cli_markdown,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
DOCS = REPO_ROOT / "docs"


def cli_subcommands() -> list[str]:
    from repro.analysis.docs import _subcommands
    from repro.cli import _build_parser

    return sorted(_subcommands(_build_parser()))


class TestCliReference:
    def test_every_subcommand_documented(self):
        # Acceptance: every CLI subcommand appears in docs/cli.md.
        text = (DOCS / "cli.md").read_text(encoding="utf-8")
        names = cli_subcommands()
        assert names  # the parser has subcommands at all
        for name in names:
            assert f"## freqdedup {name}" in text, name

    def test_cluster_flags_documented(self):
        text = (DOCS / "cli.md").read_text(encoding="utf-8")
        for flag in ("--nodes", "--routing", "--compromised-node"):
            assert flag in text, flag

    def test_generation_is_deterministic(self):
        assert cli_markdown() == cli_markdown()

    def test_committed_reference_is_fresh(self):
        # argparse help formatting can differ between interpreter
        # minors; the guard (here and in the docs CI job) is pinned.
        if sys.version_info[:2] != PINNED_PYTHON:
            import pytest

            pytest.skip(
                f"cli.md staleness is pinned to Python "
                f"{PINNED_PYTHON[0]}.{PINNED_PYTHON[1]}"
            )
        assert check_cli_doc(DOCS / "cli.md") == []

    def test_stale_file_detected(self, tmp_path):
        stale = tmp_path / "cli.md"
        stale.write_text("# old\n", encoding="utf-8")
        problems = check_cli_doc(stale)
        assert problems and "stale" in problems[0]
        assert check_cli_doc(tmp_path / "missing.md")


class TestLinkChecker:
    def test_repo_docs_have_no_dangling_links(self):
        assert check_links([REPO_ROOT / "README.md", DOCS]) == []

    def test_broken_link_reported(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text(
            "[ok](other.md) and [bad](missing/nope.md)", encoding="utf-8"
        )
        (tmp_path / "other.md").write_text("x", encoding="utf-8")
        problems = check_links([tmp_path])
        assert len(problems) == 1
        assert "missing/nope.md" in problems[0]

    def test_external_and_anchor_links_skipped(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text(
            "[a](https://example.com) [b](#section) [c](mailto:x@y.z)",
            encoding="utf-8",
        )
        assert check_links([page]) == []

    def test_anchored_relative_link_resolves_to_file(self, tmp_path):
        page = tmp_path / "page.md"
        (tmp_path / "other.md").write_text("x", encoding="utf-8")
        page.write_text("[a](other.md#some-section)", encoding="utf-8")
        assert check_links([page]) == []
