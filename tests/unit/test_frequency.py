"""Tests for the COUNT / FREQ-ANALYSIS building blocks."""

import pytest

from repro.attacks.frequency import (
    FINGERPRINT,
    INSERTION,
    classify_by_blocks,
    count_frequencies,
    count_with_neighbors,
    freq_analysis,
    rank_by_frequency,
    sized_freq_analysis,
)
from repro.datasets.model import Backup


def backup(tokens, sizes=None):
    tokens = [t.encode() for t in tokens]
    if sizes is None:
        sizes = [4096] * len(tokens)
    return Backup(label="t", fingerprints=tokens, sizes=sizes)


class TestCount:
    def test_count_frequencies(self):
        freq = count_frequencies(backup(["a", "b", "a", "a", "c"]))
        assert freq == {b"a": 3, b"b": 1, b"c": 1}

    def test_count_with_neighbors_frequencies(self):
        stats = count_with_neighbors(backup(["a", "b", "a"]))
        assert stats.frequencies == {b"a": 2, b"b": 1}
        assert stats.unique_chunks == 2

    def test_left_right_tables(self):
        stats = count_with_neighbors(backup(["a", "b", "c", "b", "c"]))
        # left neighbors of c: b (twice)
        assert stats.left[b"c"] == {b"b": 2}
        # right neighbors of b: c (twice)
        assert stats.right[b"b"] == {b"c": 2}
        # a has no left neighbor, c (last) contributes no right entry
        assert b"a" not in stats.left
        assert b"c" not in stats.right or stats.right[b"c"] == {b"b": 1}

    def test_first_occurrence_size_recorded(self):
        stats = count_with_neighbors(
            backup(["a", "b"], sizes=[1000, 2000])
        )
        assert stats.sizes == {b"a": 1000, b"b": 2000}

    def test_empty_backup(self):
        stats = count_with_neighbors(backup([]))
        assert stats.frequencies == {}


class TestRanking:
    def test_rank_by_frequency_descending(self):
        table = {b"x": 1, b"y": 5, b"z": 3}
        assert rank_by_frequency(table)[:2] == [b"y", b"z"]

    def test_insertion_tie_break_preserves_first_seen_order(self):
        table = {}
        for token in (b"m", b"k", b"z", b"a"):
            table[token] = 1
        assert rank_by_frequency(table, INSERTION) == [b"m", b"k", b"z", b"a"]

    def test_fingerprint_tie_break_sorts_by_bytes(self):
        table = {b"m": 1, b"k": 1, b"z": 1, b"a": 1}
        assert rank_by_frequency(table, FINGERPRINT) == [b"a", b"k", b"m", b"z"]

    def test_unknown_tie_break(self):
        with pytest.raises(ValueError):
            rank_by_frequency({b"a": 1}, "bogus")


class TestFreqAnalysis:
    def test_rank_pairing(self):
        pairs = freq_analysis({b"c1": 9, b"c2": 5}, {b"m1": 7, b"m2": 2})
        assert pairs == [(b"c1", b"m1"), (b"c2", b"m2")]

    def test_limit(self):
        pairs = freq_analysis(
            {b"c1": 3, b"c2": 2, b"c3": 1},
            {b"m1": 3, b"m2": 2, b"m3": 1},
            limit=2,
        )
        assert len(pairs) == 2

    def test_uneven_table_sizes(self):
        pairs = freq_analysis({b"c1": 3}, {b"m1": 9, b"m2": 1})
        assert pairs == [(b"c1", b"m1")]

    def test_empty_tables(self):
        assert freq_analysis({}, {b"m": 1}) == []
        assert freq_analysis({b"c": 1}, {}) == []


class TestSizeClassification:
    def test_plaintext_block_count(self):
        classes = classify_by_blocks(
            {b"a": 1, b"b": 1},
            {b"a": 15, b"b": 16},
            is_plaintext=True,
        )
        # 15 bytes -> 1 block; 16 bytes -> 2 blocks (PKCS#7 always pads)
        assert set(classes) == {1, 2}

    def test_ciphertext_block_count(self):
        classes = classify_by_blocks(
            {b"a": 1}, {b"a": 32}, is_plaintext=False
        )
        assert set(classes) == {2}

    def test_plaintext_and_its_ciphertext_land_in_same_class(self):
        # plaintext of n bytes -> ciphertext of (n//16+1)*16 bytes
        for size in (0, 1, 15, 16, 100, 4096):
            plain = classify_by_blocks({b"p": 1}, {b"p": size}, is_plaintext=True)
            padded = (size // 16 + 1) * 16
            cipher = classify_by_blocks(
                {b"c": 1}, {b"c": padded}, is_plaintext=False
            )
            assert set(plain) == set(cipher), size

    def test_sized_freq_analysis_blocks_cross_size_pairs(self):
        # Without sizes c1<->m1 (both top-frequency); with sizes, c1 can
        # only pair with the same-size m2.
        ciphertext = {b"c1": 9, b"c2": 5}
        plaintext = {b"m1": 9, b"m2": 5}
        ciphertext_sizes = {b"c1": 4112, b"c2": 8208}  # padded
        plaintext_sizes = {b"m1": 8200, b"m2": 4100}
        pairs = sized_freq_analysis(
            ciphertext, plaintext, ciphertext_sizes, plaintext_sizes
        )
        assert (b"c1", b"m2") in pairs
        assert (b"c2", b"m1") in pairs

    def test_sized_freq_analysis_skips_unmatched_classes(self):
        pairs = sized_freq_analysis(
            {b"c1": 1}, {b"m1": 1}, {b"c1": 16}, {b"m1": 5000}
        )
        assert pairs == []
